// Umbrella header: the full public API of the mpcg library.
//
// Layering (each group only depends on the ones above it):
//   util     — RNG, permutations, statistics
//   graph    — CSR graphs, subgraphs, algorithms, I/O, output oracles
//   gen      — synthetic workload generators and the family catalogue
//   mpc      — the MPC model simulator and collectives
//   cclique  — the CONGESTED-CLIQUE model simulator
//   baselines— comparison algorithms and exact solvers
//   core     — the paper's algorithms (Theorems 1.1, 1.2; Corollaries 1.3,
//              1.4; Lemmas 4.1/4.2/5.1)
#ifndef MPCG_MPCG_H
#define MPCG_MPCG_H

#include "util/bitset.h"
#include "util/permutation.h"
#include "util/rng.h"
#include "util/stats.h"

#include "graph/graph.h"
#include "graph/graph_algos.h"
#include "graph/io.h"
#include "graph/subgraph.h"
#include "graph/validation.h"

#include "gen/families.h"
#include "gen/generators.h"

#include "mpc/engine.h"
#include "mpc/partition.h"
#include "mpc/primitives.h"
#include "mpc/sort.h"

#include "cclique/engine.h"

#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "fault/reprovision.h"

#include "baselines/blossom.h"
#include "baselines/brute_force.h"
#include "baselines/greedy_matching.h"
#include "baselines/greedy_mis.h"
#include "baselines/hopcroft_karp.h"
#include "baselines/israeli_itai.h"
#include "baselines/lmsv_filtering.h"
#include "baselines/local_mis.h"
#include "baselines/luby.h"

#include "core/central.h"
#include "core/integral_matching.h"
#include "core/line_graph_matching.h"
#include "core/matching_mpc.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "core/one_plus_eps.h"
#include "core/rounding.h"
#include "core/vertex_cover.h"
#include "core/weighted_matching.h"

#endif  // MPCG_MPCG_H
