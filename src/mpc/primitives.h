// Collective communication primitives for the MPC engine.
//
// These are the "standard techniques" ([GSZ11]) the paper invokes: each
// collective is built from genuine exchange() rounds, so the engine's round
// counter and capacity checks see exactly what a real cluster would.
#ifndef MPCG_MPC_PRIMITIVES_H
#define MPCG_MPC_PRIMITIVES_H

#include <cstdint>
#include <span>
#include <vector>

#include "mpc/engine.h"

namespace mpcg::mpc {

/// One-to-all broadcast of `payload` from machine `root`.
///
/// Runs a relay tree whose fan-out is what the send budget allows
/// (max(1, S / |payload|) targets per relay per round), so a payload close
/// to S costs about log_f(m) rounds while a small payload costs one round.
/// Rides the engine's shared-payload plane: the payload is stored once per
/// relay round and delivered as descriptors, so simulator work is
/// O(|payload| * rounds + m) instead of O(|payload| * m) — the charged
/// words are unchanged. Returns the payload as received (identical on
/// every machine — the engine verified it could be delivered everywhere).
/// Throws CapacityError if |payload| > S.
std::vector<Word> broadcast(Engine& engine, std::size_t root,
                            std::span<const Word> payload);

/// broadcast() without the materialized return value: identical relay
/// schedule, rounds, and Metrics, but the result is a zero-copy view of the
/// delivered payload. The span aliases engine-owned storage and is valid
/// until the next exchange() or clear_inboxes() — except on single-machine
/// clusters, where no exchange happens and the input span itself is
/// returned (valid as long as the caller's payload). Callers that must hold
/// the words across rounds should use broadcast().
std::span<const Word> broadcast_view(Engine& engine, std::size_t root,
                                     std::span<const Word> payload);

/// All-to-one gather: machine i contributes `parts[i]`; returns the
/// concatenation (in machine order) as received by `root`. One round.
/// The gathered size is charged to root's storage. Parts travel as shared
/// segments (one stored copy each); the returned concatenation is the only
/// materialization.
std::vector<Word> gather_to(Engine& engine, std::size_t root,
                            const std::vector<std::vector<Word>>& parts);

/// All-to-all personalized exchange: `out[i][j]` are the words machine i
/// sends to machine j. Returns per-machine inboxes (concatenated in sender
/// order). One round.
std::vector<std::vector<Word>> all_to_all(
    Engine& engine, const std::vector<std::vector<std::vector<Word>>>& out);

/// Computes the sum of one value per machine at every machine
/// (all-reduce). Two rounds: gather 1 word per machine at machine 0, then
/// broadcast the total.
std::uint64_t all_reduce_sum(Engine& engine,
                             const std::vector<Word>& per_machine_value);

/// All-reduce maximum of one value per machine. Two rounds.
std::uint64_t all_reduce_max(Engine& engine,
                             const std::vector<Word>& per_machine_value);

}  // namespace mpcg::mpc

#endif  // MPCG_MPC_PRIMITIVES_H
