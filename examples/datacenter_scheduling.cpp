// Scenario: assigning jobs to machines in a datacenter.
//
// Bipartite graph: jobs on the left, machines on the right, an edge where
// a machine can run a job, weighted by expected throughput. Corollary 1.4
// gives a (2+eps)-approximate maximum weight assignment in
// O(log log n * 1/eps) rounds; Corollary 1.3 pushes the *cardinality*
// version (maximize the number of scheduled jobs) to (1+eps).
#include <cstdio>

#include "baselines/greedy_matching.h"
#include "baselines/hopcroft_karp.h"
#include "core/one_plus_eps.h"
#include "core/weighted_matching.h"
#include "gen/generators.h"
#include "graph/validation.h"

int main() {
  using namespace mpcg;

  Rng rng(11);
  const std::size_t jobs = 4000;
  const std::size_t machines = 3000;
  const Graph g = random_bipartite(jobs, machines, 10.0 / 3000.0, rng);
  const auto throughput = exponential_weights(g, 5.0, rng);
  std::printf("compatibility graph: %zu jobs x %zu machines, %zu edges\n",
              jobs, machines, g.num_edges());

  // Weighted assignment (Corollary 1.4).
  WeightedMatchingOptions wopt;
  wopt.eps = 0.2;
  wopt.seed = 5;
  const auto assignment = weighted_matching(g, throughput, wopt);
  std::printf("\n[throughput assignment] %zu jobs scheduled, total "
              "throughput %.1f (%zu weight classes, %zu rounds)\n",
              assignment.matching.size(), assignment.weight,
              assignment.num_classes, assignment.total_rounds);
  const double greedy_w =
      matching_weight(greedy_weighted_matching(g, throughput), throughput);
  std::printf("sequential greedy reference: %.1f  (ours/greedy = %.3f)\n",
              greedy_w, assignment.weight / greedy_w);

  // Cardinality assignment (Corollary 1.3) vs the exact optimum
  // (Hopcroft-Karp is feasible offline on this size).
  OnePlusEpsOptions copt;
  copt.eps = 0.25;
  copt.seed = 6;
  const auto cardinality = one_plus_eps_matching(g, copt);
  const auto side = try_bipartition(g);
  const std::size_t exact =
      side ? hopcroft_karp_matching(g, *side).size() : 0;
  std::printf("\n[cardinality assignment] %zu jobs scheduled; exact "
              "optimum %zu (ratio %.4f, target >= %.4f)\n",
              cardinality.matching.size(), exact,
              exact ? static_cast<double>(cardinality.matching.size()) /
                          static_cast<double>(exact)
                    : 1.0,
              1.0 / (1.0 + copt.eps));
  return 0;
}
