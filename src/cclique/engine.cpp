#include "cclique/engine.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "util/rng.h"

namespace mpcg::cclique {

Engine::Engine(std::size_t num_players, bool strict, bool integrity,
               bool audit, std::size_t scrub_interval, std::size_t threads)
    : n_(num_players), strict_(strict), integrity_(integrity), audit_(audit),
      scrub_interval_(scrub_interval), backend_(mpc::make_backend(threads)),
      inbox_(num_players), broadcasting_(num_players, 0),
      sent_(num_players, 0), received_(num_players, 0) {
  if (num_players == 0) {
    throw std::invalid_argument("Engine: need at least one player");
  }
  if (integrity_) {
    csums_.assign(n_, Fnv::kOffset);
    csum_check_.assign(n_, Fnv::kOffset);
  }
}

void Engine::send(PlayerId from, PlayerId to, Word word) {
  if (from >= n_ || to >= n_) {
    throw std::out_of_range("cclique send: player out of range");
  }
  pending_.push_back(Message{from, to, word});
  if (integrity_) [[unlikely]] {
    csums_[from] = Fnv::fold(csums_[from], word);
  }
}

void Engine::broadcast(PlayerId from, Word word) {
  if (from >= n_) {
    throw std::out_of_range("cclique broadcast: player out of range");
  }
  pending_broadcasts_.push_back(from);
  bcast_staging_.push_back(Message{from, from, word});
  if (integrity_) [[unlikely]] {
    // The store half of the integrity layer: one digest over the shared
    // broadcast store, folded at publish time.
    bcast_csum_ = Fnv::fold(bcast_csum_, word);
  }
}

void Engine::exchange() {
  if (!delayed_.empty()) {
    // Late flushes from a non-recovered delay land with this round's
    // traffic — and count against its per-pair budget, like a real
    // straggler hitting the next barrier.
    pending_.insert(pending_.end(), delayed_.begin(), delayed_.end());
    if (integrity_) {
      // The late words appended to their senders' streams; continue the
      // folds.
      for (const Message& msg : delayed_) {
        csums_[msg.from] = Fnv::fold(csums_[msg.from], msg.word);
      }
    }
    delayed_.clear();
  }
  if (audit_) begin_audit();
  if (fault_plan_ != nullptr) {
    const auto events = fault_plan_->events_at(metrics_.rounds);
    if (!events.empty()) {
      exchange_faulty(events);
      return;
    }
  }
  exchange_impl();
}

void Engine::exchange_impl() {
  // The one integrity pass per exchange — before the sort below reorders
  // pending_ away from send (fold) order.
  if (integrity_) {
    if (scrub_interval_ != 0 &&
        (metrics_.rounds + 1) % scrub_interval_ == 0) {
      scrub_pass();
    }
    verify_streams();
    // The broadcast store ships (and aliases) below; rot that escaped the
    // repair path must not reach the readers.
    if (!bcast_store_ok()) {
      throw IntegrityError(
          "broadcast store (" + std::to_string(bcast_staging_.size()) +
          " words) fails its digest in round " +
          std::to_string(metrics_.rounds) +
          ": corruption was not repaired before delivery");
    }
  }
  // Per-ordered-pair budget: sort point-to-point messages and detect
  // duplicates; broadcasts consume the (from, *) budget for every pair.
  // Scratch arrays are persistent and only the entries actually touched
  // are reset, so a broadcast-only round (the drivers' common case) costs
  // O(broadcasts), not O(players).
  if (!pending_.empty()) {
    std::sort(pending_.begin(), pending_.end(),
              [](const Message& a, const Message& b) {
                return a.from < b.from || (a.from == b.from && a.to < b.to);
              });
  }
  for (const PlayerId p : pending_broadcasts_) {
    if (broadcasting_[p]) {
      ++metrics_.violations;
      if (strict_) {
        throw CongestionError(
            "player " + std::to_string(p) + " broadcast twice in round " +
            std::to_string(metrics_.rounds) +
            ": requested 2 broadcasts, available 1");
      }
    }
    broadcasting_[p] = 1;
  }
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Message& msg = pending_[i];
    const bool duplicate_pair =
        i > 0 && pending_[i - 1].from == msg.from && pending_[i - 1].to == msg.to;
    if (duplicate_pair || broadcasting_[msg.from]) {
      ++metrics_.violations;
      if (strict_) {
        throw CongestionError(
            "pair (" + std::to_string(msg.from) + "," +
            std::to_string(msg.to) + ") used more than once in round " +
            std::to_string(metrics_.rounds) +
            ": requested 2 or more words, available 1 word per ordered "
            "pair per round");
      }
    }
    metrics_.max_player_sent =
        std::max<std::size_t>(metrics_.max_player_sent, ++sent_[msg.from]);
    metrics_.max_player_received =
        std::max<std::size_t>(metrics_.max_player_received,
                              ++received_[msg.to]);
  }
  metrics_.total_words += pending_.size();
  metrics_.total_words += pending_broadcasts_.size() * (n_ - 1);

  for (const PlayerId p : inbox_touched_) inbox_[p].clear();
  inbox_touched_.clear();
  for (const Message& msg : pending_) {
    if (inbox_[msg.to].empty()) inbox_touched_.push_back(msg.to);
    inbox_[msg.to].push_back(msg);
  }
  // Reset the touched scratch entries for the next round.
  for (const Message& msg : pending_) {
    sent_[msg.from] = 0;
    received_[msg.to] = 0;
  }
  for (const PlayerId p : pending_broadcasts_) broadcasting_[p] = 0;
  bcast_inbox_ = std::move(bcast_staging_);
  bcast_staging_.clear();
  if (integrity_) bcast_csum_ = Fnv::kOffset;
  pending_.clear();
  pending_broadcasts_.clear();
  if (audit_) finish_audit();
  ++metrics_.rounds;
}

const std::vector<Message>& Engine::inbox(PlayerId player) const {
  return inbox_.at(player);
}

const std::vector<RouteView>& Engine::lenzen_route_view(
    const RouteStream& stream) {
  if (!pending_.empty() || !pending_broadcasts_.empty()) {
    throw std::logic_error(
        "lenzen_route: flush queued sends with exchange() first");
  }
  if (route_view_.empty()) route_view_.resize(n_);
  for (const PlayerId p : route_touched_) {
    route_view_[p].segs_.clear();
    route_view_[p].words_ = 0;
  }
  route_touched_.clear();

  // Split into batches, each feasible for Lenzen's scheme: at most n
  // messages per sender and per receiver. A message goes into the first
  // batch where both its sender and receiver have budget left — and for a
  // fixed (sender, receiver) pair that first-feasible index only moves
  // forward as loads fill, so a whole run is assigned in greedy chunks of
  // min(sender budget, receiver budget, remaining): exactly the batches
  // per-message assignment would produce, at per-chunk bookkeeping cost.
  // The batch buffers and per-batch load counters are persistent; a new
  // batch pays its O(n) counter allocation once, ever.
  std::size_t batches_used = 0;
  route_batch_words_.assign(route_batches_.size(), 0);
  std::size_t word_pos = 0;
  for (const RouteStream::Run& run : stream.runs_) {
    std::uint32_t left = run.count;
    std::size_t b = 0;
    while (left > 0) {
      for (;; ++b) {
        if (b == batches_used) {
          if (batches_used == route_batches_.size()) {
            route_batches_.emplace_back();
            route_batch_words_.push_back(0);
            route_send_load_.emplace_back(n_, 0);
            route_recv_load_.emplace_back(n_, 0);
          }
          ++batches_used;
        }
        if (route_send_load_[b][run.from] < n_ &&
            route_recv_load_[b][run.to] < n_) {
          break;
        }
      }
      const auto budget = static_cast<std::uint32_t>(
          std::min<std::size_t>(n_ - route_send_load_[b][run.from],
                                n_ - route_recv_load_[b][run.to]));
      const std::uint32_t take = std::min(left, budget);
      route_batches_[b].push_back(BatchRun{run.from, run.to, take, word_pos});
      route_send_load_[b][run.from] += take;
      route_recv_load_[b][run.to] += take;
      route_batch_words_[b] += take;
      word_pos += take;
      left -= take;
    }
  }

  // Lenzen audit: the greedy batch split must preserve the routed word
  // total — a chunk that lands in no batch (or two) is a simulator bug.
  if (audit_) {
    std::size_t batched = 0;
    for (std::size_t b = 0; b < batches_used; ++b) {
      batched += route_batch_words_[b];
    }
    if (batched != stream.size()) {
      throw AuditError("audit: lenzen batches hold " +
                       std::to_string(batched) + " words, the routed "
                       "stream staged " + std::to_string(stream.size()));
    }
  }

  // An overloaded routing request is not a model violation — it is just
  // slower; the extra batches show up in `rounds` and `lenzen_batches`.
  for (std::size_t b = 0; b < batches_used; ++b) {
    auto& batch = route_batches_[b];
    // Lenzen's scheme delivers a feasible batch in O(1) rounds; we charge
    // the canonical 2 (distribute to intermediaries, forward to targets).
    lenzen_batch_faults(metrics_.rounds, b);
    metrics_.rounds += 2;
    ++metrics_.lenzen_batches;
    metrics_.total_words += 2 * route_batch_words_[b];
    for (const BatchRun& br : batch) {
      // Segmented delivery: one descriptor per batch run aliasing the
      // caller's stream words — never a per-word Message expansion.
      RouteView& dst = route_view_[br.to];
      if (dst.empty()) route_touched_.push_back(br.to);
      dst.segs_.push_back(
          RouteSegment{br.from, stream.words_.data() + br.offset, br.count});
      dst.words_ += br.count;
      // The counter holds this receiver's full batch total by now, so the
      // per-chunk max equals the old full post-count scan.
      metrics_.max_player_received = std::max<std::size_t>(
          metrics_.max_player_received, route_recv_load_[b][br.to]);
    }
    // Reset the touched load entries for the next call.
    for (const BatchRun& br : batch) {
      route_send_load_[b][br.from] = 0;
      route_recv_load_[b][br.to] = 0;
    }
    batch.clear();
  }
  return route_view_;
}

const std::vector<std::vector<Message>>& Engine::lenzen_route(
    const RouteStream& stream) {
  const std::vector<RouteView>& views = lenzen_route_view(stream);
  if (route_delivered_.empty()) route_delivered_.resize(n_);
  for (const PlayerId p : route_mat_touched_) route_delivered_[p].clear();
  route_mat_touched_.clear();
  for (const PlayerId p : route_touched_) {
    std::vector<Message>& dst = route_delivered_[p];
    route_mat_touched_.push_back(p);
    const RouteView& view = views[p];
    dst.reserve(view.size());
    for (const RouteSegment& seg : view.segments()) {
      for (std::uint32_t i = 0; i < seg.count; ++i) {
        dst.push_back(Message{seg.from, p, seg.words[i]});
      }
    }
    route_words_materialized_ += view.size();
  }
  return route_delivered_;
}

const std::vector<std::vector<Message>>& Engine::lenzen_route(
    std::vector<Message> messages) {
  route_restage_.clear();
  for (const Message& msg : messages) {
    route_restage_.append(msg.from, msg.to, msg.word);
  }
  return lenzen_route(route_restage_);
}

// ---------------------------------------------------------------------------
// Fault injection & recovery (see set_fault_plan).

std::size_t Engine::Snapshot::words() const noexcept {
  constexpr std::size_t kMsgWords = sizeof(Message) / sizeof(Word);
  return pending.size() * kMsgWords + bcast_staging.size() * kMsgWords +
         (pending_broadcasts.size() + 1) / 2 + csums.size() + 1 +
         sizeof(Metrics) / sizeof(Word);
}

Engine::Snapshot Engine::snapshot() const {
  Snapshot s;
  s.pending = pending_;
  s.pending_broadcasts = pending_broadcasts_;
  s.bcast_staging = bcast_staging_;
  s.csums = csums_;
  s.bcast_csum = bcast_csum_;
  s.metrics = metrics_;
  return s;
}

void Engine::restore(const Snapshot& snap) {
  pending_ = snap.pending;
  pending_broadcasts_ = snap.pending_broadcasts;
  bcast_staging_ = snap.bcast_staging;
  csums_ = snap.csums;
  bcast_csum_ = snap.bcast_csum;
  metrics_ = snap.metrics;
}

void Engine::set_fault_plan(const fault::FaultPlan* plan,
                            fault::CheckpointRegistry* registry,
                            bool recover) {
  // The registry is kept even with a null/empty plan: durability persists
  // provider state through it without any fault injection attached.
  fault_plan_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
  registry_ = registry;
  fault_recover_ = recover;
}

// ---------------------------------------------------------------------------
// On-disk durability (see set_durability; mirrors mpc::Engine).

void Engine::set_durability(const fault::DurableOptions& options,
                            std::string scope) {
  if (!options.enabled()) return;
  if (options.every == 0) {
    throw std::invalid_argument("Engine: checkpoint every must be >= 1");
  }
  durable_ = options;
  durable_scope_ = std::move(scope);
  dring_.emplace(durable_.dir);
  if (!durable_.resume) dring_->reset();
}

void Engine::engine_section_into(fault::DurableSection& s) const {
  static_assert(std::has_unique_object_representations_v<Metrics>);
  static_assert(sizeof(Metrics) % sizeof(Word) == 0);
  s.name = "__engine";
  std::vector<Word>& out = s.payload;
  out.clear();
  out.resize(sizeof(Metrics) / sizeof(Word));
  std::memcpy(out.data(), &metrics_, sizeof(Metrics));
  out.push_back(crashes_recovered_);
  // Delayed flushes straddle the round boundary; staging and the broadcast
  // store do not (safe points are quiescent).
  out.push_back(delayed_.size());
  for (const Message& msg : delayed_) {
    out.push_back(msg.from);
    out.push_back(msg.to);
    out.push_back(msg.word);
  }
}

void Engine::install_engine_section(std::span<const Word> payload) {
  const std::size_t mw = sizeof(Metrics) / sizeof(Word);
  std::size_t at = 0;
  const auto take = [&]() -> Word {
    if (at >= payload.size()) {
      throw fault::CheckpointError(
          "durable checkpoint restore: truncated __engine section");
    }
    return payload[at++];
  };
  if (payload.size() < mw) {
    throw fault::CheckpointError(
        "durable checkpoint restore: truncated __engine section");
  }
  std::memcpy(static_cast<void*>(&metrics_), payload.data(), sizeof(Metrics));
  at = mw;
  crashes_recovered_ = static_cast<std::size_t>(take());
  delayed_.clear();
  const Word ndelayed = take();
  for (Word i = 0; i < ndelayed; ++i) {
    Message msg;
    msg.from = static_cast<PlayerId>(take());
    msg.to = static_cast<PlayerId>(take());
    msg.word = take();
    delayed_.push_back(msg);
  }
}

void Engine::persist() {
  // Scratch layout: provider sections, then one trailing "__engine"
  // section; the buffers survive across persists (see mpc::Engine).
  const std::size_t nprov =
      registry_ != nullptr ? registry_->num_providers() : 0;
  durable_scratch_.resize(nprov + 1);
  if (registry_ != nullptr) registry_->save_sections_into(durable_scratch_);
  engine_section_into(durable_scratch_[nprov]);
  const std::size_t words =
      dring_->save(metrics_.rounds, durable_scope_, durable_scratch_);
  ++metrics_.disk_checkpoints_written;
  metrics_.disk_checkpoint_words += words;
}

void Engine::checkpoint_boundary() {
  // Park the pool before anything durable (or fatal) happens at this safe
  // point — no worker may touch driver or provider state while a
  // generation persists or a stop unwinds (see mpc::Engine's twin).
  backend_->quiesce();
  if (!dring_) return;
  ++safe_points_;
  const bool stop =
      (durable_.stop_flag != nullptr &&
       durable_.stop_flag->load(std::memory_order_relaxed)) ||
      (durable_.stop_after_safe_points != 0 &&
       safe_points_ >= durable_.stop_after_safe_points);
  if (stop) {
    persist();
    throw fault::ResumableInterrupt(
        "stopped at a safe point after flushing a final durable generation "
        "(relaunch with --resume)");
  }
  if (safe_points_ % durable_.every == 0) persist();
}

bool Engine::try_resume() {
  if (!dring_ || !durable_.resume) return false;
  std::optional<fault::DurableLoad> loaded;
  if (registry_ != nullptr) {
    loaded = registry_->load_from(*dring_, durable_scope_);
  } else {
    loaded = dring_->load(durable_scope_);
  }
  if (!loaded) return false;
  const fault::DurableSection* engine = nullptr;
  for (const fault::DurableSection& s : loaded->checkpoint.sections) {
    if (s.name == "__engine") {
      engine = &s;
      break;
    }
  }
  if (engine == nullptr) {
    throw fault::CheckpointError(
        "durable checkpoint restore: no __engine section");
  }
  install_engine_section(std::span<const Word>(engine->payload));
  ++metrics_.resume_loads;
  metrics_.disk_fallbacks += loaded->fallback ? 1 : 0;
  if (fault_plan_ != nullptr) {
    for (const fault::FaultEvent& ev : fault_plan_->events()) {
      if (ev.round < metrics_.rounds) ++metrics_.faults_skipped_on_resume;
    }
  }
  return true;
}

std::size_t Engine::staged_out_words(std::size_t player) const {
  std::size_t w = 0;
  for (const Message& msg : pending_) w += (msg.from == player);
  for (const PlayerId p : pending_broadcasts_) {
    if (p == player) w += n_ - 1;
  }
  return w;
}

std::size_t Engine::staged_p2p(std::size_t player) const {
  std::size_t c = 0;
  for (const Message& msg : pending_) c += (msg.from == player);
  return c;
}

std::size_t Engine::staged_bcast(std::size_t player) const {
  std::size_t c = 0;
  for (const Message& msg : bcast_staging_) c += (msg.from == player);
  return c;
}

void Engine::corrupt_player_staging(std::size_t player) {
  std::erase_if(pending_, [player](const Message& msg) {
    return msg.from == player;
  });
  std::erase(pending_broadcasts_, static_cast<PlayerId>(player));
  std::erase_if(bcast_staging_, [player](const Message& msg) {
    return msg.from == player;
  });
  if (integrity_) {
    csums_[player] = Fnv::kOffset;
    // The erased broadcasts were folded into the store digest at publish
    // time; bring the accumulator back in line with the surviving store.
    resync_bcast_checksum();
  }
}

std::size_t Engine::duplicate_player_staging(std::size_t player) {
  // Duplicated point-to-point flush: every pair the player used is now
  // used twice, which is exactly a congestion breach of the 1-word/pair
  // budget — the model detects the fault on its own.
  std::vector<Message> copy;
  for (const Message& msg : pending_) {
    if (msg.from == player) copy.push_back(msg);
  }
  pending_.insert(pending_.end(), copy.begin(), copy.end());
  // The checksum accumulator covered only one copy.
  if (integrity_) resync_player_checksum(player);
  return copy.size();
}

std::size_t Engine::delay_player_staging(std::size_t player) {
  std::size_t held = 0;
  for (const Message& msg : pending_) {
    if (msg.from == player) {
      delayed_.push_back(msg);
      ++held;
    }
  }
  std::erase_if(pending_, [player](const Message& msg) {
    return msg.from == player;
  });
  if (integrity_) csums_[player] = Fnv::kOffset;
  return held;
}

void Engine::resync_player_checksum(std::size_t player) {
  std::uint64_t h = Fnv::kOffset;
  for (const Message& msg : pending_) {
    if (msg.from == player) h = Fnv::fold(h, msg.word);
  }
  csums_[player] = h;
}

bool Engine::player_stream_ok(std::size_t player) const {
  std::uint64_t h = Fnv::kOffset;
  for (const Message& msg : pending_) {
    if (msg.from == player) h = Fnv::fold(h, msg.word);
  }
  return h == csums_[player];
}

void Engine::verify_streams() {
  // One sweep over pending_ in send order, folding into per-player scratch
  // digests (touched-only, so a broadcast-heavy round costs O(messages)).
  for (const Message& msg : pending_) {
    if (csum_check_[msg.from] == Fnv::kOffset) {
      csum_touched_.push_back(msg.from);
    }
    csum_check_[msg.from] = Fnv::fold(csum_check_[msg.from], msg.word);
  }
  for (const PlayerId p : csum_touched_) {
    if (csum_check_[p] != csums_[p]) {
      // Reset the scratch before throwing so a caught error leaves the
      // engine consistent.
      for (const PlayerId q : csum_touched_) csum_check_[q] = Fnv::kOffset;
      csum_touched_.clear();
      throw IntegrityError(
          "player " + std::to_string(p) +
          " flush fails its stream checksum in round " +
          std::to_string(metrics_.rounds) +
          ": corruption was not repaired before delivery");
    }
  }
  for (const PlayerId p : csum_touched_) {
    csum_check_[p] = Fnv::kOffset;
    // pending_ delivers (and clears) this round; reset the accumulators.
    csums_[p] = Fnv::kOffset;
  }
  csum_touched_.clear();
}

std::size_t Engine::corrupt_player_words(std::size_t player,
                                         std::size_t round,
                                         std::size_t ordinal) {
  // Retain the player's pristine words (aligned with its messages in
  // pending_ order) before flipping — the sender keeps its flush until the
  // receiver acks, so a detected mismatch can be served from retention.
  retained_words_.clear();
  for (const Message& msg : pending_) {
    if (msg.from == player) retained_words_.push_back(msg.word);
  }
  retained_from_ = player;
  const std::size_t total = retained_words_.size();
  if (total == 0) return 0;
  // 1..3 distinct (word, bit) flips; deduplication guarantees the stream
  // genuinely differs, so detected == injected whenever integrity is on.
  const std::size_t flips = 1 + mix64(round, player, ordinal * 8 + 5) % 3;
  std::size_t applied = 0;
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t idx =
        mix64(round, player * 8 + f, ordinal * 8 + 6) % total;
    const std::size_t bit =
        mix64(round, player * 8 + f, ordinal * 8 + 7) % 64;
    bool fresh = true;
    for (std::size_t g = 0; g < f; ++g) {
      const std::size_t pidx =
          mix64(round, player * 8 + g, ordinal * 8 + 6) % total;
      const std::size_t pbit =
          mix64(round, player * 8 + g, ordinal * 8 + 7) % 64;
      if (pidx == idx && pbit == bit) {
        fresh = false;
        break;
      }
    }
    if (!fresh) continue;
    std::size_t seen = 0;
    for (Message& msg : pending_) {
      if (msg.from != player) continue;
      if (seen++ == idx) {
        msg.word ^= Word{1} << bit;
        ++applied;
        break;
      }
    }
  }
  return applied;
}

std::size_t Engine::retransmit_retained(std::size_t player) {
  // Serve the ack-retained pristine words back into the staged messages.
  // The accumulator already holds the pristine digest (corruption touched
  // only the words), so no resync is needed.
  std::size_t seen = 0;
  for (Message& msg : pending_) {
    if (msg.from == player) msg.word = retained_words_[seen++];
  }
  return seen;
}

// ---------------------------------------------------------------------------
// Durable-store integrity: the broadcast store's digest, retained-copy
// repair, scrub, and verified checkpoint generations (see DESIGN.md,
// "Durable-store integrity & verified checkpoints").

std::size_t Engine::corrupt_bcast_words(std::size_t player, std::size_t round,
                                        std::size_t ordinal) {
  // Retain the player's pristine broadcast words (aligned with its entries
  // in bcast_staging_ order) before flipping — the publisher's copy is the
  // store's repair source.
  retained_bcast_words_.clear();
  for (const Message& msg : bcast_staging_) {
    if (msg.from == player) retained_bcast_words_.push_back(msg.word);
  }
  retained_bcast_from_ = player;
  const std::size_t total = retained_bcast_words_.size();
  if (total == 0) return 0;
  // Same 1..3 deduplicated (word, bit) flips as every other injected
  // corruption, so store_corruptions_detected == store_corruptions_injected
  // whenever integrity is on.
  const std::size_t flips = 1 + mix64(round, player, ordinal * 8 + 5) % 3;
  std::size_t applied = 0;
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t idx =
        mix64(round, player * 8 + f, ordinal * 8 + 6) % total;
    const std::size_t bit =
        mix64(round, player * 8 + f, ordinal * 8 + 7) % 64;
    bool fresh = true;
    for (std::size_t g = 0; g < f; ++g) {
      const std::size_t pidx =
          mix64(round, player * 8 + g, ordinal * 8 + 6) % total;
      const std::size_t pbit =
          mix64(round, player * 8 + g, ordinal * 8 + 7) % 64;
      if (pidx == idx && pbit == bit) {
        fresh = false;
        break;
      }
    }
    if (!fresh) continue;
    std::size_t seen = 0;
    for (Message& msg : bcast_staging_) {
      if (msg.from != player) continue;
      if (seen++ == idx) {
        msg.word ^= Word{1} << bit;
        ++applied;
        break;
      }
    }
  }
  return applied;
}

bool Engine::bcast_store_ok() const {
  std::uint64_t h = Fnv::kOffset;
  for (const Message& msg : bcast_staging_) h = Fnv::fold(h, msg.word);
  return h == bcast_csum_;
}

std::size_t Engine::repair_retained_bcast() {
  std::size_t seen = 0;
  for (Message& msg : bcast_staging_) {
    if (msg.from == retained_bcast_from_) {
      msg.word = retained_bcast_words_[seen++];
    }
  }
  return seen;
}

void Engine::resync_bcast_checksum() {
  std::uint64_t h = Fnv::kOffset;
  for (const Message& msg : bcast_staging_) h = Fnv::fold(h, msg.word);
  bcast_csum_ = h;
}

void Engine::scrub_pass() {
  // Proactive verification sweep over everything the player set retains:
  // the point-to-point streams, the broadcast store, and the checkpoint
  // generation ring.  Rot that escaped the repair path is fatal here
  // exactly as it would be at delivery.  Unlike verify_streams() this
  // sweep is non-destructive — the accumulators keep folding until the
  // round actually delivers.  Checkpoint rot is left for restore-time
  // fallback (repairing it here would mask the ring's retention contract).
  for (const Message& msg : pending_) {
    if (csum_check_[msg.from] == Fnv::kOffset) {
      csum_touched_.push_back(msg.from);
    }
    csum_check_[msg.from] = Fnv::fold(csum_check_[msg.from], msg.word);
  }
  for (const PlayerId p : csum_touched_) {
    if (csum_check_[p] != csums_[p]) {
      for (const PlayerId q : csum_touched_) csum_check_[q] = Fnv::kOffset;
      csum_touched_.clear();
      throw IntegrityError(
          "player " + std::to_string(p) +
          " flush fails its stream checksum in scrub at round " +
          std::to_string(metrics_.rounds) +
          ": corruption was not repaired before delivery");
    }
  }
  for (const PlayerId p : csum_touched_) csum_check_[p] = Fnv::kOffset;
  csum_touched_.clear();
  if (!bcast_store_ok()) {
    throw IntegrityError(
        "broadcast store (" + std::to_string(bcast_staging_.size()) +
        " words) fails its digest in scrub at round " +
        std::to_string(metrics_.rounds) +
        ": corruption was not repaired before delivery");
  }
  if (registry_ != nullptr) {
    for (std::size_t age = 0; age < registry_->generations_held(); ++age) {
      (void)registry_->generation_ok(age);
    }
  }
  ++metrics_.scrub_passes;
}

void Engine::restore_registry(std::size_t player, std::size_t round,
                              std::size_t& replays, std::size_t& fallbacks) {
  if (registry_ == nullptr || !registry_->has_checkpoint()) return;
  if (!registry_->generation_ok(0)) {
    // The newest image rotted in retention.  Find the next older verified
    // generation — the cluster's last good copy.
    const std::size_t held = registry_->generations_held();
    std::size_t age = 1;
    while (age < held && !registry_->generation_ok(age)) ++age;
    if (age == held) {
      // Name the rotted providers so the operator knows which state lost
      // its last good copy.
      std::vector<std::string> seen;
      std::string rotted;
      for (std::size_t a = 0; a < held; ++a) {
        for (std::string& name : registry_->rotted_providers(a)) {
          if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
            continue;
          }
          rotted += rotted.empty() ? "" : ", ";
          rotted += name;
          seen.push_back(std::move(name));
        }
      }
      throw fault::CheckpointError(
          "player " + std::to_string(player) + ": all " +
          std::to_string(held) +
          " retained checkpoint generation(s) fail verification in round " +
          std::to_string(round) + " (rotted provider(s): " + rotted +
          "): the cluster is unrecoverable");
    }
    // Deterministic replay from the verified generation reconstructs
    // exactly the live provider state (untouched since the capture at this
    // round's entry); recapture it into the newest slot and charge the
    // rounds between the two generation tags.
    replays += round - registry_->generation_round(age);
    ++fallbacks;
    registry_->recapture_newest();
  }
  registry_->restore();
}

void Engine::exchange_faulty(std::span<const fault::FaultEvent> events) {
  const std::size_t round = metrics_.rounds;
  std::size_t ckpt_words = 0;
  Snapshot ckpt;
  if (fault_recover_) {
    if (registry_ != nullptr) ckpt_words += registry_->capture(round);
    ckpt = snapshot();
    ckpt_words += ckpt.words();
  }
  std::size_t replays = 0;
  std::size_t resent = 0;
  std::size_t applied = 0;
  std::size_t corrupted = 0;
  std::size_t detected = 0;
  std::size_t retransmitted = 0;
  std::size_t store_corrupted = 0;
  std::size_t store_detected = 0;
  std::size_t store_repaired = 0;
  std::size_t fallbacks = 0;
  std::size_t ckpt_rot = 0;
  crashed_scratch_.clear();
  dark_scratch_.clear();
  for (std::size_t ei = 0; ei < events.size(); ++ei) {
    const fault::FaultEvent& ev = events[ei];
    if (ev.machine >= n_) continue;
    ++applied;
    switch (ev.kind) {
      case fault::FaultKind::kCrash:
        if (fault_recover_) {
          if (crashes_recovered_ >= fault_plan_->crash_budget) {
            throw fault::FaultBudgetError(
                "player " + std::to_string(ev.machine) +
                " crashed in round " + std::to_string(round) +
                ": crash budget of " +
                std::to_string(fault_plan_->crash_budget) + " exhausted");
          }
          ++crashes_recovered_;
          resent += staged_out_words(ev.machine);
          corrupt_player_staging(ev.machine);
          restore(ckpt);
          restore_registry(ev.machine, round, replays, fallbacks);
          ++replays;
          crashed_scratch_.push_back(ev.machine);
        } else {
          if (audit_) {
            audit_dropped_ += staged_p2p(ev.machine);
            audit_bcast_dropped_ += staged_bcast(ev.machine);
          }
          corrupt_player_staging(ev.machine);
          dark_scratch_.push_back(ev.machine);
        }
        break;
      case fault::FaultKind::kDropFlush:
        if (fault_recover_) {
          resent += staged_out_words(ev.machine);
          corrupt_player_staging(ev.machine);
          restore(ckpt);
          ++replays;
        } else {
          if (audit_) {
            audit_dropped_ += staged_p2p(ev.machine);
            audit_bcast_dropped_ += staged_bcast(ev.machine);
          }
          corrupt_player_staging(ev.machine);
        }
        break;
      case fault::FaultKind::kDuplicateFlush:
        if (!fault_recover_) {
          audit_duped_ += duplicate_player_staging(ev.machine);
        }
        break;
      case fault::FaultKind::kDelayFlush:
        if (fault_recover_) {
          ++replays;
        } else {
          audit_delayed_ += delay_player_staging(ev.machine);
        }
        break;
      case fault::FaultKind::kCorruptPayload: {
        // Silent in-transit corruption of the player's staged words; the
        // pristine flush is retained sender-side first.
        if (corrupt_player_words(ev.machine, round, ei) == 0) break;
        ++corrupted;
        if (!integrity_) break;  // undetected: propagates silently
        if (player_stream_ok(ev.machine)) break;  // 2^-64 digest collision
        ++detected;
        std::size_t attempt = 1;
        for (std::size_t j = 0; j < ei; ++j) {
          attempt += events[j].kind == fault::FaultKind::kCorruptPayload &&
                     events[j].machine == ev.machine;
        }
        if (attempt > fault_plan_->retransmit_budget) {
          if (!fault_recover_) {
            throw IntegrityError(
                "player " + std::to_string(ev.machine) +
                " flush corrupted in round " + std::to_string(round) +
                ": retransmit budget of " +
                std::to_string(fault_plan_->retransmit_budget) +
                " exhausted and recovery is off");
          }
          restore(ckpt);
          restore_registry(ev.machine, round, replays, fallbacks);
          ++replays;
          retransmitted += staged_p2p(ev.machine);
        } else {
          retransmitted += retransmit_retained(ev.machine);
        }
        break;
      }
      case fault::FaultKind::kCorruptStore: {
        // Silent rot in the durable broadcast store — the one shared copy
        // every player's broadcast_inbox() aliases.  The publisher retains
        // its pristine words first (the store's repair source).
        if (corrupt_bcast_words(ev.machine, round, ei) == 0) break;
        ++store_corrupted;
        if (!integrity_) break;  // undetected: every reader aliases rot
        if (bcast_store_ok()) break;  // 2^-64 digest collision
        ++store_detected;
        // Same escalation contract as the wire: attempt ordinal = how many
        // times this player's store entries have rotted this round.
        std::size_t attempt = 1;
        for (std::size_t j = 0; j < ei; ++j) {
          attempt += events[j].kind == fault::FaultKind::kCorruptStore &&
                     events[j].machine == ev.machine;
        }
        if (attempt > fault_plan_->retransmit_budget) {
          if (!fault_recover_) {
            throw IntegrityError(
                "player " + std::to_string(ev.machine) +
                " broadcast store corrupted in round " +
                std::to_string(round) + ": retransmit budget of " +
                std::to_string(fault_plan_->retransmit_budget) +
                " exhausted and recovery is off");
          }
          restore(ckpt);
          restore_registry(ev.machine, round, replays, fallbacks);
          ++replays;
        } else {
          store_repaired += repair_retained_bcast();
        }
        break;
      }
      case fault::FaultKind::kCorruptCheckpoint: {
        // Bit rot in a retained checkpoint image; nothing observable until
        // the next restore verifies generations (see restore_registry).
        // The first rot event of a round hits the newest generation,
        // subsequent ones walk down the ring.
        if (registry_ == nullptr || !registry_->has_checkpoint()) break;
        registry_->corrupt_generation(
            ckpt_rot % registry_->generations_held(), round, ev.machine, ei);
        ++ckpt_rot;
        break;
      }
    }
  }
  exchange_impl();
  for (const std::size_t player : crashed_scratch_) {
    // The recovered player re-fetches what it missed: its point-to-point
    // inbox plus the round's broadcasts (stored once, re-read from there).
    resent += inbox_[player].size() + bcast_inbox_.size();
  }
  for (const std::size_t player : dark_scratch_) {
    // Dark player: point-to-point deliveries are lost. The broadcast store
    // is durable (one shared copy), matching the mpc engine's payload
    // store semantics.
    inbox_[player].clear();
  }
  metrics_.rounds_replayed += replays;
  metrics_.words_resent += resent;
  metrics_.checkpoint_bytes += ckpt_words * sizeof(Word);
  metrics_.faults_injected += applied;
  metrics_.corruptions_injected += corrupted;
  metrics_.corruptions_detected += detected;
  metrics_.words_retransmitted += retransmitted;
  metrics_.store_corruptions_injected += store_corrupted;
  metrics_.store_corruptions_detected += store_detected;
  metrics_.store_words_repaired += store_repaired;
  metrics_.checkpoint_fallbacks += fallbacks;
}

void Engine::begin_audit() {
  audit_staged_ = pending_.size();
  audit_bcast_staged_ = bcast_staging_.size();
  audit_dropped_ = 0;
  audit_bcast_dropped_ = 0;
  audit_duped_ = 0;
  audit_delayed_ = 0;
}

void Engine::finish_audit() const {
  // Point-to-point conservation: every message staged this round (plus
  // fault duplicates, minus fault drops and delays) surfaces in exactly
  // one inbox.  Dark players' inboxes are cleared only after this check,
  // so the equation holds over the wire.
  std::size_t delivered = 0;
  for (const PlayerId p : inbox_touched_) delivered += inbox_[p].size();
  const std::size_t expect =
      audit_staged_ + audit_duped_ - audit_dropped_ - audit_delayed_;
  if (delivered != expect) {
    throw AuditError(
        "audit: round " + std::to_string(metrics_.rounds) + " delivered " +
        std::to_string(delivered) + " point-to-point words, expected " +
        std::to_string(expect) + " (staged " + std::to_string(audit_staged_) +
        " + duped " + std::to_string(audit_duped_) + " - dropped " +
        std::to_string(audit_dropped_) + " - delayed " +
        std::to_string(audit_delayed_) + ")");
  }
  // Broadcast conservation: the shared store holds exactly the broadcasts
  // staged this round, net of fault drops.
  const std::size_t bcast_expect = audit_bcast_staged_ - audit_bcast_dropped_;
  if (bcast_inbox_.size() != bcast_expect) {
    throw AuditError("audit: round " + std::to_string(metrics_.rounds) +
                     " delivered " + std::to_string(bcast_inbox_.size()) +
                     " broadcasts, expected " + std::to_string(bcast_expect));
  }
}

void Engine::lenzen_batch_faults(std::size_t first_round, std::size_t batch) {
  if (fault_plan_ == nullptr) return;
  bool captured = false;
  for (std::size_t r = first_round; r < first_round + 2; ++r) {
    for (const fault::FaultEvent& ev : fault_plan_->events_at(r)) {
      if (ev.machine >= n_) continue;
      ++metrics_.faults_injected;
      if (ev.kind == fault::FaultKind::kDuplicateFlush) continue;
      if (ev.kind == fault::FaultKind::kCorruptPayload) {
        // The batch structure is its own retransmission unit: with
        // integrity on, the corrupted sender's batch load re-delivers;
        // without it the corruption is metrics-invisible (the scheme
        // forwards whatever it was handed).
        ++metrics_.corruptions_injected;
        if (integrity_) {
          ++metrics_.corruptions_detected;
          metrics_.words_retransmitted +=
              route_send_load_[batch][ev.machine];
        }
        continue;
      }
      if (ev.kind == fault::FaultKind::kCorruptStore) {
        // In a routing phase the batch itself is the durable store: with
        // integrity on, the rotted sender's batch words are re-served from
        // sender-side retention; without it the rot forwards silently.
        ++metrics_.store_corruptions_injected;
        if (integrity_) {
          ++metrics_.store_corruptions_detected;
          metrics_.store_words_repaired +=
              route_send_load_[batch][ev.machine];
        }
        continue;
      }
      if (ev.kind == fault::FaultKind::kCorruptCheckpoint) {
        // Rot the newest retained generation; the damage (if any survives
        // the next capture) surfaces at the next verified restore.
        if (registry_ != nullptr && registry_->has_checkpoint()) {
          registry_->corrupt_generation(0, r, ev.machine, 0);
        }
        continue;
      }
      if (ev.kind == fault::FaultKind::kCrash) {
        if (crashes_recovered_ >= fault_plan_->crash_budget) {
          throw fault::FaultBudgetError(
              "player " + std::to_string(ev.machine) +
              " crashed in round " + std::to_string(r) +
              " (lenzen batch): crash budget of " +
              std::to_string(fault_plan_->crash_budget) + " exhausted");
        }
        ++crashes_recovered_;
      }
      if (!captured) {
        // The sender-side retained batch is the checkpoint here; the batch
        // structure is Lenzen's own retransmission unit.
        std::size_t ckpt = route_batch_words_[batch];
        if (registry_ != nullptr) ckpt += registry_->capture(r);
        metrics_.checkpoint_bytes += ckpt * sizeof(Word);
        captured = true;
      }
      metrics_.rounds_replayed += 2;  // the whole batch re-runs
      metrics_.words_resent += route_send_load_[batch][ev.machine] +
                               route_recv_load_[batch][ev.machine];
    }
  }
}

}  // namespace mpcg::cclique
