// Zero-copy message plane: inbox-view lifetime/aliasing semantics, the
// interleaving contract between unicast pushes and shared payloads, the
// inbox() compatibility shim, accounting equivalence between shared and
// materialized delivery, and the streamed-outbox staging (run-length
// record streams) coupled against the legacy per-word push path. Every
// scenario runs on both exchange representations (dense box matrix and
// flat counting-sort), selected via Config::dense_machine_limit; the
// randomized staging coupling additionally runs the adaptive chooser.
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/engine.h"
#include "mpc/primitives.h"

namespace mpcg::mpc {
namespace {

Engine make_engine(bool flat, std::size_t machines = 4,
                   std::size_t words = 1 << 12) {
  Config cfg;
  cfg.num_machines = machines;
  cfg.words_per_machine = words;
  cfg.strict = true;
  // dense_machine_limit = 0 forces the flat representation even for tiny
  // clusters, so both delivery paths are testable at the same scale.
  cfg.dense_machine_limit = flat ? 0 : 512;
  return Engine(cfg);
}

std::vector<Word> view_words(const InboxView& view) {
  return std::vector<Word>(view.begin(), view.end());
}

class MessagePlane : public ::testing::TestWithParam<bool> {};

TEST_P(MessagePlane, BroadcastDeliversToAllDestinations) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{7, 8, 9};
  const std::vector<std::size_t> dests{0, 2, 3};
  e.push_broadcast(1, dests, payload);
  e.exchange();
  for (const std::size_t d : dests) {
    EXPECT_EQ(view_words(e.inbox_view(d)), payload) << "machine " << d;
  }
  EXPECT_TRUE(e.inbox_view(1).empty());
}

TEST_P(MessagePlane, SharedPayloadIsAliasedNotCopied) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{1, 2, 3, 4};
  const std::vector<std::size_t> dests{0, 2, 3};
  e.push_broadcast(1, dests, payload);
  e.exchange();
  // Every destination's payload segment points at the same stored words.
  const std::span<const Word> s0 = e.inbox_view(0).segment(0);
  for (const std::size_t d : dests) {
    const InboxView v = e.inbox_view(d);
    ASSERT_EQ(v.num_segments(), 1U);
    EXPECT_EQ(v.segment(0).data(), s0.data()) << "machine " << d;
  }
}

TEST_P(MessagePlane, InterleavingPreservesPerSenderPushOrder) {
  Engine e = make_engine(GetParam());
  const std::vector<std::size_t> to_zero{0};
  const std::vector<Word> pay_a{100, 101};
  const std::vector<Word> pay_b{200};
  // Sender 2, chronologically: unicast 1, broadcast A, unicast 2 3,
  // broadcast B, unicast 4.
  e.push(2, 0, Word{1});
  e.push_broadcast(2, to_zero, pay_a);
  e.push(2, 0, Word{2});
  e.push(2, 0, Word{3});
  e.push_broadcast(2, to_zero, pay_b);
  e.push(2, 0, Word{4});
  // Sender 1 contributes after sender 2 queued — inbox order is by sender
  // id, not arrival order.
  e.push(1, 0, Word{11});
  // Sender 3: shared only.
  e.push_broadcast(3, to_zero, std::span<const Word>(pay_b));
  e.exchange();
  const std::vector<Word> expected{11, 1, 100, 101, 2, 3, 200, 4, 200};
  EXPECT_EQ(view_words(e.inbox_view(0)), expected);
  EXPECT_EQ(e.inbox(0), expected);  // shim agrees word-for-word
}

TEST_P(MessagePlane, ShimMatchesViewOnMixedTraffic) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{42, 43, 44};
  for (std::size_t from = 0; from < 4; ++from) {
    for (std::size_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      e.push(from, to, Word{from * 10 + to});
    }
    const std::vector<std::size_t> dests{(from + 1) % 4, (from + 2) % 4};
    e.push_broadcast(from, dests, payload);
  }
  e.exchange();
  for (std::size_t machine = 0; machine < 4; ++machine) {
    const InboxView v = e.inbox_view(machine);
    EXPECT_EQ(view_words(v), e.inbox(machine)) << "machine " << machine;
    EXPECT_EQ(v.size(), e.inbox(machine).size());
  }
}

TEST_P(MessagePlane, StagedPayloadSharedAcrossSenders) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{5, 6};
  const PayloadId pid = e.stage_payload(payload);
  e.push_broadcast(0, std::vector<std::size_t>{1}, pid);
  e.push_broadcast(2, std::vector<std::size_t>{1, 3}, pid);
  e.exchange();
  EXPECT_EQ(view_words(e.inbox_view(1)), (std::vector<Word>{5, 6, 5, 6}));
  EXPECT_EQ(view_words(e.inbox_view(3)), payload);
  // Sent words are charged per sender per destination.
  EXPECT_EQ(e.metrics().total_words, 6U);
  EXPECT_EQ(e.metrics().max_sent_words, 4U);      // sender 2: two dests
  EXPECT_EQ(e.metrics().max_received_words, 4U);  // machine 1
}

TEST_P(MessagePlane, PayloadIdsDieAtExchange) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{1};
  const PayloadId pid = e.push_broadcast(0, std::vector<std::size_t>{1},
                                         std::span<const Word>(payload));
  e.exchange();
  EXPECT_THROW(e.push_broadcast(0, std::vector<std::size_t>{1}, pid),
               std::out_of_range);
}

TEST_P(MessagePlane, ViewsDescribeOnlyTheLatestExchange) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{1, 2};
  e.push_broadcast(0, std::vector<std::size_t>{1}, payload);
  e.exchange();
  EXPECT_EQ(e.inbox_view(1).size(), 2U);
  // Next round: different traffic entirely. The old view is invalidated
  // (its segments aliased per-round storage); a fresh view sees only the
  // new round.
  e.push(2, 1, Word{9});
  e.exchange();
  EXPECT_EQ(view_words(e.inbox_view(1)), (std::vector<Word>{9}));
  EXPECT_EQ(e.inbox(1), (std::vector<Word>{9}));
  // An empty round wipes inboxes too.
  e.exchange();
  EXPECT_TRUE(e.inbox_view(1).empty());
}

TEST_P(MessagePlane, ClearInboxesEmptiesViews) {
  Engine e = make_engine(GetParam());
  e.push(0, 1, Word{5});
  e.push_broadcast(2, std::vector<std::size_t>{1},
                   std::vector<Word>{6, 7});
  e.exchange();
  EXPECT_EQ(e.inbox_view(1).size(), 3U);
  e.clear_inboxes();
  EXPECT_TRUE(e.inbox_view(1).empty());
  EXPECT_TRUE(e.inbox(1).empty());
}

TEST_P(MessagePlane, EmptyPayloadIsANoOp) {
  Engine e = make_engine(GetParam());
  e.push_broadcast(0, std::vector<std::size_t>{1, 2},
                   std::span<const Word>{});
  e.push(0, 1, Word{3});
  e.exchange();
  EXPECT_EQ(view_words(e.inbox_view(1)), (std::vector<Word>{3}));
  EXPECT_TRUE(e.inbox_view(2).empty());
  EXPECT_EQ(e.metrics().total_words, 1U);
}

TEST_P(MessagePlane, GatherDeliversOneSegmentPerSender) {
  Engine e = make_engine(GetParam());
  e.push_gather(1, 0, std::vector<Word>{10, 11});
  e.push_gather(2, 0, std::vector<Word>{20});
  e.push_gather(3, 0, std::vector<Word>{30, 31, 32});
  e.exchange();
  const InboxView v = e.inbox_view(0);
  ASSERT_EQ(v.num_segments(), 3U);
  EXPECT_EQ(v.segment(0)[0], 10U);
  EXPECT_EQ(v.segment(1)[0], 20U);
  EXPECT_EQ(v.segment(2).size(), 3U);
  EXPECT_EQ(view_words(v),
            (std::vector<Word>{10, 11, 20, 30, 31, 32}));
}

TEST_P(MessagePlane, AccountingMatchesMaterializedDelivery) {
  // The same logical traffic, once via shared payloads and once via plain
  // span pushes, must produce identical metrics and inbox contents —
  // zero-copy changes simulation cost, not model cost.
  const std::vector<Word> payload{3, 1, 4, 1, 5};
  const auto drive = [&](Engine& e, bool shared) {
    for (std::size_t round = 0; round < 3; ++round) {
      if (shared) {
        e.push_broadcast(0, std::vector<std::size_t>{1, 2, 3}, payload);
        e.push_gather(2, 1, payload);
      } else {
        for (const std::size_t to : {1, 2, 3}) {
          e.push(0, to, payload);
        }
        e.push(2, 1, payload);
      }
      e.push(3, 1, Word{round});
      e.exchange();
    }
  };
  for (const bool flat : {false, true}) {
    Engine shared_e = make_engine(flat);
    Engine plain_e = make_engine(flat);
    drive(shared_e, true);
    drive(plain_e, false);
    const Metrics& a = shared_e.metrics();
    const Metrics& b = plain_e.metrics();
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.max_sent_words, b.max_sent_words);
    EXPECT_EQ(a.max_received_words, b.max_received_words);
    EXPECT_EQ(a.peak_storage_words, b.peak_storage_words);
    EXPECT_EQ(a.total_words, b.total_words);
    EXPECT_EQ(a.violations, b.violations);
    for (std::size_t machine = 0; machine < 4; ++machine) {
      EXPECT_EQ(view_words(shared_e.inbox_view(machine)),
                plain_e.inbox(machine))
          << "machine " << machine << " flat=" << flat;
    }
  }
}

TEST_P(MessagePlane, StrictBudgetCountsSharedWords) {
  Engine e = make_engine(GetParam(), 4, 8);
  std::vector<Word> payload(5);
  std::iota(payload.begin(), payload.end(), 0);
  // 2 destinations x 5 words = 10 sent > 8 budget.
  e.push_broadcast(0, std::vector<std::size_t>{1, 2}, payload);
  EXPECT_THROW(e.exchange(), CapacityError);
}

TEST_P(MessagePlane, ReusableAfterSharedCapacityError) {
  // A strict-mode overflow mid-exchange must not leave stale shared sends
  // whose payload ids dangle into a later round's payload store.
  Engine e = make_engine(GetParam(), 4, 4);
  std::vector<Word> payload(10);
  std::iota(payload.begin(), payload.end(), 0);
  e.push_broadcast(0, std::vector<std::size_t>{1, 2}, payload);
  EXPECT_THROW(e.exchange(), CapacityError);
  e.push(0, 1, Word{42});
  e.exchange();
  const auto words = view_words(e.inbox_view(1));
  ASSERT_FALSE(words.empty());
  EXPECT_EQ(words.back(), 42U);
}

TEST_P(MessagePlane, CollectivesAgreeWithLegacySemantics) {
  Engine e = make_engine(GetParam(), 6, 1 << 10);
  std::vector<Word> payload(37);
  std::iota(payload.begin(), payload.end(), 100);
  EXPECT_EQ(broadcast(e, 2, payload), payload);
  std::vector<std::vector<Word>> parts{{1}, {}, {2, 3}, {4}, {}, {5, 6, 7}};
  EXPECT_EQ(gather_to(e, 1, parts),
            (std::vector<Word>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(all_reduce_sum(e, {1, 2, 3, 4, 5, 6}), 21U);
  EXPECT_EQ(e.metrics().violations, 0U);
}

INSTANTIATE_TEST_SUITE_P(DenseAndFlat, MessagePlane, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "flat" : "dense";
                         });

TEST_P(MessagePlane, OutboxMatchesPerWordPush) {
  // The same logical traffic through a streamed outbox and through the
  // legacy per-word wrapper must produce identical inboxes and metrics.
  Engine streamed = make_engine(GetParam());
  Engine legacy = make_engine(GetParam());
  const std::vector<Word> run{7, 8, 9, 10};
  {
    Outbox ob = streamed.outbox(1);
    ob.reserve(run.size() + 2);
    ob.append(3, Word{1});
    ob.append_run(3, run);   // extends the open run to 3
    ob.append(0, Word{2});
    ob.append_run(2, {});    // empty run is a no-op
  }
  legacy.push(1, 3, Word{1});
  for (const Word w : run) legacy.push(1, 3, w);
  legacy.push(1, 0, Word{2});
  streamed.exchange();
  legacy.exchange();
  for (std::size_t machine = 0; machine < 4; ++machine) {
    EXPECT_EQ(view_words(streamed.inbox_view(machine)),
              legacy.inbox(machine))
        << "machine " << machine;
  }
  EXPECT_EQ(streamed.metrics().total_words, legacy.metrics().total_words);
  EXPECT_EQ(streamed.metrics().max_sent_words,
            legacy.metrics().max_sent_words);
  EXPECT_EQ(streamed.metrics().max_received_words,
            legacy.metrics().max_received_words);
}

TEST_P(MessagePlane, OutboxChecksMachineIds) {
  Engine e = make_engine(GetParam());
  EXPECT_THROW((void)e.outbox(4), std::out_of_range);
  Outbox ob = e.outbox(0);
  EXPECT_THROW(ob.append(4, Word{1}), std::out_of_range);
  EXPECT_THROW(ob.append_run(7, std::vector<Word>{1, 2}),
               std::out_of_range);
}

TEST_P(MessagePlane, OutboxInterleavesWithSharedSplices) {
  // Splice positions are snapshotted at the shared push, so a burst
  // appended before the broadcast lands before the payload and a burst
  // appended after lands after — same contract as per-word pushes.
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{100, 101};
  Outbox ob = e.outbox(2);
  ob.append_run(0, std::vector<Word>{1, 2});
  e.push_broadcast(2, std::vector<std::size_t>{0}, payload);
  ob.append(0, Word{3});
  e.push_gather(2, 0, std::vector<Word>{200});
  ob.append(0, Word{4});
  e.exchange();
  EXPECT_EQ(view_words(e.inbox_view(0)),
            (std::vector<Word>{1, 2, 100, 101, 3, 200, 4}));
  EXPECT_EQ(e.inbox(0), view_words(e.inbox_view(0)));
}

/// Randomized coupling of the streamed-outbox staging against the legacy
/// per-word push path, interleaved with broadcast/gather splices, across
/// the dense, flat, and adaptive configurations. Inbox views and every
/// Metrics field must agree word for word after every round.
class StagingCoupling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StagingCoupling, RandomizedRunStreamsMatchPerWordPush) {
  constexpr std::size_t kMachines = 6;
  Config cfg;
  cfg.num_machines = kMachines;
  cfg.words_per_machine = 1 << 14;
  cfg.strict = true;
  cfg.dense_machine_limit = GetParam();
  Engine streamed(cfg);
  Engine legacy(cfg);
  std::mt19937_64 rng(0xA11CE5);
  std::vector<Word> run_buf;
  std::vector<std::size_t> dests;
  for (int round = 0; round < 60; ++round) {
    const std::size_t bursts = rng() % 8;
    for (std::size_t b = 0; b < bursts; ++b) {
      const std::size_t from = rng() % kMachines;
      Outbox ob = streamed.outbox(from);
      const std::size_t ops = 1 + rng() % 5;
      for (std::size_t op = 0; op < ops; ++op) {
        const std::size_t to = rng() % kMachines;
        switch (rng() % 4) {
          case 0: {
            const Word w = rng();
            ob.append(to, w);
            legacy.push(from, to, w);
            break;
          }
          case 1: {
            run_buf.clear();
            const std::size_t len = 1 + rng() % 9;
            for (std::size_t i = 0; i < len; ++i) run_buf.push_back(rng());
            ob.append_run(to, run_buf);
            for (const Word w : run_buf) legacy.push(from, to, w);
            break;
          }
          case 2: {
            run_buf.clear();
            const std::size_t len = rng() % 4;
            for (std::size_t i = 0; i < len; ++i) run_buf.push_back(rng());
            dests.clear();
            for (std::size_t d = 0; d < kMachines; ++d) {
              if (rng() % 3 == 0) dests.push_back(d);
            }
            streamed.push_broadcast(from, dests, run_buf);
            legacy.push_broadcast(from, dests, run_buf);
            break;
          }
          default: {
            run_buf.clear();
            const std::size_t len = 1 + rng() % 3;
            for (std::size_t i = 0; i < len; ++i) run_buf.push_back(rng());
            streamed.push_gather(from, to, run_buf);
            legacy.push_gather(from, to, run_buf);
            break;
          }
        }
      }
    }
    streamed.exchange();
    legacy.exchange();
    const Metrics& a = streamed.metrics();
    const Metrics& b = legacy.metrics();
    ASSERT_EQ(a.rounds, b.rounds) << "round " << round;
    ASSERT_EQ(a.max_sent_words, b.max_sent_words) << "round " << round;
    ASSERT_EQ(a.max_received_words, b.max_received_words)
        << "round " << round;
    ASSERT_EQ(a.peak_storage_words, b.peak_storage_words)
        << "round " << round;
    ASSERT_EQ(a.total_words, b.total_words) << "round " << round;
    ASSERT_EQ(a.violations, b.violations) << "round " << round;
    for (std::size_t machine = 0; machine < kMachines; ++machine) {
      const InboxView view = streamed.inbox_view(machine);
      ASSERT_EQ(view_words(view), legacy.inbox(machine))
          << "round " << round << " machine " << machine;
      ASSERT_EQ(view.size(), legacy.inbox(machine).size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DenseFlatAdaptive, StagingCoupling,
                         ::testing::Values(std::size_t{512}, std::size_t{0},
                                           Config::kAdaptive),
                         [](const auto& info) {
                           if (info.param == Config::kAdaptive) {
                             return std::string("adaptive");
                           }
                           return info.param == 0 ? std::string("flat")
                                                  : std::string("dense");
                         });

TEST(MessagePlaneConfig, AdaptiveFlipNeedsTwoAgreeingFlushes) {
  // Two-flush hysteresis: one odd-shaped round must not flip the staging
  // representation; two consecutive agreeing rounds must.
  Config cfg;
  cfg.num_machines = 4;
  cfg.words_per_machine = 1 << 12;
  cfg.dense_machine_limit = Config::kAdaptive;
  Engine e(cfg);
  const auto scattered = [&e] {
    // words == runs == 4: votes flat (words < 8 * runs).
    for (std::size_t from = 0; from < 4; ++from) {
      e.push(from, (from + 1) % 4, Word{from});
    }
    e.exchange();
  };
  const auto bulky = [&e] {
    // One 64-word run: votes dense (64 >= 8 runs, 128 >= 16).
    const std::vector<Word> run(64, Word{7});
    e.outbox(0).append_run(1, run);
    e.exchange();
  };
  ASSERT_TRUE(e.dense_staging_active());  // 4 <= 512: starts dense
  // The start is a guess, not history: the first real flush may override
  // it without waiting out the hysteresis.
  scattered();
  EXPECT_FALSE(e.dense_staging_active());
  bulky();
  EXPECT_FALSE(e.dense_staging_active());  // one dense vote: no flip
  scattered();
  EXPECT_FALSE(e.dense_staging_active());  // streak reset
  bulky();
  bulky();
  EXPECT_TRUE(e.dense_staging_active());  // two agreeing votes: flip
  scattered();
  EXPECT_TRUE(e.dense_staging_active());
  scattered();
  EXPECT_FALSE(e.dense_staging_active());  // and back
}

TEST(MessagePlaneConfig, DenseMachineLimitSelectsRepresentation) {
  // Observable difference is only in performance, but both representations
  // must satisfy the same contract right at the boundary.
  for (const std::size_t limit : {0UL, 2UL, 3UL, 512UL}) {
    Config cfg;
    cfg.num_machines = 3;
    cfg.words_per_machine = 64;
    cfg.dense_machine_limit = limit;
    Engine e(cfg);
    e.push(2, 0, Word{22});
    e.push(1, 0, Word{11});
    e.push_broadcast(1, std::vector<std::size_t>{0},
                     std::vector<Word>{99});
    e.exchange();
    EXPECT_EQ(e.inbox(0), (std::vector<Word>{11, 99, 22})) << limit;
  }
}

}  // namespace
}  // namespace mpcg::mpc
