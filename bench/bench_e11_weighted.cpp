// E11 (Corollary 1.4): (2+eps)-approximate maximum weighted matching.
//
// Table rows: (a) small graphs where the optimum is brute-forceable —
// `worst_factor` = max over instances of OPT/w(M), claimed <= ~2(1+eps)
// with the cutoff slack; (b) large graphs per family against the greedy
// 1/2-approximation (`vs_greedy` ~ 1 means parity with the classic
// sequential heuristic while running in O(log log n * 1/eps) rounds).
#include "baselines/brute_force.h"
#include "baselines/greedy_matching.h"
#include "bench_util.h"
#include "core/weighted_matching.h"
#include "graph/validation.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

constexpr double kEps = 0.2;

void E11_SmallVsExact(benchmark::State& state) {
  Rng rng(41);
  double worst = 1.0;
  int instances = 0;
  for (auto _ : state) {
    worst = 1.0;
    instances = 0;
    for (int trial = 0; trial < 200 && instances < 60; ++trial) {
      const Graph g = erdos_renyi_gnp(10, 0.4, rng);
      if (g.num_edges() == 0 || g.num_edges() > 24) continue;
      ++instances;
      const auto w = uniform_weights(g, 0.5, 4.0, rng);
      WeightedMatchingOptions opt;
      opt.eps = kEps;
      opt.seed = static_cast<std::uint64_t>(trial);
      const auto r = weighted_matching(g, w, opt);
      const double best = brute_force_max_weight_matching(g, w);
      if (r.weight > 0) worst = std::max(worst, best / r.weight);
    }
    benchmark::DoNotOptimize(worst);
  }
  emit_json_line("E11_SmallVsExact", 10, 0, 0, 0.0, 0);
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["worst_factor"] = worst;
  state.counters["claimed_factor"] = 2.0 * (1.0 + kEps) / (1.0 - kEps);
}
BENCHMARK(E11_SmallVsExact)->Unit(benchmark::kMillisecond)->Iterations(1);

void E11_LargeVsGreedy(benchmark::State& state, const char* family) {
  const Graph g = graph_family(family, 1 << 12, 43);
  Rng rng(43);
  const auto w = exponential_weights(g, 2.0, rng);
  WeightedMatchingOptions opt;
  opt.eps = kEps;
  opt.seed = 43;
  WeightedMatchingResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = weighted_matching(g, w, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.weight);
  }
  emit_json_line(std::string("E11_LargeVsGreedy/") + family,
                 g.num_vertices(), g.num_edges(), r.total_rounds, wall_ms, 0);
  const double greedy_w = matching_weight(greedy_weighted_matching(g, w), w);
  state.counters["weight"] = r.weight;
  state.counters["greedy_weight"] = greedy_w;
  state.counters["vs_greedy"] = greedy_w > 0 ? r.weight / greedy_w : 0.0;
  state.counters["classes"] = static_cast<double>(r.num_classes);
  state.counters["rounds"] = static_cast<double>(r.total_rounds);
  state.counters["dropped_edges"] = static_cast<double>(r.dropped_edges);
}

void register_all() {
  for (const char* family : {"gnp_dense", "power_law", "bipartite", "rmat"}) {
    benchmark::RegisterBenchmark(
        (std::string("E11_LargeVsGreedy/") + family).c_str(),
        [family](benchmark::State& s) { E11_LargeVsGreedy(s, family); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
