// ResidualGraph invariants: after arbitrary kill sequences, the maintained
// degrees, alive-edge count, max degree, and compacted adjacency must match
// a brute-force recount over the underlying graph.
#include <algorithm>
#include <gtest/gtest.h>

#include "graph/residual.h"
#include "test_util.h"
#include "util/rng.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

struct BruteForce {
  std::vector<char> alive;

  explicit BruteForce(std::size_t n) : alive(n, 1) {}

  void kill(VertexId v) { alive[v] = 0; }

  [[nodiscard]] std::size_t degree(const Graph& g, VertexId v) const {
    if (!alive[v]) return 0;
    std::size_t d = 0;
    for (const Arc& a : g.arcs(v)) d += alive[a.to] ? 1 : 0;
    return d;
  }

  [[nodiscard]] std::uint64_t alive_edges(const Graph& g) const {
    std::uint64_t count = 0;
    for (const Edge& e : g.edges()) {
      if (alive[e.u] && alive[e.v]) ++count;
    }
    return count;
  }

  [[nodiscard]] std::size_t max_degree(const Graph& g) const {
    std::size_t best = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (alive[v]) best = std::max(best, degree(g, v));
    }
    return best;
  }
};

void check_against_brute_force(const Graph& g, ResidualGraph& rg,
                               const BruteForce& bf) {
  ASSERT_EQ(rg.alive_edge_count(), bf.alive_edges(g));
  ASSERT_EQ(rg.max_alive_degree(), bf.max_degree(g));
  std::size_t alive_count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(rg.alive(v), bf.alive[v] != 0) << "vertex " << v;
    if (bf.alive[v]) {
      ++alive_count;
      ASSERT_EQ(rg.residual_degree(v), bf.degree(g, v)) << "vertex " << v;
      // alive_arcs must be the alive neighbors in ascending order.
      std::vector<VertexId> expected;
      for (const Arc& a : g.arcs(v)) {
        if (bf.alive[a.to]) expected.push_back(a.to);
      }
      std::vector<VertexId> got;
      for (const Arc& a : rg.alive_arcs(v)) got.push_back(a.to);
      ASSERT_EQ(got, expected) << "vertex " << v;
    }
  }
  ASSERT_EQ(rg.alive_count(), alive_count);
  // alive_vertices must be exactly the alive ids, ascending.
  std::vector<VertexId> expected_vertices;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (bf.alive[v]) expected_vertices.push_back(v);
  }
  const auto span = rg.alive_vertices();
  const std::vector<VertexId> got_vertices(span.begin(), span.end());
  ASSERT_EQ(got_vertices, expected_vertices);
}

TEST(ResidualGraph, FreshGraphMatchesGraph) {
  for (const char* family : kFamilies) {
    const Graph g = make_family(family, 300, 17);
    ResidualGraph rg(g);
    BruteForce bf(g.num_vertices());
    check_against_brute_force(g, rg, bf);
    EXPECT_EQ(rg.alive_edge_count(), g.num_edges());
    EXPECT_EQ(rg.max_alive_degree(), g.max_degree());
  }
}

TEST(ResidualGraph, RandomKillSequences) {
  for (const char* family : {"gnp_sparse", "gnp_dense", "power_law", "star"}) {
    const Graph g = make_family(family, 200, 23);
    ResidualGraph rg(g);
    BruteForce bf(g.num_vertices());
    Rng rng(mix64(99, g.num_edges()));
    std::vector<VertexId> order(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng() % i]);
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      rg.kill(order[i]);
      bf.kill(order[i]);
      // Full cross-check every few kills (quadratic otherwise), and always
      // near the end where histogram/max-pointer edge cases live.
      if (i % 16 == 0 || i + 8 >= order.size()) {
        check_against_brute_force(g, rg, bf);
      }
    }
    EXPECT_EQ(rg.alive_count(), 0U);
    EXPECT_EQ(rg.alive_edge_count(), 0U);
    EXPECT_EQ(rg.max_alive_degree(), 0U);
  }
}

TEST(ResidualGraph, KillBatchMatchesBruteForce) {
  // Exercises both kill_batch strategies: a small batch (per-kill path)
  // and a mass extinction (survivor-side rebuild).
  for (const std::size_t batch_size : {5UL, 150UL}) {
    const Graph g = make_family("gnp_dense", 200, 31);
    ResidualGraph rg(g);
    BruteForce bf(g.num_vertices());
    Rng rng(77);
    std::vector<VertexId> batch;
    while (batch.size() < batch_size) {
      const auto v = static_cast<VertexId>(rng() % g.num_vertices());
      batch.push_back(v);  // duplicates allowed: kill_batch must cope
    }
    rg.kill_batch(batch);
    for (const VertexId v : batch) bf.kill(v);
    check_against_brute_force(g, rg, bf);
  }
}

TEST(ResidualGraph, SubsetConstructorMatchesKills) {
  const Graph g = make_family("power_law", 150, 7);
  std::vector<char> alive(g.num_vertices(), 1);
  ResidualGraph by_kill(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    alive[v] = 0;
    by_kill.kill(v);
  }
  ResidualGraph by_subset(g, alive);
  EXPECT_EQ(by_subset.alive_count(), by_kill.alive_count());
  EXPECT_EQ(by_subset.alive_edge_count(), by_kill.alive_edge_count());
  EXPECT_EQ(by_subset.max_alive_degree(), by_kill.max_alive_degree());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(by_subset.alive(v), by_kill.alive(v));
    EXPECT_EQ(by_subset.residual_degree(v), by_kill.residual_degree(v));
  }
}

TEST(ResidualGraph, CopySnapshotsAreIndependent) {
  const Graph g = make_family("gnp_dense", 120, 9);
  ResidualGraph rg(g);
  rg.kill(3);
  rg.kill(40);
  ResidualGraph snapshot(rg);
  BruteForce bf(g.num_vertices());
  bf.kill(3);
  bf.kill(40);
  check_against_brute_force(g, snapshot, bf);
  // Mutating the copy must not affect the original.
  snapshot.kill(7);
  EXPECT_TRUE(rg.alive(7));
  check_against_brute_force(g, rg, bf);
}

TEST(ResidualGraph, UpperArcsAreCanonicalSuffix) {
  const Graph g = make_family("gnp_dense", 100, 5);
  ResidualGraph rg(g);
  for (VertexId v = 0; v < 30; ++v) rg.kill(v);
  for (VertexId v = 30; v < g.num_vertices(); ++v) {
    std::vector<VertexId> expected;
    for (const Arc& a : rg.alive_arcs(v)) {
      if (a.to > v) expected.push_back(a.to);
    }
    std::vector<VertexId> got;
    for (const Arc& a : rg.alive_upper_arcs(v)) got.push_back(a.to);
    EXPECT_EQ(got, expected) << "vertex " << v;
  }
}

TEST(ResidualGraph, KillIsIdempotent) {
  const Graph g = make_family("gnp_dense", 100, 3);
  ResidualGraph rg(g);
  rg.kill(5);
  const auto edges_after = rg.alive_edge_count();
  const auto count_after = rg.alive_count();
  rg.kill(5);  // no-op
  EXPECT_EQ(rg.alive_edge_count(), edges_after);
  EXPECT_EQ(rg.alive_count(), count_after);
}

TEST(ResidualGraph, BatchKillChargesSharedEdgesOnce) {
  // Triangle: killing two adjacent vertices must remove all 3 edges, not 4.
  const Graph g = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  ResidualGraph rg(g);
  rg.kill(0);
  EXPECT_EQ(rg.alive_edge_count(), 1U);  // {1,2} left
  rg.kill(1);
  EXPECT_EQ(rg.alive_edge_count(), 0U);
  EXPECT_EQ(rg.residual_degree(2), 0U);
  EXPECT_TRUE(rg.alive(2));
}

TEST(ResidualGraph, EmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  ResidualGraph rg(g);
  EXPECT_EQ(rg.alive_count(), 0U);
  EXPECT_EQ(rg.alive_edge_count(), 0U);
  EXPECT_EQ(rg.max_alive_degree(), 0U);
  EXPECT_TRUE(rg.alive_vertices().empty());
}

TEST(CsrScratch, BuildsAdjacencyAndClears) {
  CsrScratch csr(6);
  const std::vector<std::pair<VertexId, VertexId>> pairs{
      {0, 1}, {0, 2}, {3, 4}};
  csr.build(pairs);
  auto sorted = [](std::span<const VertexId> s) {
    std::vector<VertexId> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(csr.neighbors(0)), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(sorted(csr.neighbors(1)), (std::vector<VertexId>{0}));
  EXPECT_EQ(sorted(csr.neighbors(4)), (std::vector<VertexId>{3}));
  EXPECT_TRUE(csr.neighbors(5).empty());
  EXPECT_EQ(csr.touched().size(), 5U);

  csr.clear();
  EXPECT_TRUE(csr.touched().empty());
  EXPECT_TRUE(csr.neighbors(0).empty());

  // Reuse after clear.
  const std::vector<std::pair<VertexId, VertexId>> pairs2{{5, 0}};
  csr.build(pairs2);
  EXPECT_EQ(sorted(csr.neighbors(5)), (std::vector<VertexId>{0}));
  EXPECT_TRUE(csr.neighbors(1).empty());
}

}  // namespace
}  // namespace mpcg
