// Scenario: content moderation on a social network.
//
// The interaction graph is heavy-tailed (Chung-Lu power law, like real
// follower graphs). Two operational questions the paper's primitives
// answer at MapReduce scale:
//   * Vertex cover  -> the smallest set of accounts to put under review so
//     that every risky interaction has a reviewed endpoint (Theorem 1.2:
//     2+eps of optimal, O(log log n) rounds).
//   * MIS           -> a maximal set of pairwise non-interacting seed
//     accounts for unbiased A/B panels (Theorem 1.1).
#include <cstdio>

#include "baselines/greedy_matching.h"
#include "core/integral_matching.h"
#include "core/mis_mpc.h"
#include "gen/generators.h"
#include "graph/validation.h"

int main() {
  using namespace mpcg;

  Rng rng(7);
  const std::size_t n = 20000;
  const Graph g = chung_lu_power_law(n, 2.3, 10.0, rng);
  std::printf("interaction graph: n=%zu m=%zu max_degree=%zu "
              "(heavy-tailed)\n",
              g.num_vertices(), g.num_edges(), g.max_degree());

  // Review set: (2+eps)-approximate minimum vertex cover.
  IntegralMatchingOptions opt;
  opt.eps = 0.1;
  opt.seed = 99;
  const auto result = integral_matching(g, opt);
  std::printf("\nreview set (vertex cover): %zu accounts, covers all "
              "interactions: %s\n",
              result.cover.size(),
              is_vertex_cover(g, result.cover) ? "yes" : "NO");

  // Compare against the classic 2-approximation (endpoints of a maximal
  // matching) that a single-machine pass would produce.
  const auto classic =
      vertex_cover_from_matching(g, greedy_maximal_matching(g));
  std::printf("classic 2-approx (matching endpoints): %zu accounts\n",
              classic.size());
  std::printf("matching lower bound on any cover: %zu\n",
              result.matching.size());

  // Panel seeds: maximal independent set.
  MisMpcOptions mis_opt;
  mis_opt.seed = 3;
  const auto mis = mis_mpc(g, mis_opt);
  std::printf("\nA/B panel seeds (MIS): %zu accounts in %zu engine rounds "
              "(%zu rank phases)\n",
              mis.mis.size(), mis.metrics.rounds, mis.rank_phases);
  std::printf("no two seeds interact: %s\n",
              is_independent_set(g, mis.mis) ? "yes" : "NO");
  return 0;
}
