// Incrementally maintained residual (alive-induced) view of a Graph.
//
// The paper's algorithms repeatedly shrink the graph: MIS removes chosen
// vertices and their neighborhoods, vertex-cover removes heavy vertices.
// The per-phase work is supposed to scale with the *residual* graph
// (Lemma 3.1: each rank window induces only O(n) edges), so the driver
// must never rescan the full edge list to answer "how many alive edges are
// left" or "what is the residual maximum degree".
//
// ResidualGraph wraps an immutable Graph with:
//   - an alive flag and residual degree per vertex,
//   - a live alive-edge count (O(1) query),
//   - a residual-degree histogram giving amortized-O(1) max_alive_degree
//     (degrees only decrease under kills, so the max pointer only moves
//     down),
//   - lazily compacted adjacency and vertex lists, so iterating alive
//     arcs/vertices costs O(residual size), with each dead entry paid for
//     at most once, ever.
//
// Construction is O(n): adjacency is served directly from the wrapped
// graph's storage until a vertex loses its first neighbor, and only then
// is that vertex's segment materialized (alive entries copied into the
// residual's own buffer, which is allocated address-space-only and touched
// per segment). A residual graph over a huge input whose kills touch a
// small region never copies the rest.
//
// Compaction is *stable*: alive_arcs(v) preserves the ascending neighbor
// order of graph().arcs(v) and alive_vertices() preserves ascending vertex
// id. Drivers that sum floating-point contributions in arc order therefore
// produce bit-identical results before and after porting to this class
// (see DESIGN.md, "Residual graph subsystem").
#ifndef MPCG_GRAPH_RESIDUAL_H
#define MPCG_GRAPH_RESIDUAL_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

class ResidualGraph {
 public:
  explicit ResidualGraph(const Graph& g);

  /// Starts from the subgraph induced by `alive` (vertices beyond the
  /// vector's size default to alive). Costs O(n + sum of full degrees of
  /// alive vertices) — the dead vertices' adjacencies are never copied.
  ResidualGraph(const Graph& g, const std::vector<char>& alive);

  /// Copying snapshots the current residual state (only materialized
  /// segments of alive vertices are copied, no graph rescans) — how
  /// drivers hand a consistent view to sub-algorithms.
  ResidualGraph(const ResidualGraph& other);
  ResidualGraph& operator=(const ResidualGraph& other);
  ResidualGraph(ResidualGraph&&) = default;
  ResidualGraph& operator=(ResidualGraph&&) = default;

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  [[nodiscard]] bool alive(VertexId v) const noexcept {
    return alive_[v] != 0;
  }
  /// Alive flags indexed by vertex id (for snapshotting into drivers that
  /// want their own copy, e.g. LocalMisState).
  [[nodiscard]] const std::vector<char>& alive_flags() const noexcept {
    return alive_;
  }

  [[nodiscard]] std::size_t alive_count() const noexcept {
    return alive_count_;
  }

  /// Number of edges with both endpoints alive. O(1).
  [[nodiscard]] std::uint64_t alive_edge_count() const noexcept {
    return alive_edges_;
  }

  /// Number of alive neighbors of v (0 once v is dead).
  [[nodiscard]] std::size_t residual_degree(VertexId v) const noexcept {
    return degree_[v];
  }

  /// Maximum residual degree over alive vertices; 0 when none are alive.
  /// Amortized O(1): the histogram max pointer only ever moves down.
  [[nodiscard]] std::size_t max_alive_degree() noexcept;

  /// Alive neighbors of v, ascending by neighbor id (the stable-compacted
  /// prefix of graph().arcs(v)). O(1) when no neighbor died since the last
  /// reconciliation (kills mark their surviving neighbors dirty); otherwise
  /// one stable compaction pays for the dead entries. Requires v alive (a
  /// dead vertex's view falls back to a filtering scan). The span is valid
  /// until the next alive_arcs call for the same vertex; kills during
  /// iteration do not invalidate it but may leave just-killed neighbors in
  /// view.
  [[nodiscard]] std::span<const Arc> alive_arcs(VertexId v) {
    if (live_end_[v] == kLazy) {
      const auto full = g_->arcs(v);
      if (degree_[v] == full.size()) return full;  // nothing ever died
      return materialize_segment(v, full);
    }
    if (!dirty_[v] && alive_[v]) {
      return {arcs_.get() + offsets_[v], arcs_.get() + live_end_[v]};
    }
    return compact_segment(v);
  }

  /// The alive neighbors of v with id greater than v — the suffix of
  /// alive_arcs(v) (adjacency is sorted by neighbor id), found by binary
  /// search. The canonical-edge iteration `for v: for a in
  /// alive_upper_arcs(v)` visits every alive-alive edge exactly once, in
  /// edge-id (lexicographic) order, reading only half the arc entries.
  [[nodiscard]] std::span<const Arc> alive_upper_arcs(VertexId v) {
    const auto arcs = alive_arcs(v);
    std::size_t lo = 0, hi = arcs.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (arcs[mid].to > v) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return arcs.subspan(lo);
  }

  /// Alive vertices in ascending id order. The span is valid until the
  /// next alive_vertices() call; kills during iteration leave stale
  /// entries that the caller must filter with alive().
  [[nodiscard]] std::span<const VertexId> alive_vertices();

  /// Removes v from the residual graph: decrements each alive neighbor's
  /// residual degree (once, ever) and the alive-edge count. O(residual
  /// degree of v) plus amortized compaction. No-op if v is already dead.
  void kill(VertexId v);

  /// Removes a batch of vertices. Small batches kill one by one; when the
  /// batch rivals the surviving population (a rank phase wiping out most
  /// of a dense residual), state is instead rebuilt from the survivor side
  /// in O(survivors + their arcs) — cheaper than paying per dead edge.
  void kill_batch(std::span<const VertexId> dead);

 private:
  /// live_end_ value marking a vertex whose segment is still served from
  /// the wrapped graph's storage (never filtered).
  static constexpr std::size_t kLazy = static_cast<std::size_t>(-1);

  void hist_remove(std::size_t degree) noexcept { --hist_[degree]; }
  void hist_add(std::size_t degree) noexcept { ++hist_[degree]; }

  /// Ensures arcs_ is allocated (address space only; pages are touched as
  /// segments materialize).
  void ensure_arc_buffer();

  /// Slow paths of alive_arcs: first filtering of a lazy vertex, and
  /// re-compaction of a dirty segment.
  std::span<const Arc> materialize_segment(VertexId v,
                                           std::span<const Arc> full);
  std::span<const Arc> compact_segment(VertexId v);

  const Graph* g_;
  std::vector<char> alive_;
  /// dirty_[v]: an alive neighbor of v died since v's segment was last
  /// reconciled (only meaningful for materialized, alive vertices).
  std::vector<char> dirty_;
  std::vector<std::uint32_t> degree_;
  std::uint64_t alive_edges_ = 0;
  std::size_t alive_count_ = 0;

  // Mutable adjacency segments, materialized per vertex on first
  // filtering: arcs of v live in arcs_[offsets_[v], live_end_[v]) once
  // live_end_[v] != kLazy; until then they are read from graph().arcs(v)
  // (valid exactly while residual_degree(v) equals the full degree).
  std::unique_ptr<Arc[]> arcs_;
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> live_end_;

  // Lazily compacted alive-vertex list (ascending id).
  std::vector<VertexId> vertex_list_;
  std::size_t vertex_list_end_ = 0;

  // hist_[d] = number of alive vertices with residual degree d.
  std::vector<std::uint32_t> hist_;
  std::size_t max_degree_bound_ = 0;
};

/// Reusable two-pass CSR scratch for a small adjacency given as encoded
/// (u, v) vertex pairs — the leader-side window subgraphs of the MIS
/// algorithm (Section 3.2). Building is O(pairs + touched vertices) and
/// clear() is O(touched vertices); the n-sized index arrays are allocated
/// once and never rescanned, so repeated build/clear cycles cost only the
/// data actually present.
class CsrScratch {
 public:
  explicit CsrScratch(std::size_t num_vertices)
      : degree_(num_vertices, 0), start_(num_vertices, 0),
        cursor_(num_vertices, 0) {}

  /// Populates the adjacency from undirected pairs; each pair (u, v)
  /// contributes v to u's neighbor list and u to v's. Requires a
  /// preceding clear() (or a fresh object).
  void build(std::span<const std::pair<VertexId, VertexId>> pairs);

  /// Neighbors of v from the last build (empty if untouched).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    if (degree_[v] == 0) return {};
    return {flat_.data() + start_[v], flat_.data() + start_[v] + degree_[v]};
  }

  /// Degree of v in the last build (0 if untouched) — one array read,
  /// for consumers that size per-vertex state without walking neighbors.
  [[nodiscard]] std::uint32_t degree(VertexId v) const noexcept {
    return degree_[v];
  }

  /// Vertices with at least one neighbor in the last build.
  [[nodiscard]] const std::vector<VertexId>& touched() const noexcept {
    return touched_;
  }

  void clear();

 private:
  std::vector<std::uint32_t> degree_;
  std::vector<std::uint32_t> start_;
  std::vector<std::uint32_t> cursor_;
  std::vector<VertexId> flat_;
  std::vector<VertexId> touched_;
};

}  // namespace mpcg

#endif  // MPCG_GRAPH_RESIDUAL_H
