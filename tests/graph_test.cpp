#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/validation.h"
#include "util/rng.h"

namespace mpcg {
namespace {

Graph triangle_plus_pendant() {
  // 0-1-2 triangle, 3 hanging off 0.
  return make_graph(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

TEST(GraphBuilder, DedupesParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1U);
}

TEST(GraphBuilder, ThrowsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
}

TEST(Graph, EdgesAreCanonical) {
  const Graph g = triangle_plus_pendant();
  for (const Edge& e : g.edges()) EXPECT_LT(e.u, e.v);
}

TEST(Graph, ArcsSortedAndConsistent) {
  const Graph g = triangle_plus_pendant();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto arcs = g.arcs(v);
    for (std::size_t i = 1; i < arcs.size(); ++i) {
      EXPECT_LT(arcs[i - 1].to, arcs[i].to);
    }
    for (const Arc& a : arcs) {
      const Edge e = g.edge(a.edge);
      EXPECT_TRUE((e.u == v && e.v == a.to) || (e.v == v && e.u == a.to));
    }
  }
}

TEST(Graph, DegreesAndMaxDegree) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.degree(0), 3U);
  EXPECT_EQ(g.degree(3), 1U);
  EXPECT_EQ(g.max_degree(), 3U);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, FindEdge) {
  const Graph g = triangle_plus_pendant();
  EXPECT_NE(g.find_edge(0, 3), Graph::kNoEdge);
  EXPECT_EQ(g.find_edge(0, 3), g.find_edge(3, 0));
  EXPECT_EQ(g.find_edge(1, 3), Graph::kNoEdge);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Graph, ArcEdgeIdsRoundTrip) {
  Rng rng(4);
  const Graph g = erdos_renyi_gnp(200, 0.05, rng);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    EXPECT_EQ(g.find_edge(ed.u, ed.v), e);
  }
}

TEST(Graph, EmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_vertices(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_EQ(g.max_degree(), 0U);
}

TEST(Graph, StorageWordsPositive) {
  const Graph g = triangle_plus_pendant();
  EXPECT_GE(g.storage_words(), g.num_edges() * 3);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph g = triangle_plus_pendant();
  const auto sub = induced_subgraph(g, {0, 1, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 3U);
  EXPECT_EQ(sub.graph.num_edges(), 2U);  // {0,1} and {0,3}
  // Edge mapping points back to real parent edges.
  for (EdgeId le = 0; le < sub.graph.num_edges(); ++le) {
    const Edge ed = sub.graph.edge(le);
    const EdgeId pe = sub.to_parent_edge[le];
    const Edge ped = g.edge(pe);
    const VertexId pu = sub.to_parent_vertex[ed.u];
    const VertexId pv = sub.to_parent_vertex[ed.v];
    EXPECT_TRUE((ped.u == pu && ped.v == pv) || (ped.u == pv && ped.v == pu));
  }
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const Graph g = triangle_plus_pendant();
  EXPECT_THROW(induced_subgraph(g, {0, 0}), std::invalid_argument);
}

TEST(InducedSubgraph, CountMatchesBuild) {
  Rng rng(8);
  const Graph g = erdos_renyi_gnp(100, 0.1, rng);
  std::vector<VertexId> half;
  for (VertexId v = 0; v < 50; ++v) half.push_back(v);
  EXPECT_EQ(count_induced_edges(g, half),
            induced_subgraph(g, half).graph.num_edges());
}

TEST(InducedSubgraph, EmptySelection) {
  const Graph g = triangle_plus_pendant();
  const auto sub = induced_subgraph(g, {});
  EXPECT_EQ(sub.graph.num_vertices(), 0U);
  EXPECT_EQ(sub.graph.num_edges(), 0U);
}

TEST(Validation, IndependentSet) {
  const Graph g = triangle_plus_pendant();
  EXPECT_TRUE(is_independent_set(g, {1, 3}));
  EXPECT_FALSE(is_independent_set(g, {0, 1}));
  EXPECT_FALSE(is_independent_set(g, {1, 1}));  // duplicate
  EXPECT_TRUE(is_independent_set(g, {}));
}

TEST(Validation, MaximalIndependentSet) {
  const Graph g = triangle_plus_pendant();
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 3}));
  EXPECT_FALSE(is_maximal_independent_set(g, {1}));   // 3 addable
  EXPECT_FALSE(is_maximal_independent_set(g, {0, 1}));  // not independent
}

TEST(Validation, Matching) {
  const Graph g = triangle_plus_pendant();
  const EdgeId e12 = g.find_edge(1, 2);
  const EdgeId e03 = g.find_edge(0, 3);
  const EdgeId e01 = g.find_edge(0, 1);
  EXPECT_TRUE(is_matching(g, {e12, e03}));
  EXPECT_FALSE(is_matching(g, {e01, e03}));        // share vertex 0
  EXPECT_FALSE(is_matching(g, {e12, e12}));        // duplicate edge
  EXPECT_TRUE(is_matching(g, {}));
}

TEST(Validation, MaximalMatching) {
  const Graph g = triangle_plus_pendant();
  const EdgeId e12 = g.find_edge(1, 2);
  const EdgeId e03 = g.find_edge(0, 3);
  EXPECT_TRUE(is_maximal_matching(g, {e12, e03}));
  EXPECT_FALSE(is_maximal_matching(g, {e12}));  // {0,3} addable
}

TEST(Validation, VertexCover) {
  const Graph g = triangle_plus_pendant();
  EXPECT_TRUE(is_vertex_cover(g, {0, 1, 2}));
  EXPECT_TRUE(is_vertex_cover(g, {0, 1, 2, 3}));
  EXPECT_FALSE(is_vertex_cover(g, {1, 2}));  // misses {0,3}
  EXPECT_FALSE(is_vertex_cover(g, {0}));
}

TEST(Validation, FractionalMatching) {
  const Graph g = triangle_plus_pendant();
  std::vector<double> x(g.num_edges(), 0.0);
  EXPECT_TRUE(is_fractional_matching(g, x));
  for (auto& xe : x) xe = 1.0 / 3.0;
  EXPECT_TRUE(is_fractional_matching(g, x));  // deg<=3, load<=1
  x[g.find_edge(0, 1)] = 1.0;
  EXPECT_FALSE(is_fractional_matching(g, x));  // vertex 0 overloaded
  x.assign(g.num_edges(), 0.0);
  x[0] = -0.5;
  EXPECT_FALSE(is_fractional_matching(g, x));  // negative
  EXPECT_FALSE(is_fractional_matching(g, {0.0}));  // wrong size
}

TEST(Validation, LoadsAndWeight) {
  const Graph g = triangle_plus_pendant();
  std::vector<double> x(g.num_edges(), 0.0);
  x[g.find_edge(0, 3)] = 0.25;
  const auto loads = vertex_loads(g, x);
  EXPECT_DOUBLE_EQ(loads[0], 0.25);
  EXPECT_DOUBLE_EQ(loads[3], 0.25);
  EXPECT_DOUBLE_EQ(loads[1], 0.0);
  EXPECT_DOUBLE_EQ(fractional_weight(x), 0.25);
}

TEST(Validation, MatchedFlagsAndWeights) {
  const Graph g = triangle_plus_pendant();
  const EdgeId e12 = g.find_edge(1, 2);
  const auto flags = matched_flags(g, {e12});
  EXPECT_TRUE(flags[1]);
  EXPECT_TRUE(flags[2]);
  EXPECT_FALSE(flags[0]);
  std::vector<double> w(g.num_edges(), 2.0);
  EXPECT_DOUBLE_EQ(matching_weight({e12}, w), 2.0);
}

}  // namespace
}  // namespace mpcg
