#include "baselines/greedy_mis.h"

#include <algorithm>
#include <stdexcept>

namespace mpcg {

GreedyMisTrace greedy_mis_trace(const Graph& g,
                                const std::vector<std::uint32_t>& perm) {
  const std::size_t n = g.num_vertices();
  if (perm.size() != n) {
    throw std::invalid_argument("greedy_mis_trace: permutation size mismatch");
  }
  GreedyMisTrace trace;
  trace.removed_at_rank.assign(n, std::numeric_limits<std::uint32_t>::max());
  trace.in_mis.assign(n, 0);
  std::vector<char> alive(n, 1);
  for (std::uint32_t rank = 0; rank < n; ++rank) {
    const VertexId v = perm[rank];
    if (!alive[v]) continue;
    trace.mis.push_back(v);
    trace.in_mis[v] = 1;
    alive[v] = 0;
    trace.removed_at_rank[v] = rank;
    for (const Arc& a : g.arcs(v)) {
      if (alive[a.to]) {
        alive[a.to] = 0;
        trace.removed_at_rank[a.to] = rank;
      }
    }
  }
  return trace;
}

std::vector<VertexId> greedy_mis(const Graph& g,
                                 const std::vector<std::uint32_t>& perm) {
  return greedy_mis_trace(g, perm).mis;
}

std::vector<VertexId> residual_vertices_after_rank(
    const GreedyMisTrace& trace, std::uint32_t rank_exclusive) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < trace.removed_at_rank.size(); ++v) {
    if (trace.removed_at_rank[v] >= rank_exclusive) out.push_back(v);
  }
  return out;
}

std::size_t greedy_dependency_depth(const Graph& g,
                                    const std::vector<std::uint32_t>& perm) {
  const std::size_t n = g.num_vertices();
  if (perm.size() != n) {
    throw std::invalid_argument(
        "greedy_dependency_depth: permutation size mismatch");
  }
  std::vector<std::uint32_t> rank_of(n);
  for (std::uint32_t i = 0; i < n; ++i) rank_of[perm[i]] = i;
  std::vector<std::uint32_t> depth(n, 0);
  std::size_t best = 0;
  // Process in rank order so all lower-rank neighbors are final.
  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId v = perm[i];
    std::uint32_t d = 1;
    for (const Arc& a : g.arcs(v)) {
      if (rank_of[a.to] < i) d = std::max(d, depth[a.to] + 1);
    }
    depth[v] = d;
    best = std::max<std::size_t>(best, d);
  }
  return best;
}

}  // namespace mpcg
