// E13 (Theorem 1.1, CONGESTED-CLIQUE part): MIS in O(log log Delta) clique
// rounds, with all routing through Lenzen's scheme within per-player
// bounds.
//
// Table rows: n sweep. Claims: `cc_rounds` stays flat-ish in n (log log),
// `lenzen_batches` per phase ~1 (window subgraphs fit one feasible batch),
// and the output matches the MPC simulation decision-for-decision
// (`matches_mpc` = 1).
#include "bench_util.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E13_CcliqueMis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 53);

  const std::size_t budget = 4 * n;
  MisCcliqueOptions copt;
  copt.seed = 53;
  copt.gather_budget = budget;
  MisMpcOptions mopt;
  mopt.seed = 53;
  mopt.gather_budget = budget;

  MisCcliqueResult cr;
  MisMpcResult mr;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    cr = mis_cclique(g, copt);
    mr = mis_mpc(g, mopt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(cr.mis.size());
  }
  emit_json_line("E13_CcliqueMis/" + std::to_string(n), n, g.num_edges(),
                 cr.metrics.rounds, wall_ms,
                 cr.metrics.max_player_received);
  state.counters["n"] = static_cast<double>(n);
  state.counters["cc_rounds"] = static_cast<double>(cr.metrics.rounds);
  state.counters["rank_phases"] = static_cast<double>(cr.rank_phases);
  state.counters["sparse_iters"] =
      static_cast<double>(cr.sparsified_iterations);
  state.counters["lenzen_batches"] =
      static_cast<double>(cr.metrics.lenzen_batches);
  state.counters["max_player_recv"] =
      static_cast<double>(cr.metrics.max_player_received);
  state.counters["loglog_delta"] =
      log2log2(static_cast<double>(g.max_degree()));
  state.counters["matches_mpc"] = cr.mis == mr.mis ? 1.0 : 0.0;
}
BENCHMARK(E13_CcliqueMis)
    ->Arg(1 << 9)
    ->Arg(1 << 10)
    ->Arg(1 << 11)
    ->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
