#include "mpc/primitives.h"

#include <algorithm>

namespace mpcg::mpc {

std::vector<Word> broadcast(Engine& engine, std::size_t root,
                            std::span<const Word> payload) {
  std::vector<Word> copy(payload.begin(), payload.end());
  broadcast_view(engine, root, copy);
  return copy;
}

std::span<const Word> broadcast_view(Engine& engine, std::size_t root,
                                     std::span<const Word> payload) {
  const std::size_t m = engine.num_machines();
  if (payload.size() > engine.capacity() && engine.strict()) {
    // Non-strict mode proceeds; the per-round exchange checks tally the
    // violations so under-provisioning is observable, not fatal.
    throw CapacityError("machine " + std::to_string(root) +
                        " broadcast payload exceeds machine memory in round " +
                        std::to_string(engine.metrics().rounds) +
                        ": requested " + std::to_string(payload.size()) +
                        ", available " + std::to_string(engine.capacity()));
  }
  if (m == 1) return payload;

  // Relay tree over machine ids reordered so the root is position 0.
  // Position p holds the payload once informed; each informed position
  // relays to `fanout` uninformed positions per round.
  const std::size_t fanout = std::max<std::size_t>(
      1, payload.empty() ? m : engine.capacity() / std::max<std::size_t>(
                                   payload.size(), 1));
  const auto machine_of = [&](std::size_t pos) {
    // Swap root and 0.
    if (pos == 0) return root;
    if (pos == root) return std::size_t{0};
    return pos;
  };

  std::vector<std::size_t> dests;
  std::size_t informed = 1;
  PayloadId pid = 0;
  while (informed < m) {
    // One stored copy per round, shared by every relay: each relay's sends
    // are (destination, payload-id) descriptors, so a round moves O(k)
    // simulator words no matter the fan-out — the engine still charges
    // every relay k words per destination.
    pid = engine.stage_payload(payload);
    const std::size_t senders = informed;
    std::size_t next = informed;
    for (std::size_t s = 0; s < senders && next < m; ++s) {
      dests.clear();
      for (std::size_t f = 0; f < fanout && next < m; ++f, ++next) {
        dests.push_back(machine_of(next));
      }
      engine.push_broadcast(machine_of(s), dests, pid);
    }
    engine.exchange();
    informed = next;
  }
  // The last relay round's stored copy is what every machine now holds.
  return engine.delivered_payload(pid);
}

std::vector<Word> gather_to(Engine& engine, std::size_t root,
                            const std::vector<std::vector<Word>>& parts) {
  const std::size_t m = engine.num_machines();
  for (std::size_t i = 0; i < m && i < parts.size(); ++i) {
    if (i == root) continue;  // root's own part needs no communication
    engine.push_gather(i, root, parts[i]);
  }
  engine.exchange();
  // Reassemble in machine order, substituting root's local part in place.
  // Each non-empty part arrived as exactly one shared segment, in sender
  // order — the reassembly is one bulk copy per part, no per-word walk.
  const InboxView in = engine.inbox_view(root);
  std::vector<Word> gathered;
  gathered.reserve(in.size() + (root < parts.size() ? parts[root].size() : 0));
  std::size_t seg = 0;
  const std::size_t segs_arrived = in.num_segments();
  for (std::size_t i = 0; i < m && i < parts.size(); ++i) {
    if (i == root) {
      gathered.insert(gathered.end(), parts[i].begin(), parts[i].end());
    } else if (!parts[i].empty()) {
      // Fewer segments than expected senders happens only under
      // unrecovered fault injection (a dark machine's flush is gone);
      // take what arrived rather than walking off the inbox.
      if (seg >= segs_arrived) break;
      const auto s = in.segment(seg++);
      gathered.insert(gathered.end(), s.begin(), s.end());
    }
  }
  engine.note_storage(root, gathered.size());
  return gathered;
}

std::vector<std::vector<Word>> all_to_all(
    Engine& engine, const std::vector<std::vector<std::vector<Word>>>& out) {
  const std::size_t m = engine.num_machines();
  for (std::size_t i = 0; i < m && i < out.size(); ++i) {
    // One streamed outbox per sender: each per-destination part is one run.
    Outbox ob = engine.outbox(i);
    for (std::size_t j = 0; j < m && j < out[i].size(); ++j) {
      ob.append_run(j, out[i][j]);
    }
  }
  engine.exchange();
  std::vector<std::vector<Word>> in(m);
  for (std::size_t j = 0; j < m; ++j) {
    engine.inbox_view(j).append_to(in[j]);
  }
  return in;
}

std::uint64_t all_reduce_sum(Engine& engine,
                             const std::vector<Word>& per_machine_value) {
  const std::size_t m = engine.num_machines();
  std::vector<std::vector<Word>> parts(m);
  for (std::size_t i = 0; i < m && i < per_machine_value.size(); ++i) {
    parts[i] = {per_machine_value[i]};
  }
  const auto gathered = gather_to(engine, 0, parts);
  std::uint64_t total = 0;
  for (const Word w : gathered) total += w;
  const Word payload[] = {total};
  broadcast_view(engine, 0, payload);
  return total;
}

std::uint64_t all_reduce_max(Engine& engine,
                             const std::vector<Word>& per_machine_value) {
  const std::size_t m = engine.num_machines();
  std::vector<std::vector<Word>> parts(m);
  for (std::size_t i = 0; i < m && i < per_machine_value.size(); ++i) {
    parts[i] = {per_machine_value[i]};
  }
  const auto gathered = gather_to(engine, 0, parts);
  std::uint64_t best = 0;
  for (const Word w : gathered) best = std::max(best, w);
  const Word payload[] = {best};
  broadcast_view(engine, 0, payload);
  return best;
}

}  // namespace mpcg::mpc
