#include "mpc/engine.h"

#include <algorithm>

namespace mpcg::mpc {

Engine::Engine(Config config) : config_(config) {
  if (config_.num_machines == 0) {
    throw std::invalid_argument("Engine: need at least one machine");
  }
  const std::size_t m = config_.num_machines;
  if (m <= kDenseMachineLimit) {
    boxes_.assign(m * m, {});
  } else {
    out_dests_.assign(m, {});
    out_words_.assign(m, {});
  }
  inbox_.assign(m, {});
  recv_count_.assign(m, 0);
}

void Engine::check_machine(std::size_t machine) const {
  if (machine >= config_.num_machines) {
    throw std::out_of_range("Engine: machine id " + std::to_string(machine) +
                            " out of range (have " +
                            std::to_string(config_.num_machines) + ")");
  }
}

void Engine::throw_bad_machine(std::size_t machine) const {
  check_machine(machine);
  throw std::out_of_range("Engine: unreachable");
}

void Engine::push(std::size_t from, std::size_t to,
                  std::span<const Word> words) {
  check_machine(from);
  check_machine(to);
  if (!boxes_.empty()) {
    auto& box = boxes_[from * config_.num_machines + to];
    box.insert(box.end(), words.begin(), words.end());
    return;
  }
  out_dests_[from].insert(out_dests_[from].end(), words.size(),
                          static_cast<std::uint32_t>(to));
  out_words_[from].insert(out_words_[from].end(), words.begin(),
                          words.end());
}

void Engine::check_budget(std::size_t machine, std::size_t words,
                          const char* dir) {
  if (words > config_.words_per_machine) {
    ++metrics_.violations;
    if (config_.strict) {
      throw CapacityError("machine " + std::to_string(machine) + " " + dir +
                          " " + std::to_string(words) + " words, budget " +
                          std::to_string(config_.words_per_machine));
    }
  }
}

void Engine::exchange() {
  const std::size_t m = config_.num_machines;
  if (!boxes_.empty()) {
    // Dense path: pushes pre-sorted the words by (sender, receiver);
    // delivery is pure bulk copies.
    for (std::size_t from = 0; from < m; ++from) {
      std::size_t sent = 0;
      for (std::size_t to = 0; to < m; ++to) {
        sent += boxes_[from * m + to].size();
      }
      metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
      metrics_.total_words += sent;
      check_budget(from, sent, "sent");
    }
    for (std::size_t to = 0; to < m; ++to) {
      auto& in = inbox_[to];
      in.clear();
      std::size_t received = 0;
      for (std::size_t from = 0; from < m; ++from) {
        received += boxes_[from * m + to].size();
      }
      in.reserve(received);
      for (std::size_t from = 0; from < m; ++from) {
        auto& box = boxes_[from * m + to];
        in.insert(in.end(), box.begin(), box.end());
        box.clear();
      }
      metrics_.max_received_words = std::max(metrics_.max_received_words,
                                             received);
      check_budget(to, received, "received");
      // Whatever a machine received is resident until it processes it.
      metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                             received);
    }
    ++metrics_.rounds;
    return;
  }

  // Flat path. Sending side first.
  for (std::size_t from = 0; from < m; ++from) {
    const std::size_t sent = out_words_[from].size();
    metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
    metrics_.total_words += sent;
    check_budget(from, sent, "sent");
  }
  // Counting pass, then one stable delivery sweep in sender order (sender
  // ids ascending, each sender's words in push order — the inbox
  // contract).
  std::fill(recv_count_.begin(), recv_count_.end(), 0);
  for (std::size_t from = 0; from < m; ++from) {
    const auto& dests = out_dests_[from];
    for (std::size_t i = 0; i < dests.size();) {
      const std::uint32_t to = dests[i];
      std::size_t j = i + 1;
      while (j < dests.size() && dests[j] == to) ++j;
      recv_count_[to] += j - i;
      i = j;
    }
  }
  for (std::size_t to = 0; to < m; ++to) {
    inbox_[to].clear();
    inbox_[to].reserve(recv_count_[to]);
  }
  for (std::size_t from = 0; from < m; ++from) {
    const auto& dests = out_dests_[from];
    const Word* words = out_words_[from].data();
    const std::size_t nw = dests.size();
    if (nw >= 2 * m) {
      // Counting-sort delivery: bucket this sender's words by destination
      // (stable), then append each bucket to its inbox in one bulk copy.
      // Worth the O(machines) bookkeeping once the sender moved at least
      // that many words.
      bucket_count_.assign(m, 0);
      for (std::size_t i = 0; i < nw; ++i) ++bucket_count_[dests[i]];
      bucket_cursor_.resize(m);
      std::size_t run = 0;
      for (std::size_t to = 0; to < m; ++to) {
        bucket_cursor_[to] = run;
        run += bucket_count_[to];
      }
      scatter_.resize(nw);
      for (std::size_t i = 0; i < nw; ++i) {
        scatter_[bucket_cursor_[dests[i]]++] = words[i];
      }
      std::size_t pos = 0;
      for (std::size_t to = 0; to < m; ++to) {
        const std::size_t count = bucket_count_[to];
        if (count > 0) {
          inbox_[to].insert(inbox_[to].end(), scatter_.data() + pos,
                            scatter_.data() + pos + count);
        }
        pos += count;
      }
    } else {
      // Few words from this sender: deliver maximal same-destination
      // stretches directly.
      for (std::size_t i = 0; i < nw;) {
        const std::uint32_t to = dests[i];
        std::size_t j = i + 1;
        while (j < nw && dests[j] == to) ++j;
        inbox_[to].insert(inbox_[to].end(), words + i, words + j);
        i = j;
      }
    }
    out_dests_[from].clear();
    out_words_[from].clear();
  }
  // Receiving side.
  for (std::size_t to = 0; to < m; ++to) {
    const std::size_t received = recv_count_[to];
    metrics_.max_received_words = std::max(metrics_.max_received_words,
                                           received);
    check_budget(to, received, "received");
    // Whatever a machine received is resident until it processes it.
    metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                           received);
  }
  ++metrics_.rounds;
}

const std::vector<Word>& Engine::inbox(std::size_t machine) const {
  check_machine(machine);
  return inbox_[machine];
}

void Engine::note_storage(std::size_t machine, std::size_t words) {
  metrics_.peak_storage_words = std::max(metrics_.peak_storage_words, words);
  check_budget(machine, words, "stores");
}

void Engine::clear_inboxes() {
  for (auto& in : inbox_) in.clear();
}

}  // namespace mpcg::mpc
