// Theorem 1.1, CONGESTED-CLIQUE part — MIS in O(log log Delta) rounds.
//
// Same rank-phase schedule as the MPC algorithm (core/mis_mpc.h), realized
// with clique communication exactly as Section 3.2 describes:
//   * the leader (player 0, standing in for the minimum-id vertex) draws
//     the permutation, tells every player its rank, and players broadcast
//     their ranks so the order is common knowledge;
//   * per phase, players with ranks in the window ship their window-induced
//     residual edges to the leader with Lenzen's routing scheme (O(n)
//     messages, O(1) rounds), the leader plays greedy through the window,
//     members broadcast their membership, and killed players broadcast
//     their deaths;
//   * the low-degree tail runs the sparsified local-MIS dynamics with
//     per-iteration broadcasts, and the O(n)-edge leftover is routed to the
//     leader and finished there.
//
// Given identical options (seed, alpha, degree_switch, gather budget), this
// algorithm makes exactly the same decisions as mis_mpc — the two models
// simulate one process — which the test suite checks output-for-output.
#ifndef MPCG_CORE_MIS_CCLIQUE_H
#define MPCG_CORE_MIS_CCLIQUE_H

#include <cstdint>
#include <vector>

#include "cclique/engine.h"
#include "graph/graph.h"

namespace mpcg::fault {
class FaultPlan;
}  // namespace mpcg::fault

namespace mpcg {

struct MisCcliqueOptions {
  std::uint64_t seed = 1;
  double alpha = 0.75;
  std::size_t degree_switch = 16;
  bool use_sparsified_stage = true;
  /// Final-gather threshold in edges. 0 = auto: n (one Lenzen batch).
  std::size_t gather_budget = 0;
  bool strict = true;
  /// Execution-backend width (see cclique::Engine's threads parameter):
  /// 1 = the sequential reference; > 1 builds the Lenzen route streams
  /// over a shared-memory pool, bit-identical to 1.
  std::size_t threads = 1;
  /// Deterministic fault schedule consulted by the engine at round
  /// boundaries (borrowed; must outlive the run). nullptr = fault-free.
  const fault::FaultPlan* fault_plan = nullptr;
  /// With a plan attached: recover crashes/drops by rolling back to the
  /// round checkpoint (driver state included — permutation, MIS members,
  /// residual aliveness) and replaying; false lets crashed players go dark.
  bool fault_recovery = true;
  /// Per-player stream checksums + detect->retransmit for injected payload
  /// corruption (see cclique::Engine).
  bool integrity = false;
  /// Per-round conservation-invariant audit (see cclique::Engine).
  bool audit = false;
  /// Proactive durable-store scrub every `scrub_interval` rounds (0 =
  /// never; requires integrity — see cclique::Engine).
  std::size_t scrub_interval = 0;
  /// On-disk checkpoint persistence and resume (see fault/durable.h and
  /// cclique::Engine::set_durability). Off while `durable.dir` is empty.
  fault::DurableOptions durable;
};

struct MisCcliqueResult {
  std::vector<VertexId> mis;
  std::size_t rank_phases = 0;
  std::size_t sparsified_iterations = 0;
  std::size_t final_gather_edges = 0;
  std::vector<std::size_t> window_edges_per_phase;
  cclique::Metrics metrics;
};

[[nodiscard]] MisCcliqueResult mis_cclique(const Graph& g,
                                           const MisCcliqueOptions& options);

}  // namespace mpcg

#endif  // MPCG_CORE_MIS_CCLIQUE_H
