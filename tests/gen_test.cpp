#include <cmath>

#include <gtest/gtest.h>

#include "baselines/hopcroft_karp.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace mpcg {
namespace {

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  Rng rng(1);
  const std::size_t n = 2000;
  const double p = 0.01;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.8 * expected);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.2 * expected);
}

TEST(ErdosRenyiGnp, ExtremeProbabilities) {
  Rng rng(2);
  EXPECT_EQ(erdos_renyi_gnp(50, 0.0, rng).num_edges(), 0U);
  EXPECT_EQ(erdos_renyi_gnp(10, 1.0, rng).num_edges(), 45U);
}

TEST(ErdosRenyiGnp, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  const Graph ga = erdos_renyi_gnp(300, 0.02, a);
  const Graph gb = erdos_renyi_gnp(300, 0.02, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (EdgeId e = 0; e < ga.num_edges(); ++e) {
    EXPECT_EQ(ga.edge(e).u, gb.edge(e).u);
    EXPECT_EQ(ga.edge(e).v, gb.edge(e).v);
  }
}

TEST(ErdosRenyiGnm, ExactCount) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(100, 250, rng);
  EXPECT_EQ(g.num_edges(), 250U);
}

TEST(ErdosRenyiGnm, ClampsToMaxEdges) {
  Rng rng(4);
  const Graph g = erdos_renyi_gnm(5, 1000, rng);
  EXPECT_EQ(g.num_edges(), 10U);
}

TEST(ChungLu, AverageDegreeRoughlyTarget) {
  Rng rng(5);
  const Graph g = chung_lu_power_law(4000, 2.5, 10.0, rng);
  EXPECT_GT(g.average_degree(), 5.0);
  EXPECT_LT(g.average_degree(), 15.0);
}

TEST(ChungLu, HeavyTailPresent) {
  Rng rng(6);
  const Graph g = chung_lu_power_law(4000, 2.2, 8.0, rng);
  // Max degree far above the mean is the point of the family.
  EXPECT_GT(static_cast<double>(g.max_degree()), 4.0 * g.average_degree());
}

TEST(ChungLu, RejectsBadBeta) {
  Rng rng(7);
  EXPECT_THROW(chung_lu_power_law(100, 1.0, 5.0, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  Rng rng(8);
  const std::size_t n = 500;
  const Graph g = barabasi_albert(n, 3, rng);
  EXPECT_EQ(g.num_vertices(), n);
  // Every non-seed vertex attaches to 3 targets.
  for (VertexId v = 10; v < n; ++v) EXPECT_GE(g.degree(v), 3U);
}

TEST(RandomBipartite, IsBipartiteAndSized) {
  Rng rng(9);
  const Graph g = random_bipartite(120, 80, 0.05, rng);
  EXPECT_EQ(g.num_vertices(), 200U);
  const auto side = try_bipartition(g);
  ASSERT_TRUE(side.has_value());
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 120U);
    EXPECT_GE(e.v, 120U);
  }
}

TEST(RandomBipartite, DensityNearExpectation) {
  Rng rng(10);
  const Graph g = random_bipartite(200, 200, 0.02, rng);
  const double expected = 0.02 * 200 * 200;
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.7 * expected);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.3 * expected);
}

TEST(Rmat, RespectsVertexBound) {
  Rng rng(11);
  const Graph g = rmat(10, 5000, 0.45, 0.2, 0.2, rng);
  EXPECT_EQ(g.num_vertices(), 1024U);
  EXPECT_LE(g.num_edges(), 5000U);  // dedupe/self-loops can only shrink
  EXPECT_GT(g.num_edges(), 1000U);
}

TEST(Rmat, RejectsBadProbabilities) {
  Rng rng(12);
  EXPECT_THROW(rmat(4, 10, 0.5, 0.4, 0.3, rng), std::invalid_argument);
}

TEST(RandomGeometric, RadiusControlsDensity) {
  Rng rng(13);
  const Graph sparse = random_geometric(300, 0.03, rng);
  Rng rng2(13);
  const Graph dense = random_geometric(300, 0.15, rng2);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(Structured, PathCycleCounts) {
  EXPECT_EQ(path_graph(10).num_edges(), 9U);
  EXPECT_EQ(cycle_graph(10).num_edges(), 10U);
  EXPECT_EQ(cycle_graph(2).num_edges(), 1U);
  EXPECT_EQ(cycle_graph(1).num_edges(), 0U);
}

TEST(Structured, CompleteAndStar) {
  EXPECT_EQ(complete_graph(8).num_edges(), 28U);
  const Graph s = star_graph(9);
  EXPECT_EQ(s.num_edges(), 8U);
  EXPECT_EQ(s.degree(0), 8U);
  EXPECT_EQ(s.max_degree(), 8U);
}

TEST(Structured, GridDegreesBounded) {
  const Graph g = grid_graph(5, 7);
  EXPECT_EQ(g.num_vertices(), 35U);
  EXPECT_EQ(g.num_edges(), 5U * 6U + 4U * 7U);
  EXPECT_LE(g.max_degree(), 4U);
}

TEST(Structured, CliqueUnion) {
  const Graph g = clique_union(4, 5);
  EXPECT_EQ(g.num_vertices(), 20U);
  EXPECT_EQ(g.num_edges(), 4U * 10U);
  EXPECT_EQ(g.max_degree(), 4U);
}

TEST(Structured, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12U);
  EXPECT_TRUE(try_bipartition(g).has_value());
}

TEST(Weights, UniformInRange) {
  Rng rng(14);
  const Graph g = complete_graph(10);
  const auto w = uniform_weights(g, 2.0, 5.0, rng);
  ASSERT_EQ(w.size(), g.num_edges());
  for (const double wi : w) {
    EXPECT_GE(wi, 2.0);
    EXPECT_LT(wi, 5.0);
  }
}

TEST(Weights, ExponentialMeanRoughlyRight) {
  Rng rng(15);
  const Graph g = complete_graph(60);  // 1770 edges
  const auto w = exponential_weights(g, 3.0, rng);
  double sum = 0.0;
  for (const double wi : w) {
    EXPECT_GE(wi, 0.0);
    sum += wi;
  }
  EXPECT_NEAR(sum / static_cast<double>(w.size()), 3.0, 0.5);
}

}  // namespace
}  // namespace mpcg
