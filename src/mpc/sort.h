// Distributed sample sort over the MPC engine — the [GSZ11] "standard
// technique" the paper's O(1)-round primitives rest on.
//
// Protocol (3 communication rounds for balanced inputs):
//   1. machines sort locally and send a regular sample to the leader;
//   2. the leader picks m-1 splitters and broadcasts them;
//   3. machines route each element to its splitter bucket (all-to-all),
//      then sort the received bucket locally.
// The output is globally sorted in machine order: every element on
// machine i is <= every element on machine i+1, and each machine's slice
// is sorted. Capacity is enforced by the engine as usual, so a skewed
// input that overloads one bucket is *visible* (strict mode throws).
#ifndef MPCG_MPC_SORT_H
#define MPCG_MPC_SORT_H

#include <vector>

#include "mpc/engine.h"

namespace mpcg::mpc {

/// Sorts the union of `per_machine_input` across the cluster. Returns the
/// per-machine sorted slices (concatenation in machine order is the fully
/// sorted sequence).
std::vector<std::vector<Word>> distributed_sort(
    Engine& engine, const std::vector<std::vector<Word>>& per_machine_input,
    std::size_t sample_per_machine = 16);

}  // namespace mpcg::mpc

#endif  // MPCG_MPC_SORT_H
