#include "util/flags.h"

#include <stdexcept>

namespace mpcg {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("flags: expected --key[=value], got '" +
                                  token + "'");
    }
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(2, eq - 2)] = token.substr(eq + 1);
      continue;
    }
    const std::string key = token.substr(2);
    // --key value (if the next token is not itself a flag), else bool.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Flags::get_string(const std::string& key,
                              const std::string& def) const {
  read_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  read_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + key + " wants an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& key, double def) const {
  read_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + key + " wants a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& key, bool def) const {
  read_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("flags: --" + key + " wants true/false, got '" +
                              it->second + "'");
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (read_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace mpcg
