// Driver-side round-level checkpointing with verified generations.
//
// The engine's Snapshot covers the *message plane*; the driver's logical
// state (y values, freeze levels, the active frontier, ...) lives outside
// the engine and must be captured alongside it for a crash rollback to be
// sound.  Drivers register named save/restore callbacks here; the engine
// calls capture() just before applying a fault event and restore() when a
// crash forces a round replay.
//
// Checkpoints are materialized copy-on-fault: because the FaultPlan is
// deterministic and known up front, the engine only asks for a capture at
// rounds that actually carry a fault event, so fault-free rounds pay one
// branch and zero copies (see DESIGN.md, "Fault model & recovery").
//
// Captures after the first are charged *incrementally*: the registry keeps
// the newest generation's per-provider images and diffs the fresh
// serialization against them, so a capture costs (and reports) only the
// dirty ranges — two header words plus the changed words per maximal
// differing stretch, never more than a full re-serialization.  Each
// retained image is always the full fresh state, so restore() stays a
// bit-identical full reinstatement; the delta encoding changes only what a
// capture is *charged* in Metrics::checkpoint_bytes, which is exactly what
// a real system would ship to stable storage.
//
// The registry retains a small ring of *generations* (default 2): every
// capture() pushes a new newest generation and evicts the oldest past the
// ring capacity.  Each generation carries per-provider FNV-1a checksums
// folded at capture time, so the images themselves are no longer trusted
// blindly: restore() verifies the newest generation and falls back to the
// next older verified one when storage rot (FaultKind::kCorruptCheckpoint)
// has flipped bits in it — a fallback restore hands back strictly older
// state, so the caller owes the replay of the rounds in between.  Only
// when *every* retained generation fails verification does restore() throw
// CheckpointError: the cluster has lost its last good copy.
#ifndef MPCG_FAULT_CHECKPOINT_H
#define MPCG_FAULT_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/durable.h"

namespace mpcg::fault {

/// Thrown when a checkpoint restore finds no generation that passes its
/// per-provider checksums — every retained image has rotted and the
/// cluster is unrecoverable.  Engines decorate the message with the
/// machine and round of the fault that forced the restore.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A registry of named state providers.  capture() serializes every
/// provider into one flat word buffer (a new ring generation); restore()
/// hands each provider back exactly the words it wrote, from the newest
/// generation that verifies.
class CheckpointRegistry {
 public:
  using Word = std::uint64_t;
  /// Appends the provider's state to the buffer.
  using SaveFn = std::function<void(std::vector<Word>&)>;
  /// Reinstates the provider's state from the words it saved.
  using RestoreFn = std::function<void(std::span<const Word>)>;

  /// Generations retained by default: the newest image plus one fallback.
  static constexpr std::size_t kDefaultGenerations = 2;

  CheckpointRegistry() = default;
  /// A ring holding up to `generations` images (clamped to at least 1).
  explicit CheckpointRegistry(std::size_t generations)
      : generations_(generations == 0 ? 1 : generations) {}

  void register_state(std::string name, SaveFn save, RestoreFn restore);

  /// Serializes all providers (in registration order) into a new newest
  /// generation tagged with `round`, evicting the oldest past the ring
  /// capacity.  Returns the number of words this capture is charged: the
  /// full serialization the first time or whenever a provider's size
  /// changes, and the dirty-range delta against the previous newest
  /// generation otherwise (capped at a full save).
  std::size_t capture(std::size_t round = 0);

  /// Replays the newest generation that passes verification into every
  /// provider.  Restoring from an older generation (because newer ones
  /// rotted) counts toward fallback_restores() and leaves the caller owing
  /// the replay of the rounds between the two generation tags.  Throws
  /// CheckpointError when every retained generation fails verification.
  /// No-op if capture() has never run.
  void restore();

  /// Recomputes per-provider checksums of the generation `age` steps below
  /// the newest (0 = newest).  False once kCorruptCheckpoint has flipped a
  /// bit in the image.
  [[nodiscard]] bool generation_ok(std::size_t age) const;

  /// Deterministic bit rot (FaultKind::kCorruptCheckpoint): flips 1–3
  /// deduplicated bits in generation `age`'s image, positions drawn from
  /// mix64(a, b, c·) like every other injected corruption.  Returns the
  /// number of bits flipped (0 when the image is empty).
  std::size_t corrupt_generation(std::size_t age, std::uint64_t a,
                                 std::uint64_t b, std::uint64_t c);

  /// Re-serializes the live providers into the newest generation in place
  /// (round tag kept), recomputing its checksums.  This is how an engine
  /// repairs a rotted newest image after verifying an older generation:
  /// deterministic replay from that older generation would reconstruct
  /// exactly the live state, so the live state *is* the newest image.
  void recapture_newest();

  /// Fresh-serializes every provider into one named DurableSection each
  /// (registration order).  Independent of capture(): it touches neither
  /// the generation ring nor the capture/delta counters, so persisting to
  /// disk never perturbs the in-memory checkpoint accounting that PR 6–8
  /// tests pin.
  [[nodiscard]] std::vector<DurableSection> save_sections();

  /// save_sections() into a caller-owned scratch vector: the first
  /// num_providers() entries are (re)filled in registration order, reusing
  /// their payload capacity, and entries beyond that (e.g. an engine's
  /// trailing "__engine" section) are left untouched. Steady-state
  /// persists therefore allocate nothing on the serialization side.
  void save_sections_into(std::vector<DurableSection>& out);

  /// Reinstates every registered provider from the same-named section.
  /// Sections with no matching provider (e.g. an engine's "__engine"
  /// payload) are ignored; a registered provider with no section means the
  /// file was written by a differently-shaped run and throws
  /// CheckpointError naming the missing provider.
  void install_sections(std::span<const DurableSection> sections);

  /// Persists one durable generation: save_sections() plus `extra`
  /// (engine-owned sections), written through `ring`.  Returns the words
  /// written to disk.
  std::size_t save_to(DurableRing& ring, std::uint64_t round,
                      const std::string& scope,
                      std::vector<DurableSection> extra);

  /// Loads the newest verified on-disk generation for `scope` and installs
  /// the provider sections.  Returns the full load (so the caller can
  /// consume engine-owned sections and the round tag), or nullopt on a
  /// clean fresh start.  Propagates DurableRing::load's typed errors.
  std::optional<DurableLoad> load_from(const DurableRing& ring,
                                       const std::string& scope);

  /// Names of the providers whose images fail verification in generation
  /// `age` (0 = newest); empty when the generation verifies.
  [[nodiscard]] std::vector<std::string> rotted_providers(
      std::size_t age) const;

  [[nodiscard]] bool has_checkpoint() const noexcept { return !ring_.empty(); }
  /// Ring capacity.
  [[nodiscard]] std::size_t generations() const noexcept {
    return generations_;
  }
  /// Generations currently retained (≤ generations()).
  [[nodiscard]] std::size_t generations_held() const noexcept {
    return ring_.size();
  }
  /// Round tag of generation `age` (0 = newest).
  [[nodiscard]] std::size_t generation_round(std::size_t age) const {
    return gen(age).round;
  }
  /// Words held by the newest generation — the full retained image, not
  /// the incremental charge capture() returned.
  [[nodiscard]] std::size_t checkpoint_words() const noexcept {
    return ring_.empty() ? 0 : ring_.back().buffer.size();
  }
  /// Words the most recent capture() was charged (0 before any capture).
  [[nodiscard]] std::size_t last_capture_words() const noexcept {
    return last_capture_words_;
  }
  /// Captures that were charged as dirty-range deltas rather than full
  /// serializations.
  [[nodiscard]] std::size_t delta_captures() const noexcept {
    return delta_captures_;
  }
  [[nodiscard]] std::size_t captures() const noexcept { return captures_; }
  [[nodiscard]] std::size_t restores() const noexcept { return restores_; }
  /// Restores that skipped past at least one corrupt newer generation.
  [[nodiscard]] std::size_t fallback_restores() const noexcept {
    return fallback_restores_;
  }
  /// Round tag of the generation the last restore() replayed (0 before
  /// any restore).
  [[nodiscard]] std::size_t last_restored_round() const noexcept {
    return last_restored_round_;
  }
  [[nodiscard]] std::size_t num_providers() const noexcept {
    return providers_.size();
  }

 private:
  struct Provider {
    std::string name;
    SaveFn save;
    RestoreFn restore;
  };
  /// One provider's slice of a generation's buffer, with the checksum
  /// folded over it at capture time.
  struct Image {
    std::size_t offset = 0;
    std::size_t words = 0;
    Word csum = 0;
  };
  /// One retained checkpoint: the full flat serialization of every
  /// provider as of round `round`.
  struct Generation {
    std::vector<Word> buffer;
    std::vector<Image> images;  ///< Parallel to providers_ at capture time.
    std::size_t round = 0;
  };

  [[nodiscard]] const Generation& gen(std::size_t age) const {
    return ring_[ring_.size() - 1 - age];
  }
  [[nodiscard]] Generation& gen(std::size_t age) {
    return ring_[ring_.size() - 1 - age];
  }
  void serialize_into(Generation& g);

  std::size_t generations_ = kDefaultGenerations;
  std::vector<Provider> providers_;
  /// ring_.back() is the newest generation; eviction pops the front.
  std::vector<Generation> ring_;
  /// Scratch recycled from evicted generations, so steady-state captures
  /// allocate nothing.
  std::vector<Word> fresh_;
  std::size_t captures_ = 0;
  std::size_t restores_ = 0;
  std::size_t fallback_restores_ = 0;
  std::size_t last_restored_round_ = 0;
  std::size_t last_capture_words_ = 0;
  std::size_t delta_captures_ = 0;
};

}  // namespace mpcg::fault

#endif  // MPCG_FAULT_CHECKPOINT_H
