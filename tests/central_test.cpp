#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "baselines/blossom.h"
#include "baselines/brute_force.h"
#include "core/central.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

CentralOptions opts(double eps, bool random_thresholds = false) {
  CentralOptions o;
  o.eps = eps;
  o.random_thresholds = random_thresholds;
  o.threshold_seed = 7;
  return o;
}

TEST(Central, SingleEdgeSplitsWeight) {
  const Graph g = path_graph(2);
  const auto r = central_fractional_matching(g, opts(0.1));
  // The lone edge grows until both endpoints freeze; final x in
  // [(1-2eps)(1-eps), 1-2eps] roughly.
  ASSERT_EQ(r.x.size(), 1U);
  EXPECT_GE(r.x[0], (1 - 0.2) * (1 - 0.1) - 1e-9);
  EXPECT_LE(r.x[0], 1.0);
  EXPECT_EQ(r.cover.size(), 2U);  // both endpoints froze together
}

TEST(Central, EmptyGraph) {
  const Graph g = GraphBuilder(4).build();
  const auto r = central_fractional_matching(g, opts(0.1));
  EXPECT_TRUE(r.x.empty());
  EXPECT_TRUE(r.cover.empty());
  EXPECT_EQ(r.iterations, 0U);
}

TEST(Central, RejectsBadEps) {
  const Graph g = path_graph(3);
  EXPECT_THROW(central_fractional_matching(g, opts(0.0)),
               std::invalid_argument);
  EXPECT_THROW(central_fractional_matching(g, opts(0.7)),
               std::invalid_argument);
}

TEST(Central, IterationsLogarithmic) {
  // Lemma 4.1: O(log n / eps) iterations. Explicit bound:
  // log_{1/(1-eps)} (n (1-2eps)) + O(1).
  for (const std::size_t n : {100UL, 1000UL, 10000UL}) {
    const Graph g = make_family("gnp_sparse", n, 5);
    const double eps = 0.1;
    const auto r = central_fractional_matching(g, opts(eps));
    const double bound =
        std::log(static_cast<double>(n)) / -std::log1p(-eps) + 3;
    EXPECT_LE(static_cast<double>(r.iterations), bound);
  }
}

TEST(Central, TraceRecordsMonotoneLoads) {
  const Graph g = make_family("gnp_dense", 100, 3);
  auto o = opts(0.1);
  o.record_trace = true;
  const auto r = central_fractional_matching(g, o);
  ASSERT_EQ(r.y_trace.size(), r.iterations);
  // A vertex's load never decreases while it is active, and never exceeds 1.
  for (std::size_t t = 1; t < r.y_trace.size(); ++t) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (r.freeze_iteration[v] >= t) {
        EXPECT_GE(r.y_trace[t][v], r.y_trace[t - 1][v] - 1e-12);
      }
      EXPECT_LE(r.y_trace[t][v], 1.0 + 1e-9);
    }
  }
}

TEST(Central, FreezeIterationConsistentWithCover) {
  const Graph g = make_family("power_law", 200, 4);
  const auto r = central_fractional_matching(g, opts(0.1));
  std::size_t frozen = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.freeze_iteration[v] != CentralResult::kNeverFroze) ++frozen;
  }
  EXPECT_EQ(frozen, r.cover.size());
}

TEST(CentralThreshold, FixedAndRandomRanges) {
  EXPECT_DOUBLE_EQ(central_threshold(1, 0, 0, 0.1, false), 0.8);
  for (std::uint64_t v = 0; v < 200; ++v) {
    const double t = central_threshold(1, v, 3, 0.1, true);
    EXPECT_GE(t, 0.6);
    EXPECT_LE(t, 0.8);
  }
  // Deterministic in (seed, v, t).
  EXPECT_EQ(central_threshold(9, 5, 2, 0.1, true),
            central_threshold(9, 5, 2, 0.1, true));
  EXPECT_NE(central_threshold(9, 5, 2, 0.1, true),
            central_threshold(9, 5, 3, 0.1, true));
}

class CentralSweep
    : public ::testing::TestWithParam<
          std::tuple<const char*, double, bool>> {};

TEST_P(CentralSweep, Lemma41Guarantees) {
  const auto [family, eps, random_thresholds] = GetParam();
  const Graph g = make_family(family, 250, 13);
  const auto r =
      central_fractional_matching(g, opts(eps, random_thresholds));

  // Output is a valid fractional matching with a valid cover.
  EXPECT_TRUE(is_fractional_matching(g, r.x, 1e-9));
  EXPECT_TRUE(is_vertex_cover(g, r.cover));

  if (g.num_edges() == 0) return;
  const double nu = static_cast<double>(maximum_matching_size(g));
  const double w = fractional_weight(r.x);
  // Lemma 4.1(B): W >= nu / (2 + 5 eps). (Random thresholds lower the
  // freeze bar to 1-4eps; use the corresponding slack.)
  const double factor = random_thresholds ? 2.0 + 9.0 * eps : 2.0 + 5.0 * eps;
  EXPECT_GE(w * factor, nu - 1e-9)
      << family << " eps=" << eps << " W=" << w << " nu=" << nu;
  // Cover vs matching duality: |C| <= 2 W / (1 - 4 eps).
  EXPECT_LE(static_cast<double>(r.cover.size()),
            2.0 * w / (1.0 - 4.0 * eps) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Families, CentralSweep,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values(0.05, 0.1),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) < 0.08 ? "_eps005" : "_eps01") +
             (std::get<2>(info.param) ? "_rand" : "_fixed");
    });

TEST(Central, SmallGraphCoverNearOptimal) {
  // On brute-forceable graphs the frozen set respects the (2+5eps) factor
  // against the true minimum vertex cover.
  Rng rng(17);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 25; ++trial) {
    const Graph g = erdos_renyi_gnp(10, 0.35, rng);
    if (g.num_edges() == 0) continue;
    ++checked;
    const auto r = central_fractional_matching(g, opts(0.05));
    const std::size_t opt_vc = brute_force_min_vertex_cover(g);
    EXPECT_LE(static_cast<double>(r.cover.size()),
              (2.0 + 5.0 * 0.05) * static_cast<double>(opt_vc) + 1e-9);
  }
  EXPECT_GE(checked, 10);
}

}  // namespace
}  // namespace mpcg
