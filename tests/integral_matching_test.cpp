#include <tuple>

#include <gtest/gtest.h>

#include "baselines/blossom.h"
#include "core/integral_matching.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

IntegralMatchingOptions opts(double eps = 0.1, std::uint64_t seed = 1) {
  IntegralMatchingOptions o;
  o.eps = eps;
  o.seed = seed;
  return o;
}

TEST(IntegralMatching, EmptyGraph) {
  const Graph g = GraphBuilder(4).build();
  const auto r = integral_matching(g, opts());
  EXPECT_TRUE(r.matching.empty());
  EXPECT_TRUE(r.cover.empty());
}

TEST(IntegralMatching, SingleEdge) {
  const Graph g = path_graph(2);
  const auto r = integral_matching(g, opts());
  EXPECT_EQ(r.matching.size(), 1U);
  EXPECT_TRUE(is_vertex_cover(g, r.cover));
}

TEST(IntegralMatching, OutputsAreValid) {
  for (const char* family : kFamilies) {
    const Graph g = make_family(family, 350, 3);
    const auto r = integral_matching(g, opts(0.1, 3));
    EXPECT_TRUE(is_matching(g, r.matching)) << family;
    EXPECT_TRUE(is_vertex_cover(g, r.cover)) << family;
  }
}

TEST(IntegralMatching, TwoPlusEpsFactorAgainstExact) {
  for (const char* family : {"gnp_sparse", "gnp_dense", "bipartite",
                             "power_law", "grid", "cliques"}) {
    const Graph g = make_family(family, 300, 5);
    if (g.num_edges() == 0) continue;
    const double eps = 0.1;
    const auto r = integral_matching(g, opts(eps, 5));
    const double nu = static_cast<double>(maximum_matching_size(g));
    EXPECT_GE(static_cast<double>(r.matching.size()) * (2.0 + eps),
              nu - 1e-9)
        << family << " |M|=" << r.matching.size() << " nu=" << nu;
  }
}

TEST(IntegralMatching, CoverTwoPlusEpsAgainstMatchingLowerBound) {
  // |VC*| >= nu, so cover <= (2+50eps) nu certifies the factor against the
  // only efficiently computable lower bound.
  for (const char* family : {"gnp_sparse", "gnp_dense", "bipartite"}) {
    const Graph g = make_family(family, 300, 7);
    if (g.num_edges() == 0) continue;
    const double eps = 0.1;
    const auto r = integral_matching(g, opts(eps, 7));
    const double nu = static_cast<double>(maximum_matching_size(g));
    EXPECT_LE(static_cast<double>(r.cover.size()),
              (2.0 + 50.0 * eps) * nu + 1e-9)
        << family;
  }
}

TEST(IntegralMatching, SmallMatchingPathWinsOnStars) {
  // A star has nu = 1; the filtering path must deliver it even though the
  // fractional pipeline spreads weight thinly.
  const Graph g = star_graph(500);
  const auto r = integral_matching(g, opts(0.1, 9));
  EXPECT_EQ(r.matching.size(), 1U);
  EXPECT_GE(r.small_path_size, 1U);
}

TEST(IntegralMatching, ReportsBothPaths) {
  const Graph g = make_family("gnp_dense", 400, 11);
  const auto r = integral_matching(g, opts(0.1, 11));
  EXPECT_EQ(r.matching.size(), std::max(r.a_path_size, r.small_path_size));
  EXPECT_GE(r.total_rounds, 1U);
  EXPECT_GE(r.iterations, 1U);
}

TEST(IntegralMatching, DeterministicPerSeed) {
  const Graph g = make_family("rmat", 300, 13);
  const auto a = integral_matching(g, opts(0.1, 17));
  const auto b = integral_matching(g, opts(0.1, 17));
  EXPECT_EQ(a.matching, b.matching);
  EXPECT_EQ(a.cover, b.cover);
}

class IntegralSweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(IntegralSweep, ValidityAndFactorAcrossSeeds) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 260, seed);
  const auto r = integral_matching(g, opts(0.1, seed));
  EXPECT_TRUE(is_matching(g, r.matching));
  EXPECT_TRUE(is_vertex_cover(g, r.cover));
  if (g.num_edges() > 0) {
    const double nu = static_cast<double>(maximum_matching_size(g));
    EXPECT_GE(static_cast<double>(r.matching.size()) * 2.1, nu - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, IntegralSweep,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values(1ULL, 2ULL)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mpcg
