#!/usr/bin/env python3
"""Plot BENCH_*.json trajectory files emitted via MPCG_BENCH_JSON.

Each input file is a JSON-lines log appended by the bench binaries:

    {"name":"E01_RoundsVsN/4096","n":4096,"m":32768,"rounds":15,
     "wall_ms":12.3,"peak_words":21704}

Usage:
    tools/plot_bench.py BENCH_pr1.json BENCH_pr2.json [-o out_dir]
                        [--families E01,E06] [--table]
                        [--baseline BENCH_prN.json]

--baseline pins the speedup column (and the first plot series) to an
explicit file — equivalent to listing it first, but immune to argument
order, so CI can always compare against the committed per-PR baseline.

One figure per benchmark family (the name prefix before '/'), with wall_ms
and rounds as separate stacked panels (never a dual axis) over n. Each input
file is one series, so passing the logs of successive commits shows the
perf trajectory. Within a (file, name) pair the minimum wall_ms is used —
the min-of-N convention the repo's CHANGES.md numbers follow.

Headless-safe (Agg backend); with matplotlib missing, or with --table,
prints an aligned text table instead.
"""

import argparse
import json
import os
import sys
from collections import defaultdict

# Categorical palette (validated: colorblind-safe in fixed order — assign by
# slot, never cycle or re-sort).
PALETTE = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300"]
GRID = "#d9d8d2"
INK = "#0b0b0b"
MUTED = "#52514e"


def load_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"warning: skipping malformed line in {path}",
                      file=sys.stderr)
    return rows


def family_of(name):
    return name.split("/", 1)[0]


def workload_of(name):
    """Non-numeric middle components of a row name: the workload label.

    'E06_FrontierDecay/rmat/262144' -> 'rmat'; 'E06_PhasesVsN/4096' -> ''.
    """
    return "/".join(p for p in name.split("/")[1:] if not p.isdigit())


def aggregate(rows):
    """(family -> name -> row with min wall_ms), preserving n per name."""
    best = defaultdict(dict)
    for row in rows:
        fam = family_of(row.get("name", "?"))
        name = row.get("name", "?")
        cur = best[fam].get(name)
        if cur is None or row.get("wall_ms", 0.0) < cur.get("wall_ms", 0.0):
            best[fam][name] = row
    return best


def print_table(series_by_file, families):
    # The first input file is the baseline: every later file's rows get a
    # per-PR speedup column (baseline wall_ms / this wall_ms for the same
    # benchmark name, min-of-N on both sides). Rows are grouped by workload
    # (the non-numeric middle of the name — e.g. the rmat/star rows of
    # E06_FrontierDecay each form a group) with a separator per group.
    labels = list(series_by_file)
    baseline = series_by_file[labels[0]] if labels else {}
    header = f"{'family/name':<40} {'file':<20} {'n':>10} {'rounds':>8} " \
             f"{'wall_ms':>12} {'peak_words':>12} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for fam in families:
        workloads = sorted({workload_of(name)
                            for best in series_by_file.values()
                            for name in best.get(fam, {})})
        for workload in workloads:
            if len(workloads) > 1:
                title = f"{fam}/{workload}" if workload else fam
                print(f"-- {title}")
            for label, best in series_by_file.items():
                rows = [(name, row) for name, row in best.get(fam, {}).items()
                        if workload_of(name) == workload]
                for name, row in sorted(rows,
                                        key=lambda kv: kv[1].get("n", 0)):
                    base_row = baseline.get(fam, {}).get(name)
                    wall = row.get("wall_ms", 0.0)
                    if label == labels[0] or base_row is None or wall <= 0.0:
                        speedup = ""
                    else:
                        speedup = f"{base_row.get('wall_ms', 0.0) / wall:.2f}x"
                    print(f"{name:<40} {label:<20} {row.get('n', 0):>10} "
                          f"{row.get('rounds', 0):>8} "
                          f"{wall:>12.3f} "
                          f"{row.get('peak_words', 0):>12} "
                          f"{speedup:>8}")


def plot(series_by_file, families, out_dir):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(out_dir, exist_ok=True)
    written = []
    for fam in families:
        fig, (ax_wall, ax_rounds) = plt.subplots(
            2, 1, sharex=True, figsize=(7.0, 6.0))
        for slot, (label, best) in enumerate(series_by_file.items()):
            rows = sorted(best.get(fam, {}).values(),
                          key=lambda r: r.get("n", 0))
            if not rows:
                continue
            color = PALETTE[slot % len(PALETTE)]
            ns = [r.get("n", 0) for r in rows]
            ax_wall.plot(ns, [r.get("wall_ms", 0.0) for r in rows],
                         color=color, linewidth=2, marker="o", markersize=5,
                         label=label)
            ax_rounds.plot(ns, [r.get("rounds", 0) for r in rows],
                           color=color, linewidth=2, marker="o",
                           markersize=5, label=label)
        for ax, ylabel in ((ax_wall, "wall clock (ms)"),
                           (ax_rounds, "engine rounds")):
            ax.set_xscale("log", base=2)
            ax.grid(True, color=GRID, linewidth=0.6)
            ax.set_axisbelow(True)
            ax.tick_params(colors=MUTED, labelsize=9)
            ax.set_ylabel(ylabel, color=INK, fontsize=10)
            for spine in ("top", "right"):
                ax.spines[spine].set_visible(False)
            for spine in ("left", "bottom"):
                ax.spines[spine].set_color(GRID)
        ax_wall.set_yscale("log")
        ax_rounds.set_xlabel("n (vertices)", color=INK, fontsize=10)
        if len(series_by_file) > 1:
            ax_wall.legend(frameon=False, fontsize=9, labelcolor=INK)
        ax_wall.set_title(fam, color=INK, fontsize=12, loc="left")
        fig.tight_layout()
        path = os.path.join(out_dir, f"{fam}.png")
        fig.savefig(path, dpi=144)
        plt.close(fig)
        written.append(path)
    return written


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json inputs")
    parser.add_argument("-o", "--out-dir", default="bench_plots",
                        help="output directory for PNGs")
    parser.add_argument("--families", default="",
                        help="comma-separated family filter (e.g. E01,E06)")
    parser.add_argument("--table", action="store_true",
                        help="print the text table instead of plotting")
    parser.add_argument("--baseline", default=None, metavar="BENCH_prN.json",
                        help="file to pin the speedup column against "
                             "(placed first regardless of argument order)")
    args = parser.parse_args()

    files = list(args.files)
    if args.baseline:
        files = [args.baseline] + [f for f in files
                                   if os.path.abspath(f)
                                   != os.path.abspath(args.baseline)]

    series_by_file = {}
    for path in files:
        label = os.path.splitext(os.path.basename(path))[0]
        series_by_file[label] = aggregate(load_rows(path))

    families = sorted({fam for best in series_by_file.values()
                       for fam in best})
    if args.families:
        wanted = {f.strip() for f in args.families.split(",") if f.strip()}
        families = [f for f in families if f in wanted]
    if not families:
        print("no benchmark rows found", file=sys.stderr)
        return 1

    if not args.table:
        try:
            written = plot(series_by_file, families, args.out_dir)
        except ImportError:
            print("matplotlib not available; falling back to table\n",
                  file=sys.stderr)
        else:
            for path in written:
                print(f"wrote {path}")
            return 0
    print_table(series_by_file, families)
    return 0


if __name__ == "__main__":
    sys.exit(main())
