// Induced subgraphs with vertex-id mappings.
//
// The paper's MPC algorithms repeatedly materialize induced subgraphs: the
// rank-window subgraphs of Section 3.2 and the per-machine partitions
// G'[V_i] of Section 4.3. This module extracts them and keeps the mapping
// back to the parent graph's vertex and edge ids.
#ifndef MPCG_GRAPH_SUBGRAPH_H
#define MPCG_GRAPH_SUBGRAPH_H

#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// An induced subgraph together with mappings to the parent graph.
struct InducedSubgraph {
  Graph graph;
  /// local vertex id -> parent vertex id
  std::vector<VertexId> to_parent_vertex;
  /// local edge id -> parent edge id
  std::vector<EdgeId> to_parent_edge;
};

/// Builds the subgraph of `g` induced on `vertices` (need not be sorted;
/// duplicates are an error). Runs in O(sum of degrees of `vertices`).
[[nodiscard]] InducedSubgraph induced_subgraph(
    const Graph& g, const std::vector<VertexId>& vertices);

/// Counts the edges of the subgraph induced on `vertices` without building
/// it (both endpoints must be in the set).
[[nodiscard]] std::size_t count_induced_edges(
    const Graph& g, const std::vector<VertexId>& vertices);

}  // namespace mpcg

#endif  // MPCG_GRAPH_SUBGRAPH_H
