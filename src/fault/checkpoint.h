// Driver-side round-level checkpointing.
//
// The engine's Snapshot covers the *message plane*; the driver's logical
// state (y values, freeze levels, the active frontier, ...) lives outside
// the engine and must be captured alongside it for a crash rollback to be
// sound.  Drivers register named save/restore callbacks here; the engine
// calls capture() just before applying a fault event and restore() when a
// crash forces a round replay.
//
// Checkpoints are materialized copy-on-fault: because the FaultPlan is
// deterministic and known up front, the engine only asks for a capture at
// rounds that actually carry a fault event, so fault-free rounds pay one
// branch and zero copies (see DESIGN.md, "Fault model & recovery").
//
// Captures after the first are charged *incrementally*: the registry keeps
// each provider's previous image and diffs the fresh serialization against
// it, so a capture costs (and reports) only the dirty ranges — two header
// words plus the changed words per maximal differing stretch, never more
// than a full re-serialization.  The retained image is always the full
// fresh state, so restore() stays a bit-identical full reinstatement; the
// delta encoding changes only what a capture is *charged* in
// Metrics::checkpoint_bytes, which is exactly what a real system would
// ship to stable storage.
#ifndef MPCG_FAULT_CHECKPOINT_H
#define MPCG_FAULT_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace mpcg::fault {

/// A registry of named state providers.  capture() serializes every
/// provider into one flat word buffer; restore() hands each provider back
/// exactly the words it wrote.
class CheckpointRegistry {
 public:
  using Word = std::uint64_t;
  /// Appends the provider's state to the buffer.
  using SaveFn = std::function<void(std::vector<Word>&)>;
  /// Reinstates the provider's state from the words it saved.
  using RestoreFn = std::function<void(std::span<const Word>)>;

  void register_state(std::string name, SaveFn save, RestoreFn restore);

  /// Serializes all providers (in registration order) into the retained
  /// checkpoint.  Returns the number of words this capture is charged: the
  /// full serialization the first time or whenever a provider's size
  /// changes, and the dirty-range delta against the previous capture
  /// otherwise (capped at a full save).
  std::size_t capture();

  /// Replays the last capture() into every provider.  No-op if capture()
  /// has never run.
  void restore();

  [[nodiscard]] bool has_checkpoint() const noexcept {
    return has_checkpoint_;
  }
  /// Words held by the last capture() — the full retained image, not the
  /// incremental charge capture() returned.
  [[nodiscard]] std::size_t checkpoint_words() const noexcept {
    return buffer_.size();
  }
  /// Words the most recent capture() was charged (0 before any capture).
  [[nodiscard]] std::size_t last_capture_words() const noexcept {
    return last_capture_words_;
  }
  /// Captures that were charged as dirty-range deltas rather than full
  /// serializations.
  [[nodiscard]] std::size_t delta_captures() const noexcept {
    return delta_captures_;
  }
  [[nodiscard]] std::size_t captures() const noexcept { return captures_; }
  [[nodiscard]] std::size_t restores() const noexcept { return restores_; }
  [[nodiscard]] std::size_t num_providers() const noexcept {
    return providers_.size();
  }

 private:
  struct Provider {
    std::string name;
    SaveFn save;
    RestoreFn restore;
    std::size_t offset = 0;  ///< Into buffer_, valid after capture().
    std::size_t words = 0;
  };

  std::vector<Provider> providers_;
  std::vector<Word> buffer_;
  /// Scratch for the next capture's fresh serialization (swapped into
  /// buffer_, so steady-state captures allocate nothing).
  std::vector<Word> fresh_;
  bool has_checkpoint_ = false;
  std::size_t captures_ = 0;
  std::size_t restores_ = 0;
  std::size_t last_capture_words_ = 0;
  std::size_t delta_captures_ = 0;
};

}  // namespace mpcg::fault

#endif  // MPCG_FAULT_CHECKPOINT_H
