// Graceful reprovisioning: retry an under-provisioned run with more
// resources instead of failing.
//
// The cluster-sizing analogue of exponential backoff: when a run dies on a
// capacity breach (strict CapacityError / CongestionError), exhausts its
// crash budget (FaultBudgetError), or completes but is rejected by the
// caller's acceptance predicate (e.g. non-strict violations > 0), retry
// with the resource scale doubled, up to a bounded number of attempts.
//
// The wrapper is deliberately generic over *what* gets scaled: the caller's
// run callback receives the current scale multiplier (1, 2, 4, ...) and
// applies it to words_per_machine, machine count, or both.
#ifndef MPCG_FAULT_REPROVISION_H
#define MPCG_FAULT_REPROVISION_H

#include <cstddef>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cclique/engine.h"
#include "fault/fault_plan.h"
#include "mpc/engine.h"

namespace mpcg::fault {

struct ReprovisionPolicy {
  /// Total attempts, including the first; the schedule is bounded.
  std::size_t max_attempts = 5;
  /// Resource multiplier applied between attempts (scale *= growth).
  std::size_t growth = 2;
};

template <typename Result>
struct ReprovisionOutcome {
  /// Engaged iff some attempt completed and was accepted.
  std::optional<Result> result;
  std::size_t attempts = 0;
  /// Scale multiplier of the accepted attempt (or the next scale that
  /// would have been tried, when no attempt succeeded).
  std::size_t scale = 1;
  /// One human-readable reason per failed attempt.
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const noexcept { return result.has_value(); }
};

/// Runs `run(scale)` with scale = 1, growth, growth^2, ... until `accept`
/// approves the result or the attempt budget runs out.  Capacity breaches,
/// congestion breaches, and blown crash budgets count as failed attempts;
/// any other exception propagates (it is a bug, not under-provisioning).
template <typename RunFn, typename AcceptFn>
[[nodiscard]] auto run_with_reprovision(const ReprovisionPolicy& policy,
                                        RunFn&& run, AcceptFn&& accept)
    -> ReprovisionOutcome<
        std::decay_t<decltype(run(std::declval<std::size_t>()))>> {
  using Result = std::decay_t<decltype(run(std::declval<std::size_t>()))>;
  ReprovisionOutcome<Result> outcome;
  std::size_t scale = 1;
  for (std::size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++outcome.attempts;
    try {
      Result r = run(scale);
      if (accept(r)) {
        outcome.result = std::move(r);
        outcome.scale = scale;
        return outcome;
      }
      outcome.failures.push_back("scale " + std::to_string(scale) +
                                 ": completed but rejected by acceptance "
                                 "predicate");
    } catch (const mpc::CapacityError& e) {
      outcome.failures.push_back("scale " + std::to_string(scale) + ": " +
                                 e.what());
    } catch (const cclique::CongestionError& e) {
      outcome.failures.push_back("scale " + std::to_string(scale) + ": " +
                                 e.what());
    } catch (const FaultBudgetError& e) {
      outcome.failures.push_back("scale " + std::to_string(scale) + ": " +
                                 e.what());
    }
    scale *= policy.growth;
  }
  outcome.scale = scale;
  return outcome;
}

}  // namespace mpcg::fault

#endif  // MPCG_FAULT_REPROVISION_H
