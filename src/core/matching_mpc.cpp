#include "core/matching_mpc.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/central.h"
#include "graph/residual.h"
#include "mpc/primitives.h"
#include "util/rng.h"

namespace mpcg {

namespace {

using mpc::Word;

constexpr std::uint32_t kActive = MatchingMpcResult::kActive;

class MatchingMpcRun {
 public:
  MatchingMpcRun(const Graph& g, const MatchingMpcOptions& options)
      : g_(g), o_(options), n_(g.num_vertices()), residual_(g) {
    if (!(o_.eps > 0.0) || o_.eps > 0.5) {
      throw std::invalid_argument("matching_mpc: eps must be in (0, 1/2]");
    }
    words_ = o_.words_per_machine != 0 ? o_.words_per_machine
                                       : 8 * std::max<std::size_t>(n_, 64);
    // The cluster hosts both the per-vertex home shards and the per-phase
    // simulation machines (up to sqrt(n) of them).
    const std::size_t for_shards =
        (4 * g.num_edges() + words_ - 1) / words_;
    machines_ = std::max<std::size_t>(
        {2, for_shards,
         static_cast<std::size_t>(std::ceil(std::sqrt(
             static_cast<double>(std::max<std::size_t>(n_, 4))))) });

    // Grow the cluster until the hash-balanced adjacency shards fit (see
    // mis_mpc.cpp for the same auto-sizing rule).
    const std::size_t fixed_words = n_ / 16 + 1;
    std::vector<std::size_t> shard_words;
    for (;;) {
      shard_words.assign(machines_, 0);
      home_.resize(n_);
      for (VertexId v = 0; v < n_; ++v) {
        home_[v] = static_cast<std::uint32_t>(mix64(o_.seed, v, 0x70e) %
                                              machines_);
        shard_words[home_[v]] += 1 + g.degree(v);
      }
      const std::size_t max_shard =
          shard_words.empty()
              ? 0
              : *std::max_element(shard_words.begin(), shard_words.end());
      if (o_.words_per_machine != 0 || max_shard + fixed_words <= words_ ||
          machines_ >= 2 * g.num_edges() + 2) {
        break;
      }
      machines_ *= 2;
    }
    engine_.emplace(mpc::Config{machines_, words_, o_.strict});
    for (std::size_t i = 0; i < machines_; ++i) {
      engine_->note_storage(i, shard_words[i] + fixed_words);
    }

    w0_ = (1.0 - 2.0 * o_.eps) / static_cast<double>(std::max<std::size_t>(n_, 1));
    weight_cache_.push_back(w0_);
    freeze_at_.assign(n_, kActive);
    removed_.assign(n_, 0);
  }

  MatchingMpcResult run() {
    MatchingMpcResult result;
    result.freeze_iteration.assign(n_, kActive);
    result.removed_heavy.assign(n_, 0);
    result.x.assign(g_.num_edges(), 0.0);
    if (g_.num_edges() == 0) {
      if (engine_) result.metrics = engine_->metrics();
      return result;
    }

    Rng phase_rng(mix64(o_.seed, 0x9a5e, 2));
    double d = static_cast<double>(n_);

    while (d > static_cast<double>(o_.tail_degree_switch)) {
      run_phase(d, phase_rng, result);
      const std::size_t iters = last_phase_iterations_;
      d *= std::pow(1.0 - o_.eps, static_cast<double>(iters));
      ++result.phases;
    }

    run_tail(result);

    // Outputs: weights from freeze times; cover = frozen + removed.
    for (EdgeId e = 0; e < g_.num_edges(); ++e) {
      const Edge ed = g_.edge(e);
      if (removed_[ed.u] || removed_[ed.v]) continue;  // x stays 0
      const std::uint64_t tf =
          std::min<std::uint64_t>({freeze_at_[ed.u], freeze_at_[ed.v], t_});
      result.x[e] = weight_at(tf);
    }
    for (VertexId v = 0; v < n_; ++v) {
      if (removed_[v]) {
        result.cover.push_back(v);
        result.removed_heavy[v] = 1;
      } else if (freeze_at_[v] != kActive) {
        result.cover.push_back(v);
      }
      result.freeze_iteration[v] = freeze_at_[v];
    }
    result.total_iterations = t_;
    result.metrics = engine_->metrics();
    return result;
  }

 private:
  [[nodiscard]] double weight_at(std::uint64_t iteration) const {
    while (weight_cache_.size() <= iteration) {
      weight_cache_.push_back(weight_cache_.back() / (1.0 - o_.eps));
    }
    return weight_cache_[iteration];
  }

  [[nodiscard]] bool in_graph(VertexId v) const noexcept {
    return removed_[v] == 0;
  }

  [[nodiscard]] bool active(VertexId v) const noexcept {
    return in_graph(v) && freeze_at_[v] == kActive;
  }

  /// Load of v in G[V'] at global iteration `now` (derived state; homes can
  /// compute this locally because freeze times are common knowledge).
  /// Iterates only in-graph neighbors — alive_arcs is stable, so the
  /// floating-point summation order matches a filtered scan of g_.arcs(v).
  [[nodiscard]] double load_of(VertexId v, std::uint64_t now) {
    double y = 0.0;
    for (const Arc& a : residual_.alive_arcs(v)) {
      const std::uint64_t tf =
          std::min<std::uint64_t>({freeze_at_[v], freeze_at_[a.to], now});
      y += weight_at(tf);
    }
    return y;
  }

  /// Announces freshly decided vertices (frozen with their iteration, or
  /// removed) to the whole cluster: gather at the leader, broadcast the
  /// concatenation. Keeps freeze times common knowledge. ~3 rounds; skipped
  /// when there is nothing to announce.
  void announce(const std::vector<std::pair<VertexId, std::uint64_t>>& frozen,
                const std::vector<VertexId>& removed) {
    if (frozen.empty() && removed.empty()) return;
    std::vector<std::vector<Word>> parts(machines_);
    for (const auto& [v, tf] : frozen) {
      parts[home_[v]].push_back((static_cast<Word>(v) << 32) | tf);
    }
    for (const VertexId v : removed) {
      parts[home_[v]].push_back((static_cast<Word>(v) << 32) | 0xffffffffULL);
    }
    const auto gathered = mpc::gather_to(*engine_, 0, parts);
    mpc::broadcast(*engine_, 0, gathered);
  }

  void run_phase(double d, Rng& phase_rng, MatchingMpcResult& result) {
    const auto m = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::floor(std::sqrt(d))));
    const std::size_t iters = phase_iterations(d, m);
    last_phase_iterations_ = iters;
    result.machines_per_phase.push_back(m);

    // Line (d): fresh uniform partition. The leader draws a seed and
    // broadcasts it; machine assignment is then common knowledge.
    const std::uint64_t part_seed = phase_rng();
    {
      const Word payload[] = {part_seed};
      mpc::broadcast(*engine_, 0, payload);
    }
    std::vector<std::uint32_t> machine_of(n_);
    for (VertexId v = 0; v < n_; ++v) {
      machine_of[v] =
          static_cast<std::uint32_t>(mix64(part_seed, v) % m);
    }

    // Line (b): y_old — the frozen contribution, constant over the phase.
    // Computed at each vertex's home from common knowledge. alive_arcs
    // yields exactly the in-graph neighbors, in the same (ascending) order
    // a filtered full-adjacency scan would visit them.
    std::vector<double> y_old(n_, 0.0);
    for (VertexId v = 0; v < n_; ++v) {
      if (!active(v)) continue;
      double y = 0.0;
      for (const Arc& a : residual_.alive_arcs(v)) {
        if (freeze_at_[a.to] != kActive) {
          y += weight_at(freeze_at_[a.to]);
        }
      }
      y_old[v] = y;
    }

    // Distribute the induced active subgraphs: each active edge with both
    // endpoints on the same simulation machine moves from its (lower
    // endpoint's) home shard to that machine; each active vertex's
    // (id, y_old) record moves from its home. Real pushes, one round.
    // Iterating active vertices in id order and their alive upper arcs
    // visits the active edges in edge-id (lexicographic) order, exactly as
    // a full edge-list scan would — touching only residual arcs.
    std::vector<std::vector<std::pair<VertexId, VertexId>>> local_edges(m);
    for (VertexId v = 0; v < n_; ++v) {
      if (!active(v)) continue;
      for (const Arc& a : residual_.alive_upper_arcs(v)) {
        if (!active(a.to)) continue;
        if (machine_of[v] != machine_of[a.to]) continue;
        const std::size_t target = machine_of[v];
        engine_->push(home_[v], target,
                      (static_cast<Word>(v) << 32) | a.to);
        local_edges[target].emplace_back(v, a.to);
      }
    }
    for (VertexId v = 0; v < n_; ++v) {
      if (!active(v)) continue;
      engine_->push(home_[v], machine_of[v], v);
    }
    engine_->exchange();

    std::size_t max_local_edges = 0;
    for (std::size_t i = 0; i < m; ++i) {
      max_local_edges = std::max(max_local_edges, local_edges[i].size());
    }
    result.max_local_edges_per_phase.push_back(max_local_edges);

    // Line (e): local simulation of I iterations on every machine.
    // Per-vertex local state: active degree within the machine and frozen
    // local weight, so an iteration is O(active vertices) plus O(degree)
    // per freeze.
    std::vector<std::uint32_t> local_deg(n_, 0);
    std::vector<double> local_frozen_sum(n_, 0.0);
    std::vector<std::vector<VertexId>> local_adj(n_);
    for (std::size_t i = 0; i < m; ++i) {
      for (const auto& [u, v] : local_edges[i]) {
        ++local_deg[u];
        ++local_deg[v];
        local_adj[u].push_back(v);
        local_adj[v].push_back(u);
      }
    }
    std::vector<VertexId> simulated;  // active vertices at phase start
    for (VertexId v = 0; v < n_; ++v) {
      if (active(v)) simulated.push_back(v);
    }

    std::vector<std::pair<VertexId, std::uint64_t>> frozen_this_phase;
    const std::uint64_t t_start = t_;
    for (std::size_t it = 0; it < iters; ++it) {
      const std::uint64_t tau = t_start + it;
      const double w_tau = weight_at(tau);
      std::optional<std::vector<double>> trace_row;
      if (o_.record_trace) {
        trace_row.emplace(n_, std::numeric_limits<double>::quiet_NaN());
      }
      // (A) freeze against the shared thresholds, simultaneously.
      std::vector<VertexId> newly_frozen;
      for (const VertexId v : simulated) {
        if (freeze_at_[v] != kActive) continue;
        const double y_tilde =
            static_cast<double>(m) *
                (local_frozen_sum[v] +
                 static_cast<double>(local_deg[v]) * w_tau) +
            y_old[v];
        if (trace_row) (*trace_row)[v] = y_tilde;
        const double threshold =
            central_threshold(o_.threshold_seed, v, tau, o_.eps,
                              o_.use_random_thresholds);
        if (y_tilde >= threshold) newly_frozen.push_back(v);
      }
      for (const VertexId v : newly_frozen) {
        freeze_at_[v] = static_cast<std::uint32_t>(tau);
        frozen_this_phase.emplace_back(v, tau);
      }
      // (B) is implicit (weights are derived); update local views of the
      // newly frozen vertices' edges.
      for (const VertexId v : newly_frozen) {
        for (const VertexId u : local_adj[v]) {
          if (freeze_at_[u] != kActive &&
              freeze_at_[u] < tau) {
            continue;  // edge already froze earlier
          }
          if (freeze_at_[u] == static_cast<std::uint32_t>(tau) && u < v) {
            continue;  // both froze now; handled from the lower id
          }
          // Edge (v,u) freezes at w_tau for the still-active (or
          // simultaneously frozen) partner's bookkeeping.
          if (local_deg[u] > 0) --local_deg[u];
          local_frozen_sum[u] += w_tau;
          if (local_deg[v] > 0) --local_deg[v];
          local_frozen_sum[v] += w_tau;
        }
      }
      if (trace_row) result.y_tilde_trace.push_back(std::move(*trace_row));
      ++t_;
    }

    // Machines report the freeze decisions; they become common knowledge.
    for (const auto& [v, tf] : frozen_this_phase) {
      engine_->push(machine_of[v], home_[v], (static_cast<Word>(v) << 32) | tf);
    }
    engine_->exchange();

    // Lines (g)-(h): loads on G[V'] from reconciled weights (local at
    // homes). Lines (i)-(j): heavy removal, then end-of-phase freezing.
    std::vector<VertexId> removed_now;
    std::vector<std::pair<VertexId, std::uint64_t>> frozen_now;
    for (VertexId v = 0; v < n_; ++v) {
      if (!in_graph(v)) continue;
      if (freeze_at_[v] != kActive && freeze_at_[v] < t_start) continue;
      const double y = load_of(v, t_);
      if (y > 1.0) {
        removed_now.push_back(v);
      } else if (y > 1.0 - 2.0 * o_.eps && freeze_at_[v] == kActive) {
        frozen_now.push_back({v, t_});
      }
    }
    for (const VertexId v : removed_now) {
      removed_[v] = 1;
      freeze_at_[v] = kActive;  // removed, not frozen
      residual_.kill(v);
    }
    for (const auto& [v, tf] : frozen_now) {
      freeze_at_[v] = static_cast<std::uint32_t>(tf);
    }
    announce(frozen_now, removed_now);
    announce(frozen_this_phase, {});
  }

  /// Line (4): direct simulation of Central-Rand until every edge of
  /// G[V'] is frozen. Homes compute loads locally (common knowledge) and
  /// newly frozen vertices are announced each iteration.
  void run_tail(MatchingMpcResult& result) {
    const std::size_t guard =
        2 + static_cast<std::size_t>(
                std::ceil(std::log(1.0 / w0_) / -std::log1p(-o_.eps)));
    while (true) {
      if (result.tail_iterations > guard) {
        throw std::logic_error("matching_mpc tail: did not terminate (bug)");
      }
      // Any active-active edge left? Scan only the residual (in-graph)
      // vertices and arcs, with early exit.
      bool any_active_edge = false;
      for (const VertexId v : residual_.alive_vertices()) {
        if (freeze_at_[v] != kActive) continue;
        for (const Arc& a : residual_.alive_upper_arcs(v)) {
          if (active(a.to)) {
            any_active_edge = true;
            break;
          }
        }
        if (any_active_edge) break;
      }
      if (!any_active_edge) break;

      std::optional<std::vector<double>> trace_row;
      if (o_.record_trace) {
        trace_row.emplace(n_, std::numeric_limits<double>::quiet_NaN());
      }
      std::vector<std::pair<VertexId, std::uint64_t>> frozen_now;
      for (VertexId v = 0; v < n_; ++v) {
        if (!active(v)) continue;
        const double y = load_of(v, t_);
        if (trace_row) (*trace_row)[v] = y;
        const double threshold =
            central_threshold(o_.threshold_seed, v, t_, o_.eps,
                              o_.use_random_thresholds);
        if (y >= threshold) frozen_now.push_back({v, t_});
      }
      for (const auto& [v, tf] : frozen_now) {
        freeze_at_[v] = static_cast<std::uint32_t>(tf);
      }
      announce(frozen_now, {});
      if (trace_row) result.y_tilde_trace.push_back(std::move(*trace_row));
      ++t_;
      ++result.tail_iterations;
    }
  }

  [[nodiscard]] std::size_t phase_iterations(double d, std::size_t m) const {
    if (o_.paper_iteration_schedule) {
      const double raw = std::log(static_cast<double>(m)) /
                         (10.0 * std::log(5.0));
      return std::max<std::size_t>(1, static_cast<std::size_t>(raw));
    }
    // Section 4.2 pacing: enough iterations that d (1-eps)^I <= d^beta.
    const double needed = (1.0 - o_.beta) * std::log(d) /
                          -std::log1p(-o_.eps);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(needed)));
  }

  const Graph& g_;
  const MatchingMpcOptions& o_;
  std::size_t n_;
  /// Alive == still in G[V'] (not removed as heavy). Frozen vertices stay
  /// alive; only heavy removals kill.
  ResidualGraph residual_;
  std::size_t machines_ = 0;
  std::size_t words_ = 0;
  std::optional<mpc::Engine> engine_;

  std::vector<std::uint32_t> home_;
  double w0_ = 0.0;
  mutable std::vector<double> weight_cache_;
  std::uint64_t t_ = 0;
  std::size_t last_phase_iterations_ = 0;
  std::vector<std::uint32_t> freeze_at_;
  std::vector<char> removed_;
};

}  // namespace

MatchingMpcResult matching_mpc(const Graph& g,
                               const MatchingMpcOptions& options) {
  MatchingMpcRun run(g, options);
  return run.run();
}

}  // namespace mpcg
