// Theorem 1.1 — MIS in O(log log Delta) MPC rounds with O(n) words per
// machine (paper, Section 3).
//
// The algorithm simulates the sequential randomized greedy MIS: phase i
// gathers the residual subgraph induced by ranks [r_{i-1}, r_i),
// r_i = n / Delta^{alpha^i} with alpha = 3/4, onto the leader machine
// (O(n) edges w.h.p., Lemma 3.1 / Eq. (1)), the leader plays greedy
// through those ranks, and the cluster removes the new MIS members'
// neighborhoods. Once the residual maximum degree is small the algorithm
// switches to a sparsified local-MIS stage ([Gha17]-style dynamics, see
// DESIGN.md substitutions) and finally gathers the leftover O(n)-edge graph
// onto one machine.
//
// All communication is charged through mpc::Engine; the result carries the
// engine metrics plus the per-phase loads the memory experiments need.
//
// Determinism: the run is a pure function of (graph, options.seed); with
// `use_sparsified_stage = false` the output is *exactly* the sequential
// greedy MIS of the permutation drawn from the seed (tested), because rank
// phases plus the rank-ordered final gather are a lossless simulation.
#ifndef MPCG_CORE_MIS_MPC_H
#define MPCG_CORE_MIS_MPC_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mpc/engine.h"

namespace mpcg::fault {
class FaultPlan;
}  // namespace mpcg::fault

namespace mpcg {

struct MisMpcOptions {
  std::uint64_t seed = 1;

  /// Rank-schedule exponent; the paper fixes alpha = 3/4.
  double alpha = 0.75;

  /// Switch to the sparsified stage once the residual max degree is at most
  /// this. Stands in for the paper's log^10 n, which exceeds n at
  /// laptop scale (see DESIGN.md).
  std::size_t degree_switch = 16;

  /// If false, rank phases (plus the rank-ordered final gather) run the
  /// greedy process to completion — the exact sequential-greedy simulation.
  bool use_sparsified_stage = true;

  /// Words of memory per machine, S. 0 = auto: 8n.
  std::size_t words_per_machine = 0;

  /// Number of machines, m. 0 = auto: enough that adjacency shards fit
  /// comfortably (about 4m_edges / S), at least 2.
  std::size_t num_machines = 0;

  /// Gather the whole residual graph onto the leader once its edge count is
  /// at most this. 0 = auto: S / 2.
  std::size_t gather_budget = 0;

  /// Throw CapacityError on budget violations (else count them).
  bool strict = true;

  /// Execution-backend width (see mpc::Config::threads): 1 = the
  /// sequential reference; > 1 runs the engine flushes and the rank/
  /// sparsified/final gather staging loops over a shared-memory pool,
  /// bit-identical to 1.
  std::size_t threads = 1;

  /// Deterministic fault schedule consulted by the engine at round
  /// boundaries (borrowed; must outlive the run). nullptr = fault-free.
  const fault::FaultPlan* fault_plan = nullptr;
  /// With a plan attached: recover crashes/drops by rolling back to the
  /// round checkpoint and replaying (outputs stay bit-identical to the
  /// fault-free run); false lets crashed machines go dark instead.
  bool fault_recovery = true;
  /// Per-sender stream checksums + detect->retransmit for injected payload
  /// corruption (see mpc::Config::integrity).
  bool integrity = false;
  /// Per-round conservation-invariant audit (see mpc::Config::audit).
  bool audit = false;
  /// Proactive durable-store scrub every `scrub_interval` rounds (0 =
  /// never; requires integrity — see mpc::Config::scrub_interval).
  std::size_t scrub_interval = 0;
  /// On-disk checkpoint persistence and resume (see fault/durable.h and
  /// mpc::Config::checkpoint_dir). Off while `durable.dir` is empty.
  fault::DurableOptions durable;
};

struct MisMpcResult {
  std::vector<VertexId> mis;

  /// Rank phases executed (the O(log log Delta) driver).
  std::size_t rank_phases = 0;
  /// Iterations of the sparsified local-MIS stage.
  std::size_t sparsified_iterations = 0;
  /// Residual edges gathered by the final single-machine step.
  std::size_t final_gather_edges = 0;

  /// Window-induced edge count gathered in each rank phase (Lemma 3.1 /
  /// Eq. (1) say O(n) each).
  std::vector<std::size_t> window_edges_per_phase;

  /// Engine metrics: rounds, peak per-round words, peak storage.
  mpc::Metrics metrics;

  /// Derived sizing actually used.
  std::size_t machines_used = 0;
  std::size_t words_per_machine_used = 0;
};

/// Runs the Theorem 1.1 algorithm.
[[nodiscard]] MisMpcResult mis_mpc(const Graph& g, const MisMpcOptions& options);

}  // namespace mpcg

#endif  // MPCG_CORE_MIS_MPC_H
