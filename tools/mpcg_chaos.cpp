// mpcg_chaos — randomized multi-fault soak harness for the data-integrity
// layer.
//
// Each storm draws a seeded FaultPlan::random_storm (crashes, drops,
// duplicates, delays, payload/store corruptions, checkpoint rot), runs one
// of the drivers — MIS, fractional matching, vertex cover (MPC model) or
// MIS (congested clique) — with checkpoint recovery, stream-checksum +
// durable-store integrity, audit mode, and the round-boundary scrub all
// armed, and cross-checks the result against a from-scratch fault-free
// solve:
//   * every observable output and every logical metric must be
//     bit-identical (the coupling contract);
//   * the solution must validate against the input graph from scratch
//     (maximal independent set / fractional matching / vertex cover);
//   * every injected corruption must have been detected, on the wire and
//     in the durable store (detected == injected for both).
//
// Usage:
//   mpcg_chaos [--storms 20] [--seed 1] [--n 4096] [--verbose]
//              [--backend seq|parallel] [--threads N]
//
// --backend/--threads (see src/mpc/backend.h) arm the *stormy* runs with
// the shared-memory parallel backend while the clean references stay
// sequential — so a parallel soak checks faults + integrity + recovery on
// the pool against the sequential fault-free reference, bit for bit. Kill
// storms pass the flags through to every child mpcg_run (reference,
// victim, and resume), so the SIGKILL lands on a live pool.
//
// Kill/resume storm mode (process-level durability soak; see fault/durable.h):
//   mpcg_chaos --kill-storms 20 [--run-bin path/to/mpcg_run] [--n 20000]
//              [--kill-driver mis] [--kill-family gnp_sparse]
// Each kill storm forks a reference `mpcg_run` (no persistence), then a
// persistent run SIGKILLed at a seeded 10–90% of the reference wall time,
// then one `--resume` relaunch — whose stdout must be bit-identical to the
// reference after dropping the disk-metric lines. Drivers and graph
// families cycle unless pinned with --kill-driver / --kill-family.
//
// Exits 0 iff every storm passes; any mismatch prints a FAIL line plus one
// greppable DIVERGED line naming the (seed, driver, family) tuple, and
// exits 1 — suitable for CI (including ASan jobs) as-is.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mpcg.h"
#include "util/flags.h"

namespace {

using namespace mpcg;

struct StormStats {
  std::size_t faults = 0;
  std::size_t corruptions = 0;
  std::size_t retransmitted = 0;
  std::size_t replayed = 0;
  std::size_t store_corruptions = 0;
  std::size_t store_repaired = 0;
  std::size_t ckpt_fallbacks = 0;
  std::size_t scrubs = 0;
};

/// Scrub cadence armed in every faulty run: frequent enough that multi-round
/// storms cross several scrub boundaries, cheap enough for a soak.
constexpr std::size_t kScrubInterval = 3;

bool check(bool ok, const char* what, const std::string& label,
           std::size_t& failures) {
  if (!ok) {
    std::fprintf(stderr, "FAIL %s: %s\n", label.c_str(), what);
    ++failures;
  }
  return ok;
}

// One storm against matching_mpc (algo == "matching") or the vertex-cover
// wrapper on top of it (algo == "vc").
void storm_matching(const Graph& g, std::uint64_t seed, bool want_cover,
                    std::size_t threads, const std::string& label,
                    std::size_t& failures, StormStats& stats) {
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = seed;
  const auto clean = matching_mpc(g, opt);

  const auto plan = fault::FaultPlan::random_storm(
      mix64(seed, 1, 0xc4a05), /*num_machines=*/2, clean.metrics.rounds, 8);
  MatchingMpcOptions faulty = opt;
  faulty.threads = threads;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = kScrubInterval;
  const auto stormy = matching_mpc(g, faulty);

  check(stormy.x == clean.x, "x diverged", label, failures);
  check(stormy.cover == clean.cover, "cover diverged", label, failures);
  check(stormy.freeze_iteration == clean.freeze_iteration,
        "freeze iterations diverged", label, failures);
  check(stormy.metrics.rounds == clean.metrics.rounds, "rounds diverged",
        label, failures);
  check(stormy.metrics.total_words == clean.metrics.total_words,
        "total_words diverged", label, failures);
  check(stormy.metrics.corruptions_detected ==
            stormy.metrics.corruptions_injected,
        "undetected corruption", label, failures);
  check(stormy.metrics.store_corruptions_detected ==
            stormy.metrics.store_corruptions_injected,
        "undetected store corruption", label, failures);
  check(is_fractional_matching(g, stormy.x), "x is not a fractional matching",
        label, failures);
  if (want_cover) {
    check(is_vertex_cover(g, stormy.cover), "cover does not cover", label,
          failures);
  }
  stats.faults += stormy.metrics.faults_injected;
  stats.corruptions += stormy.metrics.corruptions_injected;
  stats.retransmitted += stormy.metrics.words_retransmitted;
  stats.replayed += stormy.metrics.rounds_replayed;
  stats.store_corruptions += stormy.metrics.store_corruptions_injected;
  stats.store_repaired += stormy.metrics.store_words_repaired;
  stats.ckpt_fallbacks += stormy.metrics.checkpoint_fallbacks;
  stats.scrubs += stormy.metrics.scrub_passes;
}

void storm_mis(const Graph& g, std::uint64_t seed, std::size_t threads,
               const std::string& label, std::size_t& failures,
               StormStats& stats) {
  MisMpcOptions opt;
  opt.seed = seed;
  const auto clean = mis_mpc(g, opt);

  const auto plan = fault::FaultPlan::random_storm(
      mix64(seed, 2, 0xc4a05), /*num_machines=*/2, clean.metrics.rounds, 8);
  MisMpcOptions faulty = opt;
  faulty.threads = threads;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = kScrubInterval;
  const auto stormy = mis_mpc(g, faulty);

  check(stormy.mis == clean.mis, "mis diverged", label, failures);
  check(stormy.rank_phases == clean.rank_phases, "rank_phases diverged",
        label, failures);
  check(stormy.metrics.rounds == clean.metrics.rounds, "rounds diverged",
        label, failures);
  check(stormy.metrics.total_words == clean.metrics.total_words,
        "total_words diverged", label, failures);
  check(stormy.metrics.corruptions_detected ==
            stormy.metrics.corruptions_injected,
        "undetected corruption", label, failures);
  check(stormy.metrics.store_corruptions_detected ==
            stormy.metrics.store_corruptions_injected,
        "undetected store corruption", label, failures);
  check(is_maximal_independent_set(g, stormy.mis), "mis is not maximal",
        label, failures);
  stats.faults += stormy.metrics.faults_injected;
  stats.corruptions += stormy.metrics.corruptions_injected;
  stats.retransmitted += stormy.metrics.words_retransmitted;
  stats.replayed += stormy.metrics.rounds_replayed;
  stats.store_corruptions += stormy.metrics.store_corruptions_injected;
  stats.store_repaired += stormy.metrics.store_words_repaired;
  stats.ckpt_fallbacks += stormy.metrics.checkpoint_fallbacks;
  stats.scrubs += stormy.metrics.scrub_passes;
}

void storm_mis_cclique(const Graph& g, std::uint64_t seed,
                       std::size_t threads, const std::string& label,
                       std::size_t& failures, StormStats& stats) {
  MisCcliqueOptions opt;
  opt.seed = seed;
  const auto clean = mis_cclique(g, opt);

  const auto plan = fault::FaultPlan::random_storm(
      mix64(seed, 3, 0xc4a05), /*num_machines=*/4, clean.metrics.rounds, 8);
  MisCcliqueOptions faulty = opt;
  faulty.threads = threads;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = kScrubInterval;
  const auto stormy = mis_cclique(g, faulty);

  check(stormy.mis == clean.mis, "mis diverged", label, failures);
  check(stormy.rank_phases == clean.rank_phases, "rank_phases diverged",
        label, failures);
  check(stormy.metrics.rounds == clean.metrics.rounds, "rounds diverged",
        label, failures);
  check(stormy.metrics.total_words == clean.metrics.total_words,
        "total_words diverged", label, failures);
  check(stormy.metrics.lenzen_batches == clean.metrics.lenzen_batches,
        "lenzen_batches diverged", label, failures);
  check(stormy.metrics.corruptions_detected ==
            stormy.metrics.corruptions_injected,
        "undetected corruption", label, failures);
  check(stormy.metrics.store_corruptions_detected ==
            stormy.metrics.store_corruptions_injected,
        "undetected store corruption", label, failures);
  check(is_maximal_independent_set(g, stormy.mis), "mis is not maximal",
        label, failures);
  stats.faults += stormy.metrics.faults_injected;
  stats.corruptions += stormy.metrics.corruptions_injected;
  stats.retransmitted += stormy.metrics.words_retransmitted;
  stats.replayed += stormy.metrics.rounds_replayed;
  stats.store_corruptions += stormy.metrics.store_corruptions_injected;
  stats.store_repaired += stormy.metrics.store_words_repaired;
  stats.ckpt_fallbacks += stormy.metrics.checkpoint_fallbacks;
  stats.scrubs += stormy.metrics.scrub_passes;
}

// ---------------------------------------------------------------------------
// Kill/resume storm mode: end-to-end durability soak over real processes.
// ---------------------------------------------------------------------------

struct RunResult {
  std::string out;        // captured stdout
  int exit_code = -1;     // valid iff !signaled
  bool signaled = false;  // terminated by a signal (the SIGKILL landed)
  double wall_ms = 0.0;
};

/// Fork/exec `bin argv...`, capture its stdout through a pipe, and (when
/// `kill_after_ms >= 0`) SIGKILL it once that much wall time has elapsed.
/// stderr is inherited so child diagnostics surface in the soak log.
RunResult run_child(const std::string& bin,
                    const std::vector<std::string>& args,
                    double kill_after_ms) {
  int fds[2];
  if (pipe(fds) != 0) throw std::runtime_error("mpcg_chaos: pipe() failed");
  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("mpcg_chaos: fork() failed");
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<char*> cargv;
    cargv.push_back(const_cast<char*>(bin.c_str()));
    for (const auto& a : args) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    execv(bin.c_str(), cargv.data());
    std::fprintf(stderr, "mpcg_chaos: execv %s: %s\n", bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(fds[1]);

  const auto elapsed_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  RunResult r;
  bool killed = false;
  char buf[4096];
  for (;;) {
    int timeout = -1;
    if (kill_after_ms >= 0.0 && !killed) {
      const double left = kill_after_ms - elapsed_ms();
      if (left <= 0.0) {
        kill(pid, SIGKILL);
        killed = true;
      } else {
        timeout = static_cast<int>(left) + 1;
      }
    }
    struct pollfd p = {fds[0], POLLIN, 0};
    const int pr = poll(&p, 1, timeout);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;  // timeout expired: loop re-checks the kill clock
    const ssize_t k = read(fds[0], buf, sizeof buf);
    if (k <= 0) break;  // EOF: the child exited (or was killed)
    r.out.append(buf, static_cast<std::size_t>(k));
  }
  r.wall_ms = elapsed_ms();
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    r.signaled = true;
  } else if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  }
  return r;
}

/// Drop the disk-metric lines persistence adds to mpcg_run's report, so a
/// persistent/resumed run compares bit-identically against a plain one.
std::string strip_disk_metrics(const std::string& out) {
  static constexpr const char* kKeys[] = {
      "disk_checkpoints_written", "disk_checkpoint_words", "resume_loads",
      "disk_fallbacks", "faults_skipped_on_resume"};
  std::string kept;
  kept.reserve(out.size());
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) nl = out.size() - 1;
    const std::string_view line(out.data() + pos, nl + 1 - pos);
    bool drop = false;
    for (const char* key : kKeys) {
      const std::size_t len = std::strlen(key);
      if (line.size() > len && line.substr(0, len) == key &&
          line[len] == '\t') {
        drop = true;
        break;
      }
    }
    if (!drop) kept.append(line);
    pos = nl + 1;
  }
  return kept;
}

std::string make_temp_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && *base != '\0' ? base
                                                                  : "/tmp") +
                     "/mpcg_kill.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("mpcg_chaos: mkdtemp failed");
  }
  return std::string(buf.data());
}

/// One kill storm: reference run, SIGKILLed persistent run, --resume
/// relaunch, bit-identity check. Returns true iff the storm is clean.
bool kill_storm(const std::string& run_bin, const char* driver,
                const char* family, std::size_t n, std::uint64_t trial_seed,
                std::size_t threads, const std::string& label, bool verbose,
                std::size_t& kills_landed, std::size_t& failures) {
  // Seeds reach mpcg_run through a signed flag parser — keep them positive.
  const std::uint64_t run_seed = (trial_seed & 0x7fffffffULL) | 1ULL;
  std::vector<std::string> base = {
      "--algo", driver,
      "--family", family,
      "--n", std::to_string(n),
      "--seed", std::to_string(run_seed),
      "--check", "true"};
  if (threads > 1) {
    base.insert(base.end(), {"--threads", std::to_string(threads)});
  }

  const RunResult ref = run_child(run_bin, base, /*kill_after_ms=*/-1.0);
  if (ref.signaled || ref.exit_code != 0) {
    check(false, "reference run failed", label, failures);
    return false;
  }

  const std::string dir = make_temp_dir();
  std::vector<std::string> durable = base;
  durable.insert(durable.end(),
                 {"--checkpoint-dir", dir, "--checkpoint-every", "1"});
  // Seeded kill point at 10–90% of the reference wall time; the exact
  // landing round is scheduler noise by design — that is the property
  // under test (any kill point must resume bit-identically).
  const double frac =
      0.10 + 0.80 * static_cast<double>(mix64(trial_seed, 0x6b11, 1) % 10000) /
                 10000.0;
  const RunResult victim = run_child(run_bin, durable, frac * ref.wall_ms);
  if (victim.signaled) ++kills_landed;
  bool ok = true;
  if (!victim.signaled && victim.exit_code != 0) {
    ok = check(false, "persistent run failed before the kill landed", label,
               failures);
  }

  std::vector<std::string> resume = base;
  resume.insert(resume.end(),
                {"--checkpoint-dir", dir, "--resume", "true"});
  const RunResult resumed = run_child(run_bin, resume, /*kill_after_ms=*/-1.0);
  if (resumed.signaled || resumed.exit_code != 0) {
    ok = check(false, "resume run failed", label, failures);
  } else {
    ok &= check(strip_disk_metrics(resumed.out) ==
                    strip_disk_metrics(ref.out),
                "resumed output diverged from the reference run", label,
                failures);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (ok && verbose) {
    std::printf("ok   %s (%s, kill at %.0f%% of %.0f ms)\n", label.c_str(),
                victim.signaled ? "killed mid-run" : "finished before kill",
                100.0 * frac, ref.wall_ms);
  }
  return ok;
}

int run_kill_storms(const std::string& run_bin, std::size_t storms,
                    std::uint64_t seed, std::size_t n, std::size_t threads,
                    const std::string& only_driver,
                    const std::string& only_family, bool verbose) {
  static constexpr const char* kDrivers[] = {"mis", "matching", "vc",
                                             "mis_cc"};
  static constexpr const char* kFamilies[] = {"gnp_sparse", "rmat", "star"};
  std::size_t failures = 0;
  std::size_t clean = 0;
  std::size_t kills_landed = 0;
  for (std::size_t s = 0; s < storms; ++s) {
    const char* driver =
        only_driver.empty() ? kDrivers[s % 4] : only_driver.c_str();
    const char* family =
        only_family.empty() ? kFamilies[(s / 4) % 3] : only_family.c_str();
    const std::uint64_t trial_seed = mix64(seed, s, 0x6b11);
    const std::string label = "kill-storm " + std::to_string(s) + " (" +
                              driver + ", " + family + ")";
    const std::size_t before = failures;
    try {
      kill_storm(run_bin, driver, family, n, trial_seed, threads, label,
                 verbose, kills_landed, failures);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: %s\n", label.c_str(), e.what());
      ++failures;
    }
    if (failures == before) {
      ++clean;
    } else {
      std::fprintf(stderr,
                   "DIVERGED seed=%llu storm=%zu driver=%s family=%s n=%zu "
                   "storm_seed=%llu mode=kill\n",
                   static_cast<unsigned long long>(seed), s, driver, family,
                   n, static_cast<unsigned long long>(trial_seed));
    }
  }
  std::printf("%zu/%zu kill storms clean | kills landed mid-run %zu\n", clean,
              storms, kills_landed);
  if (failures != 0) {
    std::fprintf(stderr, "mpcg_chaos: %zu kill-storm check(s) failed\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mpcg::Flags flags(argc, argv);
    const std::size_t storms =
        static_cast<std::size_t>(flags.get_int("storms", 20));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 4096));
    const bool verbose = flags.get_bool("verbose", false);
    const std::size_t kill_storms =
        static_cast<std::size_t>(flags.get_int("kill-storms", 0));
    const std::string default_run_bin =
        (std::filesystem::path(argv[0]).parent_path() / "mpcg_run").string();
    const std::string run_bin = flags.get_string("run-bin", default_run_bin);
    const std::string kill_driver = flags.get_string("kill-driver", "");
    const std::string kill_family = flags.get_string("kill-family", "");
    const std::string backend = flags.get_string("backend", "");
    const std::int64_t threads_flag = flags.get_int("threads", 0);
    if (const auto unused = flags.unused(); !unused.empty()) {
      std::fprintf(stderr, "unknown flag --%s\n", unused.front().c_str());
      return 2;
    }
    if (!backend.empty() && backend != "seq" && backend != "parallel") {
      std::fprintf(stderr, "--backend must be seq or parallel (got %s)\n",
                   backend.c_str());
      return 2;
    }
    if (flags.has("threads") && threads_flag < 1) {
      std::fprintf(stderr, "--threads must be >= 1 (got %lld)\n",
                   static_cast<long long>(threads_flag));
      return 2;
    }
    std::size_t threads = backend == "parallel" ? 4 : 1;
    if (flags.has("threads")) threads = static_cast<std::size_t>(threads_flag);
    if (backend == "seq" && threads > 1) {
      std::fprintf(stderr, "--backend seq conflicts with --threads %zu\n",
                   threads);
      return 2;
    }
    if (kill_storms != 0) {
      return run_kill_storms(run_bin, kill_storms, seed, n, threads,
                             kill_driver, kill_family, verbose);
    }

    static constexpr const char* kDrivers[] = {"mis", "matching", "vc",
                                               "mis_cc"};
    static constexpr const char* kFamilies[] = {"gnp_sparse", "gnp_dense",
                                                "rmat", "star"};
    std::size_t failures = 0;
    std::size_t clean_storms = 0;
    StormStats stats;
    for (std::size_t s = 0; s < storms; ++s) {
      const char* driver = kDrivers[s % 4];
      const char* family = kFamilies[(s / 4) % 4];
      const std::uint64_t storm_seed = mpcg::mix64(seed, s, 0xc4a05);
      const std::string label = "storm " + std::to_string(s) + " (" + driver +
                                ", " + family + ")";
      const mpcg::Graph g = mpcg::graph_family(family, n, storm_seed);
      const std::size_t before = failures;
      try {
        if (std::string(driver) == "mis") {
          storm_mis(g, storm_seed, threads, label, failures, stats);
        } else if (std::string(driver) == "matching") {
          storm_matching(g, storm_seed, /*want_cover=*/false, threads, label,
                         failures, stats);
        } else if (std::string(driver) == "vc") {
          storm_matching(g, storm_seed, /*want_cover=*/true, threads, label,
                         failures, stats);
        } else {
          storm_mis_cclique(g, storm_seed, threads, label, failures, stats);
        }
      } catch (const std::exception& e) {
        // A throwing storm (budget blown, unrepaired rot, audit breach) is
        // a failure of that storm, not of the whole soak — record it and
        // keep going so one line names every bad tuple.
        std::fprintf(stderr, "FAIL %s: %s\n", label.c_str(), e.what());
        ++failures;
      }
      if (failures == before) {
        ++clean_storms;
        if (verbose) std::printf("ok   %s\n", label.c_str());
      } else {
        // One greppable line per failing storm: everything needed to
        // reproduce it (`--storms 1` won't land on the same tuple, so the
        // full coordinates matter).
        std::fprintf(stderr,
                     "DIVERGED seed=%llu storm=%zu driver=%s family=%s "
                     "n=%zu storm_seed=%llu\n",
                     static_cast<unsigned long long>(seed), s, driver, family,
                     n, static_cast<unsigned long long>(storm_seed));
      }
    }

    std::printf(
        "%zu/%zu storms clean | faults %zu corruptions %zu "
        "retransmitted %zu replays %zu | store corruptions %zu "
        "repaired %zu ckpt fallbacks %zu scrubs %zu\n",
        clean_storms, storms, stats.faults, stats.corruptions,
        stats.retransmitted, stats.replayed, stats.store_corruptions,
        stats.store_repaired, stats.ckpt_fallbacks, stats.scrubs);
    if (failures != 0) {
      std::fprintf(stderr, "mpcg_chaos: %zu check(s) failed\n", failures);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpcg_chaos: %s\n", e.what());
    return 1;
  }
}
