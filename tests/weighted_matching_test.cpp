#include <cmath>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/greedy_matching.h"
#include "core/weighted_matching.h"
#include "gen/generators.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

WeightedMatchingOptions opts(double eps = 0.2, std::uint64_t seed = 1) {
  WeightedMatchingOptions o;
  o.eps = eps;
  o.seed = seed;
  return o;
}

TEST(WeightedMatching, EmptyGraph) {
  const Graph g = GraphBuilder(3).build();
  const auto r = weighted_matching(g, {}, opts());
  EXPECT_TRUE(r.matching.empty());
  EXPECT_DOUBLE_EQ(r.weight, 0.0);
}

TEST(WeightedMatching, RejectsBadInput) {
  const Graph g = path_graph(3);
  EXPECT_THROW(weighted_matching(g, {1.0}, opts()), std::invalid_argument);
  auto o = opts();
  o.eps = 0.0;
  EXPECT_THROW(weighted_matching(g, {1.0, 1.0}, o), std::invalid_argument);
}

TEST(WeightedMatching, PrefersHeavyEdge) {
  // Path 0-1-2-3 with a dominant middle edge: optimal takes just it...
  const Graph g = path_graph(4);
  std::vector<double> w(g.num_edges(), 1.0);
  w[g.find_edge(1, 2)] = 100.0;
  const auto r = weighted_matching(g, w, opts(0.1, 3));
  EXPECT_TRUE(is_matching(g, r.matching));
  // The heavy edge must be in the output (it is its own class, processed
  // first, and nothing blocks it).
  bool has_heavy = false;
  for (const EdgeId e : r.matching) {
    if (e == g.find_edge(1, 2)) has_heavy = true;
  }
  EXPECT_TRUE(has_heavy);
  EXPECT_GE(r.weight, 100.0);
}

TEST(WeightedMatching, FactorAgainstBruteForce) {
  Rng rng(5);
  int checked = 0;
  for (int trial = 0; trial < 80 && checked < 30; ++trial) {
    const Graph g = erdos_renyi_gnp(10, 0.4, rng);
    if (g.num_edges() == 0 || g.num_edges() > 24) continue;
    ++checked;
    const auto w = uniform_weights(g, 0.5, 4.0, rng);
    const double eps = 0.2;
    const auto r = weighted_matching(g, w, opts(eps, trial));
    EXPECT_TRUE(is_matching(g, r.matching));
    const double opt = brute_force_max_weight_matching(g, w);
    // 2(1+eps) blame factor plus the eps/2 cutoff slack.
    const double factor = 2.0 * (1.0 + eps) / (1.0 - eps);
    EXPECT_GE(r.weight * factor, opt - 1e-9)
        << "got " << r.weight << " opt " << opt;
  }
  EXPECT_GE(checked, 15);
}

TEST(WeightedMatching, ComparableToGreedyOnLargeGraphs) {
  for (const char* family : {"gnp_dense", "power_law", "bipartite"}) {
    const Graph g = make_family(family, 400, 7);
    if (g.num_edges() == 0) continue;
    Rng rng(9);
    const auto w = exponential_weights(g, 2.0, rng);
    const auto r = weighted_matching(g, w, opts(0.2, 9));
    EXPECT_TRUE(is_matching(g, r.matching));
    const double greedy_w =
        matching_weight(greedy_weighted_matching(g, w), w);
    // Greedy is 1/2-optimal; ours is 1/(2(1+eps))-optimal; so ours is at
    // least ~ (1-eps) x greedy / (1+eps). Allow generous slack for the
    // randomized per-class matchings.
    EXPECT_GE(r.weight, 0.55 * greedy_w) << family;
  }
}

TEST(WeightedMatching, ClassCountLogarithmic) {
  const Graph g = make_family("gnp_dense", 300, 11);
  Rng rng(11);
  const auto w = uniform_weights(g, 1.0, 100.0, rng);
  const double eps = 0.2;
  const auto r = weighted_matching(g, w, opts(eps, 11));
  // Classes cover [cutoff, w_max]: at most log_{1+eps}(n/eps) + 1.
  const double bound =
      std::log(static_cast<double>(g.num_vertices()) / eps) /
          std::log1p(eps) + 2;
  EXPECT_LE(static_cast<double>(r.num_classes), bound);
}

TEST(WeightedMatching, DropsOnlyNegligibleEdges) {
  const Graph g = path_graph(5);
  std::vector<double> w{10.0, 1e-9, 10.0, 1e-9};
  const auto r = weighted_matching(g, w, opts(0.2, 13));
  EXPECT_EQ(r.dropped_edges, 2U);
  EXPECT_DOUBLE_EQ(r.weight, 20.0);
}

TEST(WeightedMatching, UniformWeightsReduceToCardinality) {
  const Graph g = make_family("gnp_sparse", 300, 15);
  std::vector<double> w(g.num_edges(), 1.0);
  const auto r = weighted_matching(g, w, opts(0.2, 15));
  EXPECT_EQ(r.num_classes, 1U);
  EXPECT_TRUE(is_matching(g, r.matching));
  // Single class => maximal matching => at least half of nu in size.
  EXPECT_TRUE(is_maximal_matching(g, r.matching));
}

TEST(WeightedMatching, DeterministicPerSeed) {
  const Graph g = make_family("rmat", 200, 17);
  Rng rng(17);
  const auto w = uniform_weights(g, 1.0, 10.0, rng);
  const auto a = weighted_matching(g, w, opts(0.2, 19));
  const auto b = weighted_matching(g, w, opts(0.2, 19));
  EXPECT_EQ(a.matching, b.matching);
}

TEST(WeightedMatching, AllZeroWeights) {
  const Graph g = path_graph(4);
  std::vector<double> w(g.num_edges(), 0.0);
  const auto r = weighted_matching(g, w, opts(0.2, 21));
  EXPECT_TRUE(r.matching.empty());
}

TEST(WeightedMatching, IsraeliItaiSubroutineAlsoValid) {
  const Graph g = make_family("gnp_dense", 300, 23);
  Rng rng(23);
  const auto w = exponential_weights(g, 2.0, rng);
  auto o = opts(0.2, 23);
  o.subroutine = ClassSubroutine::kIsraeliItai;
  const auto r = weighted_matching(g, w, o);
  EXPECT_TRUE(is_matching(g, r.matching));
  // Same blame-charging guarantee regardless of subroutine: compare to the
  // greedy reference.
  const double greedy_w = matching_weight(greedy_weighted_matching(g, w), w);
  EXPECT_GE(r.weight, 0.5 * greedy_w);
}

TEST(WeightedMatching, SubroutinesAgreeOnSingleClassMaximality) {
  const Graph g = make_family("gnp_sparse", 200, 25);
  std::vector<double> w(g.num_edges(), 1.0);
  for (const ClassSubroutine sub :
       {ClassSubroutine::kLmsvFiltering, ClassSubroutine::kIsraeliItai}) {
    auto o = opts(0.2, 25);
    o.subroutine = sub;
    const auto r = weighted_matching(g, w, o);
    EXPECT_TRUE(is_maximal_matching(g, r.matching));
  }
}

}  // namespace
}  // namespace mpcg
