// Section 5, Lemma 5.1 — randomized rounding of a fractional matching.
//
// Given a fractional matching x and a set C~ of vertices with load at least
// 1-beta (beta <= 1/2), every vertex v in C~ draws one proposal X_v: a
// neighbor u with probability x_{uv}/10 each, or no proposal (the paper's
// star symbol) with the remaining probability >= 9/10. The proposal edges
// form H; the *good* edges of H — those sharing no endpoint with another
// H-edge — are returned. Lemma 5.1: |M| >= |C~|/50 with probability
// 1 - 2 exp(-|C~|/5000).
//
// Every decision is local to a vertex's neighborhood, which is why the
// paper calls the rounding straightforward to parallelize (one MPC round:
// proposals out, conflict detection in the neighborhood).
#ifndef MPCG_CORE_ROUNDING_H
#define MPCG_CORE_ROUNDING_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// One rounding trial. `candidates` is C~; randomness is stateless in
/// (seed, v), so a different seed gives an independent retrial.
[[nodiscard]] std::vector<EdgeId> round_fractional_matching(
    const Graph& g, const std::vector<double>& x,
    const std::vector<VertexId>& candidates, std::uint64_t seed);

/// Vertices whose load under x is at least `min_load` — the C~ the
/// integral pipeline feeds to the rounding (paper: 1 - 5 eps).
[[nodiscard]] std::vector<VertexId> heavy_vertices(
    const Graph& g, const std::vector<double>& x, double min_load);

/// heavy_vertices with the load sweep restricted to a support edge list
/// (every edge outside it must have x == 0 — e.g.
/// MatchingMpcResult::support). Identical output, O(n + |support|) instead
/// of O(n + m): the sweep stops at the surviving support instead of
/// rescanning the full edge list.
[[nodiscard]] std::vector<VertexId> heavy_vertices(
    const Graph& g, const std::vector<double>& x, double min_load,
    std::span<const EdgeId> support);

}  // namespace mpcg

#endif  // MPCG_CORE_ROUNDING_H
