#include <gtest/gtest.h>

#include "util/flags.h"

namespace mpcg {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const auto f = parse({"--n=42", "--family=gnp_dense"});
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_EQ(f.get_string("family", ""), "gnp_dense");
}

TEST(Flags, SpaceSyntax) {
  const auto f = parse({"--n", "42", "--eps", "0.25"});
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("eps", 0.0), 0.25);
}

TEST(Flags, BareKeyIsTrue) {
  const auto f = parse({"--check", "--n=3"});
  EXPECT_TRUE(f.get_bool("check", false));
  EXPECT_TRUE(f.has("check"));
  EXPECT_FALSE(f.has("absent"));
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_string("family", "x"), "x");
  EXPECT_FALSE(f.get_bool("check", false));
  EXPECT_DOUBLE_EQ(f.get_double("eps", 0.5), 0.5);
}

TEST(Flags, BoolParsing) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_THROW((void)parse({"--a=yes"}).get_bool("a", false),
               std::invalid_argument);
}

TEST(Flags, RejectsMalformedTokens) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
  EXPECT_THROW(parse({"-n", "3"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Flags, RejectsBadNumbers) {
  EXPECT_THROW((void)parse({"--n=abc"}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"--n=12x"}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"--eps=zz"}).get_double("eps", 0.0),
               std::invalid_argument);
}

TEST(Flags, TracksUnusedKeys) {
  const auto f = parse({"--used=1", "--typo=2"});
  (void)f.get_int("used", 0);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1U);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, NegativeNumberAsValue) {
  // "-5" must not be mistaken for a flag.
  const auto f = parse({"--offset", "-5"});
  EXPECT_EQ(f.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace mpcg
