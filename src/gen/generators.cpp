#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace mpcg {

namespace {

/// Packs an edge into a 64-bit key for dedup sets.
std::uint64_t edge_key(VertexId u, VertexId v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng) {
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return builder.build();
  if (p >= 1.0) return complete_graph(n);

  // Iterate potential edges in lexicographic order, skipping geometrically.
  const double log_q = std::log1p(-p);
  std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  while (true) {
    const double r = rng.next_double();
    // Geometric skip: number of non-edges before the next edge.
    const double skip = std::floor(std::log(1.0 - r) / log_q);
    idx += static_cast<std::uint64_t>(std::min(skip, 1e18)) + 1;
    if (idx > total) break;
    // Convert linear index (1-based) to (u, v).
    const std::uint64_t k = idx - 1;
    // Row u satisfies: offset(u) <= k < offset(u+1), offset(u) = u*n - u(u+3)/2... use direct solve:
    // Edges from vertex u: (u, u+1..n-1), count n-1-u. Cumulative C(u) = u*n - u - u(u-1)/2.
    std::uint64_t u = 0;
    {
      // Binary search for u.
      std::uint64_t lo = 0;
      std::uint64_t hi = n - 1;
      const auto cum = [&](std::uint64_t uu) {
        return uu * (n - 1) - uu * (uu - 1) / 2;
      };
      while (lo < hi) {
        const std::uint64_t mid = (lo + hi + 1) / 2;
        if (cum(mid) <= k) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      u = lo;
    }
    const std::uint64_t base = u * (n - 1) - u * (u - 1) / 2;
    const std::uint64_t v = u + 1 + (k - base);
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.build();
}

Graph erdos_renyi_gnm(std::size_t n, std::size_t m, Rng& rng) {
  GraphBuilder builder(n);
  if (n < 2) return builder.build();
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  m = static_cast<std::size_t>(
      std::min<std::uint64_t>(m, total));
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (chosen.insert(edge_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph chung_lu_power_law(std::size_t n, double beta, double avg_degree,
                         Rng& rng) {
  if (n == 0) return GraphBuilder(0).build();
  if (beta <= 1.0) throw std::invalid_argument("chung_lu: beta must be > 1");
  // Expected degrees w_i ~ c * i^{-1/(beta-1)}, scaled to the target mean.
  std::vector<double> w(n);
  const double exponent = -1.0 / (beta - 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), exponent);
    sum += w[i];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  double total = 0.0;
  for (auto& wi : w) {
    wi *= scale;
    total += wi;
  }

  // Efficient Chung-Lu sampling (Miller–Hagberg): vertices sorted by weight
  // descending (they already are), skip-sample within each row.
  GraphBuilder builder(n);
  for (std::size_t u = 0; u + 1 < n; ++u) {
    std::size_t v = u + 1;
    double p = std::min(1.0, w[u] * w[v] / total);
    while (v < n && p > 0.0) {
      if (p < 1.0) {
        const double r = rng.next_double();
        const double skip = std::floor(std::log(r) / std::log1p(-p));
        v += static_cast<std::size_t>(std::min(skip, 1e18));
      }
      if (v >= n) break;
      const double q = std::min(1.0, w[u] * w[v] / total);
      if (rng.next_double() < q / p) {
        builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      }
      p = q;
      ++v;
    }
  }
  return builder.build();
}

Graph barabasi_albert(std::size_t n, std::size_t k, Rng& rng) {
  if (k == 0 || n == 0) return GraphBuilder(n).build();
  k = std::min(k, n > 1 ? n - 1 : std::size_t{0});
  GraphBuilder builder(n);
  // repeated-endpoints list for preferential attachment
  std::vector<VertexId> targets;
  const std::size_t seed_size = std::max<std::size_t>(k, 1);
  // Seed: clique on the first seed_size+1 vertices (or fewer).
  const std::size_t s = std::min(n, seed_size + 1);
  for (std::size_t u = 0; u < s; ++u) {
    for (std::size_t v = u + 1; v < s; ++v) {
      builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      targets.push_back(static_cast<VertexId>(u));
      targets.push_back(static_cast<VertexId>(v));
    }
  }
  for (std::size_t u = s; u < n; ++u) {
    std::unordered_set<VertexId> picked;
    while (picked.size() < k) {
      const VertexId t = targets[rng.next_below(targets.size())];
      picked.insert(t);
    }
    for (const VertexId t : picked) {
      builder.add_edge(static_cast<VertexId>(u), t);
      targets.push_back(static_cast<VertexId>(u));
      targets.push_back(t);
    }
  }
  return builder.build();
}

Graph random_bipartite(std::size_t left, std::size_t right, double p,
                       Rng& rng) {
  GraphBuilder builder(left + right);
  if (p <= 0.0 || left == 0 || right == 0) return builder.build();
  if (p >= 1.0) return complete_bipartite(left, right);
  // Geometric skipping over the left x right grid.
  const double log_q = std::log1p(-p);
  const std::uint64_t total = static_cast<std::uint64_t>(left) * right;
  std::uint64_t idx = 0;
  while (true) {
    const double r = rng.next_double();
    const double skip = std::floor(std::log(1.0 - r) / log_q);
    idx += static_cast<std::uint64_t>(std::min(skip, 1e18)) + 1;
    if (idx > total) break;
    const std::uint64_t kk = idx - 1;
    const auto u = static_cast<VertexId>(kk / right);
    const auto v = static_cast<VertexId>(left + (kk % right));
    builder.add_edge(u, v);
  }
  return builder.build();
}

Graph rmat(std::size_t scale, std::size_t edges, double a, double b, double c,
           Rng& rng) {
  const std::size_t n = std::size_t{1} << scale;
  GraphBuilder builder(n);
  const double d = 1.0 - a - b - c;
  if (d < -1e-9) throw std::invalid_argument("rmat: a+b+c must be <= 1");
  for (std::size_t e = 0; e < edges; ++e) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    for (std::size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: no bits
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) {
      builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return builder.build();
}

Graph random_geometric(std::size_t n, double radius, Rng& rng) {
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.next_double();
    ys[i] = rng.next_double();
  }
  const double r2 = radius * radius;
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx * dx + dy * dy <= r2) {
        builder.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      }
    }
  }
  return builder.build();
}

Graph path_graph(std::size_t n) {
  GraphBuilder builder(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    builder.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return builder.build();
}

Graph cycle_graph(std::size_t n) {
  GraphBuilder builder(n);
  if (n >= 3) {
    for (std::size_t i = 0; i < n; ++i) {
      builder.add_edge(static_cast<VertexId>(i),
                       static_cast<VertexId>((i + 1) % n));
    }
  } else if (n == 2) {
    builder.add_edge(0, 1);
  }
  return builder.build();
}

Graph complete_graph(std::size_t n) {
  GraphBuilder builder(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return builder.build();
}

Graph star_graph(std::size_t n) {
  GraphBuilder builder(n);
  for (std::size_t v = 1; v < n; ++v) {
    builder.add_edge(0, static_cast<VertexId>(v));
  }
  return builder.build();
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  GraphBuilder builder(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return builder.build();
}

Graph clique_union(std::size_t count, std::size_t size) {
  GraphBuilder builder(count * size);
  for (std::size_t q = 0; q < count; ++q) {
    const std::size_t base = q * size;
    for (std::size_t u = 0; u < size; ++u) {
      for (std::size_t v = u + 1; v < size; ++v) {
        builder.add_edge(static_cast<VertexId>(base + u),
                         static_cast<VertexId>(base + v));
      }
    }
  }
  return builder.build();
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  GraphBuilder builder(a + b);
  for (std::size_t u = 0; u < a; ++u) {
    for (std::size_t v = 0; v < b; ++v) {
      builder.add_edge(static_cast<VertexId>(u),
                       static_cast<VertexId>(a + v));
    }
  }
  return builder.build();
}

std::vector<double> uniform_weights(const Graph& g, double lo, double hi,
                                    Rng& rng) {
  std::vector<double> w(g.num_edges());
  for (auto& wi : w) wi = rng.next_in(lo, hi);
  return w;
}

std::vector<double> exponential_weights(const Graph& g, double mean,
                                        Rng& rng) {
  std::vector<double> w(g.num_edges());
  for (auto& wi : w) {
    wi = -mean * std::log(1.0 - rng.next_double());
  }
  return w;
}

}  // namespace mpcg
