#include "core/mis_cclique.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/local_mis.h"
#include "util/permutation.h"
#include "util/rng.h"

namespace mpcg {

namespace {

using cclique::Message;
using cclique::Word;

Word encode_pair(VertexId a, VertexId b) noexcept {
  return (static_cast<Word>(a) << 32) | b;
}

std::pair<VertexId, VertexId> decode_pair(Word w) noexcept {
  return {static_cast<VertexId>(w >> 32),
          static_cast<VertexId>(w & 0xffffffffULL)};
}

class MisCcliqueRun {
 public:
  MisCcliqueRun(const Graph& g, const MisCcliqueOptions& options)
      : g_(g), options_(options), n_(g.num_vertices()),
        engine_(std::max<std::size_t>(n_, 1), options.strict) {
    gather_budget_ = options.gather_budget != 0 ? options.gather_budget : n_;
    alive_.assign(n_, 1);
    in_mis_.assign(n_, 0);
  }

  MisCcliqueResult run() {
    MisCcliqueResult result;
    if (n_ == 0) return result;

    // Leader draws the order, tells each player its rank (one word each),
    // and every player broadcasts its rank — the order becomes common
    // knowledge in 2 rounds (paper, Section 3.2).
    Rng rng(options_.seed);
    perm_ = random_permutation(n_, rng);
    rank_of_ = invert_permutation(perm_);
    for (VertexId v = 1; v < n_; ++v) {
      engine_.send(0, v, rank_of_[v]);
    }
    engine_.exchange();
    for (VertexId v = 0; v < n_; ++v) {
      engine_.broadcast(v, rank_of_[v]);
    }
    engine_.exchange();

    const double delta0 = std::max<double>(2.0, static_cast<double>(
                                                    g_.max_degree()));
    const double log_delta = std::log2(delta0);

    std::size_t next_rank = 0;
    while (true) {
      const std::uint64_t alive_edges = count_alive_edges();
      if (alive_edges <= gather_budget_) {
        final_gather(result);
        break;
      }
      if (options_.use_sparsified_stage &&
          max_alive_degree() <= options_.degree_switch) {
        sparsified_stage(result);
        final_gather(result);
        break;
      }
      ++result.rank_phases;
      const double exponent =
          std::pow(options_.alpha, static_cast<double>(result.rank_phases));
      auto upper = static_cast<std::size_t>(
          std::llround(static_cast<double>(n_) *
                       std::pow(2.0, -exponent * log_delta)));
      upper = std::clamp(upper, next_rank + 1, n_);
      rank_phase(next_rank, upper, result);
      next_rank = upper;
    }

    result.metrics = engine_.metrics();
    result.mis = std::move(mis_);
    return result;
  }

 private:
  std::uint64_t alive_degree(VertexId v) const {
    std::uint64_t d = 0;
    for (const Arc& a : g_.arcs(v)) {
      if (alive_[a.to]) ++d;
    }
    return d;
  }

  /// Every alive player broadcasts its alive degree; everybody can then
  /// compute the total edge count (one round).
  std::uint64_t count_alive_edges() {
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < n_; ++v) {
      if (!alive_[v]) continue;
      const std::uint64_t d = alive_degree(v);
      engine_.broadcast(v, d);
      sum += d;
    }
    engine_.exchange();
    return sum / 2;
  }

  std::uint64_t max_alive_degree() {
    std::uint64_t best = 0;
    for (VertexId v = 0; v < n_; ++v) {
      if (!alive_[v]) continue;
      const std::uint64_t d = alive_degree(v);
      engine_.broadcast(v, d);
      best = std::max(best, d);
    }
    engine_.exchange();
    return best;
  }

  /// Members broadcast their membership; every player checks its own
  /// adjacency and the dying broadcast their deaths. Two rounds; the alive
  /// flags stay common knowledge.
  void commit_via_broadcasts(const std::vector<VertexId>& mis_new) {
    if (mis_new.empty()) return;
    std::vector<char> is_new(n_, 0);
    for (const VertexId v : mis_new) {
      is_new[v] = 1;
      engine_.broadcast(v, v);
    }
    engine_.exchange();
    std::vector<VertexId> died;
    for (VertexId v = 0; v < n_; ++v) {
      if (!alive_[v]) continue;
      bool dies = is_new[v] != 0;
      if (!dies) {
        for (const Arc& a : g_.arcs(v)) {
          if (is_new[a.to]) {
            dies = true;
            break;
          }
        }
      }
      if (dies) {
        died.push_back(v);
        engine_.broadcast(v, v);
      }
    }
    engine_.exchange();
    for (const VertexId v : died) alive_[v] = 0;
    for (const VertexId v : mis_new) {
      in_mis_[v] = 1;
      mis_.push_back(v);
    }
  }

  /// Leader tells each new member it joined (one round), then the usual
  /// membership/death broadcasts follow.
  void commit_from_leader(const std::vector<VertexId>& mis_new) {
    if (mis_new.empty()) return;
    for (const VertexId v : mis_new) {
      if (v != 0) engine_.send(0, v, 1);
    }
    engine_.exchange();
    commit_via_broadcasts(mis_new);
  }

  /// Window-induced residual edges routed to the leader (Lenzen), greedy
  /// through the window ranks at the leader.
  void rank_phase(std::size_t lo, std::size_t hi, MisCcliqueResult& result) {
    std::vector<Message> messages;
    for (std::size_t r = lo; r < hi; ++r) {
      const VertexId v = perm_[r];
      if (!alive_[v]) continue;
      for (const Arc& a : g_.arcs(v)) {
        if (a.to > v && alive_[a.to] && rank_of_[a.to] >= lo &&
            rank_of_[a.to] < hi) {
          messages.push_back(Message{v, 0, encode_pair(v, a.to)});
        }
      }
    }
    result.window_edges_per_phase.push_back(messages.size());
    const auto delivered = engine_.lenzen_route(std::move(messages));

    std::unordered_map<VertexId, std::vector<VertexId>> adj;
    for (const Message& msg : delivered[0]) {
      const auto [u, v] = decode_pair(msg.word);
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
    std::vector<VertexId> mis_new;
    std::unordered_map<VertexId, char> killed;
    for (std::size_t r = lo; r < hi; ++r) {
      const VertexId v = perm_[r];
      if (!alive_[v] || killed.count(v) != 0) continue;
      mis_new.push_back(v);
      const auto it = adj.find(v);
      if (it != adj.end()) {
        for (const VertexId u : it->second) killed[u] = 1;
      }
    }
    commit_from_leader(mis_new);
  }

  void sparsified_stage(MisCcliqueResult& result) {
    LocalMisState state(g_, alive_, mix64(options_.seed, 0x5fa1, 1));
    while (count_alive_edges() > gather_budget_) {
      // Each alive player broadcasts its mark and desire level (the
      // dynamics read only neighbors' values; a broadcast certainly
      // delivers them). One round.
      for (VertexId v = 0; v < n_; ++v) {
        if (alive_[v]) engine_.broadcast(v, v);
      }
      engine_.exchange();
      const auto joined = state.step();
      ++result.sparsified_iterations;
      commit_via_broadcasts(joined);
      if (state.alive_count() == 0) break;
    }
  }

  void final_gather(MisCcliqueResult& result) {
    std::vector<Message> messages;
    for (const Edge& e : g_.edges()) {
      if (alive_[e.u] && alive_[e.v]) {
        messages.push_back(Message{e.u, 0, encode_pair(e.u, e.v)});
      }
    }
    result.final_gather_edges = messages.size();
    const auto delivered = engine_.lenzen_route(std::move(messages));

    std::unordered_map<VertexId, std::vector<VertexId>> adj;
    for (const Message& msg : delivered[0]) {
      const auto [u, v] = decode_pair(msg.word);
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
    std::vector<VertexId> mis_new;
    std::unordered_map<VertexId, char> killed;
    for (std::size_t r = 0; r < n_; ++r) {
      const VertexId v = perm_[r];
      if (!alive_[v] || killed.count(v) != 0) continue;
      mis_new.push_back(v);
      const auto it = adj.find(v);
      if (it != adj.end()) {
        for (const VertexId u : it->second) killed[u] = 1;
      }
    }
    commit_from_leader(mis_new);
  }

  const Graph& g_;
  const MisCcliqueOptions& options_;
  std::size_t n_;
  cclique::Engine engine_;
  std::size_t gather_budget_ = 0;

  std::vector<std::uint32_t> perm_;
  std::vector<std::uint32_t> rank_of_;
  std::vector<char> alive_;
  std::vector<char> in_mis_;
  std::vector<VertexId> mis_;
};

}  // namespace

MisCcliqueResult mis_cclique(const Graph& g, const MisCcliqueOptions& options) {
  MisCcliqueRun run(g, options);
  return run.run();
}

}  // namespace mpcg
