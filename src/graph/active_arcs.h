// Second-level compaction over ResidualGraph: per-vertex neighbor lists
// with *frozen* (frontier-departed but still alive) neighbors squeezed out,
// the way ResidualGraph squeezes dead ones.
//
// The matching driver's phase cost (paper, Section 4.3; charging argument
// of the round compression) is supposed to be proportional to the edges
// *internal to the active frontier*, not to all alive edges: frozen
// vertices stay alive in G[V'] until a heavy removal kills them, so on
// workloads where the frontier decays early the alive-arc lists stay fat
// long after the frontier has emptied. ActiveArcs partitions each vertex's
// alive neighbors into two ascending lists:
//
//   active_neighbors(v)  — alive neighbors still on the frontier (what the
//                          per-phase distribute loop iterates), and
//   frozen_neighbors(v)  — alive neighbors that left it (what the y_old
//                          frozen-contribution rescan iterates),
//
// both maintained with the same dirty-bit lazy compaction discipline as
// ResidualGraph: a departure marks the affected lists stale in O(1) per
// incident list, and the next query pays one stable filtering pass. Both
// lists preserve ascending neighbor-id order, so a consumer that sums
// floating-point contributions while scanning stays bit-identical to the
// full alive-arc scan it replaces (the frozen scan performs exactly the
// additions the old `if (frozen) y += w[tf]` filter performed, in the same
// order; see DESIGN.md, "ActiveArcs & batched thresholds").
//
// Event protocol (driver-facing; ActiveArcs never polls, it is told):
//   * a vertex x leaves the frontier (freeze, or removal while active):
//     after deactivating x in the ActiveSet, call neighbor_left_frontier(u)
//     for every still-active neighbor u of x — or notify_left({x, ...}) to
//     batch it. Same-batch departures need no cross-marks: an inactive
//     vertex's lists are never read again.
//   * a *frozen* vertex x is removed (killed in the residual): call
//     frozen_neighbor_removed(u) for every alive neighbor u, so u's frozen
//     list drops x on its next compaction. Removals of *active* vertices
//     go through neighbor_left_frontier — the compaction consults
//     ResidualGraph::alive and drops the dead entry instead of moving it.
#ifndef MPCG_GRAPH_ACTIVE_ARCS_H
#define MPCG_GRAPH_ACTIVE_ARCS_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/active_set.h"
#include "graph/graph.h"
#include "graph/residual.h"

namespace mpcg {

class ActiveArcs {
 public:
  /// Wraps the residual view and the frontier set the partition is defined
  /// against. Assumes the frontier starts all-active (as ActiveSet does);
  /// O(n) construction, no arc copies until a vertex's lists are first
  /// compacted.
  ActiveArcs(ResidualGraph& residual, const ActiveSet& active);

  /// Number of active (frontier) neighbors of v. O(1). Maintained by the
  /// notification protocol; only meaningful while v itself is active (a
  /// departed vertex's counter goes stale, matching the lists).
  [[nodiscard]] std::size_t active_degree(VertexId v) const noexcept {
    return active_deg_[v];
  }

  /// Active neighbors of v, ascending by id. O(1) when nothing changed
  /// since the last query; a stale list pays one filtering pass (departed
  /// entries move to the frozen list, dead ones drop). The span is valid
  /// until the next ActiveArcs call for the same vertex. Callable for an
  /// inactive v (the departure walk): it returns v's still-active
  /// neighbors, excluding same-batch departures. Inline fast path: these
  /// sit in the distribute loop, the hottest per-arc code in the driver.
  [[nodiscard]] std::span<const VertexId> active_neighbors(VertexId v) {
    if (active_end_[v] == kLazy) {
      materialize(v);
    } else if (stale_[v] != 0) {
      compact(v);
    }
    return {active_buf_.get() + offsets_[v],
            active_buf_.get() + active_end_[v]};
  }

  /// The suffix of active_neighbors(v) with id greater than v. O(1): the
  /// split position is recorded while the list is written (materialize/
  /// compact), so no per-query search. `for v in frontier: for u in
  /// active_upper_neighbors(v)` visits every frontier-internal edge
  /// exactly once, in edge-id (lexicographic) order — the distribute
  /// loop's iteration.
  [[nodiscard]] std::span<const VertexId> active_upper_neighbors(VertexId v) {
    if (active_end_[v] == kLazy) {
      materialize(v);
    } else if (stale_[v] != 0) {
      compact(v);
    }
    return {active_buf_.get() + upper_begin_[v],
            active_buf_.get() + active_end_[v]};
  }

  /// Alive-but-departed (frozen) neighbors of v, ascending by id — the
  /// complement of active_neighbors(v) within the alive neighborhood.
  /// Only meaningful while v is active: a departed vertex's frozen list is
  /// no longer maintained (its compactions drop departed neighbors
  /// instead of merging them over — nothing reads them again).
  [[nodiscard]] std::span<const VertexId> frozen_neighbors(VertexId v) {
    if (active_end_[v] == kLazy) {
      // Lazy and clean: no neighbor of v ever left the frontier or died,
      // so the frozen list is empty without materializing anything.
      if (stale_[v] == 0) return {};
      materialize(v);
    } else if (stale_[v] != 0) {
      compact(v);
    }
    return {frozen_buf_.get() + offsets_[v],
            frozen_buf_.get() + frozen_end_[v]};
  }

  /// O(1): an active neighbor of v just left the frontier (froze, or was
  /// removed while active). Decrements the active degree and marks v's
  /// lists stale. Call once per departed neighbor.
  void neighbor_left_frontier(VertexId v) noexcept {
    --active_deg_[v];
    stale_[v] |= kActiveStale;
  }

  /// O(1): a *frozen* neighbor of v was removed from the graph. Marks v's
  /// frozen list stale (the active list and degree are untouched).
  void frozen_neighbor_removed(VertexId v) noexcept {
    stale_[v] |= kFrozenStale;
  }

  /// Batch form of the freeze notification: for every departed vertex
  /// (already deactivated in the ActiveSet), walks its still-active
  /// neighbors and applies neighbor_left_frontier. Drivers that fuse their
  /// own per-neighbor bookkeeping into the walk (matching_mpc) iterate
  /// active_neighbors themselves instead.
  void notify_left(std::span<const VertexId> departed);

 private:
  static constexpr std::uint8_t kActiveStale = 1;
  static constexpr std::uint8_t kFrozenStale = 2;
  /// active_end_ value for a vertex whose lists were never materialized:
  /// its partition is still "every alive neighbor, split by the current
  /// flags", served by one residual scan on first query.
  static constexpr std::size_t kLazy = static_cast<std::size_t>(-1);

  void ensure_buffers();
  /// First-touch split of residual alive arcs into the two lists (out of
  /// line: the cold half of the inline accessors above).
  void materialize(VertexId v);
  /// Filtering pass over materialized, stale lists: departed actives move
  /// to the frozen list (merged, order preserved), dead entries drop.
  void compact(VertexId v);

  ResidualGraph* residual_;
  const ActiveSet* active_;
  std::vector<std::uint32_t> active_deg_;
  std::vector<std::uint8_t> stale_;
  /// Per-vertex segments, capacity = full graph degree (address space
  /// only; pages are touched as vertices materialize):
  /// active list in active_buf_[offsets_[v], active_end_[v]), with the
  /// first id greater than v at upper_begin_[v];
  /// frozen list in frozen_buf_[offsets_[v], frozen_end_[v]).
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> active_end_;
  std::vector<std::size_t> upper_begin_;
  std::vector<std::size_t> frozen_end_;
  std::unique_ptr<VertexId[]> active_buf_;
  std::unique_ptr<VertexId[]> frozen_buf_;
  /// Merge scratch for frozen-list rebuilds.
  std::vector<VertexId> moved_;
  std::vector<VertexId> frozen_scratch_;
};

}  // namespace mpcg

#endif  // MPCG_GRAPH_ACTIVE_ARCS_H
