#include "core/weighted_matching.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/israeli_itai.h"
#include "baselines/lmsv_filtering.h"
#include "graph/active_set.h"
#include "graph/validation.h"
#include "util/rng.h"

namespace mpcg {

WeightedMatchingResult weighted_matching(const Graph& g,
                                         const std::vector<double>& weights,
                                         const WeightedMatchingOptions& options) {
  if (weights.size() != g.num_edges()) {
    throw std::invalid_argument("weighted_matching: weights size mismatch");
  }
  if (!(options.eps > 0.0)) {
    throw std::invalid_argument("weighted_matching: eps must be positive");
  }
  WeightedMatchingResult result;
  if (g.num_edges() == 0) return result;

  const std::size_t n = g.num_vertices();
  const std::size_t memory = options.memory_words != 0
                                 ? options.memory_words
                                 : 8 * std::max<std::size_t>(n, 64);

  double w_max = 0.0;
  for (const double w : weights) w_max = std::max(w_max, w);
  if (w_max <= 0.0) return result;  // nothing of positive weight to match
  const double cutoff =
      options.eps * w_max / static_cast<double>(std::max<std::size_t>(n, 1));

  // Bucket edges: class j holds weights in (w_max (1+eps)^-(j+1),
  //                                          w_max (1+eps)^-j].
  const double log_base = std::log1p(options.eps);
  std::vector<std::vector<EdgeId>> classes;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double w = weights[e];
    if (w < cutoff) {
      ++result.dropped_edges;
      continue;
    }
    const auto j = static_cast<std::size_t>(
        std::max(0.0, std::floor(std::log(w_max / w) / log_base)));
    if (classes.size() <= j) classes.resize(j + 1);
    classes[j].push_back(e);
  }
  result.num_classes = classes.size();

  // Heaviest class first: maximal matching among still-free vertices via
  // the filtering subroutine on the class subgraph. The free frontier only
  // shrinks; the sweep stops at the surviving support — `support_bound`
  // tracks sum of deg_g(v) over free vertices (an upper bound on twice the
  // usable edges left, maintained O(1) per matched vertex), so once it
  // falls below 2 no lighter class can contribute an edge and the sweep
  // ends without rescanning the remaining class edge lists.
  ActiveSet free_set(n);
  std::size_t support_bound = 2 * g.num_edges();  // handshake: sum of degrees
  for (std::size_t j = 0; j < classes.size(); ++j) {
    if (classes[j].empty()) continue;
    if (free_set.size() < 2 || support_bound < 2) break;
    GraphBuilder builder(n);
    std::size_t usable = 0;
    for (const EdgeId e : classes[j]) {
      const Edge ed = g.edge(e);
      if (free_set.active(ed.u) && free_set.active(ed.v)) {
        builder.add_edge(ed.u, ed.v);
        ++usable;
      }
    }
    if (usable == 0) continue;
    const Graph class_graph = builder.build();
    std::vector<EdgeId> class_matching;
    if (options.subroutine == ClassSubroutine::kLmsvFiltering) {
      auto sub = lmsv_maximal_matching(class_graph, memory,
                                       mix64(options.seed, 0xc1a5, j));
      result.total_rounds += sub.rounds;
      class_matching = std::move(sub.matching);
    } else {
      auto sub = israeli_itai_matching(class_graph,
                                       mix64(options.seed, 0xc1a5, j));
      result.total_rounds += sub.rounds;
      class_matching = std::move(sub.matching);
    }
    for (const EdgeId ce : class_matching) {
      const Edge ed = class_graph.edge(ce);
      free_set.deactivate(ed.u);
      free_set.deactivate(ed.v);
      support_bound -= std::min<std::size_t>(
          support_bound, g.degree(ed.u) + g.degree(ed.v));
      const EdgeId parent = g.find_edge(ed.u, ed.v);
      result.matching.push_back(parent);
      result.weight += weights[parent];
    }
  }
  return result;
}

}  // namespace mpcg
