// Scale stress: the key invariants hold on inputs an order of magnitude
// larger than the default sweeps (seconds, not milliseconds — kept to a
// handful of cases).
#include <gtest/gtest.h>

#include "baselines/greedy_matching.h"
#include "baselines/greedy_mis.h"
#include "core/integral_matching.h"
#include "core/matching_mpc.h"
#include "core/mis_mpc.h"
#include "gen/generators.h"
#include "graph/validation.h"
#include "util/permutation.h"

namespace mpcg {
namespace {

TEST(Stress, MisExactEquivalenceAtScale) {
  Rng rng(1);
  const std::size_t n = 30000;
  const Graph g = erdos_renyi_gnp(n, 20.0 / static_cast<double>(n), rng);
  MisMpcOptions opt;
  opt.seed = 4242;
  opt.use_sparsified_stage = false;
  const auto r = mis_mpc(g, opt);
  Rng perm_rng(opt.seed);
  const auto perm = random_permutation(n, perm_rng);
  EXPECT_EQ(r.mis, greedy_mis(g, perm));
  EXPECT_EQ(r.metrics.violations, 0U);
}

TEST(Stress, MisDefaultPipelineAtScale) {
  Rng rng(2);
  const std::size_t n = 50000;
  const Graph g = erdos_renyi_gnp(n, 16.0 / static_cast<double>(n), rng);
  MisMpcOptions opt;
  opt.seed = 7;
  const auto r = mis_mpc(g, opt);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
  EXPECT_LE(r.rank_phases, 8U);
  EXPECT_LE(r.metrics.peak_storage_words, r.words_per_machine_used);
}

TEST(Stress, MatchingPipelineAtScale) {
  Rng rng(3);
  const std::size_t n = 30000;
  const Graph g = erdos_renyi_gnp(n, 12.0 / static_cast<double>(n), rng);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 11;
  const auto r = matching_mpc(g, opt);
  EXPECT_TRUE(is_fractional_matching(g, r.x, 1e-9));
  EXPECT_TRUE(is_vertex_cover(g, r.cover));
  EXPECT_EQ(r.metrics.violations, 0U);
  // Fractional weight must be at least half of a maximal matching's size
  // (|M_maximal| <= nu <= (2+50eps) W).
  const auto maximal = greedy_maximal_matching(g);
  EXPECT_GE(fractional_weight(r.x) * (2.0 + 50.0 * 0.1),
            static_cast<double>(maximal.size()) - 1e-9);
}

TEST(Stress, IntegralMatchingAtScale) {
  Rng rng(4);
  const std::size_t n = 20000;
  const Graph g = erdos_renyi_gnp(n, 10.0 / static_cast<double>(n), rng);
  IntegralMatchingOptions opt;
  opt.eps = 0.1;
  opt.seed = 13;
  const auto r = integral_matching(g, opt);
  EXPECT_TRUE(is_matching(g, r.matching));
  EXPECT_TRUE(is_vertex_cover(g, r.cover));
  // Against the maximal-matching lower bound: |M| >= |M_maximal| / 2.1
  // would already follow from (2+eps) vs nu >= |M_maximal|.
  const auto maximal = greedy_maximal_matching(g);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 2.1,
            static_cast<double>(maximal.size()));
}

}  // namespace
}  // namespace mpcg
