// Quickstart: the three headline results of the paper on one small graph.
//
//   1. Theorem 1.1 — MIS in O(log log Delta) MPC rounds (and the same
//      schedule in the CONGESTED-CLIQUE model).
//   2. Lemma 4.2 / Theorem 1.2 — (2+eps) fractional + integral maximum
//      matching and (2+eps) minimum vertex cover in O(log log n) rounds.
//   3. Corollary 1.3 — (1+eps) maximum matching.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/integral_matching.h"
#include "core/matching_mpc.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "core/one_plus_eps.h"
#include "gen/generators.h"
#include "graph/validation.h"

int main() {
  using namespace mpcg;

  // A random graph with 2,000 vertices and average degree ~12.
  Rng rng(2024);
  const Graph g = erdos_renyi_gnp(2000, 12.0 / 2000.0, rng);
  std::printf("graph: n=%zu m=%zu max_degree=%zu\n", g.num_vertices(),
              g.num_edges(), g.max_degree());

  // --- Maximal independent set (Theorem 1.1) ---
  MisMpcOptions mis_opt;
  mis_opt.seed = 1;
  const MisMpcResult mis = mis_mpc(g, mis_opt);
  std::printf("\n[MIS / MPC]       size=%zu  rank_phases=%zu  "
              "engine_rounds=%zu  peak_words/machine=%zu  valid=%s\n",
              mis.mis.size(), mis.rank_phases, mis.metrics.rounds,
              mis.metrics.peak_storage_words,
              is_maximal_independent_set(g, mis.mis) ? "yes" : "NO");

  MisCcliqueOptions cc_opt;
  cc_opt.seed = 1;
  const MisCcliqueResult cc = mis_cclique(g, cc_opt);
  std::printf("[MIS / CONGESTED-CLIQUE] size=%zu  clique_rounds=%zu  "
              "lenzen_batches=%zu  valid=%s\n",
              cc.mis.size(), cc.metrics.rounds, cc.metrics.lenzen_batches,
              is_maximal_independent_set(g, cc.mis) ? "yes" : "NO");

  // --- Fractional matching + vertex cover (Lemma 4.2) ---
  MatchingMpcOptions frac_opt;
  frac_opt.eps = 0.1;
  frac_opt.seed = 2;
  const MatchingMpcResult frac = matching_mpc(g, frac_opt);
  std::printf("\n[fractional matching] weight=%.1f  phases=%zu  "
              "cover=%zu vertices  valid=%s, covers=%s\n",
              fractional_weight(frac.x), frac.phases, frac.cover.size(),
              is_fractional_matching(g, frac.x) ? "yes" : "NO",
              is_vertex_cover(g, frac.cover) ? "yes" : "NO");

  // --- Integral (2+eps) matching + cover (Theorem 1.2) ---
  IntegralMatchingOptions int_opt;
  int_opt.eps = 0.1;
  int_opt.seed = 3;
  const IntegralMatchingResult integral = integral_matching(g, int_opt);
  std::printf("[integral matching]   size=%zu  (A-path=%zu, filtering "
              "path=%zu)  cover=%zu\n",
              integral.matching.size(), integral.a_path_size,
              integral.small_path_size, integral.cover.size());

  // --- (1+eps) matching (Corollary 1.3) ---
  OnePlusEpsOptions fine_opt;
  fine_opt.eps = 1.0 / 3.0;
  fine_opt.seed = 4;
  const OnePlusEpsResult fine = one_plus_eps_matching(g, fine_opt);
  std::printf("[(1+eps) matching]    size=%zu  after %zu augmentation "
              "passes (%zu paths flipped)\n",
              fine.matching.size(), fine.augmenting_passes,
              fine.paths_flipped);
  return 0;
}
