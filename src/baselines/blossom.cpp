#include "baselines/blossom.h"

#include <deque>
#include <limits>

namespace mpcg {

namespace {

constexpr VertexId kNone = std::numeric_limits<VertexId>::max();

/// Classic O(V^3) blossom implementation with base[] contraction.
class BlossomSolver {
 public:
  explicit BlossomSolver(const Graph& g)
      : g_(g), n_(g.num_vertices()), match_(n_, kNone), parent_(n_, kNone),
        base_(n_, 0) {}

  std::vector<EdgeId> solve() {
    for (VertexId v = 0; v < n_; ++v) {
      if (match_[v] == kNone) {
        augment_from(v);
      }
    }
    std::vector<EdgeId> matching;
    for (VertexId v = 0; v < n_; ++v) {
      if (match_[v] != kNone && v < match_[v]) {
        matching.push_back(g_.find_edge(v, match_[v]));
      }
    }
    return matching;
  }

 private:
  VertexId lowest_common_ancestor(VertexId a, VertexId b) {
    std::vector<char> used(n_, 0);
    // Walk up from a marking bases, then from b until a marked base.
    VertexId v = a;
    for (;;) {
      v = base_[v];
      used[v] = 1;
      if (match_[v] == kNone) break;
      v = parent_[match_[v]];
    }
    v = b;
    for (;;) {
      v = base_[v];
      if (used[v]) return v;
      v = parent_[match_[v]];
    }
  }

  void mark_path(std::vector<char>& blossom, VertexId v, VertexId ancestor,
                 VertexId child) {
    while (base_[v] != ancestor) {
      blossom[base_[v]] = 1;
      blossom[base_[match_[v]]] = 1;
      parent_[v] = child;
      child = match_[v];
      v = parent_[match_[v]];
    }
  }

  VertexId find_augmenting_path(VertexId root) {
    std::fill(parent_.begin(), parent_.end(), kNone);
    std::vector<char> used(n_, 0);
    for (VertexId v = 0; v < n_; ++v) base_[v] = v;
    used[root] = 1;
    std::deque<VertexId> queue{root};

    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const Arc& a : g_.arcs(v)) {
        const VertexId to = a.to;
        if (base_[v] == base_[to] || match_[v] == to) continue;
        if (to == root || (match_[to] != kNone && parent_[match_[to]] != kNone)) {
          // Odd cycle: contract the blossom.
          const VertexId ancestor = lowest_common_ancestor(v, to);
          std::vector<char> blossom(n_, 0);
          mark_path(blossom, v, ancestor, to);
          mark_path(blossom, to, ancestor, v);
          for (VertexId u = 0; u < n_; ++u) {
            if (blossom[base_[u]]) {
              base_[u] = ancestor;
              if (!used[u]) {
                used[u] = 1;
                queue.push_back(u);
              }
            }
          }
        } else if (parent_[to] == kNone) {
          parent_[to] = v;
          if (match_[to] == kNone) {
            return to;  // augmenting path found
          }
          used[match_[to]] = 1;
          queue.push_back(match_[to]);
        }
      }
    }
    return kNone;
  }

  void augment_from(VertexId root) {
    const VertexId end = find_augmenting_path(root);
    if (end == kNone) return;
    // Flip matched/unmatched along the alternating path back to the root.
    VertexId v = end;
    while (v != kNone) {
      const VertexId pv = parent_[v];
      const VertexId ppv = match_[pv];
      match_[v] = pv;
      match_[pv] = v;
      v = ppv;
    }
  }

  const Graph& g_;
  std::size_t n_;
  std::vector<VertexId> match_;
  std::vector<VertexId> parent_;
  std::vector<VertexId> base_;
};

}  // namespace

std::vector<EdgeId> blossom_maximum_matching(const Graph& g) {
  BlossomSolver solver(g);
  return solver.solve();
}

std::size_t maximum_matching_size(const Graph& g) {
  return blossom_maximum_matching(g).size();
}

}  // namespace mpcg
