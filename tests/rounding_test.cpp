#include <cmath>

#include <gtest/gtest.h>

#include "core/matching_mpc.h"
#include "core/rounding.h"
#include "gen/generators.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

TEST(HeavyVertices, SelectsByLoad) {
  const Graph g = path_graph(3);  // edges {0,1}, {1,2}
  std::vector<double> x{0.9, 0.05};
  const auto heavy = heavy_vertices(g, x, 0.8);
  // loads: v0=0.9, v1=0.95, v2=0.05
  EXPECT_EQ(heavy, (std::vector<VertexId>{0, 1}));
}

TEST(Rounding, EmptyCandidatesEmptyMatching) {
  const Graph g = path_graph(4);
  std::vector<double> x(g.num_edges(), 0.3);
  EXPECT_TRUE(round_fractional_matching(g, x, {}, 1).empty());
}

TEST(Rounding, OutputIsAlwaysAMatching) {
  for (const char* family : {"gnp_sparse", "gnp_dense", "power_law",
                             "bipartite", "cliques"}) {
    const Graph g = make_family(family, 400, 3);
    if (g.num_edges() == 0) continue;
    MatchingMpcOptions o;
    o.eps = 0.1;
    o.seed = 3;
    const auto frac = matching_mpc(g, o);
    const auto candidates = heavy_vertices(g, frac.x, 0.5);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto m = round_fractional_matching(g, frac.x, candidates, seed);
      EXPECT_TRUE(is_matching(g, m)) << family << " seed " << seed;
    }
  }
}

TEST(Rounding, DeterministicPerSeed) {
  const Graph g = make_family("gnp_dense", 200, 5);
  MatchingMpcOptions o;
  o.eps = 0.1;
  o.seed = 5;
  const auto frac = matching_mpc(g, o);
  const auto candidates = heavy_vertices(g, frac.x, 0.5);
  EXPECT_EQ(round_fractional_matching(g, frac.x, candidates, 9),
            round_fractional_matching(g, frac.x, candidates, 9));
}

TEST(Rounding, Lemma51SizeBoundHolds) {
  // |M| >= |C~|/50 with probability 1 - 2exp(-|C~|/5000); with |C~| in the
  // hundreds a failure is still possible per trial, so check that the bound
  // holds on the vast majority of seeds (it holds on virtually all).
  const Graph g = make_family("gnp_dense", 1500, 7);
  MatchingMpcOptions o;
  o.eps = 0.1;
  o.seed = 7;
  const auto frac = matching_mpc(g, o);
  const auto candidates = heavy_vertices(g, frac.x, 1.0 - 5.0 * 0.1);
  ASSERT_GT(candidates.size(), 100U);

  int ok = 0;
  const int trials = 50;
  for (int seed = 0; seed < trials; ++seed) {
    const auto m = round_fractional_matching(g, frac.x, candidates,
                                             static_cast<std::uint64_t>(seed));
    if (50 * m.size() >= candidates.size()) ++ok;
  }
  EXPECT_GE(ok, trials - 2);
}

TEST(Rounding, ExpectedYieldNearTheory) {
  // The proof's per-vertex success probability is >= 4/50; the average
  // yield over seeds should comfortably exceed |C~|/25 on a clean input.
  const Graph g = complete_bipartite(300, 300);
  std::vector<double> x(g.num_edges(), 1.0 / 300.0);  // perfect fractional
  std::vector<VertexId> candidates(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) candidates[v] = v;

  double total = 0.0;
  const int trials = 20;
  for (int seed = 0; seed < trials; ++seed) {
    total += static_cast<double>(
        round_fractional_matching(g, x, candidates,
                                  static_cast<std::uint64_t>(seed)).size());
  }
  const double avg = total / trials;
  EXPECT_GE(avg, static_cast<double>(candidates.size()) / 25.0);
}

TEST(Rounding, GoodEdgesAreIsolatedInProposalGraph) {
  // White-box invariant: returned edges never share endpoints even when
  // proposals collide heavily (dense star-like loads).
  const Graph g = star_graph(50);
  std::vector<double> x(g.num_edges(), 1.0 / 49.0);
  std::vector<VertexId> candidates;
  for (VertexId v = 0; v < 50; ++v) candidates.push_back(v);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto m = round_fractional_matching(g, x, candidates, seed);
    EXPECT_TRUE(is_matching(g, m));
    EXPECT_LE(m.size(), 1U);  // star: at most one edge can ever be good
  }
}

}  // namespace
}  // namespace mpcg
