// White-box invariants of the weight bookkeeping.
//
// Both Central(-Rand) and MPC-Simulation exploit the identity that every
// active edge at global iteration t has weight exactly w0/(1-eps)^t, so
// the entire fractional matching is a pure function of per-vertex freeze
// iterations (the paper's Line (g) reconstruction). These tests check that
// the emitted x vectors satisfy the identity *exactly*, which pins down
// the bookkeeping far more tightly than the feasibility oracles.
#include <cmath>

#include <gtest/gtest.h>

#include "core/central.h"
#include "core/matching_mpc.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

double weight_at(double w0, double eps, std::uint64_t t) {
  return w0 * std::pow(1.0 - eps, -static_cast<double>(t));
}

TEST(DerivedState, CentralEdgeWeightsMatchFreezeTimes) {
  for (const char* family : {"gnp_sparse", "gnp_dense", "power_law"}) {
    const Graph g = make_family(family, 250, 3);
    CentralOptions o;
    o.eps = 0.1;
    const auto r = central_fractional_matching(g, o);
    const double w0 = 1.0 / static_cast<double>(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge ed = g.edge(e);
      const std::uint64_t tf = std::min(r.freeze_iteration[ed.u],
                                        r.freeze_iteration[ed.v]);
      ASSERT_NE(tf, CentralResult::kNeverFroze);  // every edge froze
      EXPECT_NEAR(r.x[e], weight_at(w0, o.eps, tf), 1e-12 * (1.0 + r.x[e]))
          << family << " edge " << e;
    }
  }
}

TEST(DerivedState, CentralRandSameIdentity) {
  const Graph g = make_family("rmat", 250, 5);
  CentralOptions o;
  o.eps = 0.1;
  o.random_thresholds = true;
  o.threshold_seed = 5;
  const auto r = central_fractional_matching(g, o);
  const double w0 = 1.0 / static_cast<double>(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    const std::uint64_t tf =
        std::min(r.freeze_iteration[ed.u], r.freeze_iteration[ed.v]);
    EXPECT_NEAR(r.x[e], weight_at(w0, o.eps, tf), 1e-12 * (1.0 + r.x[e]));
  }
}

TEST(DerivedState, MatchingMpcEdgeWeightsMatchFreezeTimes) {
  for (const char* family : {"gnp_sparse", "gnp_dense", "bipartite"}) {
    const Graph g = make_family(family, 300, 7);
    MatchingMpcOptions o;
    o.eps = 0.1;
    o.seed = 7;
    const auto r = matching_mpc(g, o);
    const double w0 =
        (1.0 - 2.0 * o.eps) / static_cast<double>(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge ed = g.edge(e);
      if (r.removed_heavy[ed.u] || r.removed_heavy[ed.v]) {
        EXPECT_DOUBLE_EQ(r.x[e], 0.0);
        continue;
      }
      const std::uint64_t tf =
          std::min<std::uint64_t>({r.freeze_iteration[ed.u],
                                   r.freeze_iteration[ed.v],
                                   r.total_iterations});
      EXPECT_NEAR(r.x[e], weight_at(w0, o.eps, tf), 1e-9 * (1.0 + r.x[e]))
          << family << " edge " << e;
    }
  }
}

TEST(DerivedState, MatchingMpcFrozenLoadsAreFinal) {
  // Once a vertex freezes, its load is locked: every incident edge's
  // weight is determined by min(freeze times), none of which can change.
  // Check that no frozen vertex carries load above the freezing ceiling
  // (1 - 2 eps growing one step, or 1 at the removal boundary).
  const Graph g = make_family("gnp_dense", 300, 9);
  MatchingMpcOptions o;
  o.eps = 0.1;
  o.seed = 9;
  const auto r = matching_mpc(g, o);
  const auto loads = vertex_loads(g, r.x);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.removed_heavy[v]) continue;
    EXPECT_LE(loads[v], 1.0 + 1e-9);
  }
}

TEST(DerivedState, CentralIterationCountMatchesLastFreeze) {
  const Graph g = make_family("gnp_sparse", 250, 11);
  CentralOptions o;
  o.eps = 0.1;
  const auto r = central_fractional_matching(g, o);
  std::uint32_t last = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.freeze_iteration[v] != CentralResult::kNeverFroze) {
      last = std::max(last, r.freeze_iteration[v]);
    }
  }
  // The algorithm stops one growth step after the last freeze.
  EXPECT_EQ(r.iterations, static_cast<std::size_t>(last) + 1);
}

}  // namespace
}  // namespace mpcg
