// Re-tunes the dense/flat exchange choice for this box.
//
// The engine has two exchange representations: the dense per-(sender,
// receiver) box matrix (O(m^2) storage, delivery by pure bulk copies) and
// the flat per-sender outboxes (O(words) storage, counting-sort delivery).
// By default the engine picks the path per flush from the traffic shape it
// just delivered (Config::kAdaptive); an explicit Config::dense_machine_limit
// pins the old static rule instead. This tool races all three on the two
// canonical traffic shapes:
//
//   scattered — every machine sprays single words at random destinations
//               (per-edge driver traffic: rank phases, sparsified rounds);
//   bulk      — every machine sends its whole budget to a handful of
//               destinations in long runs (collectives, shard migration).
//
// Each cell is a wall-clock race over identical pushes through the same
// Engine API; the adaptive column should track the better of the two
// forced columns within noise on both shapes (validating the adapt_path
// thresholds), and the printed suggestion is the largest machine count at
// which dense still wins the scattered shape — the value to pin if you
// want the static rule.
//
// Usage: bench_exchange_crossover [rounds] [words_per_machine]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mpc/engine.h"
#include "util/rng.h"

namespace {

using namespace mpcg;
using mpc::Engine;
using mpc::Word;

/// Destination pattern for one machine's pushes per round.
std::vector<std::uint32_t> make_dests(std::size_t machines,
                                      std::size_t words_per_machine,
                                      bool bulk) {
  Rng rng(0x0c4055);
  std::vector<std::uint32_t> dests(words_per_machine);
  if (bulk) {
    // Long same-destination runs to few partners.
    const std::size_t partners = 4;
    const std::size_t run = (words_per_machine + partners - 1) / partners;
    for (std::size_t i = 0; i < dests.size(); ++i) {
      dests[i] = static_cast<std::uint32_t>((i / run) % machines);
    }
  } else {
    for (auto& d : dests) {
      d = static_cast<std::uint32_t>(rng() % machines);
    }
  }
  return dests;
}

double run_cell(std::size_t machines, std::size_t dense_limit,
                std::size_t rounds, std::size_t words_per_machine,
                bool bulk) {
  mpc::Config cfg;
  cfg.num_machines = machines;
  cfg.words_per_machine = std::max<std::size_t>(words_per_machine * 2, 1024);
  cfg.strict = false;
  cfg.dense_machine_limit = dense_limit;
  Engine engine(cfg);

  const auto dests = make_dests(machines, words_per_machine, bulk);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t from = 0; from < machines; ++from) {
      for (std::size_t i = 0; i < dests.size(); ++i) {
        engine.push(from, (dests[i] + from) % machines,
                    static_cast<Word>(i));
      }
    }
    engine.exchange();
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void sweep(const char* label, std::size_t rounds, std::size_t words,
           bool bulk, std::size_t* suggested) {
  std::printf("# %s traffic\n", label);
  std::printf("%10s %12s %12s %12s %8s\n", "machines", "dense_ms", "flat_ms",
              "adaptive_ms", "winner");
  // The dense matrix allocates m^2 boxes — cap that side of the race at
  // 4096 machines (the flat side keeps going in real use anyway).
  for (std::size_t m = 64; m <= 4096; m *= 2) {
    const double dense = run_cell(m, m, rounds, words, bulk);   // force dense
    const double flat = run_cell(m, 0, rounds, words, bulk);    // force flat
    const double adaptive =
        run_cell(m, mpc::Config::kAdaptive, rounds, words, bulk);
    const bool dense_wins = dense <= flat;
    if (suggested != nullptr && dense_wins) *suggested = m;
    std::printf("%10zu %12.2f %12.2f %12.2f %8s\n", m, dense, flat, adaptive,
                dense_wins ? "dense" : "flat");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 8;
  const std::size_t words =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4096;

  std::printf("# exchange crossover: %zu rounds x %zu words/machine/round\n",
              rounds, words);
  std::size_t suggested = 0;
  sweep("scattered", rounds, words, /*bulk=*/false, &suggested);
  sweep("bulk", rounds, words, /*bulk=*/true, nullptr);
  if (suggested == 0) {
    std::printf(
        "suggested static dense_machine_limit: 0 (flat always won "
        "scattered)\n");
  } else {
    std::printf("suggested static dense_machine_limit: %zu\n", suggested);
  }
  std::printf(
      "default Config::kAdaptive picks per flush; pin a static limit only "
      "if the adaptive column loses both shapes above.\n");
  return 0;
}
