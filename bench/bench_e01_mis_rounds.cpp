// E1 (Theorem 1.1): MIS in O(log log Delta) MPC rounds with O(n) words per
// machine.
//
// Table rows: n sweep at fixed average degree, then a Delta sweep at fixed
// n. The claim's shape: `rounds` grows ~additively when n (or Delta) is
// squared; `peak_words_over_n` stays bounded by the configured constant.
#include "bench_util.h"
#include "core/mis_mpc.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E01_RoundsVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 1);
  MisMpcOptions opt;
  opt.seed = 1;
  MisMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = mis_mpc(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.mis.size());
  }
  emit_json_line("E01_RoundsVsN/" + std::to_string(n), n, g.num_edges(),
                 r.metrics.rounds, wall_ms, r.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["delta"] = static_cast<double>(g.max_degree());
  state.counters["rounds"] = static_cast<double>(r.metrics.rounds);
  state.counters["rank_phases"] = static_cast<double>(r.rank_phases);
  state.counters["sparse_iters"] =
      static_cast<double>(r.sparsified_iterations);
  state.counters["loglog_delta"] =
      log2log2(static_cast<double>(g.max_degree()));
  state.counters["peak_words_over_n"] =
      static_cast<double>(r.metrics.peak_storage_words) /
      static_cast<double>(n);
  state.counters["mis_size"] = static_cast<double>(r.mis.size());
}
BENCHMARK(E01_RoundsVsN)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 17)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void E01_RoundsVsDelta(benchmark::State& state) {
  const std::size_t n = 1 << 14;
  const double degree = static_cast<double>(state.range(0));
  const Graph g = gnp_with_degree(n, degree, 2);
  MisMpcOptions opt;
  opt.seed = 2;
  MisMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = mis_mpc(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.mis.size());
  }
  emit_json_line("E01_RoundsVsDelta/" + std::to_string(state.range(0)), n,
                 g.num_edges(), r.metrics.rounds, wall_ms,
                 r.metrics.peak_storage_words);
  state.counters["delta"] = static_cast<double>(g.max_degree());
  state.counters["rounds"] = static_cast<double>(r.metrics.rounds);
  state.counters["rank_phases"] = static_cast<double>(r.rank_phases);
  state.counters["loglog_delta"] =
      log2log2(static_cast<double>(g.max_degree()));
  state.counters["peak_words_over_n"] =
      static_cast<double>(r.metrics.peak_storage_words) /
      static_cast<double>(n);
}
BENCHMARK(E01_RoundsVsDelta)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The "big machines" corner: S large enough that the leader can gather the
// whole graph at once (gather_budget = m), isolating the leader-side
// residual/greedy machinery — the paper's S = O(n) regime pushed to its
// single-gather extreme. Dominated by the window-adjacency build, so it
// tracks the CSR-scratch path rather than the phase schedule.
void E01_LeaderGather(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 1);
  MisMpcOptions opt;
  opt.seed = 1;
  opt.words_per_machine = 2 * g.num_edges() + n;
  opt.gather_budget = g.num_edges();
  MisMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = mis_mpc(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.mis.size());
  }
  emit_json_line("E01_LeaderGather/" + std::to_string(n), n, g.num_edges(),
                 r.metrics.rounds, wall_ms, r.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(r.metrics.rounds);
  state.counters["final_gather_edges"] =
      static_cast<double>(r.final_gather_edges);
  state.counters["mis_size"] = static_cast<double>(r.mis.size());
}
BENCHMARK(E01_LeaderGather)
    ->Arg(1 << 17)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
