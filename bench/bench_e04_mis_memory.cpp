// E4 (Section 3.3, Eq. (1) and the memory argument): every rank phase
// gathers a window-induced subgraph of O(n) edges onto the leader, and peak
// per-machine storage stays within the O(n)-word budget.
//
// Table rows: one per family. `max_window_edges_over_n` and
// `peak_words_over_n` are the claims; both must be small constants.
#include "bench_util.h"
#include "core/mis_mpc.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E04_MisMemory(benchmark::State& state, const char* family) {
  const std::size_t n = 1 << 13;
  const Graph g = graph_family(family, n, 7);
  MisMpcOptions opt;
  opt.seed = 7;
  // A tight gather budget forces the rank-phase machinery to do the work
  // (otherwise small inputs are swallowed by the final gather and the
  // window-size claim is vacuously satisfied).
  opt.gather_budget = n / 2;
  opt.degree_switch = 8;
  MisMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = mis_mpc(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.mis.size());
  }
  emit_json_line(std::string("E04_MisMemory/") + family, n, g.num_edges(),
                 r.metrics.rounds, wall_ms, r.metrics.peak_storage_words);
  std::size_t max_window = 0;
  for (const std::size_t e : r.window_edges_per_phase) {
    max_window = std::max(max_window, e);
  }
  state.counters["n"] = static_cast<double>(g.num_vertices());
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["phases"] = static_cast<double>(r.rank_phases);
  state.counters["max_window_edges_over_n"] =
      static_cast<double>(max_window) / static_cast<double>(n);
  state.counters["final_gather_edges_over_n"] =
      static_cast<double>(r.final_gather_edges) / static_cast<double>(n);
  state.counters["peak_words_over_n"] =
      static_cast<double>(r.metrics.peak_storage_words) /
      static_cast<double>(n);
  state.counters["violations"] = static_cast<double>(r.metrics.violations);
}

void register_all() {
  for (const char* family : family_names()) {
    benchmark::RegisterBenchmark(
        (std::string("E04_MisMemory/") + family).c_str(),
        [family](benchmark::State& s) { E04_MisMemory(s, family); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
