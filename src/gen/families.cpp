#include "gen/families.h"

#include <stdexcept>

#include "gen/generators.h"
#include "util/rng.h"

namespace mpcg {

namespace {
const char* const kFamilyNames[] = {
    "gnp_sparse", "gnp_dense", "power_law", "bipartite",
    "rmat",       "grid",      "star",      "cliques",
};
}  // namespace

std::span<const char* const> family_names() { return kFamilyNames; }

Graph graph_family(const std::string& family, std::size_t n,
                   std::uint64_t seed) {
  Rng rng(mix64(seed, 0xfa3117, n));
  if (family == "gnp_sparse") {
    return erdos_renyi_gnp(n, 6.0 / static_cast<double>(n), rng);
  }
  if (family == "gnp_dense") {
    return erdos_renyi_gnp(n, 24.0 / static_cast<double>(n), rng);
  }
  if (family == "power_law") {
    return chung_lu_power_law(n, 2.5, 8.0, rng);
  }
  if (family == "bipartite") {
    return random_bipartite(n / 2, n - n / 2, 8.0 / static_cast<double>(n),
                            rng);
  }
  if (family == "rmat") {
    std::size_t scale = 1;
    while ((std::size_t{1} << scale) < n) ++scale;
    return rmat(scale, 4 * n, 0.45, 0.2, 0.2, rng);
  }
  if (family == "grid") {
    std::size_t side = 1;
    while (side * side < n) ++side;
    return grid_graph(side, side);
  }
  if (family == "star") {
    return star_graph(n);
  }
  if (family == "cliques") {
    const std::size_t size = 8;
    return clique_union((n + size - 1) / size, size);
  }
  throw std::invalid_argument("unknown family: " + family);
}

}  // namespace mpcg
