#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/active_set.h"
#include "util/rng.h"

namespace mpcg {
namespace {

TEST(ActiveSet, StartsAllActive) {
  ActiveSet s(5);
  EXPECT_EQ(s.universe_size(), 5U);
  EXPECT_EQ(s.size(), 5U);
  const auto all = s.actives();
  ASSERT_EQ(all.size(), 5U);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(s.active(v));
    EXPECT_EQ(all[v], v);
  }
}

TEST(ActiveSet, DeactivateIsIdempotent) {
  ActiveSet s(4);
  s.deactivate(2);
  s.deactivate(2);
  EXPECT_EQ(s.size(), 3U);
  EXPECT_FALSE(s.active(2));
  const auto a = s.actives();
  EXPECT_EQ(std::vector<VertexId>(a.begin(), a.end()),
            (std::vector<VertexId>{0, 1, 3}));
}

TEST(ActiveSet, ActivesStayAscendingUnderArbitraryKillOrder) {
  ActiveSet s(10);
  for (const VertexId v : {7, 0, 9, 3}) s.deactivate(v);
  const auto a = s.actives();
  EXPECT_EQ(std::vector<VertexId>(a.begin(), a.end()),
            (std::vector<VertexId>{1, 2, 4, 5, 6, 8}));
}

TEST(ActiveSet, RemapAssignsAscendingDenseIds) {
  ActiveSet s(6);
  s.deactivate(1);
  s.deactivate(4);
  const auto snap = s.remap();
  ASSERT_EQ(snap.size(), 4U);
  EXPECT_EQ(s.dense_size(), 4U);
  const VertexId expected[] = {0, 2, 3, 5};
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i], expected[i]);
    EXPECT_EQ(s.dense_index(expected[i]), i);
    EXPECT_EQ(s.vertex_at(i), expected[i]);
  }
}

TEST(ActiveSet, SnapshotSurvivesLaterDeactivationsAndCompactions) {
  // The per-phase contract: dense ids and the snapshot must stay valid
  // while the frontier keeps shrinking and actives() keeps compacting.
  ActiveSet s(8);
  const auto snap = s.remap();
  ASSERT_EQ(snap.size(), 8U);
  s.deactivate(3);
  s.deactivate(6);
  (void)s.actives();  // forces a compaction of the live list
  s.deactivate(0);
  const auto live = s.actives();
  EXPECT_EQ(std::vector<VertexId>(live.begin(), live.end()),
            (std::vector<VertexId>{1, 2, 4, 5, 7}));
  // Snapshot still maps every phase-start vertex, active or not.
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(snap[s.dense_index(v)], v);
    EXPECT_EQ(s.vertex_at(s.dense_index(v)), v);
  }
}

TEST(ActiveSet, EmptyUniverse) {
  ActiveSet s(0);
  EXPECT_EQ(s.size(), 0U);
  EXPECT_TRUE(s.actives().empty());
  EXPECT_TRUE(s.remap().empty());
}

TEST(ActiveSet, DrainCompletely) {
  ActiveSet s(3);
  for (VertexId v = 0; v < 3; ++v) s.deactivate(v);
  EXPECT_EQ(s.size(), 0U);
  EXPECT_TRUE(s.actives().empty());
  EXPECT_TRUE(s.remap().empty());
  EXPECT_EQ(s.dense_size(), 0U);
}

/// Randomized coupling against the naive full-scan model: a plain flag
/// array re-scanned from scratch must agree with the incremental structure
/// after every operation batch.
TEST(ActiveSet, RandomizedCouplingVsNaiveModel) {
  Rng rng(0xac71);
  for (std::size_t trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    ActiveSet s(n);
    std::vector<char> model(n, 1);

    while (true) {
      // A batch of random deactivations (possibly repeats / already-dead).
      const std::size_t batch = rng.next_below(n / 2 + 2);
      for (std::size_t i = 0; i < batch; ++i) {
        const VertexId v = static_cast<VertexId>(rng.next_below(n));
        s.deactivate(v);
        model[v] = 0;
      }

      std::vector<VertexId> expected;
      for (VertexId v = 0; v < n; ++v) {
        if (model[v]) expected.push_back(v);
      }
      ASSERT_EQ(s.size(), expected.size());
      for (VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(s.active(v), model[v] != 0);
      }

      // Alternate between plain iteration and the dense remap.
      if (rng.next_below(2) == 0) {
        const auto a = s.actives();
        ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()), expected);
      } else {
        const auto snap = s.remap();
        ASSERT_EQ(std::vector<VertexId>(snap.begin(), snap.end()), expected);
        ASSERT_EQ(s.dense_size(), expected.size());
        for (std::uint32_t i = 0; i < expected.size(); ++i) {
          ASSERT_EQ(s.dense_index(expected[i]), i);
          ASSERT_EQ(s.vertex_at(i), expected[i]);
        }
      }
      if (expected.empty()) break;
    }
  }
}

}  // namespace
}  // namespace mpcg
