#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/permutation.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mpcg {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int k = 100000;
  for (int i = 0; i < k; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / k, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10U);
}

TEST(Rng, NextInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_in(0.6, 0.8);
    EXPECT_GE(x, 0.6);
    EXPECT_LT(x, 0.8);
  }
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng base(123);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(StatelessUniform, DeterministicAndUnit) {
  for (std::uint64_t v = 0; v < 50; ++v) {
    for (std::uint64_t t = 0; t < 50; ++t) {
      const double x = stateless_uniform(99, v, t);
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
      EXPECT_EQ(x, stateless_uniform(99, v, t));
    }
  }
}

TEST(StatelessUniform, VariesAcrossKeys) {
  std::set<double> values;
  for (std::uint64_t v = 0; v < 100; ++v) values.insert(stateless_uniform(1, v, 0));
  EXPECT_GT(values.size(), 95U);
}

TEST(Mix64, SensitiveToEachArgument) {
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_NE(mix64(1, 2), mix64(2, 2));
  EXPECT_NE(mix64(1, 2, 3), mix64(1, 2, 4));
}

TEST(Permutation, IsPermutation) {
  Rng rng(21);
  for (std::size_t n : {0U, 1U, 2U, 17U, 1000U}) {
    const auto perm = random_permutation(n, rng);
    EXPECT_EQ(perm.size(), n);
    EXPECT_TRUE(is_permutation_of_iota(perm));
  }
}

TEST(Permutation, InverseRoundTrips) {
  Rng rng(22);
  const auto perm = random_permutation(100, rng);
  const auto inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[perm[i]], i);
    EXPECT_EQ(perm[inv[i]], i);
  }
}

TEST(Permutation, UniformityOfFirstElement) {
  // chi-square-lite: first position roughly uniform over 8 values.
  Rng rng(23);
  std::vector<int> counts(8, 0);
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    ++counts[random_permutation(8, rng)[0]];
  }
  for (const int c : counts) {
    EXPECT_GT(c, trials / 8 / 2);
    EXPECT_LT(c, trials / 8 * 2);
  }
}

TEST(Permutation, RejectsNonPermutations) {
  EXPECT_FALSE(is_permutation_of_iota({0, 0}));
  EXPECT_FALSE(is_permutation_of_iota({1, 2}));
  EXPECT_TRUE(is_permutation_of_iota({}));
  EXPECT_TRUE(is_permutation_of_iota({2, 0, 1}));
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4U);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 1.0}, 0.25), 0.25);
}

TEST(Quantile, ThrowsOnEmpty) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(LinearSlope, RecoversLine) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 5, 7, 9};  // slope 2
  EXPECT_NEAR(linear_slope(x, y), 2.0, 1e-12);
}

TEST(LinearSlope, ThrowsOnDegenerate) {
  EXPECT_THROW((void)linear_slope({1, 1}, {2, 3}), std::invalid_argument);
  EXPECT_THROW((void)linear_slope({1}, {2}), std::invalid_argument);
}

TEST(Bitset, SetResetCount) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.count(), 0U);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_EQ(bits.count(), 3U);
  EXPECT_TRUE(bits.test(64));
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2U);
}

TEST(Bitset, InitializedFull) {
  DynamicBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70U);
  EXPECT_EQ(bits.word_count(), 2U);
}

TEST(Bitset, AssignAndClear) {
  DynamicBitset bits(10);
  bits.assign(3, true);
  EXPECT_TRUE(bits.test(3));
  bits.assign(3, false);
  EXPECT_FALSE(bits.test(3));
  bits.set(1);
  bits.clear_all();
  EXPECT_EQ(bits.count(), 0U);
}

}  // namespace
}  // namespace mpcg
