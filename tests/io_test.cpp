#include <sstream>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/io.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

TEST(GraphIo, RoundTripUnweighted) {
  const Graph g = make_family("gnp_sparse", 120, 3);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const auto loaded = read_edge_list(buffer);
  ASSERT_EQ(loaded.graph.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.graph.num_edges(), g.num_edges());
  EXPECT_FALSE(loaded.weights.has_value());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded.graph.edge(e).u, g.edge(e).u);
    EXPECT_EQ(loaded.graph.edge(e).v, g.edge(e).v);
  }
}

TEST(GraphIo, RoundTripWeighted) {
  const Graph g = make_family("gnp_sparse", 80, 5);
  Rng rng(5);
  const auto w = uniform_weights(g, 0.5, 2.0, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g, &w);
  const auto loaded = read_edge_list(buffer);
  ASSERT_TRUE(loaded.weights.has_value());
  ASSERT_EQ(loaded.weights->size(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR((*loaded.weights)[e], w[e], 1e-6);
  }
}

TEST(GraphIo, SkipsComments) {
  std::stringstream in("# a comment\n3 2\n# another\n0 1\n1 2\n");
  const auto loaded = read_edge_list(in);
  EXPECT_EQ(loaded.graph.num_vertices(), 3U);
  EXPECT_EQ(loaded.graph.num_edges(), 2U);
}

TEST(GraphIo, RejectsMalformedHeader) {
  std::stringstream in("nonsense\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedEdgeList) {
  std::stringstream in("4 3\n0 1\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream in("2 1\n0 5\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsMixedWeightedness) {
  std::stringstream in("3 2\n0 1 2.5\n1 2\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(GraphIo, WeightSizeMismatchThrows) {
  const Graph g = path_graph(3);
  std::vector<double> w{1.0};
  std::stringstream out;
  EXPECT_THROW(write_edge_list(out, g, &w), std::invalid_argument);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = path_graph(5);
  const std::string path = ::testing::TempDir() + "/mpcg_io_test.txt";
  write_edge_list_file(path, g);
  const auto loaded = read_edge_list_file(path);
  EXPECT_EQ(loaded.graph.num_edges(), 4U);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(GraphIo, DedupesAndDropsSelfLoopsLikeBuilder) {
  std::stringstream in("3 4\n0 1\n1 0\n2 2\n1 2\n");
  const auto loaded = read_edge_list(in);
  EXPECT_EQ(loaded.graph.num_edges(), 2U);
}

}  // namespace
}  // namespace mpcg
