// Random permutations and rank utilities.
//
// The paper's randomized greedy MIS (Section 3) is driven by a uniformly
// random permutation pi : [n] -> [n]; both the sequential reference
// implementation and the MPC/CONGESTED-CLIQUE simulations must consume the
// *same* permutation to allow exact-equivalence testing.
#ifndef MPCG_UTIL_PERMUTATION_H
#define MPCG_UTIL_PERMUTATION_H

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mpcg {

/// Returns a uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
/// perm[i] is the vertex with rank i.
[[nodiscard]] std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                            Rng& rng);

/// Inverts a permutation: result[perm[i]] = i. For a rank permutation this
/// yields rank_of[v] = position of vertex v.
[[nodiscard]] std::vector<std::uint32_t> invert_permutation(
    const std::vector<std::uint32_t>& perm);

/// True iff `perm` is a permutation of {0, ..., perm.size()-1}.
[[nodiscard]] bool is_permutation_of_iota(
    const std::vector<std::uint32_t>& perm);

}  // namespace mpcg

#endif  // MPCG_UTIL_PERMUTATION_H
