// Failure injection: what happens when the cluster is under-provisioned.
//
// In strict mode the engines must *refuse* to run past a capacity breach
// (CapacityError / CongestionError); in non-strict mode they must complete
// and report the violations — that is the contract the experiment harness
// relies on to certify the paper's memory claims.  The error messages are
// part of the contract too: they must name the machine, the round, and the
// requested-vs-available words, so a breach in a long run is actionable.
#include <gtest/gtest.h>

#include <string>

#include "cclique/engine.h"
#include "core/matching_mpc.h"
#include "core/mis_mpc.h"
#include "gen/generators.h"
#include "graph/validation.h"
#include "mpc/engine.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

TEST(FailureInjection, MisStrictThrowsWhenMemoryTooSmall) {
  const Graph g = make_family("gnp_dense", 600, 1);
  MisMpcOptions opt;
  opt.seed = 1;
  opt.words_per_machine = 64;  // absurdly small: permutation alone is 600
  opt.num_machines = 4;
  opt.strict = true;
  EXPECT_THROW((void)mis_mpc(g, opt), mpc::CapacityError);
}

TEST(FailureInjection, MisNonStrictCompletesAndReports) {
  const Graph g = make_family("gnp_dense", 600, 1);
  // Shrink the budget until the engine reports violations; the output must
  // stay correct at every provisioning level.
  bool saw_violation = false;
  for (const std::size_t words : {512U, 256U, 128U, 64U}) {
    MisMpcOptions opt;
    opt.seed = 1;
    opt.words_per_machine = words;
    opt.num_machines = 4;
    opt.strict = false;
    const auto r = mis_mpc(g, opt);
    EXPECT_TRUE(is_maximal_independent_set(g, r.mis)) << words;
    if (r.metrics.violations > 0) {
      saw_violation = true;
      break;
    }
  }
  EXPECT_TRUE(saw_violation);
}

TEST(FailureInjection, MatchingStrictThrowsWhenMemoryTooSmall) {
  const Graph g = make_family("gnp_dense", 600, 2);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 2;
  opt.words_per_machine = 32;
  opt.strict = true;
  EXPECT_THROW((void)matching_mpc(g, opt), mpc::CapacityError);
}

TEST(FailureInjection, MatchingNonStrictCompletesAndReports) {
  const Graph g = make_family("gnp_dense", 600, 2);
  bool saw_violation = false;
  for (const std::size_t words : {256U, 128U, 64U, 32U, 16U}) {
    MatchingMpcOptions opt;
    opt.eps = 0.1;
    opt.seed = 2;
    opt.words_per_machine = words;
    opt.strict = false;
    const auto r = matching_mpc(g, opt);
    EXPECT_TRUE(is_fractional_matching(g, r.x, 1e-9)) << words;
    EXPECT_TRUE(is_vertex_cover(g, r.cover)) << words;
    if (r.metrics.violations > 0) {
      saw_violation = true;
      break;
    }
  }
  EXPECT_TRUE(saw_violation);
}

TEST(FailureInjection, AdequateBudgetReportsNoViolations) {
  // The complement: the default sizing really is adequate.
  const Graph g = make_family("gnp_dense", 600, 3);
  MisMpcOptions mo;
  mo.seed = 3;
  EXPECT_EQ(mis_mpc(g, mo).metrics.violations, 0U);
  MatchingMpcOptions ao;
  ao.eps = 0.1;
  ao.seed = 3;
  EXPECT_EQ(matching_mpc(g, ao).metrics.violations, 0U);
}

TEST(FailureInjection, MpcCapacityErrorNamesMachineRoundAndWords) {
  mpc::Engine eng(mpc::Config{2, 4, /*strict=*/true});
  mpc::Outbox ob = eng.outbox(0);
  for (mpc::Word w = 0; w < 8; ++w) ob.append(1, w);
  try {
    eng.exchange();
    FAIL() << "expected CapacityError";
  } catch (const mpc::CapacityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("machine 0"), std::string::npos) << what;
    EXPECT_NE(what.find("in round 0"), std::string::npos) << what;
    EXPECT_NE(what.find("requested 8"), std::string::npos) << what;
    EXPECT_NE(what.find("available 4"), std::string::npos) << what;
  }
}

TEST(FailureInjection, CcliqueStrictThrowsOnPairReuse) {
  cclique::Engine eng(4, /*strict=*/true);
  eng.send(0, 1, 7);
  eng.send(0, 1, 8);
  try {
    eng.exchange();
    FAIL() << "expected CongestionError";
  } catch (const cclique::CongestionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pair (0,1)"), std::string::npos) << what;
    EXPECT_NE(what.find("in round 0"), std::string::npos) << what;
    EXPECT_NE(what.find("requested 2 or more words"), std::string::npos)
        << what;
    EXPECT_NE(what.find("available 1 word per ordered pair per round"),
              std::string::npos)
        << what;
  }
}

TEST(FailureInjection, CcliqueStrictThrowsOnDoubleBroadcast) {
  cclique::Engine eng(4, /*strict=*/true);
  eng.broadcast(2, 1);
  eng.broadcast(2, 2);
  try {
    eng.exchange();
    FAIL() << "expected CongestionError";
  } catch (const cclique::CongestionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("player 2 broadcast twice in round 0"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("requested 2 broadcasts, available 1"),
              std::string::npos)
        << what;
  }
}

TEST(FailureInjection, CcliqueNonStrictCountsViolationsAndDelivers) {
  cclique::Engine eng(4, /*strict=*/false);
  eng.send(0, 1, 7);
  eng.send(0, 1, 8);
  eng.exchange();
  EXPECT_GE(eng.metrics().violations, 1U);
  // Both words still land — non-strict mode observes, it does not drop.
  EXPECT_EQ(eng.inbox(1).size(), 2U);
}

TEST(FailureInjection, CcliqueRoundIndexAppearsInLaterRoundErrors) {
  cclique::Engine eng(3, /*strict=*/true);
  eng.send(0, 1, 1);
  eng.exchange();
  eng.send(0, 2, 2);
  eng.exchange();
  eng.send(1, 0, 3);
  eng.send(1, 0, 4);
  try {
    eng.exchange();
    FAIL() << "expected CongestionError";
  } catch (const cclique::CongestionError& e) {
    EXPECT_NE(std::string(e.what()).find("in round 2"), std::string::npos)
        << e.what();
  }
}

TEST(FixedThresholdAblation, StillProducesValidOutputs) {
  // Turning the paper's random thresholds off must not break validity —
  // only the coupling quality (measured in bench E15).
  const Graph g = make_family("gnp_dense", 400, 5);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 5;
  opt.use_random_thresholds = false;
  const auto r = matching_mpc(g, opt);
  EXPECT_TRUE(is_fractional_matching(g, r.x, 1e-9));
  EXPECT_TRUE(is_vertex_cover(g, r.cover));
}

TEST(FixedThresholdAblation, DiffersFromRandomThresholds) {
  const Graph g = make_family("gnp_dense", 400, 7);
  MatchingMpcOptions fixed_opt;
  fixed_opt.eps = 0.1;
  fixed_opt.seed = 7;
  fixed_opt.use_random_thresholds = false;
  MatchingMpcOptions rand_opt = fixed_opt;
  rand_opt.use_random_thresholds = true;
  const auto a = matching_mpc(g, fixed_opt);
  const auto b = matching_mpc(g, rand_opt);
  EXPECT_NE(a.freeze_iteration, b.freeze_iteration);
}

}  // namespace
}  // namespace mpcg
