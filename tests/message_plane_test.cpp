// Zero-copy message plane: inbox-view lifetime/aliasing semantics, the
// interleaving contract between unicast pushes and shared payloads, the
// inbox() compatibility shim, and accounting equivalence between shared
// and materialized delivery. Every scenario runs on both exchange
// representations (dense box matrix and flat counting-sort), selected via
// Config::dense_machine_limit.
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/engine.h"
#include "mpc/primitives.h"

namespace mpcg::mpc {
namespace {

Engine make_engine(bool flat, std::size_t machines = 4,
                   std::size_t words = 1 << 12) {
  Config cfg;
  cfg.num_machines = machines;
  cfg.words_per_machine = words;
  cfg.strict = true;
  // dense_machine_limit = 0 forces the flat representation even for tiny
  // clusters, so both delivery paths are testable at the same scale.
  cfg.dense_machine_limit = flat ? 0 : 512;
  return Engine(cfg);
}

std::vector<Word> view_words(const InboxView& view) {
  return std::vector<Word>(view.begin(), view.end());
}

class MessagePlane : public ::testing::TestWithParam<bool> {};

TEST_P(MessagePlane, BroadcastDeliversToAllDestinations) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{7, 8, 9};
  const std::vector<std::size_t> dests{0, 2, 3};
  e.push_broadcast(1, dests, payload);
  e.exchange();
  for (const std::size_t d : dests) {
    EXPECT_EQ(view_words(e.inbox_view(d)), payload) << "machine " << d;
  }
  EXPECT_TRUE(e.inbox_view(1).empty());
}

TEST_P(MessagePlane, SharedPayloadIsAliasedNotCopied) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{1, 2, 3, 4};
  const std::vector<std::size_t> dests{0, 2, 3};
  e.push_broadcast(1, dests, payload);
  e.exchange();
  // Every destination's payload segment points at the same stored words.
  const std::span<const Word> s0 = e.inbox_view(0).segment(0);
  for (const std::size_t d : dests) {
    const InboxView v = e.inbox_view(d);
    ASSERT_EQ(v.num_segments(), 1U);
    EXPECT_EQ(v.segment(0).data(), s0.data()) << "machine " << d;
  }
}

TEST_P(MessagePlane, InterleavingPreservesPerSenderPushOrder) {
  Engine e = make_engine(GetParam());
  const std::vector<std::size_t> to_zero{0};
  const std::vector<Word> pay_a{100, 101};
  const std::vector<Word> pay_b{200};
  // Sender 2, chronologically: unicast 1, broadcast A, unicast 2 3,
  // broadcast B, unicast 4.
  e.push(2, 0, Word{1});
  e.push_broadcast(2, to_zero, pay_a);
  e.push(2, 0, Word{2});
  e.push(2, 0, Word{3});
  e.push_broadcast(2, to_zero, pay_b);
  e.push(2, 0, Word{4});
  // Sender 1 contributes after sender 2 queued — inbox order is by sender
  // id, not arrival order.
  e.push(1, 0, Word{11});
  // Sender 3: shared only.
  e.push_broadcast(3, to_zero, std::span<const Word>(pay_b));
  e.exchange();
  const std::vector<Word> expected{11, 1, 100, 101, 2, 3, 200, 4, 200};
  EXPECT_EQ(view_words(e.inbox_view(0)), expected);
  EXPECT_EQ(e.inbox(0), expected);  // shim agrees word-for-word
}

TEST_P(MessagePlane, ShimMatchesViewOnMixedTraffic) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{42, 43, 44};
  for (std::size_t from = 0; from < 4; ++from) {
    for (std::size_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      e.push(from, to, Word{from * 10 + to});
    }
    const std::vector<std::size_t> dests{(from + 1) % 4, (from + 2) % 4};
    e.push_broadcast(from, dests, payload);
  }
  e.exchange();
  for (std::size_t machine = 0; machine < 4; ++machine) {
    const InboxView v = e.inbox_view(machine);
    EXPECT_EQ(view_words(v), e.inbox(machine)) << "machine " << machine;
    EXPECT_EQ(v.size(), e.inbox(machine).size());
  }
}

TEST_P(MessagePlane, StagedPayloadSharedAcrossSenders) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{5, 6};
  const PayloadId pid = e.stage_payload(payload);
  e.push_broadcast(0, std::vector<std::size_t>{1}, pid);
  e.push_broadcast(2, std::vector<std::size_t>{1, 3}, pid);
  e.exchange();
  EXPECT_EQ(view_words(e.inbox_view(1)), (std::vector<Word>{5, 6, 5, 6}));
  EXPECT_EQ(view_words(e.inbox_view(3)), payload);
  // Sent words are charged per sender per destination.
  EXPECT_EQ(e.metrics().total_words, 6U);
  EXPECT_EQ(e.metrics().max_sent_words, 4U);      // sender 2: two dests
  EXPECT_EQ(e.metrics().max_received_words, 4U);  // machine 1
}

TEST_P(MessagePlane, PayloadIdsDieAtExchange) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{1};
  const PayloadId pid = e.push_broadcast(0, std::vector<std::size_t>{1},
                                         std::span<const Word>(payload));
  e.exchange();
  EXPECT_THROW(e.push_broadcast(0, std::vector<std::size_t>{1}, pid),
               std::out_of_range);
}

TEST_P(MessagePlane, ViewsDescribeOnlyTheLatestExchange) {
  Engine e = make_engine(GetParam());
  const std::vector<Word> payload{1, 2};
  e.push_broadcast(0, std::vector<std::size_t>{1}, payload);
  e.exchange();
  EXPECT_EQ(e.inbox_view(1).size(), 2U);
  // Next round: different traffic entirely. The old view is invalidated
  // (its segments aliased per-round storage); a fresh view sees only the
  // new round.
  e.push(2, 1, Word{9});
  e.exchange();
  EXPECT_EQ(view_words(e.inbox_view(1)), (std::vector<Word>{9}));
  EXPECT_EQ(e.inbox(1), (std::vector<Word>{9}));
  // An empty round wipes inboxes too.
  e.exchange();
  EXPECT_TRUE(e.inbox_view(1).empty());
}

TEST_P(MessagePlane, ClearInboxesEmptiesViews) {
  Engine e = make_engine(GetParam());
  e.push(0, 1, Word{5});
  e.push_broadcast(2, std::vector<std::size_t>{1},
                   std::vector<Word>{6, 7});
  e.exchange();
  EXPECT_EQ(e.inbox_view(1).size(), 3U);
  e.clear_inboxes();
  EXPECT_TRUE(e.inbox_view(1).empty());
  EXPECT_TRUE(e.inbox(1).empty());
}

TEST_P(MessagePlane, EmptyPayloadIsANoOp) {
  Engine e = make_engine(GetParam());
  e.push_broadcast(0, std::vector<std::size_t>{1, 2},
                   std::span<const Word>{});
  e.push(0, 1, Word{3});
  e.exchange();
  EXPECT_EQ(view_words(e.inbox_view(1)), (std::vector<Word>{3}));
  EXPECT_TRUE(e.inbox_view(2).empty());
  EXPECT_EQ(e.metrics().total_words, 1U);
}

TEST_P(MessagePlane, GatherDeliversOneSegmentPerSender) {
  Engine e = make_engine(GetParam());
  e.push_gather(1, 0, std::vector<Word>{10, 11});
  e.push_gather(2, 0, std::vector<Word>{20});
  e.push_gather(3, 0, std::vector<Word>{30, 31, 32});
  e.exchange();
  const InboxView v = e.inbox_view(0);
  ASSERT_EQ(v.num_segments(), 3U);
  EXPECT_EQ(v.segment(0)[0], 10U);
  EXPECT_EQ(v.segment(1)[0], 20U);
  EXPECT_EQ(v.segment(2).size(), 3U);
  EXPECT_EQ(view_words(v),
            (std::vector<Word>{10, 11, 20, 30, 31, 32}));
}

TEST_P(MessagePlane, AccountingMatchesMaterializedDelivery) {
  // The same logical traffic, once via shared payloads and once via plain
  // span pushes, must produce identical metrics and inbox contents —
  // zero-copy changes simulation cost, not model cost.
  const std::vector<Word> payload{3, 1, 4, 1, 5};
  const auto drive = [&](Engine& e, bool shared) {
    for (std::size_t round = 0; round < 3; ++round) {
      if (shared) {
        e.push_broadcast(0, std::vector<std::size_t>{1, 2, 3}, payload);
        e.push_gather(2, 1, payload);
      } else {
        for (const std::size_t to : {1, 2, 3}) {
          e.push(0, to, payload);
        }
        e.push(2, 1, payload);
      }
      e.push(3, 1, Word{round});
      e.exchange();
    }
  };
  for (const bool flat : {false, true}) {
    Engine shared_e = make_engine(flat);
    Engine plain_e = make_engine(flat);
    drive(shared_e, true);
    drive(plain_e, false);
    const Metrics& a = shared_e.metrics();
    const Metrics& b = plain_e.metrics();
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.max_sent_words, b.max_sent_words);
    EXPECT_EQ(a.max_received_words, b.max_received_words);
    EXPECT_EQ(a.peak_storage_words, b.peak_storage_words);
    EXPECT_EQ(a.total_words, b.total_words);
    EXPECT_EQ(a.violations, b.violations);
    for (std::size_t machine = 0; machine < 4; ++machine) {
      EXPECT_EQ(view_words(shared_e.inbox_view(machine)),
                plain_e.inbox(machine))
          << "machine " << machine << " flat=" << flat;
    }
  }
}

TEST_P(MessagePlane, StrictBudgetCountsSharedWords) {
  Engine e = make_engine(GetParam(), 4, 8);
  std::vector<Word> payload(5);
  std::iota(payload.begin(), payload.end(), 0);
  // 2 destinations x 5 words = 10 sent > 8 budget.
  e.push_broadcast(0, std::vector<std::size_t>{1, 2}, payload);
  EXPECT_THROW(e.exchange(), CapacityError);
}

TEST_P(MessagePlane, ReusableAfterSharedCapacityError) {
  // A strict-mode overflow mid-exchange must not leave stale shared sends
  // whose payload ids dangle into a later round's payload store.
  Engine e = make_engine(GetParam(), 4, 4);
  std::vector<Word> payload(10);
  std::iota(payload.begin(), payload.end(), 0);
  e.push_broadcast(0, std::vector<std::size_t>{1, 2}, payload);
  EXPECT_THROW(e.exchange(), CapacityError);
  e.push(0, 1, Word{42});
  e.exchange();
  const auto words = view_words(e.inbox_view(1));
  ASSERT_FALSE(words.empty());
  EXPECT_EQ(words.back(), 42U);
}

TEST_P(MessagePlane, CollectivesAgreeWithLegacySemantics) {
  Engine e = make_engine(GetParam(), 6, 1 << 10);
  std::vector<Word> payload(37);
  std::iota(payload.begin(), payload.end(), 100);
  EXPECT_EQ(broadcast(e, 2, payload), payload);
  std::vector<std::vector<Word>> parts{{1}, {}, {2, 3}, {4}, {}, {5, 6, 7}};
  EXPECT_EQ(gather_to(e, 1, parts),
            (std::vector<Word>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(all_reduce_sum(e, {1, 2, 3, 4, 5, 6}), 21U);
  EXPECT_EQ(e.metrics().violations, 0U);
}

INSTANTIATE_TEST_SUITE_P(DenseAndFlat, MessagePlane, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "flat" : "dense";
                         });

TEST(MessagePlaneConfig, DenseMachineLimitSelectsRepresentation) {
  // Observable difference is only in performance, but both representations
  // must satisfy the same contract right at the boundary.
  for (const std::size_t limit : {0UL, 2UL, 3UL, 512UL}) {
    Config cfg;
    cfg.num_machines = 3;
    cfg.words_per_machine = 64;
    cfg.dense_machine_limit = limit;
    Engine e(cfg);
    e.push(2, 0, Word{22});
    e.push(1, 0, Word{11});
    e.push_broadcast(1, std::vector<std::size_t>{0},
                     std::vector<Word>{99});
    e.exchange();
    EXPECT_EQ(e.inbox(0), (std::vector<Word>{11, 99, 22})) << limit;
  }
}

}  // namespace
}  // namespace mpcg::mpc
