// Massively Parallel Computation (MPC) model simulator.
//
// The model (paper, Section 1.1.1): m machines, each with S words of local
// memory, computing in synchronous rounds. Within a round machines compute
// locally; at the round boundary they exchange messages, and every machine
// may send and receive at most S words per round.
//
// This engine is the *accounting authority* for every algorithm in
// `src/core`: algorithms move data only through `push`/`exchange` (or the
// collectives in primitives.h built on them), the engine counts rounds and
// enforces capacities, and the experiment harness reads the metrics from
// here. Algorithms have no way to increment the round counter except by
// actually communicating.
//
// Message plane. Two kinds of traffic flow through an exchange:
//   * unicast words (`push`), buffered per (sender, receiver) and delivered
//     by bulk copy, and
//   * shared payloads (`stage_payload` + `push_broadcast` / `push_gather`),
//     stored ONCE per staging and delivered as (payload, offset, length)
//     descriptors — a broadcast of k words to f machines costs O(k + f)
//     simulator work instead of O(k * f) copies.
// Inboxes are exposed as ordered segment views (`inbox_view`): each shared
// payload appears as one segment aliasing the single stored copy, and
// unicast words as segments into the receiver's inbox buffer. The legacy
// `inbox()` accessor survives as a lazily-materialized compatibility shim.
// Zero-copy changes *simulation* cost only: metrics (rounds, sent/received
// words, violations) account shared payloads at full per-destination size,
// exactly as if every receiver got its own copy.
#ifndef MPCG_MPC_ENGINE_H
#define MPCG_MPC_ENGINE_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcg::mpc {

using Word = std::uint64_t;

/// Handle to a payload staged for the next exchange (see
/// Engine::stage_payload). Valid until that exchange() runs.
using PayloadId = std::uint32_t;

/// Thrown (in strict mode) when a machine exceeds its per-round send or
/// receive budget, or when a collective cannot fit in machine memory.
class CapacityError : public std::runtime_error {
 public:
  explicit CapacityError(const std::string& what) : std::runtime_error(what) {}
};

struct Config {
  /// Number of machines, m.
  std::size_t num_machines = 1;
  /// Words of memory per machine, S. Also the per-round send/receive cap.
  std::size_t words_per_machine = 1 << 20;
  /// If true, capacity violations throw CapacityError; otherwise they are
  /// tallied in Metrics::violations (useful for measuring how close an
  /// algorithm runs to the budget).
  bool strict = true;
  /// Dense/flat exchange representation: the per-(sender, receiver) box
  /// matrix (pushes pre-sort by destination, delivery is pure bulk copies,
  /// but O(machines^2) storage and a full matrix scan per round) versus
  /// flat per-sender outboxes with counting-sort delivery (O(words)
  /// storage, a few extra ops per word).
  ///
  /// With the default `kAdaptive`, the engine picks the path per flush
  /// from the traffic it just delivered — total unicast words versus
  /// occupied (sender, receiver) runs: bulky per-pair traffic that
  /// amortizes the matrix scan switches to dense, scattered short-run
  /// traffic switches to flat (both representations deliver identical
  /// inboxes and metrics, so switching is observable only as wall-clock;
  /// see `tools/bench_exchange_crossover --adaptive`). The dense matrix is
  /// never chosen above kAdaptiveDenseCap machines.
  ///
  /// Any explicit value overrides adaptivity with the old static rule:
  /// clusters up to the limit are dense, larger ones flat (0 forces flat
  /// everywhere — how tests pin one representation).
  static constexpr std::size_t kAdaptive = static_cast<std::size_t>(-1);
  std::size_t dense_machine_limit = kAdaptive;
};

struct Metrics {
  /// Communication rounds executed so far.
  std::size_t rounds = 0;
  /// Peak words sent by any machine in any single round.
  std::size_t max_sent_words = 0;
  /// Peak words received by any machine in any single round.
  std::size_t max_received_words = 0;
  /// Peak resident storage reported by any machine (via note_storage) or
  /// implied by a gather.
  std::size_t peak_storage_words = 0;
  /// Number of capacity violations observed (non-strict mode).
  std::size_t violations = 0;
  /// Total words moved across the cluster over all rounds.
  std::size_t total_words = 0;
};

/// Read-only, zero-copy view of one machine's inbox after an exchange: an
/// ordered list of word segments whose concatenation is the inbox contents
/// (sender ids ascending; each sender's pushes in push order, unicast and
/// shared interleaved chronologically). Segments alias engine-owned storage:
/// a view is valid until the next exchange() or clear_inboxes(), which
/// invalidate it (dangling — do not hold across rounds).
///
/// Segment structure is guaranteed only as far as: every shared payload
/// delivered to this machine appears as exactly one contiguous segment, in
/// its contract position. Unicast words may be split across one or more
/// segments. Word-level iteration (begin()/end()) hides the seams.
class InboxView {
 public:
  InboxView() = default;

  [[nodiscard]] std::size_t size() const noexcept { return words_; }
  [[nodiscard]] bool empty() const noexcept { return words_ == 0; }

  [[nodiscard]] std::size_t num_segments() const noexcept {
    return segs_ != nullptr ? segs_->size() : (single_.empty() ? 0 : 1);
  }
  [[nodiscard]] std::span<const Word> segment(std::size_t i) const noexcept {
    return segs_ != nullptr ? (*segs_)[i] : single_;
  }

  /// Appends the full inbox contents to `out` (one bulk copy per segment).
  void append_to(std::vector<Word>& out) const {
    out.reserve(out.size() + words_);
    for (std::size_t s = 0; s < num_segments(); ++s) {
      const auto seg = segment(s);
      out.insert(out.end(), seg.begin(), seg.end());
    }
  }
  [[nodiscard]] std::vector<Word> to_vector() const {
    std::vector<Word> out;
    append_to(out);
    return out;
  }

  /// Forward word iterator over the concatenated segments.
  class iterator {
   public:
    using value_type = Word;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const InboxView* view, std::size_t seg) : view_(view), seg_(seg) {
      settle();
    }
    Word operator*() const noexcept { return view_->segment(seg_)[off_]; }
    iterator& operator++() noexcept {
      ++off_;
      settle();
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const iterator& a, const iterator& b) noexcept {
      return a.seg_ == b.seg_ && a.off_ == b.off_;
    }

   private:
    void settle() noexcept {
      while (view_ != nullptr && seg_ < view_->num_segments() &&
             off_ >= view_->segment(seg_).size()) {
        ++seg_;
        off_ = 0;
      }
    }
    const InboxView* view_ = nullptr;
    std::size_t seg_ = 0;
    std::size_t off_ = 0;
  };
  [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() const noexcept {
    return {this, num_segments()};
  }

 private:
  friend class Engine;
  /// Fast path: a view that is one contiguous unicast range.
  std::span<const Word> single_{};
  /// Segmented path: borrowed from the engine (nullptr on the fast path).
  const std::vector<std::span<const Word>>* segs_ = nullptr;
  std::size_t words_ = 0;
};

class Engine {
 public:
  explicit Engine(Config config);

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return config_.num_machines;
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return config_.words_per_machine;
  }
  [[nodiscard]] bool strict() const noexcept { return config_.strict; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Queues one word from machine `from` to machine `to` for the next
  /// exchange. Inline: per-edge simulation traffic makes this the hottest
  /// call in the codebase.
  void push(std::size_t from, std::size_t to, Word word) {
    if (from >= config_.num_machines || to >= config_.num_machines)
        [[unlikely]] {
      throw_bad_machine(from >= config_.num_machines ? from : to);
    }
    if (dense_active_) {
      boxes_[from * config_.num_machines + to].push_back(word);
    } else {
      out_dests_[from].push_back(static_cast<std::uint32_t>(to));
      out_words_[from].push_back(word);
    }
  }

  /// Queues a word span (one bulk fill + one bulk copy).
  void push(std::size_t from, std::size_t to, std::span<const Word> words);

  /// Stores one copy of `words` for the next exchange and returns a handle
  /// any machine may push_broadcast against — so a relay round where many
  /// senders forward the same payload stores it once, total. The handle
  /// dies at the next exchange(); re-stage per round.
  PayloadId stage_payload(std::span<const Word> words);

  /// Queues the staged payload from `from` to every machine in `dests`:
  /// O(|dests|) descriptors, zero word copies. Accounting is unchanged from
  /// |dests| equivalent span pushes (|payload| words charged per
  /// destination). An empty payload is a no-op (as an empty push would be).
  void push_broadcast(std::size_t from, std::span<const std::size_t> dests,
                      PayloadId payload);

  /// Convenience: stage_payload + push_broadcast in one call.
  PayloadId push_broadcast(std::size_t from,
                           std::span<const std::size_t> dests,
                           std::span<const Word> payload);

  /// Queues `words` from `from` to `to` as one shared-payload segment (one
  /// stored copy; the receiver's view aliases it instead of re-copying into
  /// the inbox buffer). The gather half of the message plane: each
  /// contributed part arrives as exactly one segment.
  void push_gather(std::size_t from, std::size_t to,
                   std::span<const Word> words);

  /// Executes one communication round: delivers all queued words, enforces
  /// per-machine send/receive budgets, updates metrics, and makes inboxes
  /// readable. Queued outboxes are cleared; views and payloads from the
  /// previous round are invalidated.
  void exchange();

  /// Zero-copy view of the words delivered to `machine` by the most recent
  /// exchange (see InboxView for the ordering contract and lifetime).
  [[nodiscard]] InboxView inbox_view(std::size_t machine) const;

  /// The stored words of a payload delivered by the most recent exchange(),
  /// addressed by the PayloadId stage_payload returned before it. Aliases
  /// engine-owned storage: valid until the next exchange() or
  /// clear_inboxes(). This is how span-returning collectives
  /// (mpc::broadcast_view) hand out the delivered payload without a copy.
  [[nodiscard]] std::span<const Word> delivered_payload(PayloadId id) const {
    return delivered_payloads_.at(id);
  }

  /// Words delivered to `machine` by the most recent exchange, concatenated
  /// in sender order (sender ids ascending; each sender's words in push
  /// order). Compatibility shim over inbox_view: rounds that carried no
  /// shared payloads return the inbox buffer directly; otherwise the
  /// concatenation is materialized lazily (once) per machine per round.
  [[nodiscard]] const std::vector<Word>& inbox(std::size_t machine) const;

  /// Reports `words` of resident state on `machine` for peak-storage
  /// accounting (e.g. an adjacency shard or a gathered subgraph). In strict
  /// mode exceeding S throws.
  void note_storage(std::size_t machine, std::size_t words);

  /// Clears all inboxes (outboxes are cleared by exchange()). Invalidates
  /// outstanding views.
  void clear_inboxes();

 private:
  /// One queued shared-payload delivery. `seq` snapshots how many unicast
  /// words the sender had queued (to this receiver on the dense path; in
  /// total on the flat path) when the shared push happened — the splice
  /// position that keeps per-sender chronological order in the inbox.
  struct SharedSend {
    std::uint32_t from;
    std::uint32_t to;
    PayloadId payload;
    std::uint64_t seq;
  };

  void check_budget(std::size_t machine, std::size_t words, const char* dir);
  void check_machine(std::size_t machine) const;
  [[noreturn]] void throw_bad_machine(std::size_t machine) const;

  void drop_last_round();
  void exchange_plain_dense(std::size_t m);
  void exchange_plain_flat(std::size_t m);
  void exchange_shared(std::size_t m);
  /// Switches the staging representation (both are kept allocated once
  /// used; only callable between flushes, when all outboxes are empty).
  void set_path(bool dense);
  /// Per-flush adaptive path choice from the shape of the unicast traffic
  /// just delivered: `words` moved across `runs` maximal same-destination
  /// stretches. No-op unless Config::dense_machine_limit is kAdaptive.
  void adapt_path(std::size_t words, std::size_t runs);
  /// Largest cluster the adaptive mode will ever give the dense matrix
  /// (its storage and per-round scan are O(machines^2)).
  static constexpr std::size_t kAdaptiveDenseCap = 512;
  /// Appends `box` to inbox_[to] split around this pair's shared sends
  /// (whose seq fields hold within-pair splice offsets, chronological
  /// order), emitting interleaved segments into in_segs_[to].
  void deliver_pair_with_shared(std::size_t to, std::span<const Word> box,
                                std::span<const SharedSend> sends);
  std::vector<std::span<const Word>>& touch_segs(std::size_t to);

  Config config_;
  Metrics metrics_;
  /// Which staging representation push() writes to. Fixed by
  /// dense_machine_limit when that is explicit; re-decided per flush by
  /// adapt_path() in the default adaptive mode.
  bool dense_active_ = false;
  /// Dense representation (small clusters): boxes_[from * m + to] holds
  /// the unicast words queued from `from` to `to`, in push order. Empty
  /// when the flat representation is active.
  std::vector<std::vector<Word>> boxes_;
  /// Flat per-sender outboxes (large clusters), in push order:
  /// out_words_[from][i] goes to machine out_dests_[from][i]. A round of
  /// exchange() costs O(words moved + machines): a counting pass over the
  /// destination arrays, then a stable counting-sort delivery pass that
  /// buckets each sender's words by destination and appends each bucket
  /// with one bulk copy.
  std::vector<std::vector<std::uint32_t>> out_dests_;
  std::vector<std::vector<Word>> out_words_;
  /// Unicast words delivered to each machine (shared payloads are viewed in
  /// place, never copied here).
  std::vector<std::vector<Word>> inbox_;

  // Shared-payload plane. Staged payloads become `delivered_payloads_` at
  // exchange and stay alive (aliased by views) until the next exchange or
  // clear_inboxes.
  std::vector<std::vector<Word>> staged_payloads_;
  std::vector<std::vector<Word>> delivered_payloads_;
  std::vector<SharedSend> shared_sends_;
  /// Per-machine ordered segments for the current round; only filled for
  /// machines that received at least one shared payload (others use the
  /// single-span fast path). `seg_touched_` lists the filled machines for
  /// O(touched) teardown.
  std::vector<std::vector<std::span<const Word>>> in_segs_;
  std::vector<std::size_t> seg_touched_;
  /// Words received this round per machine (unicast + shared), valid for
  /// machines in seg_touched_.
  std::vector<std::size_t> recv_total_;
  bool shared_round_ = false;
  /// Lazy materializations backing the inbox() shim on shared rounds.
  mutable std::vector<std::vector<Word>> inbox_cache_;
  mutable std::vector<char> inbox_cache_valid_;

  /// Per-receiver word counts for the current exchange (scratch).
  std::vector<std::size_t> recv_count_;
  /// Per-machine shared sent/received word totals (scratch, shared rounds).
  std::vector<std::size_t> shared_sent_;
  std::vector<std::size_t> shared_recv_;
  /// Counting-sort scratch for scattered senders (see exchange()).
  std::vector<std::size_t> bucket_count_;
  std::vector<std::size_t> bucket_cursor_;
  std::vector<Word> scatter_;
  /// Flat-path scratch: one sender's shared sends in chronological order,
  /// with seq rewritten to the within-pair splice offset.
  std::vector<SharedSend> sender_sends_;
};

}  // namespace mpcg::mpc

#endif  // MPCG_MPC_ENGINE_H
