#include "baselines/hopcroft_karp.h"

#include <deque>
#include <limits>

namespace mpcg {

std::optional<std::vector<char>> try_bipartition(const Graph& g) {
  const std::size_t n = g.num_vertices();
  constexpr char kUnset = 2;
  std::vector<char> side(n, kUnset);
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (side[s] != kUnset) continue;
    side[s] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const Arc& a : g.arcs(v)) {
        if (side[a.to] == kUnset) {
          side[a.to] = static_cast<char>(1 - side[v]);
          queue.push_back(a.to);
        } else if (side[a.to] == side[v]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
constexpr VertexId kFree = std::numeric_limits<VertexId>::max();

struct HkState {
  const Graph& g;
  const std::vector<char>& side;
  std::vector<VertexId> match;  // partner or kFree
  std::vector<std::uint32_t> dist;

  explicit HkState(const Graph& graph, const std::vector<char>& s)
      : g(graph), side(s), match(graph.num_vertices(), kFree),
        dist(graph.num_vertices(), kInf) {}

  bool bfs() {
    std::deque<VertexId> queue;
    bool reachable_free = false;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (side[v] == 0 && match[v] == kFree) {
        dist[v] = 0;
        queue.push_back(v);
      } else {
        dist[v] = kInf;
      }
    }
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const Arc& a : g.arcs(v)) {
        const VertexId u = a.to;  // right side
        const VertexId w = match[u];
        if (w == kFree) {
          reachable_free = true;
        } else if (dist[w] == kInf) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    return reachable_free;
  }

  bool dfs(VertexId v) {
    for (const Arc& a : g.arcs(v)) {
      const VertexId u = a.to;
      const VertexId w = match[u];
      if (w == kFree || (dist[w] == dist[v] + 1 && dfs(w))) {
        match[v] = u;
        match[u] = v;
        return true;
      }
    }
    dist[v] = kInf;
    return false;
  }
};

}  // namespace

std::vector<EdgeId> hopcroft_karp_matching(const Graph& g,
                                           const std::vector<char>& side) {
  HkState state(g, side);
  while (state.bfs()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (side[v] == 0 && state.match[v] == kFree) {
        state.dfs(v);
      }
    }
  }
  std::vector<EdgeId> matching;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (side[v] == 0 && state.match[v] != kFree) {
      matching.push_back(g.find_edge(v, state.match[v]));
    }
  }
  return matching;
}

}  // namespace mpcg
