// Section 4.1 `Central` and Section 4.3 `Central-Rand`: the O(log n)-
// iteration sequential fractional matching + vertex cover algorithms.
//
// Every edge starts at weight w0; per iteration, each unfrozen vertex whose
// load y_v = sum_{e ∋ v} x_e reaches its threshold freezes (with all its
// edges), and surviving active edges grow by 1/(1-eps). `Central` uses the
// fixed threshold 1-2eps; `Central-Rand` draws a fresh T_{v,t} uniform in
// [1-4eps, 1-2eps] per vertex per iteration, statelessly from
// (threshold_seed, v, t) — the same stream MPC-Simulation consumes, which
// is what lets the two be coupled exactly as in the paper's analysis
// (Section 4.4.3).
//
// Invariant exploited by the implementation: at iteration t every active
// edge has weight exactly w0 / (1-eps)^t, so a vertex's load is
// (frozen contribution) + (active degree) * w_t and iterations cost O(n)
// instead of O(m).
//
// Lemma 4.1: terminates in O(log n / eps) iterations; the frozen set is a
// (2+5eps)-approximate vertex cover and sum_e x_e >= nu(G) / (2+5eps).
#ifndef MPCG_CORE_CENTRAL_H
#define MPCG_CORE_CENTRAL_H

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace mpcg {

struct CentralOptions {
  double eps = 0.1;
  /// Fixed threshold (Central) vs per-(v,t) random thresholds
  /// (Central-Rand).
  bool random_thresholds = false;
  /// Seed of the stateless threshold stream (only used when
  /// random_thresholds).
  std::uint64_t threshold_seed = 1;
  /// Initial edge weight w0; 0 = the paper's 1/n. (MPC-Simulation couples
  /// against a Central-Rand run started from its own w0 = (1-2eps)/n.)
  double initial_edge_weight = 0.0;
  /// Record y_v per iteration (for the coupling experiments). Costs
  /// O(n * iterations) memory.
  bool record_trace = false;
};

struct CentralResult {
  /// Fractional matching, one weight per edge id.
  std::vector<double> x;
  /// Frozen vertices — the vertex cover.
  std::vector<VertexId> cover;
  /// Iteration at which each vertex froze (kNeverFroze if it never did —
  /// possible only for vertices with no edges).
  std::vector<std::uint32_t> freeze_iteration;
  std::size_t iterations = 0;
  /// y_trace[t][v] = load of v at the *start* of iteration t (before
  /// freezing); only filled when options.record_trace.
  std::vector<std::vector<double>> y_trace;

  static constexpr std::uint32_t kNeverFroze =
      std::numeric_limits<std::uint32_t>::max();
};

/// Runs Central / Central-Rand on g.
[[nodiscard]] CentralResult central_fractional_matching(
    const Graph& g, const CentralOptions& options);

/// The threshold T_{v,t} Central-Rand and MPC-Simulation share.
[[nodiscard]] double central_threshold(std::uint64_t threshold_seed,
                                       VertexId v, std::uint64_t t,
                                       double eps, bool random_thresholds);

/// The random-threshold draw split at its two-level hash: `vertex_mix` is
/// mix64(threshold_seed, v) — constant across iterations — and only the
/// second-level mix with t happens here. Because mix64(s, v, t) is defined
/// as mix64(mix64(s, v), t), this is bit-for-bit the same T_{v,t} as
/// central_threshold with random_thresholds — the identity ThresholdBatch
/// relies on (this function is the single definition both paths compile).
[[nodiscard]] inline double central_threshold_from_mix(
    std::uint64_t vertex_mix, std::uint64_t t, double eps) noexcept {
  const double u =
      static_cast<double>(mix64(vertex_mix, t) >> 11) * 0x1.0p-53;
  return (1.0 - 4.0 * eps) + 2.0 * eps * u;
}

/// Cached evaluation of the threshold stream T_{v,t}: the per-vertex
/// first-level mix is computed once at construction, so every draw costs
/// one second-level hash instead of the two-level mix64(seed, v, t)
/// re-derivation of a scattered central_threshold call. The matching
/// driver draws through threshold() for the (floor-filtered) candidates
/// of each iteration; fill() is the whole-span form for consumers that
/// want an iteration's draws in one pass. With fixed thresholds (Central
/// rather than Central-Rand) no cache is built and every draw is the
/// constant.
class ThresholdBatch {
 public:
  ThresholdBatch(std::uint64_t threshold_seed, double eps,
                 bool random_thresholds, std::size_t num_vertices);

  /// out[i] = T_{vertices[i], t}, resized to vertices.size(). Bit-identical
  /// to calling central_threshold per vertex.
  void fill(std::span<const VertexId> vertices, std::uint64_t t,
            std::vector<double>& out) const;

  /// Single draw through the cache (candidate evaluation after the floor
  /// filter; one second-level hash).
  [[nodiscard]] double threshold(VertexId v, std::uint64_t t) const noexcept {
    if (!random_) return fixed_;
    return central_threshold_from_mix(vertex_mix_[v], t, eps_);
  }

  /// Smallest value any draw of this stream can take: 1-4eps for the
  /// random stream (T = (1-4eps) + 2eps*u with u >= 0 never rounds below
  /// the base), 1-2eps fixed. A load strictly below this floor loses the
  /// `load >= T` comparison for every possible draw, so the draw can be
  /// skipped without sampling it — the stream is stateless, skipped draws
  /// change nothing downstream (the driver's floor filter).
  [[nodiscard]] double lower_bound() const noexcept {
    return random_ ? 1.0 - 4.0 * eps_ : fixed_;
  }

 private:
  std::vector<std::uint64_t> vertex_mix_;
  double eps_;
  double fixed_;
  bool random_;
};

}  // namespace mpcg

#endif  // MPCG_CORE_CENTRAL_H
