// Section 4.3 `MPC-Simulation` — fractional matching and vertex cover in
// O(log log n) MPC rounds (Lemma 4.2).
//
// Phase structure (paper, Line (3)):
//   * the active graph G' (edges with both endpoints unfrozen, both still
//     in V') has max degree <= d (Lemma 4.6);
//   * V' is partitioned uniformly at random over m = sqrt(d) machines; each
//     machine receives its induced active subgraph G'[V_i] (O(n) edges
//     w.h.p., Lemma 4.7 — measured and enforced by the engine here);
//   * each machine locally simulates I iterations of Central-Rand on its
//     subgraph, estimating vertex loads by y~ = m * (local incident
//     weight) + y_old and freezing against the shared random thresholds
//     T_{v,t};
//   * phase end (Lines (f)-(j)): d <- d (1-eps)^I, edge weights are
//     reconciled to x_e = w0 / (1-eps)^{t'} with t' the last iteration both
//     endpoints were active, vertices with load > 1 are removed into the
//     cover, vertices with load > 1-2eps are frozen.
// Once d falls below the tail threshold the remaining iterations of
// Central-Rand are simulated directly (Line (4)).
//
// Implementation note: because every active edge at global iteration t has
// weight exactly w0 / (1-eps)^t, the entire weight state is a pure function
// of per-vertex freeze iterations; the algorithm stores those and derives
// x. This is precisely the paper's Line (g) reconstruction.
//
// Pacing: the paper's I = log(m)/(10 log 5) is < 1 for every feasible
// machine count at laptop scale (it is a proof constant), so the default
// schedule follows Section 4.2's idealized pacing — run each phase until
// the active degree bound drops to d^beta (beta = 0.9). Set
// `paper_iteration_schedule` to use the literal formula (clamped to >= 1).
#ifndef MPCG_CORE_MATCHING_MPC_H
#define MPCG_CORE_MATCHING_MPC_H

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "mpc/engine.h"

namespace mpcg::fault {
class FaultPlan;
}  // namespace mpcg::fault

namespace mpcg {

struct MatchingMpcOptions {
  double eps = 0.1;
  std::uint64_t seed = 1;
  /// Seed of the shared threshold stream T_{v,t}; a Central-Rand run with
  /// the same threshold_seed and w0 = (1-2eps)/n is the coupled process of
  /// the paper's analysis.
  std::uint64_t threshold_seed = 1;
  /// Per-phase degree shrink target: d -> d^beta (Section 4.2 pacing).
  double beta = 0.9;
  /// Switch to direct simulation once d <= this (paper: log^20 n).
  std::size_t tail_degree_switch = 32;
  /// Use the literal I = log(m)/(10 log 5) schedule (clamped to >= 1).
  bool paper_iteration_schedule = false;
  /// The paper's key fix (Section 4.2): draw T_{v,t} uniform in
  /// [1-4eps, 1-2eps] instead of the fixed 1-2eps. Turning this *off*
  /// reproduces the "Issue with the Direct Simulation" the paper warns
  /// about — the ablation experiment E15 measures exactly that.
  bool use_random_thresholds = true;
  /// Record per-iteration load estimates (coupling experiment E7).
  bool record_trace = false;
  /// Collect MatchingMpcResult::support (the nonzero-x edge ids) during
  /// the output sweep. Off by default: callers that never round (vertex
  /// cover, the benches) should not pay the extra store per surviving
  /// edge; the integral pipeline turns it on.
  bool collect_support = false;
  /// Words of memory per machine; 0 = auto (8n).
  std::size_t words_per_machine = 0;
  bool strict = true;
  /// Execution-backend width (see mpc::Config::threads): 1 = the
  /// sequential reference; > 1 runs the engine flushes and the distribute/
  /// announce local loops over a shared-memory pool, bit-identical to 1.
  std::size_t threads = 1;
  /// Deterministic fault schedule consulted by the engine at round
  /// boundaries (borrowed; must outlive the run). nullptr = fault-free.
  const fault::FaultPlan* fault_plan = nullptr;
  /// With a plan attached: recover crashes/drops by rolling back to the
  /// round checkpoint and replaying (outputs stay bit-identical to the
  /// fault-free run); false lets crashed machines go dark instead.
  bool fault_recovery = true;
  /// Per-sender stream checksums + detect->retransmit for injected payload
  /// corruption (see mpc::Config::integrity).
  bool integrity = false;
  /// Per-round conservation-invariant audit (see mpc::Config::audit).
  bool audit = false;
  /// Proactive durable-store scrub every `scrub_interval` rounds (0 =
  /// never; requires integrity — see mpc::Config::scrub_interval).
  std::size_t scrub_interval = 0;
  /// On-disk checkpoint persistence and resume (see fault/durable.h and
  /// mpc::Config::checkpoint_dir). Off while `durable.dir` is empty.
  fault::DurableOptions durable;
};

struct MatchingMpcResult {
  /// Fractional matching on G (0 on edges incident to removed vertices).
  std::vector<double> x;
  /// The surviving support of x: the edge ids with x > 0 (exactly the
  /// edges with neither endpoint removed), ascending. Collected during the
  /// output sweep (only with MatchingMpcOptions::collect_support), so
  /// downstream rounding sweeps (integral_matching's heavy-vertex and
  /// proposal passes) can stop at the support instead of rescanning the
  /// full edge list — the same frontier-proportional bookkeeping the
  /// per-phase counters below expose.
  std::vector<EdgeId> support;
  /// Vertex cover: all frozen vertices plus all removed (load > 1)
  /// vertices.
  std::vector<VertexId> cover;
  /// Heavy vertices removed at Line (i).
  std::vector<char> removed_heavy;
  /// Global iteration at which each vertex froze; kActive if it never did.
  std::vector<std::uint32_t> freeze_iteration;

  std::size_t phases = 0;
  std::size_t total_iterations = 0;
  std::size_t tail_iterations = 0;

  /// Per phase: machines used (sqrt(d)) and the largest induced subgraph
  /// any machine received, in edges (Lemma 4.7 says O(n)).
  std::vector<std::size_t> machines_per_phase;
  std::vector<std::size_t> max_local_edges_per_phase;
  /// Per phase: active (alive and unfrozen) vertices at phase start — the
  /// residual frontier the phase's work is proportional to.
  std::vector<std::size_t> active_per_phase;
  /// Per phase: frontier-internal (active-active) edges at phase start —
  /// what the distribute loop actually scans (ActiveArcs); the per-phase
  /// edge work is proportional to this, not to all alive edges.
  std::vector<std::size_t> frontier_edges_per_phase;

  mpc::Metrics metrics;

  /// y_tilde_trace[t][v] = the estimate the simulation used for v at global
  /// iteration t (NaN for vertices not being simulated then). Only with
  /// record_trace.
  std::vector<std::vector<double>> y_tilde_trace;

  static constexpr std::uint32_t kActive =
      std::numeric_limits<std::uint32_t>::max();
};

[[nodiscard]] MatchingMpcResult matching_mpc(const Graph& g,
                                             const MatchingMpcOptions& options);

}  // namespace mpcg

#endif  // MPCG_CORE_MATCHING_MPC_H
