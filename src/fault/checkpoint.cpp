#include "fault/checkpoint.h"

#include <algorithm>
#include <utility>

namespace mpcg::fault {

namespace {

/// Charge of shipping `now` given the provider's previous image `prev`
/// (same length): two header words (offset, length) plus the payload per
/// maximal dirty stretch, capped at a full re-serialization.
std::size_t dirty_range_cost(const CheckpointRegistry::Word* prev,
                             const CheckpointRegistry::Word* now,
                             std::size_t words) {
  std::size_t cost = 0;
  std::size_t i = 0;
  while (i < words) {
    if (prev[i] == now[i]) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < words && prev[j] != now[j]) ++j;
    cost += 2 + (j - i);
    if (cost >= words) return words;  // delta lost; charge a full save
    i = j;
  }
  return cost;
}

}  // namespace

void CheckpointRegistry::register_state(std::string name, SaveFn save,
                                        RestoreFn restore) {
  providers_.push_back(
      {std::move(name), std::move(save), std::move(restore), 0, 0});
}

std::size_t CheckpointRegistry::capture() {
  std::size_t cost = 0;
  bool all_deltas = has_checkpoint_ && !providers_.empty();
  fresh_.clear();
  for (Provider& p : providers_) {
    const std::size_t offset = fresh_.size();
    p.save(fresh_);
    const std::size_t words = fresh_.size() - offset;
    if (has_checkpoint_ && p.words == words) {
      const std::size_t delta = dirty_range_cost(
          buffer_.data() + p.offset, fresh_.data() + offset, words);
      cost += delta;
      if (delta >= words && words != 0) all_deltas = false;
    } else {
      // First capture, or the provider resized (frontier lists grow and
      // shrink): dirty ranges against a differently-shaped image are
      // meaningless, ship it whole.
      cost += words;
      all_deltas = false;
    }
    p.offset = offset;
    p.words = words;
  }
  buffer_.swap(fresh_);
  has_checkpoint_ = true;
  ++captures_;
  delta_captures_ += all_deltas;
  last_capture_words_ = cost;
  return cost;
}

void CheckpointRegistry::restore() {
  if (!has_checkpoint_) return;
  for (const Provider& p : providers_) {
    p.restore(std::span<const Word>(buffer_.data() + p.offset, p.words));
  }
  ++restores_;
}

}  // namespace mpcg::fault
