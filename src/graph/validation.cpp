#include "graph/validation.h"

#include <algorithm>

namespace mpcg {

bool is_independent_set(const Graph& g, const std::vector<VertexId>& set) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const VertexId v : set) {
    if (v >= g.num_vertices() || in_set[v]) return false;
    in_set[v] = true;
  }
  for (const VertexId v : set) {
    for (const Arc& a : g.arcs(v)) {
      if (in_set[a.to]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<VertexId>& set) {
  if (!is_independent_set(g, set)) return false;
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const VertexId v : set) in_set[v] = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_set[v]) continue;
    bool blocked = false;
    for (const Arc& a : g.arcs(v)) {
      if (in_set[a.to]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;  // v could be added: not maximal
  }
  return true;
}

bool is_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  std::vector<bool> used(g.num_vertices(), false);
  std::vector<bool> seen_edge(g.num_edges(), false);
  for (const EdgeId e : matching) {
    if (e >= g.num_edges() || seen_edge[e]) return false;
    seen_edge[e] = true;
    const Edge ed = g.edge(e);
    if (used[ed.u] || used[ed.v]) return false;
    used[ed.u] = true;
    used[ed.v] = true;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  if (!is_matching(g, matching)) return false;
  const auto used = matched_flags(g, matching);
  for (const Edge& e : g.edges()) {
    if (!used[e.u] && !used[e.v]) return false;
  }
  return true;
}

bool is_vertex_cover(const Graph& g, const std::vector<VertexId>& cover) {
  std::vector<bool> in_cover(g.num_vertices(), false);
  for (const VertexId v : cover) {
    if (v >= g.num_vertices()) return false;
    in_cover[v] = true;
  }
  for (const Edge& e : g.edges()) {
    if (!in_cover[e.u] && !in_cover[e.v]) return false;
  }
  return true;
}

bool is_fractional_matching(const Graph& g, const std::vector<double>& x,
                            double tol) {
  if (x.size() != g.num_edges()) return false;
  for (const double xe : x) {
    if (xe < -tol) return false;
  }
  const auto loads = vertex_loads(g, x);
  return std::all_of(loads.begin(), loads.end(),
                     [tol](double y) { return y <= 1.0 + tol; });
}

double fractional_weight(const std::vector<double>& x) {
  double w = 0.0;
  for (const double xe : x) w += xe;
  return w;
}

std::vector<double> vertex_loads(const Graph& g, const std::vector<double>& x) {
  std::vector<double> y(g.num_vertices(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    y[ed.u] += x[e];
    y[ed.v] += x[e];
  }
  return y;
}

std::vector<double> vertex_loads(const Graph& g, const std::vector<double>& x,
                                 std::span<const EdgeId> support) {
  std::vector<double> y(g.num_vertices(), 0.0);
  for (const EdgeId e : support) {
    const Edge ed = g.edge(e);
    y[ed.u] += x[e];
    y[ed.v] += x[e];
  }
  return y;
}

std::vector<bool> matched_flags(const Graph& g,
                                const std::vector<EdgeId>& matching) {
  std::vector<bool> used(g.num_vertices(), false);
  for (const EdgeId e : matching) {
    const Edge ed = g.edge(e);
    used[ed.u] = true;
    used[ed.v] = true;
  }
  return used;
}

double matching_weight(const std::vector<EdgeId>& matching,
                       const std::vector<double>& weights) {
  double w = 0.0;
  for (const EdgeId e : matching) w += weights[e];
  return w;
}

}  // namespace mpcg
