// Israeli–Itai style randomized maximal matching [II86] — the classic
// O(log n)-round distributed baseline.
//
// Per round every unmatched vertex proposes to a uniformly random unmatched
// neighbor; every vertex that received proposals accepts one (the
// lowest-id proposer), and mutual (proposer, accepter) pairs are matched
// and removed. Repeats until no edges between unmatched vertices remain.
#ifndef MPCG_BASELINES_ISRAELI_ITAI_H
#define MPCG_BASELINES_ISRAELI_ITAI_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

struct IsraeliItaiResult {
  std::vector<EdgeId> matching;
  std::size_t rounds = 0;
};

[[nodiscard]] IsraeliItaiResult israeli_itai_matching(const Graph& g,
                                                      std::uint64_t seed);

}  // namespace mpcg

#endif  // MPCG_BASELINES_ISRAELI_ITAI_H
