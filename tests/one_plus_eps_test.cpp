#include <gtest/gtest.h>

#include "baselines/blossom.h"
#include "baselines/greedy_matching.h"
#include "core/one_plus_eps.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

TEST(PartnerArray, RoundTrips) {
  const Graph g = path_graph(6);
  const std::vector<EdgeId> m{g.find_edge(0, 1), g.find_edge(4, 5)};
  const auto partner = partner_array(g, m);
  EXPECT_EQ(partner[0], 1U);
  EXPECT_EQ(partner[1], 0U);
  EXPECT_EQ(partner[2], kUnmatched);
  auto back = matching_from_partners(g, partner);
  std::sort(back.begin(), back.end());
  auto sorted = m;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(back, sorted);
}

TEST(AugmentingPass, FlipsLengthOnePath) {
  // Single uncovered edge: a pass must match it.
  const Graph g = path_graph(2);
  auto partner = partner_array(g, {});
  const std::size_t flipped = augmenting_paths_pass(g, partner, 1, 7);
  EXPECT_EQ(flipped, 1U);
  EXPECT_EQ(partner[0], 1U);
}

TEST(AugmentingPass, FlipsLengthThreePath) {
  // P4 matched in the middle: augmenting path 0-1-2-3 exists.
  const Graph g = path_graph(4);
  auto partner = partner_array(g, {g.find_edge(1, 2)});
  const std::size_t flipped = augmenting_paths_pass(g, partner, 2, 7);
  EXPECT_EQ(flipped, 1U);
  EXPECT_EQ(matching_from_partners(g, partner).size(), 2U);
}

TEST(AugmentingPass, RespectsLengthCap) {
  // P6 with the two inner edges matched: the only augmenting path has
  // length 5, so k=1 (cap 3) cannot flip it.
  const Graph g = path_graph(6);
  auto partner = partner_array(g, {g.find_edge(1, 2), g.find_edge(3, 4)});
  std::size_t flipped = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    flipped += augmenting_paths_pass(g, partner, 1, s);
  }
  EXPECT_EQ(flipped, 0U);
  // k=2 (cap 5) finds it.
  EXPECT_EQ(augmenting_paths_pass(g, partner, 2, 3), 1U);
  EXPECT_EQ(matching_from_partners(g, partner).size(), 3U);
}

TEST(AugmentingPass, KeepsMatchingValid) {
  const Graph g = make_family("gnp_dense", 300, 3);
  auto partner = partner_array(g, greedy_maximal_matching(g));
  for (std::uint64_t pass = 0; pass < 10; ++pass) {
    augmenting_paths_pass(g, partner, 3, pass);
    const auto m = matching_from_partners(g, partner);
    EXPECT_TRUE(is_matching(g, m));
  }
}

TEST(AugmentingPass, NeverShrinksMatching) {
  const Graph g = make_family("power_law", 300, 5);
  auto partner = partner_array(g, greedy_maximal_matching(g));
  std::size_t prev = matching_from_partners(g, partner).size();
  for (std::uint64_t pass = 0; pass < 8; ++pass) {
    augmenting_paths_pass(g, partner, 2, pass);
    const std::size_t now = matching_from_partners(g, partner).size();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(HasShortAugmentingPath, DetectsAndRejects) {
  const Graph g = path_graph(4);
  auto partner = partner_array(g, {g.find_edge(1, 2)});
  EXPECT_TRUE(has_short_augmenting_path(g, partner, 3));
  // Perfect matching on P4: no augmenting path at all.
  auto perfect = partner_array(g, {g.find_edge(0, 1), g.find_edge(2, 3)});
  EXPECT_FALSE(has_short_augmenting_path(g, perfect, 7));
}

TEST(OnePlusEps, ReachesExactOnBipartite) {
  const Graph g = make_family("bipartite", 240, 7);
  OnePlusEpsOptions o;
  o.eps = 0.25;
  o.seed = 7;
  const auto r = one_plus_eps_matching(g, o);
  EXPECT_TRUE(is_matching(g, r.matching));
  const double nu = static_cast<double>(maximum_matching_size(g));
  EXPECT_GE(static_cast<double>(r.matching.size()) * (1.0 + o.eps),
            nu - 1e-9)
      << "|M|=" << r.matching.size() << " nu=" << nu;
}

TEST(OnePlusEps, ImprovesOverBaseAcrossFamilies) {
  for (const char* family : {"gnp_sparse", "gnp_dense", "power_law",
                             "grid", "cliques"}) {
    const Graph g = make_family(family, 280, 9);
    if (g.num_edges() == 0) continue;
    OnePlusEpsOptions o;
    o.eps = 1.0 / 3.0;
    o.seed = 9;
    const auto r = one_plus_eps_matching(g, o);
    EXPECT_TRUE(is_matching(g, r.matching)) << family;
    EXPECT_GE(r.matching.size(), r.base_size) << family;
    const double nu = static_cast<double>(maximum_matching_size(g));
    EXPECT_GE(static_cast<double>(r.matching.size()) * (1.0 + o.eps),
              nu - 1e-9)
        << family << " |M|=" << r.matching.size() << " nu=" << nu;
  }
}

TEST(OnePlusEps, NoShortAugmentingPathLeftOnSmallGraphs) {
  // After convergence, the Hopcroft–Karp certificate should hold for the
  // targeted length on small instances (checked exhaustively).
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi_gnp(40, 0.1, rng);
    OnePlusEpsOptions o;
    o.eps = 0.5;  // k = 2, paths of length <= 5
    o.seed = static_cast<std::uint64_t>(trial);
    const auto r = one_plus_eps_matching(g, o);
    const auto partner = partner_array(g, r.matching);
    EXPECT_FALSE(has_short_augmenting_path(g, partner, 2 * 2 - 1));
  }
}

TEST(OnePlusEps, TighterEpsNeverWorse) {
  const Graph g = make_family("gnp_dense", 220, 11);
  OnePlusEpsOptions loose;
  loose.eps = 0.5;
  loose.seed = 11;
  OnePlusEpsOptions tight;
  tight.eps = 0.2;
  tight.seed = 11;
  const auto rl = one_plus_eps_matching(g, loose);
  const auto rt = one_plus_eps_matching(g, tight);
  EXPECT_GE(rt.matching.size() + 1, rl.matching.size());  // small slack
  EXPECT_GE(rt.total_rounds, rl.total_rounds);            // pays more rounds
}

}  // namespace
}  // namespace mpcg
