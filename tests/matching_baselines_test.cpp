#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "baselines/blossom.h"
#include "baselines/brute_force.h"
#include "baselines/greedy_matching.h"
#include "baselines/hopcroft_karp.h"
#include "baselines/israeli_itai.h"
#include "baselines/lmsv_filtering.h"
#include "gen/generators.h"
#include "graph/validation.h"
#include "test_util.h"
#include "util/rng.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

// ---- Greedy matchings ----

TEST(GreedyMatching, MaximalOnPath) {
  const Graph g = path_graph(6);
  const auto m = greedy_maximal_matching(g);
  EXPECT_TRUE(is_maximal_matching(g, m));
  EXPECT_EQ(m.size(), 3U);
}

TEST(GreedyMatching, OrderedVariantHonorsOrder) {
  const Graph g = path_graph(3);  // edges {0,1}=e0, {1,2}=e1
  const auto m = greedy_maximal_matching_ordered(g, {1, 0});
  ASSERT_EQ(m.size(), 1U);
  EXPECT_EQ(m[0], 1U);
}

TEST(GreedyMatching, WeightedPicksHeavyEdge) {
  // Triangle with one heavy edge: weighted greedy must take it.
  const Graph g = complete_graph(3);
  std::vector<double> w(g.num_edges(), 1.0);
  const EdgeId heavy = g.find_edge(1, 2);
  w[heavy] = 10.0;
  const auto m = greedy_weighted_matching(g, w);
  ASSERT_EQ(m.size(), 1U);
  EXPECT_EQ(m[0], heavy);
}

TEST(GreedyMatching, WeightedIsHalfApprox) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = erdos_renyi_gnp(12, 0.4, rng);
    if (g.num_edges() == 0 || g.num_edges() > 30) continue;
    const auto w = uniform_weights(g, 0.1, 2.0, rng);
    const double opt = brute_force_max_weight_matching(g, w);
    const double got = matching_weight(greedy_weighted_matching(g, w), w);
    EXPECT_GE(got, opt / 2.0 - 1e-9);
  }
}

TEST(GreedyMatching, CoverFromMatchingCovers) {
  Rng rng(4);
  const Graph g = erdos_renyi_gnp(100, 0.08, rng);
  const auto m = greedy_maximal_matching(g);
  EXPECT_TRUE(is_vertex_cover(g, vertex_cover_from_matching(g, m)));
}

// ---- Israeli–Itai ----

TEST(IsraeliItai, TerminatesWithMaximalMatching) {
  Rng rng(5);
  const Graph g = erdos_renyi_gnp(300, 0.03, rng);
  const auto r = israeli_itai_matching(g, 7);
  EXPECT_TRUE(is_maximal_matching(g, r.matching));
  EXPECT_GE(r.rounds, 1U);
}

TEST(IsraeliItai, RoundsLogarithmicish) {
  const Graph g = clique_union(50, 10);
  const auto r = israeli_itai_matching(g, 3);
  EXPECT_TRUE(is_maximal_matching(g, r.matching));
  EXPECT_LT(r.rounds, 60U);
}

TEST(IsraeliItai, EmptyGraph) {
  const Graph g = GraphBuilder(5).build();
  const auto r = israeli_itai_matching(g, 1);
  EXPECT_TRUE(r.matching.empty());
}

// ---- LMSV filtering ----

TEST(Lmsv, ProducesMaximalMatching) {
  Rng rng(6);
  const Graph g = erdos_renyi_gnp(500, 0.02, rng);
  const auto r = lmsv_maximal_matching(g, 600, 11);
  EXPECT_TRUE(is_maximal_matching(g, r.matching));
}

TEST(Lmsv, EdgeCountsDecreaseAcrossRounds) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnp(800, 0.05, rng);  // ~16k edges
  const auto r = lmsv_maximal_matching(g, 2000, 13);
  ASSERT_GE(r.edges_per_round.size(), 2U);
  for (std::size_t i = 1; i < r.edges_per_round.size(); ++i) {
    EXPECT_LT(r.edges_per_round[i], r.edges_per_round[i - 1]);
  }
  EXPECT_LE(r.edges_per_round.back(), 2000U);
}

TEST(Lmsv, BigBudgetFinishesInOneRound) {
  Rng rng(8);
  const Graph g = erdos_renyi_gnp(100, 0.1, rng);
  const auto r = lmsv_maximal_matching(g, 100000, 17);
  EXPECT_EQ(r.rounds, 1U);
  EXPECT_TRUE(is_maximal_matching(g, r.matching));
}

// ---- Exact solvers vs brute force (the ground-truth chain) ----

TEST(Blossom, MatchesBruteForceOnRandomSmallGraphs) {
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 4 + rng.next_below(9);  // 4..12
    const Graph g = erdos_renyi_gnp(n, 0.35, rng);
    if (g.num_edges() > 28) continue;
    const auto m = blossom_maximum_matching(g);
    EXPECT_TRUE(is_matching(g, m));
    EXPECT_EQ(m.size(), brute_force_max_matching(g));
  }
}

TEST(Blossom, HandlesOddCycles) {
  // C5: maximum matching 2; C7: 3 (needs blossom handling).
  EXPECT_EQ(maximum_matching_size(cycle_graph(5)), 2U);
  EXPECT_EQ(maximum_matching_size(cycle_graph(7)), 3U);
  // Two triangles joined by an edge: nu = 3.
  const Graph g = make_graph(6, {{0, 1}, {1, 2}, {0, 2},
                                 {3, 4}, {4, 5}, {3, 5},
                                 {2, 3}});
  EXPECT_EQ(maximum_matching_size(g), 3U);
}

TEST(Blossom, PerfectMatchingOnEvenClique) {
  EXPECT_EQ(maximum_matching_size(complete_graph(10)), 5U);
  EXPECT_EQ(maximum_matching_size(complete_graph(11)), 5U);
}

TEST(Blossom, PetersenGraphPerfectMatching) {
  // The Petersen graph has a perfect matching (nu = 5) and plenty of odd
  // cycles to stress the contraction logic.
  std::vector<std::pair<VertexId, VertexId>> edges{
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},   // outer C5
      {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},   // inner pentagram
      {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}};  // spokes
  const Graph g = make_graph(10, edges);
  EXPECT_EQ(maximum_matching_size(g), 5U);
}

TEST(HopcroftKarp, MatchesBruteForceOnRandomBipartite) {
  Rng rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t left = 2 + rng.next_below(5);
    const std::size_t right = 2 + rng.next_below(5);
    const Graph g = random_bipartite(left, right, 0.4, rng);
    if (g.num_edges() > 28) continue;
    const auto side = try_bipartition(g);
    ASSERT_TRUE(side.has_value());
    const auto m = hopcroft_karp_matching(g, *side);
    EXPECT_TRUE(is_matching(g, m));
    EXPECT_EQ(m.size(), brute_force_max_matching(g));
  }
}

TEST(HopcroftKarp, AgreesWithBlossomOnBipartite) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_bipartite(40, 40, 0.08, rng);
    const auto side = try_bipartition(g);
    ASSERT_TRUE(side.has_value());
    EXPECT_EQ(hopcroft_karp_matching(g, *side).size(),
              maximum_matching_size(g));
  }
}

TEST(Bipartition, DetectsOddCycle) {
  EXPECT_FALSE(try_bipartition(cycle_graph(5)).has_value());
  EXPECT_TRUE(try_bipartition(cycle_graph(6)).has_value());
  EXPECT_TRUE(try_bipartition(path_graph(7)).has_value());
}

TEST(BruteForce, KnownValues) {
  EXPECT_EQ(brute_force_max_matching(path_graph(5)), 2U);
  EXPECT_EQ(brute_force_min_vertex_cover(path_graph(5)), 2U);
  EXPECT_EQ(brute_force_max_independent_set(path_graph(5)), 3U);
  EXPECT_EQ(brute_force_min_vertex_cover(complete_graph(6)), 5U);
  EXPECT_EQ(brute_force_max_independent_set(star_graph(8)), 7U);
}

TEST(BruteForce, WeightedBeatsCardinalityWhenWeightsSkewed) {
  // Path 0-1-2: taking both end edges is impossible; one heavy edge beats
  // cardinality-optimal choices.
  const Graph g = path_graph(3);
  std::vector<double> w{0.1, 5.0};
  EXPECT_DOUBLE_EQ(brute_force_max_weight_matching(g, w), 5.0);
}

TEST(BruteForce, GuardsAgainstLargeGraphs) {
  const Graph g = GraphBuilder(65).build();
  EXPECT_THROW((void)brute_force_max_matching(g), std::invalid_argument);
}

// ---- Property sweep ----

class MatchingBaselineSweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(MatchingBaselineSweep, AllMaximalMatchingsAreHalfOfOptimal) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 220, seed);
  const std::size_t nu = maximum_matching_size(g);

  const auto greedy = greedy_maximal_matching(g);
  const auto ii = israeli_itai_matching(g, seed).matching;
  const auto lmsv = lmsv_maximal_matching(g, 512, seed).matching;
  for (const auto* m : {&greedy, &ii, &lmsv}) {
    EXPECT_TRUE(is_maximal_matching(g, *m));
    EXPECT_GE(2 * m->size(), nu);  // maximal => at least nu/2
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MatchingBaselineSweep,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values(1ULL, 2ULL)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mpcg
