#include "baselines/brute_force.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace mpcg {

namespace {

void check_small(const Graph& g) {
  if (g.num_vertices() > 64) {
    throw std::invalid_argument("brute force: graph too large (n > 64)");
  }
}

/// Branch over edges: either edge e is skipped, or taken (if endpoints
/// free). Returns the best count from edge index `idx` given used-vertex
/// mask.
std::size_t mm_branch(const Graph& g, std::size_t idx, std::uint64_t used) {
  const auto m = g.num_edges();
  std::size_t best = 0;
  for (std::size_t e = idx; e < m; ++e) {
    const Edge ed = g.edge(static_cast<EdgeId>(e));
    const std::uint64_t mask =
        (std::uint64_t{1} << ed.u) | (std::uint64_t{1} << ed.v);
    if ((used & mask) == 0) {
      best = std::max(best, 1 + mm_branch(g, e + 1, used | mask));
    }
  }
  return best;
}

double wmm_branch(const Graph& g, const std::vector<double>& weights,
                  std::size_t idx, std::uint64_t used) {
  const auto m = g.num_edges();
  double best = 0.0;
  for (std::size_t e = idx; e < m; ++e) {
    const Edge ed = g.edge(static_cast<EdgeId>(e));
    const std::uint64_t mask =
        (std::uint64_t{1} << ed.u) | (std::uint64_t{1} << ed.v);
    if ((used & mask) == 0) {
      best = std::max(best, weights[e] + wmm_branch(g, weights, e + 1,
                                                    used | mask));
    }
  }
  return best;
}

std::size_t vc_branch(const Graph& g, std::uint64_t covered,
                      std::size_t budget) {
  // Find an uncovered edge.
  for (const Edge& e : g.edges()) {
    const bool u_in = (covered >> e.u) & 1U;
    const bool v_in = (covered >> e.v) & 1U;
    if (u_in || v_in) continue;
    if (budget == 0) return g.num_vertices() + 1;  // infeasible sentinel
    const std::size_t take_u =
        vc_branch(g, covered | (std::uint64_t{1} << e.u), budget - 1);
    const std::size_t take_v =
        vc_branch(g, covered | (std::uint64_t{1} << e.v), budget - 1);
    return 1 + std::min(take_u, take_v);
  }
  return 0;  // all edges covered
}

}  // namespace

std::size_t brute_force_max_matching(const Graph& g) {
  check_small(g);
  return mm_branch(g, 0, 0);
}

double brute_force_max_weight_matching(const Graph& g,
                                       const std::vector<double>& weights) {
  check_small(g);
  if (weights.size() != g.num_edges()) {
    throw std::invalid_argument("brute force: weights size mismatch");
  }
  return wmm_branch(g, weights, 0, 0);
}

std::size_t brute_force_min_vertex_cover(const Graph& g) {
  check_small(g);
  // Iterative deepening on the budget keeps the branch tree tiny.
  for (std::size_t budget = 0; budget <= g.num_vertices(); ++budget) {
    if (vc_branch(g, 0, budget) <= budget) return budget;
  }
  return g.num_vertices();
}

std::size_t brute_force_max_independent_set(const Graph& g) {
  check_small(g);
  return g.num_vertices() - brute_force_min_vertex_cover(g);
}

}  // namespace mpcg
