// Corollary 1.3 — (1+eps)-approximate maximum matching in
// O(log log n) * (1/eps)^{O(1/eps)} MPC rounds.
//
// Pipeline: Theorem 1.2 provides the (2+eps) base matching; McGregor-style
// randomized augmentation then repeatedly finds maximal sets of
// vertex-disjoint augmenting paths of length at most 2k+1 (k = ceil(1/eps))
// and flips them. By the Hopcroft–Karp bound, once no augmenting path of
// length <= 2k-1 remains the matching is a (1 + 1/k)-approximation.
//
// Each pass draws fresh randomness, walks a random alternating DFS of
// bounded depth from every free vertex, and claims vertices exclusively
// within the pass (so the flipped paths are disjoint). Passes repeat until
// `stall_passes` consecutive passes find nothing, mirroring the
// (1/eps)^{O(1/eps)} repetition budget of [McG05] (see DESIGN.md,
// substitutions).
#ifndef MPCG_CORE_ONE_PLUS_EPS_H
#define MPCG_CORE_ONE_PLUS_EPS_H

#include <cstdint>
#include <vector>

#include "core/integral_matching.h"
#include "graph/active_set.h"
#include "graph/graph.h"

namespace mpcg {

struct OnePlusEpsOptions {
  double eps = 1.0 / 3.0;
  std::uint64_t seed = 1;
  /// Stop after this many consecutive pass failures. 0 = auto: 4k + 8.
  std::size_t stall_passes = 0;
  /// Hard cap on passes. 0 = auto: 200 * k.
  std::size_t max_passes = 0;
  /// Options for the Theorem 1.2 base run.
  IntegralMatchingOptions base;
};

struct OnePlusEpsResult {
  std::vector<EdgeId> matching;
  std::size_t base_size = 0;
  std::size_t augmenting_passes = 0;
  std::size_t paths_flipped = 0;
  /// Base rounds plus O(k) rounds charged per augmentation pass.
  std::size_t total_rounds = 0;
};

[[nodiscard]] OnePlusEpsResult one_plus_eps_matching(
    const Graph& g, const OnePlusEpsOptions& options);

/// A single augmentation pass over `partner` (modified in place): finds a
/// maximal set of vertex-disjoint augmenting paths of length <= 2k+1 by
/// randomized alternating DFS and flips them. Returns the number flipped.
/// Exposed for tests and for the experiment harness.
std::size_t augmenting_paths_pass(const Graph& g,
                                  std::vector<VertexId>& partner,
                                  std::size_t k, std::uint64_t seed);

/// Reusable scratch for a pass loop: the claimed flags persist across
/// passes (all-zero between them — each pass clears exactly the flags it
/// set, via the touched list), so repeated passes cost O(touched) to reset
/// instead of an O(n) allocate-and-zero per pass.
struct AugmentingPassScratch {
  std::vector<char> claimed;
  std::vector<VertexId> claimed_touched;
  std::vector<VertexId> free_vertices;
};

/// The driver-loop variant: draws the pass's roots from `free_set` (the
/// still-unmatched vertices with positive degree, maintained incrementally
/// across passes — augmentation only ever shrinks it) instead of an O(n)
/// rescan, and deactivates the endpoints it matches. Behaviorally identical
/// to the O(n)-scan overload for a consistently maintained set.
std::size_t augmenting_paths_pass(const Graph& g,
                                  std::vector<VertexId>& partner,
                                  std::size_t k, std::uint64_t seed,
                                  ActiveSet& free_set,
                                  AugmentingPassScratch& scratch);

/// Convenience overload with throwaway scratch (single passes, tests).
std::size_t augmenting_paths_pass(const Graph& g,
                                  std::vector<VertexId>& partner,
                                  std::size_t k, std::uint64_t seed,
                                  ActiveSet& free_set);

/// Exhaustive bounded-depth check (blossom-unaware; may overcount on odd
/// structures but never misses a simple short path on the graphs the tests
/// use): true iff some augmenting path of length <= max_len exists.
[[nodiscard]] bool has_short_augmenting_path(const Graph& g,
                                             const std::vector<VertexId>& partner,
                                             std::size_t max_len);

/// Sentinel for an unmatched vertex in `partner` arrays.
inline constexpr VertexId kUnmatched = static_cast<VertexId>(-1);

/// Converts a matching to a partner array / back.
[[nodiscard]] std::vector<VertexId> partner_array(const Graph& g,
                                                  const std::vector<EdgeId>& matching);
[[nodiscard]] std::vector<EdgeId> matching_from_partners(
    const Graph& g, const std::vector<VertexId>& partner);

}  // namespace mpcg

#endif  // MPCG_CORE_ONE_PLUS_EPS_H
