// Luby's classic randomized MIS [Lub86] — the O(log n)-round baseline the
// paper improves on.
//
// Per round every alive vertex draws a random priority; a vertex joins the
// MIS if its priority beats all alive neighbors', then MIS vertices and
// their neighborhoods are removed. One round of the algorithm is one
// communication round in either parallel model.
#ifndef MPCG_BASELINES_LUBY_H
#define MPCG_BASELINES_LUBY_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

struct LubyResult {
  std::vector<VertexId> mis;
  /// Rounds (priority draws) executed until the graph emptied.
  std::size_t rounds = 0;
};

/// Runs Luby's algorithm with randomness derived statelessly from `seed`
/// (priority of v in round t is hash(seed, v, t), so reruns are identical).
[[nodiscard]] LubyResult luby_mis(const Graph& g, std::uint64_t seed);

}  // namespace mpcg

#endif  // MPCG_BASELINES_LUBY_H
