// Classic graph algorithms used across the library: connectivity, cores,
// BFS, triangle counts, and the line-graph transform.
//
// The line graph matters to this paper specifically: the introduction
// notes that running an MIS algorithm on the line graph L(G) yields a
// maximal matching of G (each L(G)-vertex is a G-edge; L(G)-independence
// is exactly vertex-disjointness; L(G)-maximality is G-maximality). The
// transform plus that reduction are implemented and tested here.
#ifndef MPCG_GRAPH_GRAPH_ALGOS_H
#define MPCG_GRAPH_GRAPH_ALGOS_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// Connected components: returns (component id per vertex, #components).
struct ComponentsResult {
  std::vector<std::uint32_t> component_of;
  std::size_t count = 0;
};
[[nodiscard]] ComponentsResult connected_components(const Graph& g);

/// BFS distances from `source` (UINT32_MAX for unreachable vertices).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       VertexId source);

/// Degeneracy ordering via iterated minimum-degree peeling. Returns the
/// peel order and the degeneracy (max core number).
struct DegeneracyResult {
  std::vector<VertexId> order;
  std::vector<std::uint32_t> core_number;
  std::size_t degeneracy = 0;
};
[[nodiscard]] DegeneracyResult degeneracy_ordering(const Graph& g);

/// Number of triangles (3-cycles) in g. O(m * sqrt(m))-ish via ordered
/// adjacency intersection.
[[nodiscard]] std::size_t triangle_count(const Graph& g);

/// The line graph L(G): one vertex per edge of g, adjacency = sharing an
/// endpoint. Size warning: sum over v of C(deg(v), 2) edges.
[[nodiscard]] Graph line_graph(const Graph& g);

/// Interprets an independent set of L(G) as a set of g-edges.
/// (Line-graph vertex ids coincide with g edge ids by construction.)
/// The reduction itself — MIS on L(G) gives a maximal matching of G — is
/// wired up in baselines/greedy_matching.h
/// (maximal_matching_via_line_graph), which owns the MIS dependency.
[[nodiscard]] std::vector<EdgeId> matching_from_line_graph_mis(
    const std::vector<VertexId>& line_mis);

}  // namespace mpcg

#endif  // MPCG_GRAPH_GRAPH_ALGOS_H
