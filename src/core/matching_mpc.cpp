#include "core/matching_mpc.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/central.h"
#include "graph/active_set.h"
#include "graph/residual.h"
#include "mpc/primitives.h"
#include "util/rng.h"

namespace mpcg {

namespace {

using mpc::Word;

constexpr std::uint32_t kActive = MatchingMpcResult::kActive;

// Residual-proportional driver: every per-phase loop runs over the active
// frontier (ActiveSet) instead of 0..n, per-phase scratch is sized to the
// phase's active count via the dense remap and reused across phases, and
// the home-side load sums (y_old, load_of) are cached with dirty-bit
// bookkeeping. Every recomputation is the same ascending alive-arc scan as
// the pre-ActiveSet implementation, so all floating-point sums keep their
// summation order and outputs/freeze times/Metrics are bit-identical (see
// DESIGN.md, "ActiveSet & dirty-load bookkeeping"; pinned by
// tests/matching_regression_test.cpp).
class MatchingMpcRun {
 public:
  MatchingMpcRun(const Graph& g, const MatchingMpcOptions& options)
      : g_(g), o_(options), n_(g.num_vertices()), residual_(g), active_(n_) {
    if (!(o_.eps > 0.0) || o_.eps > 0.5) {
      throw std::invalid_argument("matching_mpc: eps must be in (0, 1/2]");
    }
    words_ = o_.words_per_machine != 0 ? o_.words_per_machine
                                       : 8 * std::max<std::size_t>(n_, 64);
    // The cluster hosts both the per-vertex home shards and the per-phase
    // simulation machines (up to sqrt(n) of them).
    const std::size_t for_shards =
        (4 * g.num_edges() + words_ - 1) / words_;
    machines_ = std::max<std::size_t>(
        {2, for_shards,
         static_cast<std::size_t>(std::ceil(std::sqrt(
             static_cast<double>(std::max<std::size_t>(n_, 4))))) });

    // Grow the cluster until the hash-balanced adjacency shards fit (see
    // mis_mpc.cpp for the same auto-sizing rule).
    const std::size_t fixed_words = n_ / 16 + 1;
    std::vector<std::size_t> shard_words;
    for (;;) {
      shard_words.assign(machines_, 0);
      home_.resize(n_);
      for (VertexId v = 0; v < n_; ++v) {
        home_[v] = static_cast<std::uint32_t>(mix64(o_.seed, v, 0x70e) %
                                              machines_);
        shard_words[home_[v]] += 1 + g.degree(v);
      }
      const std::size_t max_shard =
          shard_words.empty()
              ? 0
              : *std::max_element(shard_words.begin(), shard_words.end());
      if (o_.words_per_machine != 0 || max_shard + fixed_words <= words_ ||
          machines_ >= 2 * g.num_edges() + 2) {
        break;
      }
      machines_ *= 2;
    }
    engine_.emplace(mpc::Config{machines_, words_, o_.strict});
    for (std::size_t i = 0; i < machines_; ++i) {
      engine_->note_storage(i, shard_words[i] + fixed_words);
    }

    w0_ = (1.0 - 2.0 * o_.eps) / static_cast<double>(std::max<std::size_t>(n_, 1));
    weight_cache_.push_back(w0_);
    freeze_at_.assign(n_, kActive);
    removed_.assign(n_, 0);

    // Dirty-load bookkeeping state. With nobody frozen yet, every y_old is
    // the empty sum (exactly 0.0), so the y_old caches start clean; the
    // load caches start dirty (never computed).
    y_old_cache_.assign(n_, 0.0);
    load_cache_.assign(n_, 0.0);
    load_stamp_.assign(n_, 0);
    dirty_.assign(n_, kLoadDirty);
    active_nbr_cnt_.resize(n_);
    for (VertexId v = 0; v < n_; ++v) {
      active_nbr_cnt_[v] = static_cast<std::uint32_t>(g.degree(v));
    }
    local_adj_.emplace(n_);
    announce_parts_.resize(machines_);
    phase_machine_.assign(n_, kNoMachine);
  }

  MatchingMpcResult run() {
    MatchingMpcResult result;
    result.freeze_iteration.assign(n_, kActive);
    result.removed_heavy.assign(n_, 0);
    result.x.assign(g_.num_edges(), 0.0);
    if (g_.num_edges() == 0) {
      if (engine_) result.metrics = engine_->metrics();
      return result;
    }

    Rng phase_rng(mix64(o_.seed, 0x9a5e, 2));
    double d = static_cast<double>(n_);

    while (d > static_cast<double>(o_.tail_degree_switch)) {
      run_phase(d, phase_rng, result);
      const std::size_t iters = last_phase_iterations_;
      d *= std::pow(1.0 - o_.eps, static_cast<double>(iters));
      ++result.phases;
    }

    run_tail(result);

    // Outputs: weights from freeze times; cover = frozen + removed.
    for (EdgeId e = 0; e < g_.num_edges(); ++e) {
      const Edge ed = g_.edge(e);
      if (removed_[ed.u] || removed_[ed.v]) continue;  // x stays 0
      const std::uint64_t tf =
          std::min<std::uint64_t>({freeze_at_[ed.u], freeze_at_[ed.v], t_});
      result.x[e] = weight_at(tf);
    }
    for (VertexId v = 0; v < n_; ++v) {
      if (removed_[v]) {
        result.cover.push_back(v);
        result.removed_heavy[v] = 1;
      } else if (freeze_at_[v] != kActive) {
        result.cover.push_back(v);
      }
      result.freeze_iteration[v] = freeze_at_[v];
    }
    result.total_iterations = t_;
    result.metrics = engine_->metrics();
    return result;
  }

 private:
  /// Dirty bits per vertex: set both when a neighbor's freeze/removal state
  /// changes, cleared individually by the corresponding refresh.
  static constexpr std::uint8_t kYOldDirty = 1;
  static constexpr std::uint8_t kLoadDirty = 2;
  static constexpr std::uint8_t kBothDirty = kYOldDirty | kLoadDirty;
  /// phase_machine_ sentinel: never equals a real machine id (m <= sqrt(n)).
  static constexpr std::uint32_t kNoMachine = 0xffffffffU;

  [[nodiscard]] double weight_at(std::uint64_t iteration) const {
    while (weight_cache_.size() <= iteration) {
      weight_cache_.push_back(weight_cache_.back() / (1.0 - o_.eps));
    }
    return weight_cache_[iteration];
  }

  [[nodiscard]] bool in_graph(VertexId v) const noexcept {
    return removed_[v] == 0;
  }

  /// Takes v off the active frontier: O(1), plus the sentinel that keeps
  /// the per-phase machine lookup (see distribute loop) self-invalidating.
  void leave_frontier(VertexId v) {
    active_.deactivate(v);
    phase_machine_[v] = kNoMachine;
  }

  /// Records that v left the active frontier (froze or was removed): its
  /// surviving neighbors' cached sums are stale, and — if v was active at
  /// the event — each of them has one fewer active neighbor. O(residual
  /// degree of v), paid at most twice per vertex (freeze, then removal).
  void mark_state_change(VertexId v, bool was_active) {
    for (const Arc& a : residual_.alive_arcs(v)) {
      dirty_[a.to] = kBothDirty;
      if (was_active) --active_nbr_cnt_[a.to];
    }
    dirty_[v] = kBothDirty;
  }

  /// y_old of v — the frozen-neighbor contribution, recomputed only when a
  /// neighbor changed state, by the same ascending alive-arc scan the
  /// per-phase full recomputation used (identical summation order).
  void refresh_y_old(VertexId v) {
    if ((dirty_[v] & kYOldDirty) == 0) return;
    if (active_nbr_cnt_[v] == residual_.residual_degree(v)) {
      // No alive neighbor is frozen: the scan would add nothing.
      y_old_cache_[v] = 0.0;
      dirty_[v] &= static_cast<std::uint8_t>(~kYOldDirty);
      return;
    }
    double y = 0.0;
    const auto arcs = residual_.alive_arcs(v);
    (void)weight_at(t_);  // pre-extends the cache: every freeze time is <= t_
    const double* w = weight_cache_.data();
    for (std::size_t idx = 0; idx < arcs.size(); ++idx) {
      if (idx + 8 < arcs.size()) {
        __builtin_prefetch(&freeze_at_[arcs[idx + 8].to]);
      }
      const std::uint32_t tf = freeze_at_[arcs[idx].to];
      if (tf != kActive) y += w[tf];
    }
    y_old_cache_[v] = y;
    dirty_[v] &= static_cast<std::uint8_t>(~kYOldDirty);
  }

  /// The value a load scan produces when all `count` terms are the same
  /// weight `w`: w added to 0.0 `count` times, left to right — computed
  /// once per (w, count) prefix via a running table, so uniform
  /// neighborhoods (nothing frozen nearby — the common case while the
  /// frontier is still wide) cost O(1) instead of O(degree). Bit-identical
  /// to the scan by construction: the table entries ARE the sequential
  /// partial sums.
  [[nodiscard]] double repeated_sum(double w, std::size_t count) {
    if (repsum_.empty() || repsum_w_ != w) {
      repsum_.assign(1, 0.0);
      repsum_w_ = w;
    }
    while (repsum_.size() <= count) {
      repsum_.push_back(repsum_.back() + w);
    }
    return repsum_[count];
  }

  /// Load of v in G[V'] at global iteration `now` (derived state; homes can
  /// compute this locally because freeze times are common knowledge).
  /// Cached: a clean value is reused when it cannot depend on `now` — v is
  /// frozen (every term min(freeze_v, freeze_u, now) is already pinned
  /// below now), v has no alive active neighbor (same), or `now` is the
  /// stamp it was computed at. Recomputation is the ascending alive-arc
  /// scan, so reused and recomputed values are bit-identical.
  [[nodiscard]] double load_of(VertexId v, std::uint64_t now) {
    if ((dirty_[v] & kLoadDirty) == 0 &&
        (load_stamp_[v] == now || freeze_at_[v] != kActive ||
         active_nbr_cnt_[v] == 0)) {
      return load_cache_[v];
    }
    double y;
    const std::size_t deg = residual_.residual_degree(v);
    if (freeze_at_[v] == kActive && active_nbr_cnt_[v] == deg) {
      // Uniform neighborhood: v and every alive neighbor are active, so
      // each of the `deg` scan terms is exactly weight_at(now).
      y = repeated_sum(weight_at(now), deg);
    } else {
      y = 0.0;
      const auto arcs = residual_.alive_arcs(v);
      (void)weight_at(now);  // pre-extends the cache for direct indexing
      const double* w = weight_cache_.data();
      const std::uint64_t fvn =
          std::min<std::uint64_t>(freeze_at_[v], now);
      for (std::size_t idx = 0; idx < arcs.size(); ++idx) {
        if (idx + 8 < arcs.size()) {
          __builtin_prefetch(&freeze_at_[arcs[idx + 8].to]);
        }
        const std::uint64_t tf =
            std::min<std::uint64_t>(freeze_at_[arcs[idx].to], fvn);
        y += w[tf];
      }
    }
    load_cache_[v] = y;
    load_stamp_[v] = now;
    dirty_[v] &= static_cast<std::uint8_t>(~kLoadDirty);
    return y;
  }

  /// Announces freshly decided vertices (frozen with their iteration, or
  /// removed) to the whole cluster: gather at the leader, broadcast the
  /// concatenation. Keeps freeze times common knowledge. ~3 rounds; skipped
  /// when there is nothing to announce. The per-home staging vectors are
  /// persistent; only the homes actually touched are cleared afterwards.
  void announce(const std::vector<std::pair<VertexId, std::uint64_t>>& frozen,
                const std::vector<VertexId>& removed) {
    if (frozen.empty() && removed.empty()) return;
    const auto stage = [&](VertexId v, Word word) {
      auto& part = announce_parts_[home_[v]];
      if (part.empty()) announce_touched_.push_back(home_[v]);
      part.push_back(word);
    };
    for (const auto& [v, tf] : frozen) {
      stage(v, (static_cast<Word>(v) << 32) | tf);
    }
    for (const VertexId v : removed) {
      stage(v, (static_cast<Word>(v) << 32) | 0xffffffffULL);
    }
    const auto gathered = mpc::gather_to(*engine_, 0, announce_parts_);
    mpc::broadcast_view(*engine_, 0, gathered);
    for (const std::uint32_t h : announce_touched_) {
      announce_parts_[h].clear();
    }
    announce_touched_.clear();
  }

  void run_phase(double d, Rng& phase_rng, MatchingMpcResult& result) {
    const auto m = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::floor(std::sqrt(d))));
    const std::size_t iters = phase_iterations(d, m);
    last_phase_iterations_ = iters;
    result.machines_per_phase.push_back(m);

    // Line (d): fresh uniform partition. The leader draws a seed and
    // broadcasts it; machine assignment is then common knowledge.
    const std::uint64_t part_seed = phase_rng();
    {
      const Word payload[] = {part_seed};
      mpc::broadcast_view(*engine_, 0, payload);
    }

    // Phase-start frontier: dense remap, so every per-phase scratch below
    // is sized to k = |active| and reused across phases. The snapshot (and
    // the dense ids) stay valid across mid-phase freezes.
    const auto snapshot = active_.remap();
    const std::size_t k = snapshot.size();
    result.active_per_phase.push_back(k);
    machine_of_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      machine_of_[i] =
          static_cast<std::uint32_t>(mix64(part_seed, snapshot[i]) % m);
      // Neighbor-side view of the same assignment: one n-indexed word per
      // vertex, kNoMachine once a vertex leaves the frontier, so the
      // distribute loop answers "active AND on my machine?" with a single
      // load instead of three dependent ones.
      phase_machine_[snapshot[i]] = machine_of_[i];
    }

    // Line (b): y_old — the frozen contribution, constant over the phase.
    // Computed at each vertex's home from common knowledge; only vertices
    // whose neighborhood changed state since their last refresh rescan.
    for (const VertexId v : snapshot) refresh_y_old(v);

    // Distribute the induced active subgraphs: each active edge with both
    // endpoints on the same simulation machine moves from its (lower
    // endpoint's) home shard to that machine; each active vertex's
    // (id, y_old) record moves from its home. Real pushes, one round.
    // Iterating the frontier in id order and each vertex's alive upper
    // arcs visits the active edges in edge-id (lexicographic) order,
    // exactly as a full edge-list scan would — touching only residual arcs.
    machine_edges_.assign(m, 0);
    local_pairs_.clear();
    for (std::size_t i = 0; i < k; ++i) {
      const VertexId v = snapshot[i];
      const std::uint32_t mv = machine_of_[i];
      const auto arcs = residual_.alive_upper_arcs(v);
      for (std::size_t idx = 0; idx < arcs.size(); ++idx) {
        if (idx + 8 < arcs.size()) {
          __builtin_prefetch(&phase_machine_[arcs[idx + 8].to]);
        }
        const VertexId u = arcs[idx].to;
        // Equal iff u is still active (sentinel otherwise) and landed on
        // v's machine — the same filter as active(u) && same-machine.
        if (phase_machine_[u] != mv) continue;
        engine_->push(home_[v], mv, (static_cast<Word>(v) << 32) | u);
        local_pairs_.emplace_back(
            static_cast<VertexId>(i),
            static_cast<VertexId>(active_.dense_index(u)));
        ++machine_edges_[mv];
      }
    }
    for (const VertexId v : snapshot) {
      engine_->push(home_[v], machine_of_[active_.dense_index(v)], v);
    }
    engine_->exchange();

    std::size_t max_local_edges = 0;
    for (std::size_t i = 0; i < m; ++i) {
      max_local_edges = std::max(max_local_edges, machine_edges_[i]);
    }
    result.max_local_edges_per_phase.push_back(max_local_edges);

    // Line (e): local simulation of I iterations on every machine.
    // Per-vertex local state — dense-indexed, so it costs O(k) to set up
    // and the adjacency build costs O(local edges) (CsrScratch): an
    // iteration is O(still-active vertices) plus O(degree) per freeze.
    local_adj_->clear();
    local_adj_->build(local_pairs_);
    local_deg_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      local_deg_[i] =
          static_cast<std::uint32_t>(local_adj_->neighbors(
              static_cast<VertexId>(i)).size());
    }
    local_frozen_sum_.assign(k, 0.0);

    frozen_this_phase_.clear();
    const std::uint64_t t_start = t_;
    for (std::size_t it = 0; it < iters; ++it) {
      const std::uint64_t tau = t_start + it;
      const double w_tau = weight_at(tau);
      std::optional<std::vector<double>> trace_row;
      if (o_.record_trace) {
        trace_row.emplace(n_, std::numeric_limits<double>::quiet_NaN());
      }
      // (A) freeze against the shared thresholds, simultaneously. The
      // active list self-compacts, so vertices frozen in earlier
      // iterations are paid for once, not rescanned every iteration.
      newly_frozen_.clear();
      for (const VertexId v : active_.actives()) {
        const std::uint32_t i = active_.dense_index(v);
        const double y_tilde =
            static_cast<double>(m) *
                (local_frozen_sum_[i] +
                 static_cast<double>(local_deg_[i]) * w_tau) +
            y_old_cache_[v];
        if (trace_row) (*trace_row)[v] = y_tilde;
        const double threshold =
            central_threshold(o_.threshold_seed, v, tau, o_.eps,
                              o_.use_random_thresholds);
        if (y_tilde >= threshold) newly_frozen_.push_back(v);
      }
      for (const VertexId v : newly_frozen_) {
        freeze_at_[v] = static_cast<std::uint32_t>(tau);
        frozen_this_phase_.emplace_back(v, tau);
        leave_frontier(v);
      }
      // (B) is implicit (weights are derived); update local views of the
      // newly frozen vertices' edges.
      for (const VertexId v : newly_frozen_) {
        const std::uint32_t vi = active_.dense_index(v);
        for (const VertexId ui : local_adj_->neighbors(vi)) {
          const VertexId u = active_.vertex_at(ui);
          if (freeze_at_[u] != kActive &&
              freeze_at_[u] < tau) {
            continue;  // edge already froze earlier
          }
          if (freeze_at_[u] == static_cast<std::uint32_t>(tau) && u < v) {
            continue;  // both froze now; handled from the lower id
          }
          // Edge (v,u) freezes at w_tau for the still-active (or
          // simultaneously frozen) partner's bookkeeping.
          if (local_deg_[ui] > 0) --local_deg_[ui];
          local_frozen_sum_[ui] += w_tau;
          if (local_deg_[vi] > 0) --local_deg_[vi];
          local_frozen_sum_[vi] += w_tau;
        }
      }
      if (trace_row) result.y_tilde_trace.push_back(std::move(*trace_row));
      ++t_;
    }

    // Machines report the freeze decisions; they become common knowledge.
    for (const auto& [v, tf] : frozen_this_phase_) {
      engine_->push(machine_of_[active_.dense_index(v)], home_[v],
                    (static_cast<Word>(v) << 32) | tf);
    }
    engine_->exchange();

    // The phase's freezes become visible to the home-side load sums below.
    for (const auto& [v, tf] : frozen_this_phase_) {
      mark_state_change(v, /*was_active=*/true);
    }

    // Lines (g)-(h): loads on G[V'] from reconciled weights (local at
    // homes). Lines (i)-(j): heavy removal, then end-of-phase freezing.
    // Candidates are exactly the vertices the old 0..n scan would visit:
    // still-active, frozen this phase, or frozen at the previous phase
    // boundary (their freeze iteration equals this phase's t_start, so the
    // old `freeze_at < t_start` skip did not exclude them). load_of is
    // pure until the batch below, so visiting order does not matter.
    removed_now_.clear();
    frozen_now_.clear();
    const auto consider = [&](VertexId v) {
      const double y = load_of(v, t_);
      if (y > 1.0) {
        removed_now_.push_back(v);
      } else if (y > 1.0 - 2.0 * o_.eps && freeze_at_[v] == kActive) {
        frozen_now_.push_back({v, t_});
      }
    };
    for (const VertexId v : active_.actives()) consider(v);
    for (const auto& [v, tf] : frozen_this_phase_) consider(v);
    for (const VertexId v : boundary_frozen_) {
      if (in_graph(v)) consider(v);
    }
    for (const VertexId v : removed_now_) {
      mark_state_change(v, /*was_active=*/freeze_at_[v] == kActive);
      removed_[v] = 1;
      freeze_at_[v] = kActive;  // removed, not frozen
      leave_frontier(v);
      residual_.kill(v);
    }
    for (const auto& [v, tf] : frozen_now_) {
      freeze_at_[v] = static_cast<std::uint32_t>(tf);
      leave_frontier(v);
      mark_state_change(v, /*was_active=*/true);
    }
    boundary_frozen_.clear();
    for (const auto& [v, tf] : frozen_now_) boundary_frozen_.push_back(v);
    announce(frozen_now_, removed_now_);
    announce(frozen_this_phase_, kNoRemovals);
  }

  /// Line (4): direct simulation of Central-Rand until every edge of
  /// G[V'] is frozen. Homes compute loads locally (common knowledge) and
  /// newly frozen vertices are announced each iteration.
  void run_tail(MatchingMpcResult& result) {
    const std::size_t guard =
        2 + static_cast<std::size_t>(
                std::ceil(std::log(1.0 / w0_) / -std::log1p(-o_.eps)));
    while (true) {
      if (result.tail_iterations > guard) {
        throw std::logic_error("matching_mpc tail: did not terminate (bug)");
      }
      // Any active-active edge left? active_nbr_cnt_ counts exactly the
      // alive active neighbors, so scan the frontier with early exit.
      bool any_active_edge = false;
      for (const VertexId v : active_.actives()) {
        if (active_nbr_cnt_[v] > 0) {
          any_active_edge = true;
          break;
        }
      }
      if (!any_active_edge) break;

      std::optional<std::vector<double>> trace_row;
      if (o_.record_trace) {
        trace_row.emplace(n_, std::numeric_limits<double>::quiet_NaN());
      }
      frozen_now_.clear();
      for (const VertexId v : active_.actives()) {
        const double y = load_of(v, t_);
        if (trace_row) (*trace_row)[v] = y;
        const double threshold =
            central_threshold(o_.threshold_seed, v, t_, o_.eps,
                              o_.use_random_thresholds);
        if (y >= threshold) frozen_now_.push_back({v, t_});
      }
      for (const auto& [v, tf] : frozen_now_) {
        freeze_at_[v] = static_cast<std::uint32_t>(tf);
        leave_frontier(v);
        mark_state_change(v, /*was_active=*/true);
      }
      announce(frozen_now_, kNoRemovals);
      if (trace_row) result.y_tilde_trace.push_back(std::move(*trace_row));
      ++t_;
      ++result.tail_iterations;
    }
  }

  [[nodiscard]] std::size_t phase_iterations(double d, std::size_t m) const {
    if (o_.paper_iteration_schedule) {
      const double raw = std::log(static_cast<double>(m)) /
                         (10.0 * std::log(5.0));
      return std::max<std::size_t>(1, static_cast<std::size_t>(raw));
    }
    // Section 4.2 pacing: enough iterations that d (1-eps)^I <= d^beta.
    const double needed = (1.0 - o_.beta) * std::log(d) /
                          -std::log1p(-o_.eps);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(needed)));
  }

  const Graph& g_;
  const MatchingMpcOptions& o_;
  std::size_t n_;
  /// Alive == still in G[V'] (not removed as heavy). Frozen vertices stay
  /// alive; only heavy removals kill.
  ResidualGraph residual_;
  /// Active == alive and unfrozen — the simulation frontier. Kept in sync
  /// at every freeze/removal.
  ActiveSet active_;
  std::size_t machines_ = 0;
  std::size_t words_ = 0;
  std::optional<mpc::Engine> engine_;

  std::vector<std::uint32_t> home_;
  double w0_ = 0.0;
  mutable std::vector<double> weight_cache_;
  std::uint64_t t_ = 0;
  std::size_t last_phase_iterations_ = 0;
  std::vector<std::uint32_t> freeze_at_;
  std::vector<char> removed_;

  // Dirty-load bookkeeping (see DESIGN.md).
  std::vector<double> y_old_cache_;
  std::vector<double> load_cache_;
  std::vector<std::uint64_t> load_stamp_;
  std::vector<std::uint8_t> dirty_;
  /// Number of alive, active neighbors of each vertex.
  std::vector<std::uint32_t> active_nbr_cnt_;

  // Per-phase scratch, dense-indexed and reused across phases (no O(n)
  // allocation after warm-up).
  std::vector<std::uint32_t> machine_of_;
  /// Per-vertex machine of the current phase (kNoMachine once off the
  /// frontier) — the neighbor-side lookup of the distribute loop.
  std::vector<std::uint32_t> phase_machine_;
  /// Sequential partial sums of repsum_w_ (see repeated_sum).
  std::vector<double> repsum_;
  double repsum_w_ = 0.0;
  std::vector<std::uint32_t> local_deg_;
  std::vector<double> local_frozen_sum_;
  std::optional<CsrScratch> local_adj_;
  std::vector<std::pair<VertexId, VertexId>> local_pairs_;
  std::vector<std::size_t> machine_edges_;
  std::vector<std::pair<VertexId, std::uint64_t>> frozen_this_phase_;
  std::vector<VertexId> newly_frozen_;
  std::vector<VertexId> removed_now_;
  std::vector<std::pair<VertexId, std::uint64_t>> frozen_now_;
  /// Vertices frozen at the previous phase's boundary (freeze iteration ==
  /// the next phase's t_start): the old full scan still considered them
  /// for heavy removal one more time.
  std::vector<VertexId> boundary_frozen_;
  const std::vector<VertexId> kNoRemovals;

  // Persistent announce staging (one vector per home machine).
  std::vector<std::vector<Word>> announce_parts_;
  std::vector<std::uint32_t> announce_touched_;
};

}  // namespace

MatchingMpcResult matching_mpc(const Graph& g,
                               const MatchingMpcOptions& options) {
  MatchingMpcRun run(g, options);
  return run.run();
}

}  // namespace mpcg
