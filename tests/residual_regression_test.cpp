// Golden regression for the residual-graph / flat-exchange refactor: the
// MIS and matching drivers were ported from full edge-list rescans onto
// ResidualGraph, and mpc::Engine from a dense outbox matrix onto flat
// per-sender buffers. Those are representation changes only — outputs AND
// engine metrics must be byte-identical to the pre-refactor implementation.
// The constants below were produced by the pre-refactor code at commit
// "PR 0" for these exact (graph, options) pairs; a mismatch means observable
// behavior changed, which must be deliberate.
//
// The configurations are chosen to exercise every stage: rank phases, the
// sparsified local-MIS stage, the final gather, and (for matching) both the
// phase loop and the direct-simulation tail.
#include <gtest/gtest.h>

#include "core/matching_mpc.h"
#include "core/mis_mpc.h"
#include "gen/families.h"

namespace mpcg {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(ResidualRegression, MisAllStagesUnchanged) {
  // 1 rank phase + 5 sparsified iterations + final gather.
  const Graph g = graph_family("gnp_sparse", 1200, 5);
  ASSERT_EQ(g.num_edges(), 3578U);
  MisMpcOptions opt;
  opt.seed = 42;
  opt.gather_budget = 60;
  opt.degree_switch = 12;
  const auto r = mis_mpc(g, opt);

  EXPECT_EQ(r.mis.size(), 414U);
  EXPECT_EQ(fnv1a(r.mis.data(), r.mis.size() * sizeof(VertexId)),
            12023237254008437413ULL);
  EXPECT_EQ(r.rank_phases, 1U);
  EXPECT_EQ(r.sparsified_iterations, 5U);
  EXPECT_EQ(r.final_gather_edges, 22U);

  EXPECT_EQ(r.metrics.rounds, 49U);
  EXPECT_EQ(r.metrics.max_sent_words, 1200U);
  EXPECT_EQ(r.metrics.max_received_words, 1200U);
  EXPECT_EQ(r.metrics.peak_storage_words, 5448U);
  EXPECT_EQ(r.metrics.violations, 0U);
  EXPECT_EQ(r.metrics.total_words, 7312U);
}

TEST(ResidualRegression, MisExactModeUnchanged) {
  // 4 rank phases + final gather, sparsified stage disabled (the lossless
  // sequential-greedy simulation).
  const Graph g = graph_family("power_law", 900, 11);
  ASSERT_EQ(g.num_edges(), 3552U);
  MisMpcOptions opt;
  opt.seed = 7;
  opt.use_sparsified_stage = false;
  opt.gather_budget = 300;
  const auto r = mis_mpc(g, opt);

  EXPECT_EQ(r.mis.size(), 384U);
  EXPECT_EQ(fnv1a(r.mis.data(), r.mis.size() * sizeof(VertexId)),
            11790637052838931498ULL);
  EXPECT_EQ(r.rank_phases, 4U);
  EXPECT_EQ(r.final_gather_edges, 272U);

  EXPECT_EQ(r.metrics.rounds, 31U);
  EXPECT_EQ(r.metrics.max_sent_words, 900U);
  EXPECT_EQ(r.metrics.max_received_words, 900U);
  EXPECT_EQ(r.metrics.peak_storage_words, 5624U);
  EXPECT_EQ(r.metrics.violations, 0U);
  EXPECT_EQ(r.metrics.total_words, 2969U);
}

TEST(ResidualRegression, MatchingUnchangedIncludingFloatingPoint) {
  // 6 phases + 23 tail iterations. The x-vector hash covers the exact bit
  // patterns of the fractional weights: the refactor must preserve
  // floating-point summation order (stable alive_arcs), not just the
  // rounded values.
  const Graph g = graph_family("gnp_dense", 700, 3);
  ASSERT_EQ(g.num_edges(), 8290U);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 9;
  opt.threshold_seed = 10;
  const auto r = matching_mpc(g, opt);

  EXPECT_EQ(r.phases, 6U);
  EXPECT_EQ(r.total_iterations, 54U);
  EXPECT_EQ(r.tail_iterations, 23U);
  EXPECT_EQ(r.cover.size(), 651U);
  EXPECT_EQ(fnv1a(r.cover.data(), r.cover.size() * sizeof(VertexId)),
            6501912623358857769ULL);
  EXPECT_EQ(fnv1a(r.x.data(), r.x.size() * sizeof(double)),
            1566749819145939052ULL);

  EXPECT_EQ(r.metrics.rounds, 72U);
  EXPECT_EQ(r.metrics.max_sent_words, 4420U);
  EXPECT_EQ(r.metrics.max_received_words, 332U);
  EXPECT_EQ(r.metrics.peak_storage_words, 871U);
  EXPECT_EQ(r.metrics.violations, 0U);
  EXPECT_EQ(r.metrics.total_words, 26339U);
}

}  // namespace
}  // namespace mpcg
