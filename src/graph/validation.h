// Output oracles: every algorithm result in the library is checked against
// these in tests (and optionally by callers).
//
// Matchings are vectors of edge ids; vertex sets are vectors of vertex ids;
// fractional matchings are one double per edge id.
#ifndef MPCG_GRAPH_VALIDATION_H
#define MPCG_GRAPH_VALIDATION_H

#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// True iff no two vertices of `set` are adjacent in g. Duplicate vertices
/// make the set invalid.
[[nodiscard]] bool is_independent_set(const Graph& g,
                                      const std::vector<VertexId>& set);

/// True iff `set` is independent and no vertex outside it could be added.
[[nodiscard]] bool is_maximal_independent_set(const Graph& g,
                                              const std::vector<VertexId>& set);

/// True iff the edge ids are distinct, valid, and vertex-disjoint.
[[nodiscard]] bool is_matching(const Graph& g,
                               const std::vector<EdgeId>& matching);

/// True iff `matching` is a matching and every edge of g touches a matched
/// vertex.
[[nodiscard]] bool is_maximal_matching(const Graph& g,
                                       const std::vector<EdgeId>& matching);

/// True iff every edge of g has at least one endpoint in `cover`.
[[nodiscard]] bool is_vertex_cover(const Graph& g,
                                   const std::vector<VertexId>& cover);

/// True iff x has one nonnegative entry per edge and every vertex load
/// y_v = sum_{e ∋ v} x_e is at most 1 + tol.
[[nodiscard]] bool is_fractional_matching(const Graph& g,
                                          const std::vector<double>& x,
                                          double tol = 1e-9);

/// Total weight sum_e x_e of a fractional matching.
[[nodiscard]] double fractional_weight(const std::vector<double>& x);

/// Per-vertex loads y_v = sum_{e ∋ v} x_e.
[[nodiscard]] std::vector<double> vertex_loads(const Graph& g,
                                               const std::vector<double>& x);

/// Per-vertex loads restricted to a support edge list (ascending edge ids
/// whose x may be nonzero — e.g. MatchingMpcResult::support). Bit-identical
/// to the full-edge sweep whenever every skipped edge has x == 0: loads
/// start at +0.0 and x is nonnegative, so adding the skipped zeros would
/// not change a single bit. Costs O(n + |support|) instead of O(n + m).
[[nodiscard]] std::vector<double> vertex_loads(
    const Graph& g, const std::vector<double>& x,
    std::span<const EdgeId> support);

/// Flags of vertices covered by `matching`.
[[nodiscard]] std::vector<bool> matched_flags(const Graph& g,
                                              const std::vector<EdgeId>& matching);

/// Sum of weights[e] over the matching's edge ids.
[[nodiscard]] double matching_weight(const std::vector<EdgeId>& matching,
                                     const std::vector<double>& weights);

}  // namespace mpcg

#endif  // MPCG_GRAPH_VALIDATION_H
