// E7 (Lemmas 4.11 / 4.13 / 4.15): the coupling between MPC-Simulation and
// Central-Rand. With a shared threshold stream, the local estimates y~
// track the centralized loads y, and "bad" vertices (frozen in one process
// but not the other) are rare.
//
// Figure series: per-iteration-bucket mean and p99 of |y - y~| over
// vertices active in both processes, plus the overall bad-vertex fraction.
#include <cmath>

#include "bench_util.h"
#include "core/central.h"
#include "core/matching_mpc.h"
#include "util/stats.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

constexpr double kEps = 0.1;
constexpr std::size_t kN = 1 << 11;

struct CoupledRun {
  MatchingMpcResult sim;
  CentralResult central;
  Graph graph;
};

const CoupledRun& coupled_run() {
  static const CoupledRun run = [] {
    CoupledRun out;
    out.graph = gnp_with_degree(kN, 24.0, 19);
    MatchingMpcOptions mo;
    mo.eps = kEps;
    mo.seed = 19;
    mo.threshold_seed = 20;
    mo.record_trace = true;
    out.sim = matching_mpc(out.graph, mo);
    CentralOptions co;
    co.eps = kEps;
    co.random_thresholds = true;
    co.threshold_seed = 20;
    co.initial_edge_weight =
        (1.0 - 2.0 * kEps) / static_cast<double>(kN);
    co.record_trace = true;
    out.central = central_fractional_matching(out.graph, co);
    return out;
  }();
  return run;
}

void E07_DeviationByIteration(benchmark::State& state) {
  const auto bucket_lo = static_cast<std::size_t>(state.range(0));
  const auto bucket_hi = static_cast<std::size_t>(state.range(1));
  const CoupledRun& run = coupled_run();

  double sum = 0.0;
  double wall_ms = 0.0;
  std::vector<double> devs;
  for (auto _ : state) {
    const WallTimer timer;
    devs.clear();
    const std::size_t horizon = std::min(
        {run.sim.y_tilde_trace.size(), run.central.y_trace.size(),
         bucket_hi});
    for (std::size_t t = bucket_lo; t < horizon; ++t) {
      for (VertexId v = 0; v < kN; ++v) {
        const double y_tilde = run.sim.y_tilde_trace[t][v];
        if (std::isnan(y_tilde)) continue;
        if (run.central.freeze_iteration[v] < t) continue;
        devs.push_back(std::abs(y_tilde - run.central.y_trace[t][v]));
      }
    }
    for (const double d : devs) sum += d;
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(sum);
  }
  emit_json_line("E07_DeviationByIteration/" + std::to_string(bucket_lo) +
                     "_" + std::to_string(bucket_hi),
                 kN, run.graph.num_edges(), run.sim.metrics.rounds, wall_ms,
                 run.sim.metrics.peak_storage_words);
  state.counters["iters_from"] = static_cast<double>(bucket_lo);
  state.counters["iters_to"] = static_cast<double>(bucket_hi);
  state.counters["samples"] = static_cast<double>(devs.size());
  if (!devs.empty()) {
    state.counters["mean_dev"] = mean_of(devs);
    state.counters["p99_dev"] = quantile(devs, 0.99);
    state.counters["max_dev"] = quantile(devs, 1.0);
  }
}
BENCHMARK(E07_DeviationByIteration)
    ->Args({0, 10})
    ->Args({10, 25})
    ->Args({25, 50})
    ->Args({50, 100})
    ->Args({100, 1000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void E07_BadVertexFraction(benchmark::State& state) {
  // A vertex is "bad" when the two coupled processes diverge materially on
  // it: its freeze iterations differ by more than a couple of growth steps
  // (exact ties are common early; small shifts are the benign estimate
  // noise the random thresholds absorb — Lemma 4.11).
  const CoupledRun& run = coupled_run();
  std::size_t bad = 0;
  std::size_t frozen_both = 0;
  std::size_t one_sided = 0;
  double total_gap = 0.0;
  for (auto _ : state) {
    bad = 0;
    frozen_both = 0;
    one_sided = 0;
    total_gap = 0.0;
    constexpr std::uint32_t kNever = MatchingMpcResult::kActive;
    for (VertexId v = 0; v < kN; ++v) {
      const auto fs = run.sim.freeze_iteration[v];
      const auto fc = run.central.freeze_iteration[v];
      if ((fs == kNever) != (fc == kNever)) {
        ++one_sided;
        continue;
      }
      if (fs == kNever) continue;  // frozen in neither (e.g. isolated)
      ++frozen_both;
      const double gap = std::abs(static_cast<double>(fs) -
                                  static_cast<double>(fc));
      total_gap += gap;
      if (gap > 2.0) ++bad;
    }
    benchmark::DoNotOptimize(bad);
  }
  emit_json_line("E07_BadVertexFraction", kN, run.graph.num_edges(),
                 run.sim.metrics.rounds, 0.0,
                 run.sim.metrics.peak_storage_words);
  state.counters["vertices"] = static_cast<double>(kN);
  state.counters["frozen_both"] = static_cast<double>(frozen_both);
  state.counters["one_sided_fraction"] =
      static_cast<double>(one_sided) / static_cast<double>(kN);
  if (frozen_both > 0) {
    state.counters["mean_freeze_gap"] =
        total_gap / static_cast<double>(frozen_both);
    state.counters["bad_fraction"] =
        static_cast<double>(bad) / static_cast<double>(frozen_both);
  }
}
BENCHMARK(E07_BadVertexFraction)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
