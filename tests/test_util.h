// Shared helpers for the test suite: the (family x size x seed) catalogue
// lives in src/gen/families.h; these aliases keep test call sites short.
#ifndef MPCG_TESTS_TEST_UTIL_H
#define MPCG_TESTS_TEST_UTIL_H

#include <cstdint>
#include <string>

#include "gen/families.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace mpcg::testing {

/// Families exercised by the parameterized sweeps (mirrors
/// mpcg::family_names(), as a C array for ::testing::ValuesIn).
inline const char* const kFamilies[] = {
    "gnp_sparse", "gnp_dense", "power_law", "bipartite",
    "rmat",       "grid",      "star",      "cliques",
};

inline Graph make_family(const std::string& family, std::size_t n,
                         std::uint64_t seed) {
  return graph_family(family, n, seed);
}

}  // namespace mpcg::testing

#endif  // MPCG_TESTS_TEST_UTIL_H
