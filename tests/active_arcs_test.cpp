// ActiveArcs: the second-level compaction over ResidualGraph that
// partitions each vertex's alive neighbors into an active (frontier) list
// and a frozen complement, both ascending, under the driver's event
// protocol (deactivate-then-notify for departures, notify-then-kill for
// removals). The randomized suite couples the compacted iteration against
// a naive model recomputed from scratch off the graph + flags after every
// event batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "core/central.h"
#include "gen/families.h"
#include "graph/active_arcs.h"
#include "graph/active_set.h"
#include "graph/residual.h"
#include "util/rng.h"

namespace mpcg {
namespace {

std::vector<VertexId> naive_active(const Graph& g, const ResidualGraph& rg,
                                   const ActiveSet& as, VertexId v) {
  std::vector<VertexId> out;
  for (const Arc& a : g.arcs(v)) {
    if (rg.alive(a.to) && as.active(a.to)) out.push_back(a.to);
  }
  return out;
}

std::vector<VertexId> naive_frozen(const Graph& g, const ResidualGraph& rg,
                                   const ActiveSet& as, VertexId v) {
  std::vector<VertexId> out;
  for (const Arc& a : g.arcs(v)) {
    if (rg.alive(a.to) && !as.active(a.to)) out.push_back(a.to);
  }
  return out;
}

std::vector<VertexId> to_vec(std::span<const VertexId> s) {
  return {s.begin(), s.end()};
}

TEST(ActiveArcsTest, StartsAllActive) {
  const Graph g = graph_family("gnp_sparse", 64, 7);
  ResidualGraph rg(g);
  ActiveSet as(g.num_vertices());
  ActiveArcs aa(rg, as);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(aa.active_degree(v), g.degree(v));
    EXPECT_EQ(to_vec(aa.active_neighbors(v)), naive_active(g, rg, as, v));
    EXPECT_TRUE(aa.frozen_neighbors(v).empty());
  }
}

TEST(ActiveArcsTest, FreezeMovesNeighborToFrozenList) {
  const Graph g = graph_family("grid", 16, 1);
  ResidualGraph rg(g);
  ActiveSet as(g.num_vertices());
  ActiveArcs aa(rg, as);

  const VertexId x = 5;
  as.deactivate(x);
  for (const Arc& a : g.arcs(x)) {
    if (as.active(a.to)) aa.neighbor_left_frontier(a.to);
  }
  for (const Arc& a : g.arcs(x)) {
    const VertexId u = a.to;
    const auto act = to_vec(aa.active_neighbors(u));
    EXPECT_EQ(std::count(act.begin(), act.end(), x), 0);
    const auto fro = to_vec(aa.frozen_neighbors(u));
    EXPECT_EQ(std::count(fro.begin(), fro.end(), x), 1);
    EXPECT_EQ(aa.active_degree(u), g.degree(u) - 1);
  }
}

TEST(ActiveArcsTest, UpperNeighborsIsSuffixAboveV) {
  const Graph g = graph_family("gnp_dense", 128, 3);
  ResidualGraph rg(g);
  ActiveSet as(g.num_vertices());
  ActiveArcs aa(rg, as);
  // Freeze a few vertices so the lists are non-trivial.
  for (const VertexId x : {VertexId{3}, VertexId{40}, VertexId{77}}) {
    as.deactivate(x);
  }
  aa.notify_left(std::array<VertexId, 3>{3, 40, 77});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!as.active(v)) continue;
    const auto all = to_vec(aa.active_neighbors(v));
    const auto upper = to_vec(aa.active_upper_neighbors(v));
    std::vector<VertexId> expect;
    for (const VertexId u : all) {
      if (u > v) expect.push_back(u);
    }
    EXPECT_EQ(upper, expect) << "vertex " << v;
  }
}

TEST(ActiveArcsTest, RemovalDropsFromBothLists) {
  const Graph g = graph_family("cliques", 32, 2);
  ResidualGraph rg(g);
  ActiveSet as(g.num_vertices());
  ActiveArcs aa(rg, as);

  // Freeze 1 (clique {0..7} internally connected), then remove it; also
  // remove the still-active 2. Protocol: notify, then kill.
  as.deactivate(1);
  for (const Arc& a : g.arcs(1)) {
    if (as.active(a.to)) aa.neighbor_left_frontier(a.to);
  }
  for (const Arc& a : rg.alive_arcs(1)) {
    aa.frozen_neighbor_removed(a.to);
  }
  as.deactivate(1);  // removal keeps it off the frontier
  rg.kill(1);

  as.deactivate(2);
  for (const Arc& a : rg.alive_arcs(2)) {
    aa.neighbor_left_frontier(a.to);
  }
  rg.kill(2);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!as.active(v)) continue;
    EXPECT_EQ(to_vec(aa.active_neighbors(v)), naive_active(g, rg, as, v))
        << "vertex " << v;
    EXPECT_EQ(to_vec(aa.frozen_neighbors(v)), naive_frozen(g, rg, as, v))
        << "vertex " << v;
    EXPECT_EQ(aa.active_degree(v), naive_active(g, rg, as, v).size());
  }
}

/// Randomized coupling: drive the full event protocol (freeze batches,
/// removals of active and frozen vertices) and compare every active
/// vertex's partition against the naive model after each batch.
TEST(ActiveArcsTest, RandomizedCouplingAgainstNaiveModel) {
  for (const char* family : {"gnp_sparse", "rmat", "power_law", "star"}) {
    const Graph g = graph_family(family, 256, 11);
    const std::size_t n = g.num_vertices();
    ResidualGraph rg(g);
    ActiveSet as(n);
    ActiveArcs aa(rg, as);
    Rng rng(mix64(0xa2c, std::size_t{0}, n));

    for (int batch = 0; batch < 40; ++batch) {
      // Random event: mostly freezes, some removals.
      const std::size_t kind = rng.next_below(4);
      const auto v = static_cast<VertexId>(rng.next_below(n));
      if (kind < 3) {
        // Freeze batch: v and maybe a neighbor leave the frontier.
        std::vector<VertexId> leavers;
        if (as.active(v)) leavers.push_back(v);
        const auto arcs = g.arcs(v);
        if (!arcs.empty()) {
          const VertexId u = arcs[rng.next_below(arcs.size())].to;
          if (as.active(u) && u != v) leavers.push_back(u);
        }
        for (const VertexId x : leavers) as.deactivate(x);
        aa.notify_left(leavers);
      } else if (rg.alive(v)) {
        // Removal (of an active or frozen vertex): notify, then kill.
        const bool was_active = as.active(v);
        as.deactivate(v);
        for (const Arc& a : rg.alive_arcs(v)) {
          if (was_active) {
            aa.neighbor_left_frontier(a.to);
          } else {
            aa.frozen_neighbor_removed(a.to);
          }
        }
        rg.kill(v);
      }

      // Spot-check a window of vertices (full sweep every few batches).
      const bool full = batch % 8 == 7;
      for (VertexId u = 0; u < n; ++u) {
        if (!full && u % 16 != static_cast<VertexId>(batch % 16)) continue;
        if (!as.active(u)) continue;
        ASSERT_EQ(to_vec(aa.active_neighbors(u)), naive_active(g, rg, as, u))
            << family << " batch " << batch << " vertex " << u;
        ASSERT_EQ(to_vec(aa.frozen_neighbors(u)), naive_frozen(g, rg, as, u))
            << family << " batch " << batch << " vertex " << u;
        ASSERT_EQ(aa.active_degree(u), naive_active(g, rg, as, u).size());
        // Ascending order invariant.
        const auto act = to_vec(aa.active_neighbors(u));
        ASSERT_TRUE(std::is_sorted(act.begin(), act.end()));
      }
    }
  }
}

TEST(ThresholdBatchTest, MatchesCentralThresholdBitForBit) {
  const std::uint64_t seed = 0xfeed;
  const double eps = 0.07;
  const std::size_t n = 300;
  const ThresholdBatch batch(seed, eps, /*random=*/true, n);
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < n; v += 3) vertices.push_back(v);
  std::vector<double> out;
  for (const std::uint64_t t : {0ULL, 1ULL, 17ULL, 129ULL}) {
    batch.fill(vertices, t, out);
    ASSERT_EQ(out.size(), vertices.size());
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      const double expect =
          central_threshold(seed, vertices[i], t, eps, true);
      EXPECT_EQ(out[i], expect) << "v=" << vertices[i] << " t=" << t;
      EXPECT_EQ(batch.threshold(vertices[i], t), expect);
      // The floor is a true lower bound of the stream.
      EXPECT_GE(out[i], batch.lower_bound());
    }
  }
}

TEST(ThresholdBatchTest, FixedThresholdMode) {
  const double eps = 0.1;
  const ThresholdBatch batch(1, eps, /*random=*/false, 8);
  std::vector<double> out;
  const std::vector<VertexId> vs = {0, 3, 7};
  batch.fill(vs, 5, out);
  for (const double t : out) EXPECT_EQ(t, 1.0 - 2.0 * eps);
  EXPECT_EQ(batch.lower_bound(), 1.0 - 2.0 * eps);
  EXPECT_EQ(batch.threshold(2, 9), 1.0 - 2.0 * eps);
}

}  // namespace
}  // namespace mpcg
