// Massively Parallel Computation (MPC) model simulator.
//
// The model (paper, Section 1.1.1): m machines, each with S words of local
// memory, computing in synchronous rounds. Within a round machines compute
// locally; at the round boundary they exchange messages, and every machine
// may send and receive at most S words per round.
//
// This engine is the *accounting authority* for every algorithm in
// `src/core`: algorithms move data only through `push`/`exchange` (or the
// collectives in primitives.h built on them), the engine counts rounds and
// enforces capacities, and the experiment harness reads the metrics from
// here. Algorithms have no way to increment the round counter except by
// actually communicating.
#ifndef MPCG_MPC_ENGINE_H
#define MPCG_MPC_ENGINE_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcg::mpc {

using Word = std::uint64_t;

/// Thrown (in strict mode) when a machine exceeds its per-round send or
/// receive budget, or when a collective cannot fit in machine memory.
class CapacityError : public std::runtime_error {
 public:
  explicit CapacityError(const std::string& what) : std::runtime_error(what) {}
};

struct Config {
  /// Number of machines, m.
  std::size_t num_machines = 1;
  /// Words of memory per machine, S. Also the per-round send/receive cap.
  std::size_t words_per_machine = 1 << 20;
  /// If true, capacity violations throw CapacityError; otherwise they are
  /// tallied in Metrics::violations (useful for measuring how close an
  /// algorithm runs to the budget).
  bool strict = true;
};

struct Metrics {
  /// Communication rounds executed so far.
  std::size_t rounds = 0;
  /// Peak words sent by any machine in any single round.
  std::size_t max_sent_words = 0;
  /// Peak words received by any machine in any single round.
  std::size_t max_received_words = 0;
  /// Peak resident storage reported by any machine (via note_storage) or
  /// implied by a gather.
  std::size_t peak_storage_words = 0;
  /// Number of capacity violations observed (non-strict mode).
  std::size_t violations = 0;
  /// Total words moved across the cluster over all rounds.
  std::size_t total_words = 0;
};

class Engine {
 public:
  explicit Engine(Config config);

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return config_.num_machines;
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return config_.words_per_machine;
  }
  [[nodiscard]] bool strict() const noexcept { return config_.strict; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Queues one word from machine `from` to machine `to` for the next
  /// exchange. Inline: per-edge simulation traffic makes this the hottest
  /// call in the codebase.
  void push(std::size_t from, std::size_t to, Word word) {
    if (from >= config_.num_machines || to >= config_.num_machines)
        [[unlikely]] {
      throw_bad_machine(from >= config_.num_machines ? from : to);
    }
    if (!boxes_.empty()) {
      boxes_[from * config_.num_machines + to].push_back(word);
    } else {
      out_dests_[from].push_back(static_cast<std::uint32_t>(to));
      out_words_[from].push_back(word);
    }
  }

  /// Queues a word span (one bulk fill + one bulk copy).
  void push(std::size_t from, std::size_t to, std::span<const Word> words);

  /// Executes one communication round: delivers all queued words, enforces
  /// per-machine send/receive budgets, updates metrics, and makes inboxes
  /// readable. Queued outboxes are cleared.
  void exchange();

  /// Words delivered to `machine` by the most recent exchange, concatenated
  /// in sender order (sender ids ascending; each sender's words in push
  /// order).
  [[nodiscard]] const std::vector<Word>& inbox(std::size_t machine) const;

  /// Reports `words` of resident state on `machine` for peak-storage
  /// accounting (e.g. an adjacency shard or a gathered subgraph). In strict
  /// mode exceeding S throws.
  void note_storage(std::size_t machine, std::size_t words);

  /// Clears all inboxes (outboxes are cleared by exchange()).
  void clear_inboxes();

 private:
  void check_budget(std::size_t machine, std::size_t words, const char* dir);
  void check_machine(std::size_t machine) const;
  [[noreturn]] void throw_bad_machine(std::size_t machine) const;

  /// Dense clusters up to this many machines use the per-(sender,
  /// receiver) box matrix — pushes pre-sort by destination and delivery is
  /// pure bulk copies. Beyond it, the matrix's O(machines^2) storage and
  /// per-round scan dominate, so the flat representation takes over.
  static constexpr std::size_t kDenseMachineLimit = 512;

  Config config_;
  Metrics metrics_;
  /// Dense representation (small clusters): boxes_[from * m + to] holds
  /// the words queued from `from` to `to`, in push order. Empty when the
  /// flat representation is active.
  std::vector<std::vector<Word>> boxes_;
  /// Flat per-sender outboxes (large clusters), in push order:
  /// out_words_[from][i] goes to machine out_dests_[from][i]. A round of
  /// exchange() costs O(words moved + machines): a counting pass over the
  /// destination arrays, then a stable counting-sort delivery pass that
  /// buckets each sender's words by destination and appends each bucket
  /// with one bulk copy.
  std::vector<std::vector<std::uint32_t>> out_dests_;
  std::vector<std::vector<Word>> out_words_;
  std::vector<std::vector<Word>> inbox_;
  /// Per-receiver word counts for the current exchange (scratch).
  std::vector<std::size_t> recv_count_;
  /// Counting-sort scratch for scattered senders (see exchange()).
  std::vector<std::size_t> bucket_count_;
  std::vector<std::size_t> bucket_cursor_;
  std::vector<Word> scatter_;
};

}  // namespace mpcg::mpc

#endif  // MPCG_MPC_ENGINE_H
