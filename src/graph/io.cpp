#include "graph/io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mpcg {

namespace {

std::string next_content_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  return {};
}

}  // namespace

LoadedGraph read_edge_list(std::istream& in) {
  const std::string header = next_content_line(in);
  std::istringstream head(header);
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(head >> n >> m)) {
    throw std::runtime_error("read_edge_list: bad header (want 'n m')");
  }
  GraphBuilder builder(n);
  // Weights keyed by canonical endpoints; remapped to edge ids post-build
  // (the builder sorts and dedupes).
  std::vector<std::pair<Edge, double>> weighted;
  bool any_weight = false;
  bool any_plain = false;
  for (std::size_t i = 0; i < m; ++i) {
    const std::string line = next_content_line(in);
    if (line.empty()) {
      throw std::runtime_error("read_edge_list: fewer edges than declared");
    }
    std::istringstream row(line);
    std::size_t u = 0;
    std::size_t v = 0;
    if (!(row >> u >> v)) {
      throw std::runtime_error("read_edge_list: bad edge line: " + line);
    }
    if (u >= n || v >= n) {
      throw std::runtime_error("read_edge_list: endpoint out of range");
    }
    double w = 0.0;
    if (row >> w) {
      any_weight = true;
      Edge e{static_cast<VertexId>(u), static_cast<VertexId>(v)};
      if (e.u > e.v) std::swap(e.u, e.v);
      weighted.emplace_back(e, w);
    } else {
      any_plain = true;
    }
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  if (any_weight && any_plain) {
    throw std::runtime_error(
        "read_edge_list: mixed weighted and unweighted rows");
  }

  LoadedGraph out;
  out.graph = builder.build();
  if (any_weight) {
    std::vector<double> weights(out.graph.num_edges(), 0.0);
    for (const auto& [e, w] : weighted) {
      const EdgeId id = out.graph.find_edge(e.u, e.v);
      if (id != Graph::kNoEdge) weights[id] = w;  // last duplicate wins
    }
    out.weights = std::move(weights);
  }
  return out;
}

LoadedGraph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list: cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g,
                     const std::vector<double>* weights) {
  if (weights != nullptr && weights->size() != g.num_edges()) {
    throw std::invalid_argument("write_edge_list: weights size mismatch");
  }
  out << std::setprecision(17);  // lossless double round-trip
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    out << ed.u << ' ' << ed.v;
    if (weights != nullptr) out << ' ' << (*weights)[e];
    out << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& g,
                          const std::vector<double>* weights) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list: cannot open " + path);
  write_edge_list(out, g, weights);
}

}  // namespace mpcg
