// Immutable undirected simple graph in CSR form.
//
// Every undirected edge {u, v} has a stable edge id in [0, num_edges());
// both arcs (u -> v and v -> u) carry that id. Fractional matchings
// (Section 4 of the paper) are stored as one double per edge id, and
// integral matchings as lists of edge ids, so the id is part of the public
// API.
#ifndef MPCG_GRAPH_GRAPH_H
#define MPCG_GRAPH_GRAPH_H

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace mpcg {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

/// One directed arc in the adjacency of a vertex.
struct Arc {
  VertexId to;
  EdgeId edge;
};

/// Undirected edge endpoints; canonical form has u < v.
struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Neighbors of v with their edge ids, sorted by neighbor id.
  [[nodiscard]] std::span<const Arc> arcs(VertexId v) const noexcept {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Average degree 2m/n; 0 for an empty graph.
  [[nodiscard]] double average_degree() const noexcept;

  /// Endpoints of edge id e (u < v).
  [[nodiscard]] Edge edge(EdgeId e) const noexcept { return edges_[e]; }

  /// All edges in id order.
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// True iff {u, v} is an edge (binary search over sorted adjacency).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  /// Returns the edge id of {u, v}, or `kNoEdge` if absent.
  static constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);
  [[nodiscard]] EdgeId find_edge(VertexId u, VertexId v) const noexcept;

  /// Words of memory a machine holding this whole graph would use
  /// (offsets + arcs + edge list), for MPC memory accounting.
  [[nodiscard]] std::size_t storage_words() const noexcept {
    return offsets_.size() + arcs_.size() + edges_.size();
  }

 private:
  friend class GraphBuilder;

  std::size_t num_vertices_ = 0;
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;             // size 2m, sorted per vertex
  std::vector<Edge> edges_;           // size m, canonical (u < v)
};

/// Accumulates edges and produces a simple Graph (self-loops dropped,
/// parallel edges deduplicated).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_vertices) : num_vertices_(num_vertices) {}

  /// Adds undirected edge {u, v}. Self-loops are ignored. Requires
  /// u, v < num_vertices.
  void add_edge(VertexId u, VertexId v);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t pending_edges() const noexcept { return pending_.size(); }

  /// Builds the graph. The builder may be reused afterwards (it is left
  /// empty).
  [[nodiscard]] Graph build();

 private:
  std::size_t num_vertices_;
  std::vector<Edge> pending_;
};

/// Convenience: builds a graph from an explicit edge list.
[[nodiscard]] Graph make_graph(std::size_t num_vertices,
                               const std::vector<std::pair<VertexId, VertexId>>& edges);

}  // namespace mpcg

#endif  // MPCG_GRAPH_GRAPH_H
