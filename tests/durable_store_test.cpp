// Durable-store integrity: store corruption (kCorruptStore), the per-blob
// digests + retained-copy repair protocol, the opt-in round-boundary
// scrub, and the two new FaultPlan kinds' parse/storm surface.
//
// The load-bearing property is the same coupling contract the wire
// corruptions obey: a run whose durable store rots mid-flight, detected by
// the publish-time digests and repaired from the publisher's retained
// copy (escalating into checkpoint rollback past the retransmit budget),
// must be bit-identical to the fault-free run — same outputs, same logical
// Metrics — with the repair cost visible only in the dedicated fields
// (store_corruptions_injected/detected, store_words_repaired,
// checkpoint_fallbacks, scrub_passes).  Without integrity the same rot
// aliases straight into every reader's view.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/matching_mpc.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "graph/validation.h"
#include "mpc/engine.h"
#include "test_util.h"
#include "util/rng.h"

namespace mpcg {
namespace {

using testing::make_family;

// --------------------------------------------------- engine-level behavior

TEST(DurableStore, StoreRotIsDetectedAndRepairedInPlace) {
  fault::FaultPlan plan;
  plan.add_corrupt_store(0, 0);
  mpc::Config cfg{3, 64, true};
  cfg.integrity = true;
  mpc::Engine rotted(cfg);
  rotted.set_fault_plan(&plan);
  mpc::Engine pristine(cfg);
  const std::vector<mpc::Word> payload = {11, 12, 13, 14, 15};
  const std::vector<std::size_t> dests = {1, 2};
  mpc::PayloadId ids[2];
  mpc::Engine* engines[] = {&rotted, &pristine};
  for (std::size_t e = 0; e < 2; ++e) {
    ids[e] = engines[e]->stage_payload(payload);
    engines[e]->push_broadcast(0, dests, ids[e]);
    engines[e]->exchange();
  }
  // The delivered blob must be the pristine payload — the rot was repaired
  // from the publisher's retained copy before delivery.
  const auto got = rotted.delivered_payload(ids[0]);
  const auto want = pristine.delivered_payload(ids[1]);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  EXPECT_EQ(rotted.metrics().store_corruptions_injected, 1U);
  EXPECT_EQ(rotted.metrics().store_corruptions_detected, 1U);
  EXPECT_EQ(rotted.metrics().store_words_repaired, payload.size());
  EXPECT_EQ(rotted.metrics().rounds_replayed, 0U);  // budget intact
}

TEST(DurableStore, RottingAnEmptyStoreInjectsNothing) {
  fault::FaultPlan plan;
  plan.add_corrupt_store(0, 0);
  mpc::Config cfg{3, 64, true};
  cfg.integrity = true;
  mpc::Engine eng(cfg);
  eng.set_fault_plan(&plan);
  eng.push(0, 1, 7);  // wire traffic only — no blob to rot
  eng.exchange();
  EXPECT_EQ(eng.metrics().faults_injected, 1U);
  EXPECT_EQ(eng.metrics().store_corruptions_injected, 0U);
  EXPECT_EQ(eng.metrics().store_corruptions_detected, 0U);
  EXPECT_EQ(eng.metrics().store_words_repaired, 0U);
}

TEST(DurableStore, UndetectedStoreRotAliasesIntoEveryView) {
  // integrity off: the flipped bits ride through to the delivered blob.
  fault::FaultPlan plan;
  plan.add_corrupt_store(0, 0);
  mpc::Engine eng(mpc::Config{3, 64, true});
  eng.set_fault_plan(&plan);
  const std::vector<mpc::Word> payload = {101, 102, 103, 104};
  const std::vector<std::size_t> dests = {1, 2};
  const auto id = eng.stage_payload(payload);
  eng.push_broadcast(0, dests, id);
  eng.exchange();
  const auto got = eng.delivered_payload(id);
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_FALSE(
      std::equal(got.begin(), got.end(), payload.begin(), payload.end()));
  EXPECT_EQ(eng.metrics().store_corruptions_injected, 1U);
  EXPECT_EQ(eng.metrics().store_corruptions_detected, 0U);
}

TEST(DurableStore, StoreRotPastBudgetEscalatesToRollback) {
  // retransmit_budget repairs in place; the (budget+1)-th rot of the same
  // machine's blobs in one round rolls the round back instead.
  fault::FaultPlan plan;
  plan.add_corrupt_store(0, 0);
  plan.add_corrupt_store(0, 0);
  plan.add_corrupt_store(0, 0);
  plan.retransmit_budget = 2;
  mpc::Config cfg{3, 64, true};
  cfg.integrity = true;
  mpc::Engine rotted(cfg);
  rotted.set_fault_plan(&plan);
  mpc::Engine pristine(cfg);
  const std::vector<mpc::Word> payload = {21, 22, 23};
  const std::vector<std::size_t> dests = {1, 2};
  mpc::PayloadId ids[2];
  mpc::Engine* engines[] = {&rotted, &pristine};
  for (std::size_t e = 0; e < 2; ++e) {
    ids[e] = engines[e]->stage_payload(payload);
    engines[e]->push_broadcast(0, dests, ids[e]);
    engines[e]->exchange();
  }
  const auto got = rotted.delivered_payload(ids[0]);
  const auto want = pristine.delivered_payload(ids[1]);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  EXPECT_EQ(rotted.metrics().store_corruptions_injected, 3U);
  EXPECT_EQ(rotted.metrics().store_corruptions_detected, 3U);
  EXPECT_GE(rotted.metrics().rounds_replayed, 1U);  // the escalation
}

TEST(DurableStore, StoreRotPastBudgetWithRecoveryOffThrows) {
  fault::FaultPlan plan;
  plan.add_corrupt_store(0, 0);
  plan.add_corrupt_store(0, 0);
  plan.retransmit_budget = 1;
  mpc::Config cfg{3, 64, true};
  cfg.integrity = true;
  mpc::Engine eng(cfg);
  eng.set_fault_plan(&plan, nullptr, /*recover=*/false);
  const std::vector<mpc::Word> payload = {31, 32, 33};
  const std::vector<std::size_t> dests = {1, 2};
  eng.push_broadcast(0, dests, eng.stage_payload(payload));
  try {
    eng.exchange();
    FAIL() << "second store rot did not throw";
  } catch (const mpc::IntegrityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("payload store corrupted"), std::string::npos)
        << what;
    EXPECT_NE(what.find("retransmit budget"), std::string::npos) << what;
  }
}

// ----------------------------------------------------------------- scrub

TEST(DurableStoreScrub, ScrubIsInertOnCleanRunsExceptItsCounter) {
  const Graph g = make_family("gnp_sparse", 512, 9);
  MisMpcOptions plain;
  plain.seed = 9;
  plain.integrity = true;
  const auto base = mis_mpc(g, plain);
  MisMpcOptions scrubbed = plain;
  scrubbed.scrub_interval = 2;
  const auto r = mis_mpc(g, scrubbed);
  EXPECT_EQ(r.mis, base.mis);
  EXPECT_EQ(r.rank_phases, base.rank_phases);
  EXPECT_EQ(r.metrics.rounds, base.metrics.rounds);
  EXPECT_EQ(r.metrics.total_words, base.metrics.total_words);
  EXPECT_EQ(base.metrics.scrub_passes, 0U);
  // Every 2nd round boundary swept.
  EXPECT_EQ(r.metrics.scrub_passes, r.metrics.rounds / 2);
}

TEST(DurableStoreScrub, ScrubRequiresIntegrity) {
  // Without integrity there are no digests to sweep: the interval is inert.
  const Graph g = make_family("gnp_sparse", 256, 3);
  MisMpcOptions opt;
  opt.seed = 3;
  opt.scrub_interval = 1;
  const auto r = mis_mpc(g, opt);
  EXPECT_EQ(r.metrics.scrub_passes, 0U);
}

TEST(DurableStoreScrub, CcliqueScrubCountsSweeps) {
  const Graph g = make_family("gnp_sparse", 256, 5);
  MisCcliqueOptions plain;
  plain.seed = 5;
  plain.integrity = true;
  const auto base = mis_cclique(g, plain);
  MisCcliqueOptions scrubbed = plain;
  scrubbed.scrub_interval = 3;
  const auto r = mis_cclique(g, scrubbed);
  EXPECT_EQ(r.mis, base.mis);
  EXPECT_EQ(r.metrics.rounds, base.metrics.rounds);
  EXPECT_EQ(r.metrics.total_words, base.metrics.total_words);
  EXPECT_EQ(base.metrics.scrub_passes, 0U);
  EXPECT_GT(r.metrics.scrub_passes, 0U);
}

// ------------------------------------------------- driver-level coupling

// Early-round store rot on both low machines plus one checkpoint rot and a
// crash to force a verified restore: whichever rounds carry a store get
// flipped bits, the rest are no-ops.
fault::FaultPlan store_storm(std::size_t rounds) {
  fault::FaultPlan plan;
  const std::size_t last = rounds > 2 ? rounds - 2 : 0;
  for (std::size_t r = 1; r <= last && r <= 6; ++r) {
    plan.add_corrupt_store(0, r);
    plan.add_corrupt_store(1, r);
  }
  if (last >= 4) {
    plan.add_corrupt_checkpoint(0, 4);
  }
  if (last >= 5) plan.add_crash(0, 5);
  return plan;
}

TEST(DurableStoreCoupling, MisMpcIsBitIdenticalUnderStoreRot) {
  for (const char* family : {"gnp_sparse", "rmat", "star"}) {
    const Graph g = make_family(family, 512, 11);
    MisMpcOptions opt;
    opt.seed = 11;
    const auto clean = mis_mpc(g, opt);
    const auto plan = store_storm(clean.metrics.rounds);
    MisMpcOptions faulty = opt;
    faulty.fault_plan = &plan;
    faulty.integrity = true;
    faulty.audit = true;
    faulty.scrub_interval = 3;
    const auto r = mis_mpc(g, faulty);
    EXPECT_EQ(r.mis, clean.mis) << family;
    EXPECT_EQ(r.rank_phases, clean.rank_phases) << family;
    EXPECT_EQ(r.metrics.rounds, clean.metrics.rounds) << family;
    EXPECT_EQ(r.metrics.total_words, clean.metrics.total_words) << family;
    EXPECT_EQ(r.metrics.store_corruptions_detected,
              r.metrics.store_corruptions_injected)
        << family;
    EXPECT_GT(r.metrics.store_corruptions_injected, 0U) << family;
    EXPECT_TRUE(is_maximal_independent_set(g, r.mis)) << family;
  }
}

TEST(DurableStoreCoupling, MatchingMpcIsBitIdenticalUnderStoreRot) {
  const Graph g = make_family("gnp_dense", 512, 13);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 13;
  const auto clean = matching_mpc(g, opt);
  const auto plan = store_storm(clean.metrics.rounds);
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = 3;
  const auto r = matching_mpc(g, faulty);
  EXPECT_EQ(r.x, clean.x);
  EXPECT_EQ(r.cover, clean.cover);
  EXPECT_EQ(r.freeze_iteration, clean.freeze_iteration);
  EXPECT_EQ(r.metrics.rounds, clean.metrics.rounds);
  EXPECT_EQ(r.metrics.total_words, clean.metrics.total_words);
  EXPECT_EQ(r.metrics.store_corruptions_detected,
            r.metrics.store_corruptions_injected);
  EXPECT_TRUE(is_fractional_matching(g, r.x));
}

TEST(DurableStoreCoupling, MisCcliqueIsBitIdenticalUnderStoreRot) {
  const Graph g = make_family("gnp_sparse", 384, 17);
  MisCcliqueOptions opt;
  opt.seed = 17;
  const auto clean = mis_cclique(g, opt);
  const auto plan = store_storm(clean.metrics.rounds);
  MisCcliqueOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = 3;
  const auto r = mis_cclique(g, faulty);
  EXPECT_EQ(r.mis, clean.mis);
  EXPECT_EQ(r.rank_phases, clean.rank_phases);
  EXPECT_EQ(r.metrics.rounds, clean.metrics.rounds);
  EXPECT_EQ(r.metrics.total_words, clean.metrics.total_words);
  EXPECT_EQ(r.metrics.lenzen_batches, clean.metrics.lenzen_batches);
  EXPECT_EQ(r.metrics.store_corruptions_detected,
            r.metrics.store_corruptions_injected);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
}

TEST(DurableStoreCoupling, NewMetricsAreZeroOnCleanRuns) {
  const Graph g = make_family("gnp_sparse", 256, 19);
  MisMpcOptions opt;
  opt.seed = 19;
  opt.integrity = true;
  opt.audit = true;
  const auto r = mis_mpc(g, opt);
  EXPECT_EQ(r.metrics.store_corruptions_injected, 0U);
  EXPECT_EQ(r.metrics.store_corruptions_detected, 0U);
  EXPECT_EQ(r.metrics.store_words_repaired, 0U);
  EXPECT_EQ(r.metrics.checkpoint_fallbacks, 0U);
  EXPECT_EQ(r.metrics.scrub_passes, 0U);
  MisCcliqueOptions cc;
  cc.seed = 19;
  cc.integrity = true;
  const auto rc = mis_cclique(g, cc);
  EXPECT_EQ(rc.metrics.store_corruptions_injected, 0U);
  EXPECT_EQ(rc.metrics.store_corruptions_detected, 0U);
  EXPECT_EQ(rc.metrics.store_words_repaired, 0U);
  EXPECT_EQ(rc.metrics.checkpoint_fallbacks, 0U);
  EXPECT_EQ(rc.metrics.scrub_passes, 0U);
}

// ------------------------------------------------------- FaultPlan surface

TEST(DurableStorePlan, NewKindsRoundTripThroughParse) {
  const auto plan = fault::FaultPlan::parse(
      "corrupt_store:1@2,corrupt_ckpt:0@3,crash:2@4,corrupt:1@5");
  EXPECT_EQ(plan.size(), 4U);
  EXPECT_EQ(plan.events()[0].kind, fault::FaultKind::kCorruptStore);
  EXPECT_EQ(plan.events()[1].kind, fault::FaultKind::kCorruptCheckpoint);
  const auto again = fault::FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
}

// Same contract as the PR 7 hardening: the error names the offending token.
void expect_parse_error(const std::string& spec, const std::string& needle) {
  try {
    (void)fault::FaultPlan::parse(spec);
    FAIL() << "parse(\"" << spec << "\") did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message \"" << e.what() << "\" lacks \"" << needle << "\" for \""
        << spec << "\"";
  }
}

TEST(DurableStorePlan, NewKindsNameTheOffendingToken) {
  expect_parse_error("corrupt_store:1", "corrupt_store:1");
  expect_parse_error("corrupt_ckpt:@2", "corrupt_ckpt:@2");
  expect_parse_error("corrupt_store:1@", "corrupt_store:1@");
  expect_parse_error("corrupt_ckpt:777777777777777777777777@1",
                     "777777777777777777777777");
  expect_parse_error("corrupt_store:1@2,crash:0@3,corrupt_store:1@2",
                     "duplicate");
  // An unknown kind's error lists the full vocabulary.
  expect_parse_error("corrupt_stor:1@2", "corrupt_store");
}

TEST(DurableStorePlan, RandomStormDrawsStoreAndCheckpointRot) {
  // Property test over 32 seeds: the storm generator exercises the new
  // kinds, every storm round-trips through parse, and a checkpoint-rot
  // event never shares a round with any other event (a rot landing in a
  // restore round could legitimately strand a not-yet-full ring — that
  // scenario stays hand-authored, never a soak outcome).
  std::size_t store = 0;
  std::size_t ckpt = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const auto storm =
        fault::FaultPlan::random_storm(mix64(seed, 0, 0x5708), 6, 24, 10);
    EXPECT_EQ(storm.size(), 10U) << seed;
    const auto again = fault::FaultPlan::parse(storm.to_string());
    EXPECT_EQ(again.to_string(), storm.to_string()) << seed;
    for (const auto& ev : storm.events()) {
      if (ev.kind == fault::FaultKind::kCorruptStore) ++store;
      if (ev.kind != fault::FaultKind::kCorruptCheckpoint) continue;
      ++ckpt;
      for (const auto& other : storm.events()) {
        if (&other == &ev) continue;
        EXPECT_NE(other.round, ev.round)
            << "seed " << seed << ": checkpoint rot shares round "
            << ev.round;
      }
    }
  }
  EXPECT_GT(store, 0U);
  EXPECT_GT(ckpt, 0U);
}

}  // namespace
}  // namespace mpcg
