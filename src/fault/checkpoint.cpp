#include "fault/checkpoint.h"

#include <utility>

namespace mpcg::fault {

void CheckpointRegistry::register_state(std::string name, SaveFn save,
                                        RestoreFn restore) {
  providers_.push_back(
      {std::move(name), std::move(save), std::move(restore), 0, 0});
}

std::size_t CheckpointRegistry::capture() {
  buffer_.clear();
  for (Provider& p : providers_) {
    p.offset = buffer_.size();
    p.save(buffer_);
    p.words = buffer_.size() - p.offset;
  }
  has_checkpoint_ = true;
  ++captures_;
  return buffer_.size();
}

void CheckpointRegistry::restore() {
  if (!has_checkpoint_) return;
  for (const Provider& p : providers_) {
    p.restore(std::span<const Word>(buffer_.data() + p.offset, p.words));
  }
  ++restores_;
}

}  // namespace mpcg::fault
