#include "mpc/engine.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <type_traits>

#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "util/rng.h"

namespace mpcg::mpc {

namespace {

/// Bulk word copy with a short-run fast path: scattered traffic stages
/// mostly single-word runs, and a libc memmove call per word would cost
/// more than the copy itself.
inline void copy_run(Word* dst, const Word* src, std::size_t count) {
  if (count <= 4) {
    for (std::size_t i = 0; i < count; ++i) dst[i] = src[i];
  } else {
    std::memcpy(dst, src, count * sizeof(Word));
  }
}

/// Decodes one sender's run-tag/count streams, invoking fn(to, count) per
/// run in staging order — the single source for the side-effecting count
/// cursor walk (extended tags consume the next side-stream count;
/// singleton tags are a run of one).
template <typename Fn>
inline void for_each_run(const std::vector<std::uint32_t>& tos,
                         const std::uint32_t* counts, Fn&& fn) {
  std::size_t ci = 0;
  for (const std::uint32_t tag : tos) {
    fn(static_cast<std::size_t>(tag & RunTag::kDestMask),
       (tag & RunTag::kExtFlag) != 0
           ? static_cast<std::size_t>(counts[ci++])
           : std::size_t{1});
  }
}

/// Appends a run to an inbox whose exact capacity was reserved up front
/// (the append can never reallocate — segment spans alias the buffer).
/// Single-word runs — the bulk of scattered traffic — skip the insert
/// machinery.
inline void append_run_to(std::vector<Word>& in, const Word* src,
                          std::size_t count) {
  if (count == 1) {
    in.push_back(*src);
    return;
  }
  in.insert(in.end(), src, src + count);
}

}  // namespace

Engine::Engine(Config config) : config_(config) {
  if (config_.num_machines == 0) {
    throw std::invalid_argument("Engine: need at least one machine");
  }
  backend_ = make_backend(config_.threads);
  const std::size_t m = config_.num_machines;
  // Adaptive mode starts from the same shape the static rule would pick at
  // the tuned default, then re-decides per flush (see adapt_path).
  const std::size_t start_limit =
      config_.dense_machine_limit == Config::kAdaptive
          ? kAdaptiveDenseCap
          : config_.dense_machine_limit;
  // Integrity checking pins the flat representation: its checksums are
  // defined over the contiguous per-sender wire stream, which the dense
  // matrix never materializes (metrics are representation-invariant, so
  // the pin shows up only as wall-clock).
  dense_active_ = !config_.integrity && m <= start_limit;
  if (dense_active_) {
    boxes_.assign(m * m, {});
  } else {
    out_tos_.assign(m, {});
    out_counts_.assign(m, {});
    out_words_.assign(m, {});
    out_open_to_.assign(m, RunTag::kNoDest);
  }
  if (config_.integrity) out_csums_.assign(m, Fnv::kOffset);
  inbox_.assign(m, {});
  in_segs_.assign(m, {});
  recv_total_.assign(m, 0);
  inbox_cache_.assign(m, {});
  inbox_cache_valid_.assign(m, 0);
  recv_count_.assign(m, 0);
  if (!config_.checkpoint_dir.empty()) {
    if (config_.checkpoint_every == 0) {
      throw std::invalid_argument("Engine: checkpoint_every must be >= 1");
    }
    dring_.emplace(config_.checkpoint_dir);
    // A fresh durable run must never let a previous run's same-scope files
    // outrank its own checkpoints by sequence number.
    if (!config_.resume) dring_->reset();
  }
}

void Outbox::throw_bad_dest(std::size_t to) const {
  throw std::out_of_range("Outbox: machine id " + std::to_string(to) +
                          " out of range (have " +
                          std::to_string(num_machines_) + ")");
}

void Engine::check_machine(std::size_t machine) const {
  if (machine >= config_.num_machines) {
    throw std::out_of_range("Engine: machine id " + std::to_string(machine) +
                            " out of range (have " +
                            std::to_string(config_.num_machines) + ")");
  }
}

void Engine::throw_bad_machine(std::size_t machine) const {
  check_machine(machine);
  throw std::out_of_range("Engine: unreachable");
}

void Engine::set_path(bool dense) {
  if (dense == dense_active_) return;
  const std::size_t m = config_.num_machines;
  if (dense && boxes_.empty()) boxes_.assign(m * m, {});
  if (!dense && out_tos_.empty()) {
    out_tos_.assign(m, {});
    out_counts_.assign(m, {});
    out_words_.assign(m, {});
    out_open_to_.assign(m, RunTag::kNoDest);
  }
  dense_active_ = dense;
}

void Engine::adapt_path(std::size_t words, std::size_t runs) {
  if (config_.dense_machine_limit != Config::kAdaptive) return;
  if (config_.integrity) return;  // checksums pin the flat wire stream
  const std::size_t m = config_.num_machines;
  if (m > kAdaptiveDenseCap) return;  // matrix storage/scan out of budget
  if (words == 0) return;             // no unicast traffic: no signal
  // Bulky per-pair traffic amortizes the O(m^2) matrix scan and enjoys the
  // pre-sorted bulk-copy delivery; scattered short runs pay the flat
  // path's per-run cost anyway but skip the scan. Thresholds validated
  // with tools/bench_exchange_crossover (--adaptive column).
  const bool want_dense = words >= 8 * runs && 2 * words >= m * m;
  // Two-flush hysteresis: a single odd-shaped round (a driver alternating
  // bulk collectives with scattered per-edge rounds) must not thrash the
  // representation — the flip waits for two consecutive flushes that agree
  // against the active path.
  if (want_dense == dense_active_) {
    adapt_streak_ = 0;
    return;
  }
  if (++adapt_streak_ >= 2) {
    adapt_streak_ = 0;
    set_path(want_dense);
  }
}

void Engine::push(std::size_t from, std::size_t to,
                  std::span<const Word> words) {
  outbox(from).append_run(to, words);
}

PayloadId Engine::stage_payload(std::span<const Word> words) {
  staged_payloads_.emplace_back(words.begin(), words.end());
  // Store half of the integrity layer: the publisher folds the blob's
  // digest at stage time; readers re-verify it before any view aliases
  // the stored words (verify_store).
  if (config_.integrity) staged_digests_.push_back(Fnv::digest(words));
  return static_cast<PayloadId>(staged_payloads_.size() - 1);
}

void Engine::push_broadcast(std::size_t from,
                            std::span<const std::size_t> dests,
                            PayloadId payload) {
  check_machine(from);
  if (payload >= staged_payloads_.size()) {
    throw std::out_of_range(
        "Engine: unknown payload id (staged payloads die at exchange; "
        "re-stage per round)");
  }
  const bool empty = staged_payloads_[payload].empty();
  for (const std::size_t to : dests) {
    check_machine(to);
    if (empty) continue;  // an empty payload delivers nothing, like push({})
    const std::uint64_t seq =
        dense_active_ ? boxes_[from * config_.num_machines + to].size()
                      : out_words_[from].size();
    shared_sends_.push_back(SharedSend{static_cast<std::uint32_t>(from),
                                       static_cast<std::uint32_t>(to), payload,
                                       seq});
  }
}

PayloadId Engine::push_broadcast(std::size_t from,
                                 std::span<const std::size_t> dests,
                                 std::span<const Word> payload) {
  const PayloadId pid = stage_payload(payload);
  push_broadcast(from, dests, pid);
  return pid;
}

void Engine::push_gather(std::size_t from, std::size_t to,
                         std::span<const Word> words) {
  check_machine(from);
  check_machine(to);
  if (words.empty()) return;
  const PayloadId pid = stage_payload(words);
  const std::uint64_t seq =
      dense_active_ ? boxes_[from * config_.num_machines + to].size()
                    : out_words_[from].size();
  shared_sends_.push_back(SharedSend{static_cast<std::uint32_t>(from),
                                     static_cast<std::uint32_t>(to), pid, seq});
}

void Engine::check_budget(std::size_t machine, std::size_t words,
                          const char* dir) {
  if (words > config_.words_per_machine) {
    ++metrics_.violations;
    if (config_.strict) {
      throw CapacityError("machine " + std::to_string(machine) + " " + dir +
                          " " + std::to_string(words) + " words in round " +
                          std::to_string(metrics_.rounds) + ": requested " +
                          std::to_string(words) + ", available " +
                          std::to_string(config_.words_per_machine));
    }
  }
}

void Engine::drop_last_round() {
  if (!shared_round_) return;
  for (const std::size_t t : seg_touched_) {
    in_segs_[t].clear();
    inbox_cache_valid_[t] = 0;
  }
  seg_touched_.clear();
  delivered_payloads_.clear();
  shared_round_ = false;
}

void Engine::exchange() {
  if (!delayed_.empty()) inject_delayed();
  if (config_.audit) begin_audit();
  if (fault_plan_ != nullptr) {
    // Round index = rounds completed so far; events scheduled for it fire
    // against this exchange's staged traffic.
    const auto events = fault_plan_->events_at(metrics_.rounds);
    if (!events.empty()) {
      exchange_faulty(events);
      return;
    }
  }
  exchange_impl();
}

void Engine::exchange_impl() {
  const std::size_t m = config_.num_machines;
  // The one integrity branch per flush: every sender's staged stream is
  // verified against its append-time checksum — and every staged payload
  // blob against its stage-time digest — before anything delivers.
  if (config_.integrity) {
    if (config_.scrub_interval != 0 &&
        (metrics_.rounds + 1) % config_.scrub_interval == 0) {
      scrub_pass();
    }
    verify_streams();
    verify_store();
  }
  drop_last_round();
  // Orphaned payloads — staged blobs whose every send descriptor was
  // destroyed by unrecovered fault corruption — still publish through the
  // shared path: the blob store is durable (receivers address blobs by
  // PayloadId), only the inbox deliveries are lost. Unreachable without a
  // fault plan: drivers never stage without pushing.
  if (shared_sends_.empty() &&
      (fault_plan_ == nullptr || staged_payloads_.empty())) {
    // Payloads staged but never pushed die here, per the lifetime contract.
    staged_payloads_.clear();
    staged_digests_.clear();
    if (dense_active_) {
      if (backend_->parallel()) {
        exchange_parallel_dense(m);
      } else {
        exchange_plain_dense(m);
      }
    } else {
      if (backend_->parallel()) {
        exchange_parallel_flat(m);
      } else {
        exchange_plain_flat(m);
      }
    }
  } else {
    // Shared-payload rounds splice store-aliasing segments between unicast
    // stretches per (sender, receiver) pair; the splice machinery stays
    // sequential on every backend (broadcast/gather rounds move O(n)
    // words through O(m) descriptors — never the hot surface).
    exchange_shared(m);
  }
  if (config_.audit) finish_audit();
  ++metrics_.rounds;
}

void Engine::exchange_plain_dense(std::size_t m) {
  // Dense path: appends pre-sorted the words by (sender, receiver);
  // delivery is pure bulk copies.
  std::size_t flush_words = 0;
  std::size_t flush_runs = 0;
  for (std::size_t from = 0; from < m; ++from) {
    std::size_t sent = 0;
    for (std::size_t to = 0; to < m; ++to) {
      const std::size_t box_words = boxes_[from * m + to].size();
      sent += box_words;
      flush_runs += box_words != 0;
    }
    flush_words += sent;
    metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
    metrics_.total_words += sent;
    check_budget(from, sent, "sent");
  }
  for (std::size_t to = 0; to < m; ++to) {
    auto& in = inbox_[to];
    in.clear();
    std::size_t received = 0;
    for (std::size_t from = 0; from < m; ++from) {
      received += boxes_[from * m + to].size();
    }
    in.reserve(received);
    for (std::size_t from = 0; from < m; ++from) {
      auto& box = boxes_[from * m + to];
      in.insert(in.end(), box.begin(), box.end());
      box.clear();
    }
    recv_count_[to] = received;  // received_words() reads this (fault path)
    metrics_.max_received_words = std::max(metrics_.max_received_words,
                                           received);
    check_budget(to, received, "received");
    // Whatever a machine received is resident until it processes it.
    metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                           received);
  }
  adapt_path(flush_words, flush_runs);
}

void Engine::deliver_flat_sender(std::size_t from, std::size_t m,
                                 bool emit_segs) {
  const auto& tos = out_tos_[from];
  const std::uint32_t* counts = out_counts_[from].data();
  const Word* words = out_words_[from].data();
  const std::size_t nw = out_words_[from].size();
  if (nw >= 2 * m && 2 * tos.size() >= nw) {
    // Scattered big sender (runs are mostly single words): a word-level
    // counting sort through the scatter buffer, so each receiver gets one
    // bulk append instead of one per run. Worth the O(machines)
    // bookkeeping once the sender moved at least that many words.
    bucket_count_.assign(m, 0);
    for_each_run(tos, counts, [&](std::size_t to, std::size_t count) {
      bucket_count_[to] += count;
    });
    bucket_cursor_.resize(m);
    std::size_t acc = 0;
    for (std::size_t to = 0; to < m; ++to) {
      bucket_cursor_[to] = acc;
      acc += bucket_count_[to];
    }
    scatter_.resize(nw);
    std::size_t pos = 0;
    for_each_run(tos, counts, [&](std::size_t to, std::size_t count) {
      if (count == 1) {
        scatter_[bucket_cursor_[to]++] = words[pos++];
      } else {
        copy_run(scatter_.data() + bucket_cursor_[to], words + pos, count);
        bucket_cursor_[to] += count;
        pos += count;
      }
    });
    pos = 0;
    for (std::size_t to = 0; to < m; ++to) {
      const std::size_t count = bucket_count_[to];
      if (count > 0) {
        const std::size_t base = inbox_[to].size();
        append_run_to(inbox_[to], scatter_.data() + pos, count);
        if (emit_segs && shared_recv_[to] > 0) {
          in_segs_[to].emplace_back(inbox_[to].data() + base, count);
        }
      }
      pos += count;
    }
  } else {
    // Run-length delivery: one bulk copy per descriptor. This is the whole
    // point of the streamed staging — bulky record streams deliver in
    // O(runs), never re-scanning per word.
    std::size_t pos = 0;
    for_each_run(tos, counts, [&](std::size_t to, std::size_t count) {
      const std::size_t base = inbox_[to].size();
      append_run_to(inbox_[to], words + pos, count);
      if (emit_segs && shared_recv_[to] > 0) {
        in_segs_[to].emplace_back(inbox_[to].data() + base, count);
      }
      pos += count;
    });
  }
  clear_sender_staging(from);
}

void Engine::clear_sender_staging(std::size_t from) {
  out_tos_[from].clear();
  out_counts_[from].clear();
  out_words_[from].clear();
  out_open_to_[from] = RunTag::kNoDest;
  if (config_.integrity) out_csums_[from] = Fnv::kOffset;
}

void Engine::exchange_plain_flat(std::size_t m) {
  // Flat path. Sending side first.
  std::size_t flush_words = 0;
  std::size_t flush_runs = 0;
  for (std::size_t from = 0; from < m; ++from) {
    const std::size_t sent = out_words_[from].size();
    flush_words += sent;
    metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
    metrics_.total_words += sent;
    check_budget(from, sent, "sent");
  }
  // Counting pass over the run descriptors — O(runs + machines), not
  // O(words) — then one stable delivery sweep in sender order (sender ids
  // ascending, each sender's words in push order — the inbox contract).
  std::fill(recv_count_.begin(), recv_count_.end(), 0);
  for (std::size_t from = 0; from < m; ++from) {
    for_each_run(out_tos_[from], out_counts_[from].data(),
                 [&](std::size_t to, std::size_t count) {
                   recv_count_[to] += count;
                 });
    flush_runs += out_tos_[from].size();
  }
  for (std::size_t to = 0; to < m; ++to) {
    inbox_[to].clear();
    inbox_[to].reserve(recv_count_[to]);
  }
  for (std::size_t from = 0; from < m; ++from) {
    deliver_flat_sender(from, m, /*emit_segs=*/false);
  }
  // Receiving side.
  for (std::size_t to = 0; to < m; ++to) {
    const std::size_t received = recv_count_[to];
    metrics_.max_received_words = std::max(metrics_.max_received_words,
                                           received);
    check_budget(to, received, "received");
    // Whatever a machine received is resident until it processes it.
    metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                           received);
  }
  adapt_path(flush_words, flush_runs);
}

void Engine::exchange_parallel_flat(std::size_t m) {
  // Slot-sharded flat flush (backend().parallel() only). Four phases:
  //   A (parallel)   per-slot receiver histograms over each slot's
  //                  contiguous ascending sender range, plus per-slot run
  //                  totals;
  //   B (sequential) combine the histograms in ascending slot order into
  //                  recv_count_ and per-(slot, receiver) write bases —
  //                  the positional image of the sequential
  //                  sender-ascending delivery — and size the inboxes;
  //   C (parallel)   each slot bulk-copies its senders' runs to its
  //                  precomputed positions (disjoint across slots by
  //                  construction) and clears its senders' staging;
  //   D (sequential) receiving-side budget checks, metrics, and the
  //                  adaptive-path vote, ascending as always.
  // The delivered inboxes are position-identical to exchange_plain_flat
  // for any thread count: slots are ascending sender ranges, each slot
  // writes its runs in sender-then-push order, and the bases concatenate
  // the slots in order.
  std::size_t flush_words = 0;
  for (std::size_t from = 0; from < m; ++from) {
    const std::size_t sent = out_words_[from].size();
    flush_words += sent;
    metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
    metrics_.total_words += sent;
    check_budget(from, sent, "sent");
  }
  const std::size_t slots = backend_->threads();
  slot_count_.assign(slots * m, 0);
  slot_runs_.assign(slots, 0);
  backend_->run_chunks(
      0, m, [&](std::size_t slot, std::size_t lo, std::size_t hi) {
        std::size_t* count = slot_count_.data() + slot * m;
        std::size_t runs = 0;
        for (std::size_t from = lo; from < hi; ++from) {
          for_each_run(out_tos_[from], out_counts_[from].data(),
                       [&](std::size_t to, std::size_t n) {
                         count[to] += n;
                       });
          runs += out_tos_[from].size();
        }
        slot_runs_[slot] = runs;
      });
  std::size_t flush_runs = 0;
  for (std::size_t s = 0; s < slots; ++s) flush_runs += slot_runs_[s];
  slot_cursor_.resize(slots * m);
  for (std::size_t to = 0; to < m; ++to) {
    std::size_t acc = 0;
    for (std::size_t s = 0; s < slots; ++s) {
      slot_cursor_[s * m + to] = acc;
      acc += slot_count_[s * m + to];
    }
    recv_count_[to] = acc;
    inbox_[to].clear();
    inbox_[to].resize(acc);
  }
  backend_->run_chunks(
      0, m, [&](std::size_t slot, std::size_t lo, std::size_t hi) {
        std::size_t* cursor = slot_cursor_.data() + slot * m;
        for (std::size_t from = lo; from < hi; ++from) {
          const Word* words = out_words_[from].data();
          std::size_t pos = 0;
          for_each_run(out_tos_[from], out_counts_[from].data(),
                       [&](std::size_t to, std::size_t count) {
                         copy_run(inbox_[to].data() + cursor[to], words + pos,
                                  count);
                         cursor[to] += count;
                         pos += count;
                       });
          clear_sender_staging(from);
        }
      });
  for (std::size_t to = 0; to < m; ++to) {
    const std::size_t received = recv_count_[to];
    metrics_.max_received_words = std::max(metrics_.max_received_words,
                                           received);
    check_budget(to, received, "received");
    metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                           received);
  }
  adapt_path(flush_words, flush_runs);
}

void Engine::exchange_parallel_dense(std::size_t m) {
  // Dense path, receiver-parallel: each receiver owns its column of the
  // box matrix (reads it, appends it, clears it), so receivers shard with
  // no write sharing at all. Sender metrics stay sequential (O(m^2) box
  // scans are the dense path's cost on every backend); the receiving-side
  // budget checks move after the parallel region, still ascending, so the
  // non-strict violation tally and all metrics match the sequential path.
  std::size_t flush_words = 0;
  std::size_t flush_runs = 0;
  for (std::size_t from = 0; from < m; ++from) {
    std::size_t sent = 0;
    for (std::size_t to = 0; to < m; ++to) {
      const std::size_t box_words = boxes_[from * m + to].size();
      sent += box_words;
      flush_runs += box_words != 0;
    }
    flush_words += sent;
    metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
    metrics_.total_words += sent;
    check_budget(from, sent, "sent");
  }
  backend_->parallel_for_machines(m, [&](std::size_t to) {
    auto& in = inbox_[to];
    in.clear();
    std::size_t received = 0;
    for (std::size_t from = 0; from < m; ++from) {
      received += boxes_[from * m + to].size();
    }
    in.reserve(received);
    for (std::size_t from = 0; from < m; ++from) {
      auto& box = boxes_[from * m + to];
      in.insert(in.end(), box.begin(), box.end());
      box.clear();
    }
    recv_count_[to] = received;
  });
  for (std::size_t to = 0; to < m; ++to) {
    const std::size_t received = recv_count_[to];
    metrics_.max_received_words = std::max(metrics_.max_received_words,
                                           received);
    check_budget(to, received, "received");
    metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                           received);
  }
  adapt_path(flush_words, flush_runs);
}

std::vector<std::span<const Word>>& Engine::touch_segs(std::size_t to) {
  if (in_segs_[to].empty()) seg_touched_.push_back(to);
  return in_segs_[to];
}

void Engine::deliver_pair_with_shared(std::size_t to,
                                      std::span<const Word> box,
                                      std::span<const SharedSend> sends) {
  // Interleave this pair's unicast words with its shared payloads at the
  // recorded splice offsets; payload segments alias the stored copy.
  auto& segs = in_segs_[to];
  auto& in = inbox_[to];
  const std::size_t base = in.size();
  std::size_t cursor = 0;
  for (const SharedSend& s : sends) {
    const std::size_t split =
        std::min<std::size_t>(static_cast<std::size_t>(s.seq), box.size());
    if (split > cursor) {
      in.insert(in.end(), box.begin() + static_cast<std::ptrdiff_t>(cursor),
                box.begin() + static_cast<std::ptrdiff_t>(split));
      segs.emplace_back(in.data() + base + cursor, split - cursor);
      cursor = split;
    }
    const auto& payload = delivered_payloads_[s.payload];
    segs.emplace_back(payload.data(), payload.size());
  }
  if (box.size() > cursor) {
    in.insert(in.end(), box.begin() + static_cast<std::ptrdiff_t>(cursor),
              box.end());
    segs.emplace_back(in.data() + base + cursor, box.size() - cursor);
  }
}

void Engine::exchange_shared(std::size_t m) {
  shared_round_ = true;
  delivered_payloads_ = std::move(staged_payloads_);
  staged_payloads_.clear();
  // The blobs were verified against these digests just above
  // (verify_store); delivered blobs cannot rot afterwards — faults fire
  // only at round boundaries — so the digests die with the staging.
  staged_digests_.clear();
  // Take the queue by value first: a strict-mode CapacityError below must
  // not leave stale sends behind — their payload ids would dangle into a
  // later round's payload store.
  std::vector<SharedSend> sends = std::move(shared_sends_);
  shared_sends_.clear();
  // Sort sends by (sender, receiver); stable keeps each pair's sends in
  // chronological (push) order, and seq is non-decreasing within a pair.
  std::stable_sort(sends.begin(), sends.end(),
                   [](const SharedSend& a, const SharedSend& b) {
                     return a.from < b.from ||
                            (a.from == b.from && a.to < b.to);
                   });
  shared_sent_.assign(m, 0);
  shared_recv_.assign(m, 0);
  for (const SharedSend& s : sends) {
    const std::size_t len = delivered_payloads_[s.payload].size();
    shared_sent_[s.from] += len;
    shared_recv_[s.to] += len;
  }

  const bool dense = dense_active_;

  // Sending side: unicast + shared, charged at full per-destination size.
  for (std::size_t from = 0; from < m; ++from) {
    std::size_t sent = shared_sent_[from];
    if (dense) {
      for (std::size_t to = 0; to < m; ++to) {
        sent += boxes_[from * m + to].size();
      }
    } else {
      sent += out_words_[from].size();
    }
    metrics_.max_sent_words = std::max(metrics_.max_sent_words, sent);
    metrics_.total_words += sent;
    check_budget(from, sent, "sent");
  }

  // Unicast receive counts (for exact inbox reservation — segment spans
  // alias the inbox buffers, so they must never reallocate mid-delivery).
  // The same pass measures the flush's unicast shape for adapt_path; on
  // the flat path it walks run descriptors, not words.
  std::size_t flush_words = 0;
  std::size_t flush_runs = 0;
  std::fill(recv_count_.begin(), recv_count_.end(), 0);
  if (dense) {
    for (std::size_t from = 0; from < m; ++from) {
      for (std::size_t to = 0; to < m; ++to) {
        const std::size_t box_words = boxes_[from * m + to].size();
        recv_count_[to] += box_words;
        flush_words += box_words;
        flush_runs += box_words != 0;
      }
    }
  } else {
    for (std::size_t from = 0; from < m; ++from) {
      flush_words += out_words_[from].size();
      for_each_run(out_tos_[from], out_counts_[from].data(),
                   [&](std::size_t to, std::size_t count) {
                     recv_count_[to] += count;
                   });
      flush_runs += out_tos_[from].size();
    }
  }

  // Receiving side metrics; register segment lists for machines that get
  // shared payloads (all other machines keep the single-span fast path).
  for (std::size_t to = 0; to < m; ++to) {
    inbox_[to].clear();
    inbox_[to].reserve(recv_count_[to]);
    const std::size_t received = recv_count_[to] + shared_recv_[to];
    metrics_.max_received_words = std::max(metrics_.max_received_words,
                                           received);
    check_budget(to, received, "received");
    metrics_.peak_storage_words = std::max(metrics_.peak_storage_words,
                                           received);
    recv_total_[to] = received;
    if (shared_recv_[to] > 0) touch_segs(to);
  }

  // Delivery, sender-major so every receiver's segments arrive
  // sender-ascending.
  const std::size_t ns = sends.size();
  std::size_t send_idx = 0;
  if (dense) {
    for (std::size_t from = 0; from < m; ++from) {
      for (std::size_t to = 0; to < m; ++to) {
        auto& box = boxes_[from * m + to];
        const std::size_t first = send_idx;
        while (send_idx < ns && sends[send_idx].from == from &&
               sends[send_idx].to == to) {
          ++send_idx;
        }
        if (first == send_idx) {
          if (box.empty()) continue;
          const std::size_t base = inbox_[to].size();
          inbox_[to].insert(inbox_[to].end(), box.begin(), box.end());
          if (shared_recv_[to] > 0) {
            in_segs_[to].emplace_back(inbox_[to].data() + base, box.size());
          }
        } else {
          // Dense seq is already the within-pair splice offset.
          deliver_pair_with_shared(
              to, box,
              std::span<const SharedSend>{sends.data() + first,
                                          send_idx - first});
        }
        box.clear();
      }
    }
  } else {
    for (std::size_t from = 0; from < m; ++from) {
      const auto& tos = out_tos_[from];
      const std::uint32_t* counts = out_counts_[from].data();
      const Word* words = out_words_[from].data();
      const std::size_t nw = out_words_[from].size();
      const std::size_t first = send_idx;
      while (send_idx < ns && sends[send_idx].from == from) {
        ++send_idx;
      }
      if (first == send_idx) {
        // No shared traffic from this sender: the plain run-length
        // delivery, plus segment emission for receivers that need segment
        // lists.
        deliver_flat_sender(from, m, /*emit_segs=*/true);
        continue;
      }
      if (nw == 0) {
        // Broadcast-only sender (the relay-tree shape): no unicast words,
        // every splice is trivially 0 — skip the counting sort and emit
        // the payload segments directly, O(sends) instead of O(machines).
        sender_sends_.assign(
            sends.begin() + static_cast<std::ptrdiff_t>(first),
            sends.begin() + static_cast<std::ptrdiff_t>(send_idx));
        std::stable_sort(sender_sends_.begin(), sender_sends_.end(),
                         [](const SharedSend& a, const SharedSend& b) {
                           return a.to < b.to;
                         });
        for (const SharedSend& s : sender_sends_) {
          const auto& payload = delivered_payloads_[s.payload];
          in_segs_[s.to].emplace_back(payload.data(), payload.size());
        }
      } else {
        // Shared sender: counting-sort the unicast runs so each pair is
        // one contiguous bucket, compute the within-pair splice offset of
        // every shared send, then deliver pair by pair.
        sender_sends_.assign(
            sends.begin() + static_cast<std::ptrdiff_t>(first),
            sends.begin() + static_cast<std::ptrdiff_t>(send_idx));
        std::stable_sort(sender_sends_.begin(), sender_sends_.end(),
                         [](const SharedSend& a, const SharedSend& b) {
                           return a.seq < b.seq;
                         });
        bucket_count_.assign(m, 0);
        std::size_t sp = 0;
        const std::size_t nsend = sender_sends_.size();
        // Flat seq was the sender-stream position; rewrite it to "how many
        // unicast words to this dest came before", the splice. One pass
        // over the runs: a send splicing at stream position s (with
        // word_pos <= s < word_pos + count) has bucket_count_[its dest]
        // words of earlier runs before it, plus the s - word_pos words of
        // the current run when that run shares its destination.
        std::size_t word_pos = 0;
        for_each_run(tos, counts, [&](std::size_t rto, std::size_t count) {
          while (sp < nsend &&
                 sender_sends_[sp].seq <
                     static_cast<std::uint64_t>(word_pos) + count) {
            SharedSend& s = sender_sends_[sp];
            const std::size_t mid =
                s.to == rto ? static_cast<std::size_t>(s.seq) - word_pos : 0;
            s.seq = bucket_count_[s.to] + mid;
            ++sp;
          }
          bucket_count_[rto] += count;
          word_pos += count;
        });
        while (sp < nsend) {
          sender_sends_[sp].seq = bucket_count_[sender_sends_[sp].to];
          ++sp;
        }
        bucket_cursor_.resize(m);
        std::size_t acc = 0;
        for (std::size_t to = 0; to < m; ++to) {
          bucket_cursor_[to] = acc;
          acc += bucket_count_[to];
        }
        scatter_.resize(nw);
        std::size_t pos = 0;
        for_each_run(tos, counts, [&](std::size_t rto, std::size_t count) {
          if (count == 1) {
            scatter_[bucket_cursor_[rto]++] = words[pos++];
          } else {
            copy_run(scatter_.data() + bucket_cursor_[rto], words + pos,
                     count);
            bucket_cursor_[rto] += count;
            pos += count;
          }
        });
        // Stable by receiver: within a pair, splice offsets stay in
        // chronological (non-decreasing) order.
        std::stable_sort(sender_sends_.begin(), sender_sends_.end(),
                         [](const SharedSend& a, const SharedSend& b) {
                           return a.to < b.to;
                         });
        pos = 0;
        std::size_t sidx = 0;
        for (std::size_t to = 0; to < m; ++to) {
          const std::size_t count = bucket_count_[to];
          const std::size_t sfirst = sidx;
          while (sidx < nsend && sender_sends_[sidx].to == to) ++sidx;
          if (sfirst == sidx) {
            if (count > 0) {
              const std::size_t base = inbox_[to].size();
              inbox_[to].insert(inbox_[to].end(), scatter_.data() + pos,
                                scatter_.data() + pos + count);
              if (shared_recv_[to] > 0) {
                in_segs_[to].emplace_back(inbox_[to].data() + base, count);
              }
            }
          } else {
            deliver_pair_with_shared(
                to, std::span<const Word>{scatter_.data() + pos, count},
                std::span<const SharedSend>{sender_sends_.data() + sfirst,
                                            sidx - sfirst});
          }
          pos += count;
        }
      }
      clear_sender_staging(from);
    }
  }
  adapt_path(flush_words, flush_runs);
}

InboxView Engine::inbox_view(std::size_t machine) const {
  check_machine(machine);
  InboxView v;
  if (shared_round_ && !in_segs_[machine].empty()) {
    v.segs_ = &in_segs_[machine];
    v.words_ = recv_total_[machine];
  } else {
    const auto& in = inbox_[machine];
    v.single_ = {in.data(), in.size()};
    v.words_ = in.size();
  }
  return v;
}

const std::vector<Word>& Engine::inbox(std::size_t machine) const {
  check_machine(machine);
  if (!shared_round_ || in_segs_[machine].empty()) return inbox_[machine];
  if (!inbox_cache_valid_[machine]) {
    auto& cache = inbox_cache_[machine];
    cache.clear();
    cache.reserve(recv_total_[machine]);
    for (const auto seg : in_segs_[machine]) {
      cache.insert(cache.end(), seg.begin(), seg.end());
    }
    inbox_cache_valid_[machine] = 1;
  }
  return inbox_cache_[machine];
}

void Engine::note_storage(std::size_t machine, std::size_t words) {
  metrics_.peak_storage_words = std::max(metrics_.peak_storage_words, words);
  check_budget(machine, words, "stores");
}

void Engine::clear_inboxes() {
  drop_last_round();
  for (auto& in : inbox_) in.clear();
}

// ---------------------------------------------------------------------------
// Fault injection & round-level checkpoint/recovery (see set_fault_plan).

std::size_t Engine::Snapshot::words() const noexcept {
  std::size_t w = 0;
  for (const auto& b : boxes) w += b.size();
  for (const auto& v : out_words) w += v.size();
  for (const auto& v : out_tos) w += (v.size() + 1) / 2;
  for (const auto& v : out_counts) w += (v.size() + 1) / 2;
  w += (out_open_to.size() + 1) / 2;
  w += out_csums.size();
  for (const auto& p : staged_payloads) w += p.size();
  w += staged_digests.size();
  w += shared_sends.size() * (sizeof(SharedSend) / sizeof(Word));
  w += sizeof(Metrics) / sizeof(Word);
  return w;
}

Engine::Snapshot Engine::snapshot() const {
  Snapshot s;
  s.boxes = boxes_;
  s.out_tos = out_tos_;
  s.out_counts = out_counts_;
  s.out_words = out_words_;
  s.out_open_to = out_open_to_;
  s.out_csums = out_csums_;
  s.staged_payloads = staged_payloads_;
  s.staged_digests = staged_digests_;
  s.shared_sends = shared_sends_;
  s.metrics = metrics_;
  s.dense_active = dense_active_;
  s.adapt_streak = adapt_streak_;
  return s;
}

void Engine::restore(const Snapshot& snap) {
  boxes_ = snap.boxes;
  out_tos_ = snap.out_tos;
  out_counts_ = snap.out_counts;
  out_words_ = snap.out_words;
  out_open_to_ = snap.out_open_to;
  out_csums_ = snap.out_csums;
  staged_payloads_ = snap.staged_payloads;
  staged_digests_ = snap.staged_digests;
  shared_sends_ = snap.shared_sends;
  metrics_ = snap.metrics;
  dense_active_ = snap.dense_active;
  adapt_streak_ = snap.adapt_streak;
}

void Engine::set_fault_plan(const fault::FaultPlan* plan,
                            fault::CheckpointRegistry* registry,
                            bool recover) {
  // The registry is kept even with a null/empty plan: durability persists
  // provider state through it without any fault injection attached.
  fault_plan_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
  registry_ = registry;
  fault_recover_ = recover;
}

// ---------------------------------------------------------------------------
// On-disk durability (Config::checkpoint_dir; see fault/durable.h).

void Engine::engine_section_into(fault::DurableSection& s) const {
  // Metrics is raw-copyable by construction (all std::size_t counters);
  // the guard keeps a future padded/non-trivial field from silently
  // breaking the on-disk format.
  static_assert(std::has_unique_object_representations_v<Metrics>);
  static_assert(sizeof(Metrics) % sizeof(Word) == 0);
  s.name = "__engine";
  std::vector<Word>& out = s.payload;
  const std::size_t mw = sizeof(Metrics) / sizeof(Word);
  out.clear();
  out.resize(mw);
  std::memcpy(out.data(), &metrics_, sizeof(Metrics));
  out.push_back(dense_active_ ? 1 : 0);
  out.push_back(adapt_streak_);
  out.push_back(crashes_recovered_);
  // Delayed flushes straddle the round boundary (a kDelayFlush holds a
  // flush back into the *next* round), so they are part of the safe-point
  // state.  Staging and the payload store are not: safe points are
  // quiescent, and a fresh process's empty staging is exactly right.
  out.push_back(delayed_.size());
  for (const DelayedFlush& d : delayed_) {
    out.push_back(d.from);
    out.push_back(d.tos.size());
    out.push_back(d.counts.size());
    out.push_back(d.words.size());
    for (const std::uint32_t t : d.tos) out.push_back(t);
    for (const std::uint32_t c : d.counts) out.push_back(c);
    out.insert(out.end(), d.words.begin(), d.words.end());
  }
}

void Engine::install_engine_section(std::span<const Word> payload) {
  const std::size_t mw = sizeof(Metrics) / sizeof(Word);
  std::size_t at = 0;
  const auto take = [&]() -> Word {
    if (at >= payload.size()) {
      throw fault::CheckpointError(
          "durable checkpoint restore: truncated __engine section");
    }
    return payload[at++];
  };
  if (payload.size() < mw) {
    throw fault::CheckpointError(
        "durable checkpoint restore: truncated __engine section");
  }
  std::memcpy(static_cast<void*>(&metrics_), payload.data(), sizeof(Metrics));
  at = mw;
  set_path(take() != 0);
  adapt_streak_ = static_cast<std::uint8_t>(take());
  crashes_recovered_ = static_cast<std::size_t>(take());
  delayed_.clear();
  const Word ndelayed = take();
  for (Word i = 0; i < ndelayed; ++i) {
    DelayedFlush d;
    d.from = static_cast<std::size_t>(take());
    const Word ntos = take();
    const Word ncounts = take();
    const Word nwords = take();
    d.tos.reserve(ntos);
    for (Word k = 0; k < ntos; ++k) {
      d.tos.push_back(static_cast<std::uint32_t>(take()));
    }
    d.counts.reserve(ncounts);
    for (Word k = 0; k < ncounts; ++k) {
      d.counts.push_back(static_cast<std::uint32_t>(take()));
    }
    d.words.reserve(nwords);
    for (Word k = 0; k < nwords; ++k) d.words.push_back(take());
    delayed_.push_back(std::move(d));
  }
}

void Engine::persist() {
  // Scratch layout: provider sections, then one trailing "__engine"
  // section. The buffers survive across persists, so the steady state
  // reserializes in place instead of reallocating the provider state.
  const std::size_t nprov =
      registry_ != nullptr ? registry_->num_providers() : 0;
  durable_scratch_.resize(nprov + 1);
  if (registry_ != nullptr) registry_->save_sections_into(durable_scratch_);
  engine_section_into(durable_scratch_[nprov]);
  const std::size_t words = dring_->save(
      metrics_.rounds, config_.checkpoint_scope, durable_scratch_);
  ++metrics_.disk_checkpoints_written;
  metrics_.disk_checkpoint_words += words;
}

void Engine::checkpoint_boundary() {
  // Park the pool before anything durable (or fatal) can happen at this
  // safe point: no worker may touch engine or provider state while a
  // generation is persisted or a stop unwinds. No-op on the sequential
  // backend, and cheap on the parallel one (run_chunks is blocking, so
  // workers are already idle — this waits until they are *parked*).
  backend_->quiesce();
  if (!dring_) return;
  ++safe_points_;
  const bool stop =
      (config_.stop_flag != nullptr &&
       config_.stop_flag->load(std::memory_order_relaxed)) ||
      (config_.stop_after_safe_points != 0 &&
       safe_points_ >= config_.stop_after_safe_points);
  if (stop) {
    // Graceful stop: the in-flight round already finished (we are at a
    // driver loop boundary) — flush one final generation and unwind.
    persist();
    throw fault::ResumableInterrupt(
        "stopped at a safe point after flushing a final durable generation "
        "(relaunch with --resume)");
  }
  if (safe_points_ % config_.checkpoint_every == 0) persist();
}

bool Engine::try_resume() {
  if (!dring_ || !config_.resume) return false;
  std::optional<fault::DurableLoad> loaded;
  if (registry_ != nullptr) {
    loaded = registry_->load_from(*dring_, config_.checkpoint_scope);
  } else {
    loaded = dring_->load(config_.checkpoint_scope);
  }
  if (!loaded) return false;  // nothing on disk (or another run's): fresh
  const fault::DurableSection* engine = nullptr;
  for (const fault::DurableSection& s : loaded->checkpoint.sections) {
    if (s.name == "__engine") {
      engine = &s;
      break;
    }
  }
  if (engine == nullptr) {
    throw fault::CheckpointError(
        "durable checkpoint restore: no __engine section");
  }
  install_engine_section(std::span<const Word>(engine->payload));
  ++metrics_.resume_loads;
  metrics_.disk_fallbacks += loaded->fallback ? 1 : 0;
  // Plan events scheduled before the resume point already fired (and were
  // absorbed) before this checkpoint was persisted: the resumed process
  // starts at round metrics_.rounds and never consults them again.
  if (fault_plan_ != nullptr) {
    for (const fault::FaultEvent& ev : fault_plan_->events()) {
      if (ev.round < metrics_.rounds) ++metrics_.faults_skipped_on_resume;
    }
  }
  return true;
}

std::size_t Engine::staged_out_words(std::size_t machine) const {
  const std::size_t m = config_.num_machines;
  std::size_t w = 0;
  if (dense_active_) {
    for (std::size_t to = 0; to < m; ++to) {
      w += boxes_[machine * m + to].size();
    }
  } else if (!out_words_.empty()) {
    w += out_words_[machine].size();
  }
  for (const SharedSend& s : shared_sends_) {
    if (s.from == machine) w += staged_payloads_[s.payload].size();
  }
  return w;
}

std::size_t Engine::received_words(std::size_t machine) const {
  return shared_round_ ? recv_total_[machine] : recv_count_[machine];
}

void Engine::corrupt_machine_staging(std::size_t machine) {
  const std::size_t m = config_.num_machines;
  if (dense_active_) {
    for (std::size_t to = 0; to < m; ++to) {
      boxes_[machine * m + to].clear();
    }
  } else if (!out_tos_.empty()) {
    clear_sender_staging(machine);
  }
  std::erase_if(shared_sends_, [machine](const SharedSend& s) {
    return s.from == machine;
  });
}

std::size_t Engine::duplicate_machine_staging(std::size_t machine) {
  const std::size_t m = config_.num_machines;
  if (dense_active_) {
    std::size_t added = 0;
    for (std::size_t to = 0; to < m; ++to) {
      auto& box = boxes_[machine * m + to];
      const std::vector<Word> copy = box;
      box.insert(box.end(), copy.begin(), copy.end());
      added += copy.size();
    }
    return added;
  }
  if (out_tos_.empty()) return 0;
  const std::vector<std::uint32_t> tos = out_tos_[machine];
  const std::vector<std::uint32_t> counts = out_counts_[machine];
  const std::vector<Word> words = out_words_[machine];
  out_tos_[machine].insert(out_tos_[machine].end(), tos.begin(), tos.end());
  out_counts_[machine].insert(out_counts_[machine].end(), counts.begin(),
                              counts.end());
  out_words_[machine].insert(out_words_[machine].end(), words.begin(),
                             words.end());
  // open_to_ still names the destination of the (duplicated) last run.
  // The checksum accumulator, however, covered only one copy.
  if (config_.integrity) resync_sender_checksum(machine);
  return words.size();
}

std::size_t Engine::delay_machine_staging(std::size_t machine) {
  DelayedFlush d;
  d.from = machine;
  if (dense_active_) {
    const std::size_t m = config_.num_machines;
    for (std::size_t to = 0; to < m; ++to) {
      auto& box = boxes_[machine * m + to];
      std::size_t left = box.size();
      if (left == 0) continue;
      d.words.insert(d.words.end(), box.begin(), box.end());
      while (left > 0) {
        if (left == 1) {
          d.tos.push_back(static_cast<std::uint32_t>(to));
          break;
        }
        const std::size_t take =
            left < RunTag::kMaxCount ? left : RunTag::kMaxCount;
        d.tos.push_back(static_cast<std::uint32_t>(to) | RunTag::kExtFlag);
        d.counts.push_back(static_cast<std::uint32_t>(take));
        left -= take;
      }
      box.clear();
    }
  } else if (!out_tos_.empty()) {
    d.tos = std::move(out_tos_[machine]);
    d.counts = std::move(out_counts_[machine]);
    d.words = std::move(out_words_[machine]);
    clear_sender_staging(machine);
  }
  const std::size_t held = d.words.size();
  if (held != 0) delayed_.push_back(std::move(d));
  return held;
}

void Engine::inject_delayed() {
  // Late flushes are appended after the new round's own staging, so any
  // splice offsets already recorded for this round's shared sends stay
  // valid (the stream prefix is untouched).
  for (DelayedFlush& d : delayed_) {
    if (dense_active_) {
      const std::size_t m = config_.num_machines;
      const Word* words = d.words.data();
      std::size_t pos = 0;
      for_each_run(d.tos, d.counts.data(),
                   [&](std::size_t to, std::size_t count) {
                     auto& box = boxes_[d.from * m + to];
                     box.insert(box.end(), words + pos, words + pos + count);
                     pos += count;
                   });
    } else {
      out_tos_[d.from].insert(out_tos_[d.from].end(), d.tos.begin(),
                              d.tos.end());
      out_counts_[d.from].insert(out_counts_[d.from].end(), d.counts.begin(),
                                 d.counts.end());
      out_words_[d.from].insert(out_words_[d.from].end(), d.words.begin(),
                                d.words.end());
      out_open_to_[d.from] = d.tos.back() & RunTag::kDestMask;
      if (config_.integrity) {
        // The late words appended to the stream tail; continue the fold.
        std::uint64_t h = out_csums_[d.from];
        for (const Word w : d.words) h = Fnv::fold(h, w);
        out_csums_[d.from] = h;
      }
    }
  }
  delayed_.clear();
}

void Engine::clear_delivered_for(std::size_t machine) {
  inbox_[machine].clear();
  if (shared_round_) {
    in_segs_[machine].clear();
    recv_total_[machine] = 0;
  }
  inbox_cache_valid_[machine] = 0;
}

void Engine::exchange_faulty(std::span<const fault::FaultEvent> events) {
  const std::size_t round = metrics_.rounds;
  // Copy-on-fault checkpoint: materialized only because this round carries
  // events. The capture happens before any corruption — it is the state a
  // rollback returns to.
  std::size_t ckpt_words = 0;
  Snapshot ckpt;
  if (fault_recover_) {
    if (registry_ != nullptr) ckpt_words += registry_->capture(round);
    ckpt = snapshot();
    ckpt_words += ckpt.words();
  }
  std::size_t replays = 0;
  std::size_t resent = 0;
  std::size_t applied = 0;
  std::size_t corrupted = 0;
  std::size_t detected = 0;
  std::size_t retransmitted = 0;
  std::size_t store_corrupted = 0;
  std::size_t store_detected = 0;
  std::size_t store_repaired = 0;
  std::size_t fallbacks = 0;
  std::size_t ckpt_rot = 0;
  crashed_scratch_.clear();
  dark_scratch_.clear();
  for (std::size_t ei = 0; ei < events.size(); ++ei) {
    const fault::FaultEvent& ev = events[ei];
    // Plans written for a larger cluster (reprovisioning shrinks nothing,
    // but machine counts are derived) may name machines we don't have.
    if (ev.machine >= config_.num_machines) continue;
    ++applied;
    switch (ev.kind) {
      case fault::FaultKind::kCrash:
        if (fault_recover_) {
          if (crashes_recovered_ >= fault_plan_->crash_budget) {
            throw fault::FaultBudgetError(
                "machine " + std::to_string(ev.machine) +
                " crashed in round " + std::to_string(round) +
                ": crash budget of " +
                std::to_string(fault_plan_->crash_budget) + " exhausted");
          }
          ++crashes_recovered_;
          // The crash destroys the machine's flush and its local state;
          // recovery retransmits from sender-side retention and reinstates
          // the checkpoint. The corrupt-then-restore order makes the
          // snapshot genuinely load-bearing: a broken restore() diverges
          // the coupling tests.
          resent += staged_out_words(ev.machine);
          corrupt_machine_staging(ev.machine);
          restore(ckpt);
          restore_registry(ev.machine, round, replays, fallbacks);
          ++replays;
          crashed_scratch_.push_back(ev.machine);
        } else {
          if (config_.audit) audit_dropped_ += staged_out_words(ev.machine);
          corrupt_machine_staging(ev.machine);
          dark_scratch_.push_back(ev.machine);
        }
        break;
      case fault::FaultKind::kDropFlush:
        if (fault_recover_) {
          resent += staged_out_words(ev.machine);
          corrupt_machine_staging(ev.machine);
          restore(ckpt);
          ++replays;
        } else {
          if (config_.audit) audit_dropped_ += staged_out_words(ev.machine);
          corrupt_machine_staging(ev.machine);
        }
        break;
      case fault::FaultKind::kDuplicateFlush:
        // With recovery, (round, sequence) deduplication discards the
        // second copy before delivery — only the event count records it.
        if (!fault_recover_) {
          audit_duped_ += duplicate_machine_staging(ev.machine);
        }
        break;
      case fault::FaultKind::kDelayFlush:
        if (fault_recover_) {
          ++replays;  // the barrier stalls one round for the late flush
        } else {
          audit_delayed_ += delay_machine_staging(ev.machine);
        }
        break;
      case fault::FaultKind::kCorruptPayload: {
        // Silent in-transit corruption of the staged wire stream.  The
        // sender retains its pristine stream first (real shuffle layers
        // keep the flush until the receiver acks), then mix64-derived bits
        // flip in the live staged words.
        if (corrupt_staged_words(ev.machine, round, ei) == 0) break;
        ++corrupted;
        if (!config_.integrity) break;  // undetected: propagates silently
        if (sender_stream_ok(ev.machine)) break;  // 2^-64 digest collision
        ++detected;
        // The detect->retransmit protocol: attempt ordinal = how many
        // times this machine's flush has been corrupted this round.
        std::size_t attempt = 1;
        for (std::size_t j = 0; j < ei; ++j) {
          attempt += events[j].kind == fault::FaultKind::kCorruptPayload &&
                     events[j].machine == ev.machine;
        }
        if (attempt > fault_plan_->retransmit_budget) {
          // Budget blown: the link is hopeless, escalate to the PR 6
          // checkpoint-recovery path (roll the round back and replay).
          if (!fault_recover_) {
            throw IntegrityError(
                "machine " + std::to_string(ev.machine) +
                " flush corrupted in round " + std::to_string(round) +
                ": retransmit budget of " +
                std::to_string(fault_plan_->retransmit_budget) +
                " exhausted and recovery is off");
          }
          restore(ckpt);
          restore_registry(ev.machine, round, replays, fallbacks);
          ++replays;
          retransmitted += out_words_[ev.machine].size();
        } else {
          retransmitted += retransmit_retained(ev.machine);
        }
        break;
      }
      case fault::FaultKind::kCorruptStore: {
        // Silent rot in the durable payload store.  The publisher retains
        // a pristine copy of the targeted blob first (the store's repair
        // source), then mix64-derived bits flip in the stored words — and
        // every reader's inbox_view / broadcast_view splice would alias
        // the rot.
        if (corrupt_store_blob(ev.machine, round, ei) == 0) break;
        ++store_corrupted;
        if (!config_.integrity) break;  // undetected: every view aliases rot
        if (store_blob_ok(retained_blob_id_)) break;  // 2^-64 collision
        ++store_detected;
        // Same escalation contract as the wire: attempt ordinal = how many
        // times this machine's published blobs have rotted this round.
        std::size_t attempt = 1;
        for (std::size_t j = 0; j < ei; ++j) {
          attempt += events[j].kind == fault::FaultKind::kCorruptStore &&
                     events[j].machine == ev.machine;
        }
        if (attempt > fault_plan_->retransmit_budget) {
          if (!fault_recover_) {
            throw IntegrityError(
                "machine " + std::to_string(ev.machine) +
                " payload store corrupted in round " + std::to_string(round) +
                ": retransmit budget of " +
                std::to_string(fault_plan_->retransmit_budget) +
                " exhausted and recovery is off");
          }
          restore(ckpt);
          restore_registry(ev.machine, round, replays, fallbacks);
          ++replays;
        } else {
          store_repaired += repair_retained_blob();
        }
        break;
      }
      case fault::FaultKind::kCorruptCheckpoint: {
        // Bit rot in a retained checkpoint image.  Nothing observable
        // happens at injection time; the damage surfaces at the next
        // restore, which verifies generations and falls back (see
        // restore_registry).  The first rot event of a round hits the
        // newest generation, subsequent ones walk down the ring — so a
        // single event models newest-image rot (the fallback headline)
        // and stacked events can rot the whole ring.
        if (registry_ == nullptr || !registry_->has_checkpoint()) break;
        registry_->corrupt_generation(
            ckpt_rot % registry_->generations_held(), round, ev.machine, ei);
        ++ckpt_rot;
        break;
      }
    }
  }
  exchange_impl();
  // A recovered crash also re-fetches the deliveries the machine lost.
  for (const std::size_t machine : crashed_scratch_) {
    resent += received_words(machine);
  }
  for (const std::size_t machine : dark_scratch_) {
    clear_delivered_for(machine);
  }
  metrics_.rounds_replayed += replays;
  metrics_.words_resent += resent;
  metrics_.checkpoint_bytes += ckpt_words * sizeof(Word);
  metrics_.faults_injected += applied;
  metrics_.corruptions_injected += corrupted;
  metrics_.corruptions_detected += detected;
  metrics_.words_retransmitted += retransmitted;
  metrics_.store_corruptions_injected += store_corrupted;
  metrics_.store_corruptions_detected += store_detected;
  metrics_.store_words_repaired += store_repaired;
  metrics_.checkpoint_fallbacks += fallbacks;
}

// ---------------------------------------------------------------------------
// Message integrity: per-sender FNV-1a stream checksums (see Config::integrity).

bool Engine::sender_stream_ok(std::size_t from) const {
  return Fnv::digest({out_words_[from].data(), out_words_[from].size()}) ==
         out_csums_[from];
}

void Engine::verify_streams() const {
  const std::size_t m = config_.num_machines;
  if (backend_->parallel()) {
    // Re-digesting every sender's stream is the integrity layer's one
    // O(words) pass — shard it. The throw stays sequential and ascending
    // so the lowest failing sender is named, exactly as below.
    verify_ok_.assign(m, 1);
    backend_->run_chunks(
        0, m, [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t from = lo; from < hi; ++from) {
            verify_ok_[from] = sender_stream_ok(from) ? 1 : 0;
          }
        });
    for (std::size_t from = 0; from < m; ++from) {
      if (!verify_ok_[from]) {
        throw IntegrityError(
            "machine " + std::to_string(from) + " flush (" +
            std::to_string(out_words_[from].size()) +
            " words) fails its stream checksum in round " +
            std::to_string(metrics_.rounds) +
            ": corruption was not repaired before delivery");
      }
    }
    return;
  }
  for (std::size_t from = 0; from < m; ++from) {
    if (!sender_stream_ok(from)) {
      throw IntegrityError(
          "machine " + std::to_string(from) + " flush (" +
          std::to_string(out_words_[from].size()) +
          " words) fails its stream checksum in round " +
          std::to_string(metrics_.rounds) +
          ": corruption was not repaired before delivery");
    }
  }
}

void Engine::resync_sender_checksum(std::size_t from) {
  out_csums_[from] =
      Fnv::digest({out_words_[from].data(), out_words_[from].size()});
}

std::size_t Engine::corrupt_staged_words(std::size_t machine,
                                         std::size_t round,
                                         std::size_t ordinal) {
  if (dense_active_) {
    // Dense path exists only with integrity off (the ctor and adapt_path
    // pin the flat representation when checksums are on): flip bits across
    // the machine's boxes with no retention — nobody can ask for a
    // retransmit it would serve.
    const std::size_t m = config_.num_machines;
    std::size_t total = 0;
    for (std::size_t to = 0; to < m; ++to) {
      total += boxes_[machine * m + to].size();
    }
    if (total == 0) return 0;
    const std::size_t flips =
        1 + mix64(round, machine, ordinal * 8 + 5) % 3;
    std::size_t applied = 0;
    for (std::size_t f = 0; f < flips; ++f) {
      std::size_t idx =
          mix64(round, machine * 8 + f, ordinal * 8 + 6) % total;
      const std::size_t bit =
          mix64(round, machine * 8 + f, ordinal * 8 + 7) % 64;
      for (std::size_t to = 0; to < m; ++to) {
        auto& box = boxes_[machine * m + to];
        if (idx < box.size()) {
          box[idx] ^= Word{1} << bit;
          ++applied;
          break;
        }
        idx -= box.size();
      }
    }
    return applied;
  }
  auto& words = out_words_[machine];
  if (words.empty()) return 0;
  // Retain the pristine stream before touching it — the sender keeps its
  // flush until the receiver acks, so a detected mismatch can be served
  // from retention.
  retained_.tos = out_tos_[machine];
  retained_.counts = out_counts_[machine];
  retained_.words = words;
  retained_.open_to = out_open_to_[machine];
  retained_.csum = config_.integrity ? out_csums_[machine] : Fnv::kOffset;
  retained_from_ = machine;
  // 1..3 distinct (word, bit) flips.  Deduplication matters: an even number
  // of flips of the same bit would cancel, and the contract is that every
  // injected corruption genuinely differs from the pristine stream (so
  // detected == injected whenever integrity is on).
  const std::size_t flips = 1 + mix64(round, machine, ordinal * 8 + 5) % 3;
  std::size_t applied = 0;
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t idx =
        mix64(round, machine * 8 + f, ordinal * 8 + 6) % words.size();
    const std::size_t bit =
        mix64(round, machine * 8 + f, ordinal * 8 + 7) % 64;
    bool fresh = true;
    for (std::size_t g = 0; g < f; ++g) {
      const std::size_t pidx =
          mix64(round, machine * 8 + g, ordinal * 8 + 6) % words.size();
      const std::size_t pbit =
          mix64(round, machine * 8 + g, ordinal * 8 + 7) % 64;
      if (pidx == idx && pbit == bit) {
        fresh = false;
        break;
      }
    }
    if (!fresh) continue;
    words[idx] ^= Word{1} << bit;
    ++applied;
  }
  return applied;
}

std::size_t Engine::retransmit_retained(std::size_t machine) {
  // Serve the ack-retained pristine flush back into staging, replacing the
  // corrupted stream wholesale.
  out_tos_[machine] = retained_.tos;
  out_counts_[machine] = retained_.counts;
  out_words_[machine] = retained_.words;
  out_open_to_[machine] = retained_.open_to;
  if (config_.integrity) out_csums_[machine] = retained_.csum;
  return retained_.words.size();
}

// ---------------------------------------------------------------------------
// Durable-store integrity: per-blob digests, retained-copy repair, scrub,
// and verified checkpoint generations (see DESIGN.md, "Durable-store
// integrity & verified checkpoints").

std::size_t Engine::corrupt_store_blob(std::size_t machine, std::size_t round,
                                       std::size_t ordinal) {
  std::size_t total = 0;
  for (const auto& p : staged_payloads_) total += p.size();
  if (total == 0) return 0;
  // Word-weighted blob choice: pick a word uniformly across the store and
  // rot the blob holding it, so a non-empty store always takes a hit and
  // big blobs rot proportionally more often.
  std::size_t pick = mix64(round, machine, ordinal * 8 + 3) % total;
  PayloadId blob = 0;
  while (pick >= staged_payloads_[blob].size()) {
    pick -= staged_payloads_[blob].size();
    ++blob;
  }
  auto& words = staged_payloads_[blob];
  // The publisher retains the pristine blob before the rot lands — the
  // repair source the detect path serves from.
  retained_blob_ = words;
  retained_blob_id_ = blob;
  // Same 1..3 deduplicated (word, bit) flips as the wire corruption: every
  // injected rot genuinely differs from the pristine blob, so
  // store_corruptions_detected == store_corruptions_injected whenever
  // integrity is on.
  const std::size_t flips = 1 + mix64(round, machine, ordinal * 8 + 5) % 3;
  std::size_t applied = 0;
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t idx =
        mix64(round, machine * 8 + f, ordinal * 8 + 6) % words.size();
    const std::size_t bit =
        mix64(round, machine * 8 + f, ordinal * 8 + 7) % 64;
    bool fresh = true;
    for (std::size_t g = 0; g < f; ++g) {
      const std::size_t pidx =
          mix64(round, machine * 8 + g, ordinal * 8 + 6) % words.size();
      const std::size_t pbit =
          mix64(round, machine * 8 + g, ordinal * 8 + 7) % 64;
      if (pidx == idx && pbit == bit) {
        fresh = false;
        break;
      }
    }
    if (!fresh) continue;
    words[idx] ^= Word{1} << bit;
    ++applied;
  }
  return applied;
}

bool Engine::store_blob_ok(PayloadId id) const {
  const auto& words = staged_payloads_[id];
  return Fnv::digest({words.data(), words.size()}) == staged_digests_[id];
}

std::size_t Engine::repair_retained_blob() {
  staged_payloads_[retained_blob_id_] = retained_blob_;
  return retained_blob_.size();
}

void Engine::verify_store() const {
  const std::size_t blobs = staged_digests_.size();
  if (backend_->parallel() && blobs > 1) {
    verify_ok_.assign(blobs, 1);
    backend_->run_chunks(
        0, blobs, [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t id = lo; id < hi; ++id) {
            verify_ok_[id] =
                store_blob_ok(static_cast<PayloadId>(id)) ? 1 : 0;
          }
        });
    for (std::size_t id = 0; id < blobs; ++id) {
      if (!verify_ok_[id]) {
        throw IntegrityError(
            "payload blob " + std::to_string(id) + " (" +
            std::to_string(staged_payloads_[id].size()) +
            " words) fails its store digest in round " +
            std::to_string(metrics_.rounds) +
            ": corruption was not repaired before delivery");
      }
    }
    return;
  }
  for (std::size_t id = 0; id < staged_digests_.size(); ++id) {
    if (!store_blob_ok(static_cast<PayloadId>(id))) {
      throw IntegrityError(
          "payload blob " + std::to_string(id) + " (" +
          std::to_string(staged_payloads_[id].size()) +
          " words) fails its store digest in round " +
          std::to_string(metrics_.rounds) +
          ": corruption was not repaired before delivery");
    }
  }
}

void Engine::scrub_pass() {
  // Proactive verification sweep over everything the system retains: the
  // payload store, every sender's wire stream, and the checkpoint
  // generation ring.  Store or stream rot that escaped the repair path is
  // fatal here exactly as it would be at delivery; checkpoint rot is left
  // for restore-time fallback (repairing it in place would silently mask
  // the generation ring's retention contract).
  verify_store();
  verify_streams();
  if (registry_ != nullptr) {
    for (std::size_t age = 0; age < registry_->generations_held(); ++age) {
      (void)registry_->generation_ok(age);
    }
  }
  ++metrics_.scrub_passes;
}

void Engine::restore_registry(std::size_t machine, std::size_t round,
                              std::size_t& replays, std::size_t& fallbacks) {
  if (registry_ == nullptr || !registry_->has_checkpoint()) return;
  if (!registry_->generation_ok(0)) {
    // The newest image rotted in retention.  Find the next older verified
    // generation — the cluster's last good copy.
    const std::size_t held = registry_->generations_held();
    std::size_t age = 1;
    while (age < held && !registry_->generation_ok(age)) ++age;
    if (age == held) {
      // Name the rotted providers so the operator knows which state lost
      // its last good copy.
      std::vector<std::string> seen;
      std::string rotted;
      for (std::size_t a = 0; a < held; ++a) {
        for (std::string& name : registry_->rotted_providers(a)) {
          if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
            continue;
          }
          rotted += rotted.empty() ? "" : ", ";
          rotted += name;
          seen.push_back(std::move(name));
        }
      }
      throw fault::CheckpointError(
          "machine " + std::to_string(machine) + ": all " +
          std::to_string(held) +
          " retained checkpoint generation(s) fail verification in round " +
          std::to_string(round) + " (rotted provider(s): " + rotted +
          "): the cluster is unrecoverable");
    }
    // Deterministic replay from the verified generation reconstructs
    // exactly the state the newest capture serialized — which is the live
    // provider state, untouched since the capture at this round's entry.
    // Recapture it into the newest slot (the simulated replay's result)
    // and charge the rounds between the two generation tags.
    replays += round - registry_->generation_round(age);
    ++fallbacks;
    registry_->recapture_newest();
  }
  registry_->restore();
}

// ---------------------------------------------------------------------------
// Runtime audit: conservation invariants checked every round (Config::audit).

void Engine::begin_audit() {
  const std::size_t m = config_.num_machines;
  std::size_t staged = 0;
  if (dense_active_) {
    for (const auto& box : boxes_) staged += box.size();
  } else {
    for (std::size_t from = 0; from < m; ++from) {
      staged += out_words_[from].size();
    }
  }
  for (const SharedSend& s : shared_sends_) {
    staged += staged_payloads_[s.payload].size();
  }
  audit_staged_ = staged;
  audit_dropped_ = 0;
  audit_duped_ = 0;
  audit_delayed_ = 0;
  audit_violations_at_ = metrics_.violations;
}

void Engine::finish_audit() const {
  const std::size_t m = config_.num_machines;
  // Conservation: every word staged this round (plus fault duplicates,
  // minus fault drops and delays) must surface in exactly one inbox.
  std::size_t delivered = 0;
  for (std::size_t to = 0; to < m; ++to) delivered += received_words(to);
  const std::size_t expect =
      audit_staged_ + audit_duped_ - audit_dropped_ - audit_delayed_;
  if (delivered != expect) {
    throw AuditError(
        "audit: round " + std::to_string(metrics_.rounds) + " delivered " +
        std::to_string(delivered) + " words, expected " +
        std::to_string(expect) + " (staged " + std::to_string(audit_staged_) +
        " + duped " + std::to_string(audit_duped_) + " - dropped " +
        std::to_string(audit_dropped_) + " - delayed " +
        std::to_string(audit_delayed_) + ")");
  }
  // Capacity accounting: in non-strict mode breaches must still have been
  // tallied — a breach the engine failed to count is an accounting bug.
  if (!config_.strict) {
    for (std::size_t to = 0; to < m; ++to) {
      if (received_words(to) > config_.words_per_machine &&
          metrics_.violations == audit_violations_at_) {
        throw AuditError("audit: machine " + std::to_string(to) +
                         " received " + std::to_string(received_words(to)) +
                         " words over its budget of " +
                         std::to_string(config_.words_per_machine) +
                         " without a violations tally");
      }
    }
  }
  // Inbox-view segment bounds: every segment of a shared-round receiver
  // must alias either its inbox buffer or a delivered payload, and the
  // segment words must sum to the recorded receive total.
  if (!shared_round_) return;
  const std::less<const Word*> before;  // defined ordering across buffers
  for (const std::size_t to : seg_touched_) {
    std::size_t seg_words = 0;
    for (const auto seg : in_segs_[to]) {
      seg_words += seg.size();
      if (seg.empty()) continue;
      const Word* lo = seg.data();
      const Word* hi = seg.data() + seg.size();
      const auto& in = inbox_[to];
      bool inside = !before(lo, in.data()) &&
                    !before(in.data() + in.size(), hi);
      for (std::size_t p = 0; !inside && p < delivered_payloads_.size();
           ++p) {
        const auto& pay = delivered_payloads_[p];
        inside = !before(lo, pay.data()) &&
                 !before(pay.data() + pay.size(), hi);
      }
      if (!inside) {
        throw AuditError("audit: machine " + std::to_string(to) +
                         " has an inbox-view segment outside every "
                         "delivered buffer in round " +
                         std::to_string(metrics_.rounds));
      }
    }
    if (seg_words != recv_total_[to]) {
      throw AuditError(
          "audit: machine " + std::to_string(to) + " segment words (" +
          std::to_string(seg_words) + ") disagree with its receive total (" +
          std::to_string(recv_total_[to]) + ") in round " +
          std::to_string(metrics_.rounds));
    }
  }
}

}  // namespace mpcg::mpc
