// CONGESTED-CLIQUE collective primitives built on the engine.
//
// The workhorse is the classic distribute-then-rebroadcast trick the paper
// uses for permutation agreement (Section 3.2): to broadcast k words from
// one player, round 1 spreads one word to each of k helper players, round
// 2 has every helper broadcast its word — so any k <= n words reach all n
// players in 2 rounds (2 ceil(k/n) rounds in general).
#ifndef MPCG_CCLIQUE_PRIMITIVES_H
#define MPCG_CCLIQUE_PRIMITIVES_H

#include <vector>

#include "cclique/engine.h"

namespace mpcg::cclique {

/// Broadcasts `words` from `source` to every player. Returns the words as
/// commonly known (in original order). Costs 2 * ceil(k / n) rounds, plus
/// nothing if `words` is empty.
std::vector<Word> broadcast_words(Engine& engine, PlayerId source,
                                  const std::vector<Word>& words);

/// Computes the sum of one value per *alive* player at every player: each
/// alive player broadcasts its value (1 round); everybody sums the
/// broadcast inbox.
std::uint64_t all_broadcast_sum(Engine& engine,
                                const std::vector<char>& alive,
                                const std::vector<Word>& value_per_player);

}  // namespace mpcg::cclique

#endif  // MPCG_CCLIQUE_PRIMITIVES_H
