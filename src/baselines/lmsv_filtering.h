// Lattanzi–Moseley–Suri–Vassilvitskii filtering maximal matching [LMSV11].
//
// The paper relies on this algorithm twice: as the related-work baseline
// (O(log n) rounds at S = Theta(n)) and as the small-matching path of
// Section 4.4.5 (if the graph has O(n polylog n) edges the filtering rounds
// halve the edge count, so O(log log n) rounds suffice to finish).
//
// Per round: sample surviving edges to fit the S-word machine budget,
// compute a maximal matching of the sample on one machine, discard all
// edges touching matched vertices. When the survivors fit in one machine,
// finish locally. The output is a maximal matching of the input graph.
#ifndef MPCG_BASELINES_LMSV_FILTERING_H
#define MPCG_BASELINES_LMSV_FILTERING_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

struct LmsvResult {
  std::vector<EdgeId> matching;
  /// Filtering iterations executed (each is O(1) MPC rounds).
  std::size_t rounds = 0;
  /// Surviving edge count at the start of each iteration, ending with the
  /// count handled by the final local pass.
  std::vector<std::size_t> edges_per_round;
};

/// Runs filtering with a per-machine budget of `memory_words` edges.
[[nodiscard]] LmsvResult lmsv_maximal_matching(const Graph& g,
                                               std::size_t memory_words,
                                               std::uint64_t seed);

}  // namespace mpcg

#endif  // MPCG_BASELINES_LMSV_FILTERING_H
