// Ghaffari-style local MIS dynamics (desire levels), used as the
// "Sparsified MIS Algorithm of [Gha17]" stage of the paper's Theorem 1.1
// pipeline (see DESIGN.md, substitutions).
//
// Each alive vertex keeps a desire level p_v (initially 1/2). Per
// iteration: v marks itself with probability p_v; a marked vertex with no
// marked alive neighbor joins the MIS, and MIS neighborhoods are removed;
// then p_v halves if the effective degree sum_{alive u in N(v)} p_u is >= 2
// and doubles (capped at 1/2) otherwise. All randomness is stateless in
// (seed, v, iteration), so the sequential, MPC, and CONGESTED-CLIQUE
// drivers of this state machine produce bit-identical runs.
#ifndef MPCG_BASELINES_LOCAL_MIS_H
#define MPCG_BASELINES_LOCAL_MIS_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

class LocalMisState {
 public:
  /// Starts the dynamics on the subgraph of g induced by `alive` flags.
  LocalMisState(const Graph& g, std::vector<char> alive, std::uint64_t seed);

  /// Runs one iteration; returns the vertices that joined the MIS.
  std::vector<VertexId> step();

  [[nodiscard]] const std::vector<char>& alive() const noexcept { return alive_; }
  [[nodiscard]] const std::vector<char>& in_mis() const noexcept { return in_mis_; }
  [[nodiscard]] std::size_t alive_count() const noexcept { return alive_count_; }
  [[nodiscard]] std::size_t iterations() const noexcept { return iteration_; }

  /// Number of edges with both endpoints alive (O(m) scan).
  [[nodiscard]] std::size_t alive_edges() const;

  /// Maximum alive degree (O(m) scan).
  [[nodiscard]] std::size_t max_alive_degree() const;

 private:
  const Graph& g_;
  std::uint64_t seed_;
  std::uint64_t iteration_ = 0;
  std::vector<char> alive_;
  std::vector<char> in_mis_;
  std::vector<double> p_;
  std::size_t alive_count_ = 0;
};

/// Runs the dynamics to completion (all vertices decided); returns the MIS
/// over the induced-alive subgraph and the iterations used.
struct LocalMisResult {
  std::vector<VertexId> mis;
  std::size_t iterations = 0;
};
[[nodiscard]] LocalMisResult local_mis(const Graph& g, std::uint64_t seed);

}  // namespace mpcg

#endif  // MPCG_BASELINES_LOCAL_MIS_H
