// Message integrity and audit mode (data-integrity layer).
//
// The load-bearing property mirrors the crash-recovery coupling: a run with
// an injected payload-corruption schedule, caught by the per-sender FNV-1a
// stream checksums and repaired through detect->retransmit (escalating to
// the round checkpoint when the budget is blown), must be bit-identical to
// the fault-free run — same outputs, same logical Metrics — with the repair
// cost visible only in the dedicated fields (corruptions_injected,
// corruptions_detected, words_retransmitted).  Without integrity checking
// the same schedule corrupts delivered words silently.  Audit mode is a
// pure observer: it must pass on every clean and every recovered run.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/matching_mpc.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "core/vertex_cover.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "graph/validation.h"
#include "mpc/engine.h"
#include "test_util.h"
#include "util/fnv.h"
#include "util/rng.h"

namespace mpcg {
namespace {

using testing::make_family;

// A schedule of corrupt events blanketing the early rounds of both worker
// machines: whichever rounds carry traffic get flipped bits, the rest are
// no-ops (corrupt of an empty flush injects nothing).
fault::FaultPlan blanket_corrupts(std::size_t rounds, std::size_t machines,
                                  std::size_t per_machine_rounds) {
  fault::FaultPlan plan;
  for (std::size_t r = 1; r + 1 < rounds && r <= per_machine_rounds; ++r) {
    for (std::size_t m = 0; m < machines; ++m) plan.add_corrupt(m, r);
  }
  return plan;
}

// ------------------------------------------------------------ Fnv basics

TEST(Fnv, DigestMatchesIncrementalFolds) {
  const std::vector<std::uint64_t> words = {0, 1, 0xdeadbeefULL,
                                            ~0ULL, 42};
  std::uint64_t h = Fnv::kOffset;
  for (const auto w : words) h = Fnv::fold(h, w);
  EXPECT_EQ(h, Fnv::digest(words));
  EXPECT_EQ(Fnv::digest(std::span<const std::uint64_t>{}), Fnv::kOffset);
  // A single flipped bit anywhere changes the digest.
  auto flipped = words;
  flipped[2] ^= 1ULL << 17;
  EXPECT_NE(Fnv::digest(flipped), Fnv::digest(words));
}

// --------------------------------------------------- engine-level behavior

TEST(EngineIntegrity, CorruptionIsDetectedAndRetransmittedExactly) {
  fault::FaultPlan plan;
  plan.add_corrupt(0, 0);
  mpc::Config cfg{3, 64, true};
  cfg.integrity = true;
  mpc::Engine corrupted(cfg);
  corrupted.set_fault_plan(&plan);
  mpc::Engine pristine(cfg);
  for (mpc::Engine* eng : {&corrupted, &pristine}) {
    eng->push(0, 1, 11);
    eng->push(0, 2, 12);
    eng->push(2, 1, 13);
    eng->exchange();
  }
  for (std::size_t to = 0; to < 3; ++to) {
    std::vector<mpc::Word> a;
    corrupted.inbox_view(to).append_to(a);
    std::vector<mpc::Word> b;
    pristine.inbox_view(to).append_to(b);
    EXPECT_EQ(a, b) << to;
  }
  EXPECT_EQ(corrupted.metrics().corruptions_injected, 1U);
  EXPECT_EQ(corrupted.metrics().corruptions_detected, 1U);
  EXPECT_GT(corrupted.metrics().words_retransmitted, 0U);
  EXPECT_EQ(corrupted.metrics().rounds_replayed, 0U);  // budget intact
}

TEST(EngineIntegrity, CorruptingAnEmptyFlushInjectsNothing) {
  fault::FaultPlan plan;
  plan.add_corrupt(2, 0);  // machine 2 stages no words this round
  mpc::Config cfg{3, 64, true};
  cfg.integrity = true;
  mpc::Engine eng(cfg);
  eng.set_fault_plan(&plan);
  eng.push(0, 1, 7);
  eng.exchange();
  EXPECT_EQ(eng.metrics().faults_injected, 1U);
  EXPECT_EQ(eng.metrics().corruptions_injected, 0U);
  EXPECT_EQ(eng.metrics().corruptions_detected, 0U);
}

TEST(EngineIntegrity, UndetectedCorruptionAltersDeliveredWords) {
  // integrity off: the flipped bits ride through to the inbox.
  fault::FaultPlan plan;
  plan.add_corrupt(0, 0);
  mpc::Engine eng(mpc::Config{3, 64, true});
  eng.set_fault_plan(&plan);
  const std::vector<mpc::Word> sent = {101, 102, 103, 104};
  for (const auto w : sent) eng.push(0, 1, w);
  eng.exchange();
  std::vector<mpc::Word> got;
  eng.inbox_view(1).append_to(got);
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_NE(got, sent);
  EXPECT_EQ(eng.metrics().corruptions_injected, 1U);
  EXPECT_EQ(eng.metrics().corruptions_detected, 0U);
  EXPECT_EQ(eng.metrics().words_retransmitted, 0U);
}

TEST(EngineIntegrity, BudgetExhaustionWithoutRecoveryThrows) {
  fault::FaultPlan plan;  // budget is 2: the third corrupt of one flush
  plan.add_corrupt(0, 0).add_corrupt(0, 0).add_corrupt(0, 0);
  mpc::Config cfg{2, 64, true};
  cfg.integrity = true;
  mpc::Engine eng(cfg);
  eng.set_fault_plan(&plan, /*registry=*/nullptr, /*recover=*/false);
  eng.push(0, 1, 5);
  EXPECT_THROW(eng.exchange(), mpc::IntegrityError);
}

TEST(EngineIntegrity, BudgetExhaustionWithRecoveryReplaysTheRound) {
  fault::FaultPlan plan;
  plan.add_corrupt(0, 0).add_corrupt(0, 0).add_corrupt(0, 0);
  mpc::Config cfg{2, 64, true};
  cfg.integrity = true;
  mpc::Engine eng(cfg);
  eng.set_fault_plan(&plan);
  eng.push(0, 1, 5);
  eng.push(0, 1, 6);
  eng.exchange();
  std::vector<mpc::Word> got;
  eng.inbox_view(1).append_to(got);
  EXPECT_EQ(got, (std::vector<mpc::Word>{5, 6}));
  EXPECT_EQ(eng.metrics().corruptions_injected, 3U);
  EXPECT_EQ(eng.metrics().corruptions_detected, 3U);
  EXPECT_EQ(eng.metrics().rounds_replayed, 1U);
}

TEST(EngineAudit, CleanExchangesPassEveryInvariant) {
  mpc::Config cfg{4, 64, true};
  cfg.audit = true;
  mpc::Engine eng(cfg);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t m = 0; m < 4; ++m) {
      eng.push(m, (m + 1) % 4, mix64(r, m, 0xa0d17));
      eng.push(m, (m + 2) % 4, mix64(r, m, 0xa0d18));
    }
    EXPECT_NO_THROW(eng.exchange());
  }
  EXPECT_EQ(eng.metrics().rounds, 6U);
}

TEST(EngineAudit, FaultyRecoveredExchangesStillBalance) {
  // Drops, dups, delays and corrupts all hit the conservation equation
  // through their adjustment terms; a recovered run must stay balanced.
  fault::FaultPlan plan;
  plan.add_drop(1, 1).add_duplicate(2, 2).add_delay(0, 3).add_corrupt(1, 4);
  mpc::Config cfg{4, 64, true};
  cfg.integrity = true;
  cfg.audit = true;
  mpc::Engine eng(cfg);
  eng.set_fault_plan(&plan);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t m = 0; m < 4; ++m) {
      eng.push(m, (m + 1) % 4, mix64(r, m, 0x5eed));
    }
    EXPECT_NO_THROW(eng.exchange());
  }
  EXPECT_GT(eng.metrics().faults_injected, 0U);
}

// ------------------------------------------------------- coupling: matching

struct MatchingObs {
  std::vector<double> x;
  std::vector<VertexId> cover;
  std::vector<std::uint32_t> freeze_iteration;
  std::size_t rounds;
  std::size_t total_words;
  std::size_t violations;
};

MatchingObs observe(const MatchingMpcResult& r) {
  return {r.x,
          r.cover,
          r.freeze_iteration,
          r.metrics.rounds,
          r.metrics.total_words,
          r.metrics.violations};
}

void expect_equal(const MatchingObs& a, const MatchingObs& b,
                  const std::string& label) {
  EXPECT_EQ(a.x, b.x) << label;
  EXPECT_EQ(a.cover, b.cover) << label;
  EXPECT_EQ(a.freeze_iteration, b.freeze_iteration) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.total_words, b.total_words) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
}

TEST(CorruptionCoupling, MatchingBitIdenticalAcrossFamilies) {
  // gnp/rmat/star at 2^12..2^14 with corruption blanketing the early
  // rounds: detection + retransmission must make the run bit-identical to
  // the fault-free one, with the repair visible only in the new fields.
  struct Case {
    const char* family;
    std::size_t n;
  };
  for (const Case c : {Case{"gnp_sparse", 1ULL << 12},
                       Case{"rmat", 1ULL << 13},
                       Case{"star", 1ULL << 14}}) {
    const Graph g = make_family(c.family, c.n, 53);
    MatchingMpcOptions opt;
    opt.eps = 0.1;
    opt.seed = 53;
    const auto clean = matching_mpc(g, opt);
    ASSERT_GT(clean.metrics.rounds, 2U) << c.family;
    EXPECT_EQ(clean.metrics.corruptions_injected, 0U) << c.family;
    EXPECT_EQ(clean.metrics.corruptions_detected, 0U) << c.family;
    EXPECT_EQ(clean.metrics.words_retransmitted, 0U) << c.family;

    const auto plan = blanket_corrupts(clean.metrics.rounds, 2, 10);
    MatchingMpcOptions faulty = opt;
    faulty.fault_plan = &plan;
    faulty.integrity = true;
    const auto repaired = matching_mpc(g, faulty);

    expect_equal(observe(clean), observe(repaired), c.family);
    EXPECT_GT(repaired.metrics.corruptions_injected, 0U) << c.family;
    EXPECT_EQ(repaired.metrics.corruptions_detected,
              repaired.metrics.corruptions_injected)
        << c.family;
    EXPECT_GT(repaired.metrics.words_retransmitted, 0U) << c.family;
  }
}

TEST(CorruptionCoupling, RandomStormBitIdenticalWithIntegrity) {
  // A mixed storm (crashes, drops, dups, delays, corrupts) with recovery
  // and integrity both on: still bit-identical to the fault-free run.
  const Graph g = make_family("gnp_dense", 1 << 12, 59);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 59;
  const auto clean = matching_mpc(g, opt);
  ASSERT_GT(clean.metrics.rounds, 4U);

  for (std::uint64_t storm = 0; storm < 3; ++storm) {
    const auto plan = fault::FaultPlan::random_storm(
        mix64(59, storm, 0x570f), /*num_machines=*/2,
        clean.metrics.rounds, 6);
    MatchingMpcOptions faulty = opt;
    faulty.fault_plan = &plan;
    faulty.integrity = true;
    const auto recovered = matching_mpc(g, faulty);
    expect_equal(observe(clean), observe(recovered),
                 "storm " + std::to_string(storm));
    EXPECT_EQ(recovered.metrics.corruptions_detected,
              recovered.metrics.corruptions_injected)
        << storm;
  }
}

TEST(CorruptionCoupling, BudgetEscalationStaysBitIdentical) {
  // Four corrupts of the same flush in one round: attempts 3 and 4 blow
  // the retransmit budget (2) and escalate to checkpoint rollback — the
  // output must still couple exactly.
  const Graph g = make_family("gnp_dense", 1 << 12, 61);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 61;
  const auto clean = matching_mpc(g, opt);
  ASSERT_GT(clean.metrics.rounds, 8U);

  fault::FaultPlan plan;
  for (std::size_t r = 1; r < 8; ++r) {
    for (int k = 0; k < 4; ++k) plan.add_corrupt(0, r);
  }
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  const auto recovered = matching_mpc(g, faulty);
  expect_equal(observe(clean), observe(recovered), "escalation");
  EXPECT_GT(recovered.metrics.corruptions_injected, 0U);
  EXPECT_EQ(recovered.metrics.corruptions_detected,
            recovered.metrics.corruptions_injected);
  EXPECT_GT(recovered.metrics.rounds_replayed, 0U);
}

TEST(CorruptionCoupling, AuditModeObservesWithoutPerturbing) {
  // audit is a pure observer: clean + audited == clean, and a corrupted,
  // repaired, audited run still couples.
  const Graph g = make_family("gnp_sparse", 1 << 12, 67);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 67;
  const auto clean = matching_mpc(g, opt);

  MatchingMpcOptions audited = opt;
  audited.audit = true;
  expect_equal(observe(clean), observe(matching_mpc(g, audited)), "audit");

  const auto plan = blanket_corrupts(clean.metrics.rounds, 2, 8);
  MatchingMpcOptions both = opt;
  both.fault_plan = &plan;
  both.integrity = true;
  both.audit = true;
  expect_equal(observe(clean), observe(matching_mpc(g, both)),
               "audit+integrity");
}

// ------------------------------------------------------------ coupling: MIS

TEST(CorruptionCoupling, MisBitIdenticalAcrossFamilies) {
  struct Case {
    const char* family;
    std::size_t n;
  };
  for (const Case c : {Case{"gnp_sparse", 1ULL << 12},
                       Case{"rmat", 1ULL << 13},
                       Case{"star", 1ULL << 14}}) {
    const Graph g = make_family(c.family, c.n, 71);
    MisMpcOptions opt;
    opt.seed = 71;
    const auto clean = mis_mpc(g, opt);
    ASSERT_GT(clean.metrics.rounds, 2U) << c.family;

    const auto plan = blanket_corrupts(clean.metrics.rounds, 2, 10);
    MisMpcOptions faulty = opt;
    faulty.fault_plan = &plan;
    faulty.integrity = true;
    const auto repaired = mis_mpc(g, faulty);

    EXPECT_EQ(clean.mis, repaired.mis) << c.family;
    EXPECT_EQ(clean.rank_phases, repaired.rank_phases) << c.family;
    EXPECT_EQ(clean.metrics.rounds, repaired.metrics.rounds) << c.family;
    EXPECT_EQ(clean.metrics.total_words, repaired.metrics.total_words)
        << c.family;
    EXPECT_EQ(repaired.metrics.corruptions_detected,
              repaired.metrics.corruptions_injected)
        << c.family;
    EXPECT_TRUE(is_maximal_independent_set(g, repaired.mis)) << c.family;
  }
}

// ------------------------------------------------- coupling: vertex cover

TEST(CorruptionCoupling, VertexCoverBitIdentical) {
  const Graph g = make_family("rmat", 1 << 12, 73);
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 73;
  const auto clean = minimum_vertex_cover_mpc(g, opt);
  ASSERT_GT(clean.rounds, 2U);

  const auto plan = blanket_corrupts(clean.rounds, 2, 10);
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  const auto repaired = minimum_vertex_cover_mpc(g, faulty);
  EXPECT_EQ(clean.cover, repaired.cover);
  EXPECT_EQ(clean.dual_certificate, repaired.dual_certificate);
  EXPECT_EQ(clean.rounds, repaired.rounds);
  EXPECT_TRUE(is_vertex_cover(g, repaired.cover));
}

// -------------------------------------------------- coupling: cclique MIS

TEST(CorruptionCoupling, CcliqueMisBitIdenticalWithIntegrity) {
  const Graph g = make_family("gnp_sparse", 1 << 12, 79);
  MisCcliqueOptions opt;
  opt.seed = 79;
  const auto clean = mis_cclique(g, opt);
  ASSERT_GT(clean.metrics.rounds, 2U);
  EXPECT_EQ(clean.metrics.corruptions_injected, 0U);

  // Blanket the whole run: cclique rounds alternate broadcast-only and
  // point-to-point traffic, so only some events inject.
  fault::FaultPlan plan;
  for (std::size_t r = 1; r + 1 < clean.metrics.rounds; ++r) {
    plan.add_corrupt(0, r);
    plan.add_corrupt(1, r);
  }
  MisCcliqueOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  const auto repaired = mis_cclique(g, faulty);

  EXPECT_EQ(clean.mis, repaired.mis);
  EXPECT_EQ(clean.rank_phases, repaired.rank_phases);
  EXPECT_EQ(clean.sparsified_iterations, repaired.sparsified_iterations);
  EXPECT_EQ(clean.metrics.rounds, repaired.metrics.rounds);
  EXPECT_EQ(clean.metrics.total_words, repaired.metrics.total_words);
  EXPECT_EQ(clean.metrics.lenzen_batches, repaired.metrics.lenzen_batches);
  EXPECT_EQ(repaired.metrics.corruptions_detected,
            repaired.metrics.corruptions_injected);
  EXPECT_TRUE(is_maximal_independent_set(g, repaired.mis));
}

TEST(CorruptionCoupling, CcliqueCrashStormWithIntegrityAndAudit) {
  const Graph g = make_family("rmat", 1 << 12, 83);
  MisCcliqueOptions opt;
  opt.seed = 83;
  const auto clean = mis_cclique(g, opt);
  ASSERT_GT(clean.metrics.rounds, 2U);

  const auto plan = fault::FaultPlan::random_storm(
      mix64(83, 0, 0x570f), /*num_machines=*/4, clean.metrics.rounds, 8);
  MisCcliqueOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  const auto recovered = mis_cclique(g, faulty);
  EXPECT_EQ(clean.mis, recovered.mis);
  EXPECT_EQ(clean.metrics.rounds, recovered.metrics.rounds);
  EXPECT_EQ(clean.metrics.total_words, recovered.metrics.total_words);
  EXPECT_GT(recovered.metrics.faults_injected, 0U);
  EXPECT_EQ(recovered.metrics.corruptions_detected,
            recovered.metrics.corruptions_injected);
}

}  // namespace
}  // namespace mpcg
