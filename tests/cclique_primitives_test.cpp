#include <numeric>

#include <gtest/gtest.h>

#include "cclique/primitives.h"

namespace mpcg::cclique {
namespace {

TEST(BroadcastWords, DeliversInOrder) {
  Engine e(5);
  const std::vector<Word> words{10, 20, 30};
  const auto known = broadcast_words(e, 2, words);
  EXPECT_EQ(known, words);
  EXPECT_EQ(e.metrics().rounds, 2U);  // one distribute + one rebroadcast
}

TEST(BroadcastWords, FullPermutationInTwoRounds) {
  // The Section 3.2 use case: n words (a permutation) to all players.
  const std::size_t n = 64;
  Engine e(n);
  std::vector<Word> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const auto known = broadcast_words(e, 0, perm);
  EXPECT_EQ(known, perm);
  EXPECT_EQ(e.metrics().rounds, 2U);
}

TEST(BroadcastWords, MoreThanNWordsBatches) {
  Engine e(4);
  std::vector<Word> words(10);
  std::iota(words.begin(), words.end(), 100);
  const auto known = broadcast_words(e, 1, words);
  EXPECT_EQ(known, words);
  EXPECT_EQ(e.metrics().rounds, 2U * 3U);  // ceil(10/4) = 3 batches
}

TEST(BroadcastWords, EmptyIsFree) {
  Engine e(3);
  EXPECT_TRUE(broadcast_words(e, 0, {}).empty());
  EXPECT_EQ(e.metrics().rounds, 0U);
}

TEST(BroadcastWords, SourceKeepsOwnShare) {
  // Word index == source id: no self-send needed (would be a wasted slot).
  Engine e(3);
  const std::vector<Word> words{7, 8, 9};
  const auto known = broadcast_words(e, 1, words);
  EXPECT_EQ(known, words);
  EXPECT_EQ(e.metrics().violations, 0U);
}

TEST(AllBroadcastSum, SumsAliveOnly) {
  Engine e(4);
  const std::vector<char> alive{1, 0, 1, 1};
  const std::vector<Word> values{5, 100, 7, 9};
  EXPECT_EQ(all_broadcast_sum(e, alive, values), 21U);
  EXPECT_EQ(e.metrics().rounds, 1U);
}

TEST(AllBroadcastSum, AllDeadIsZero) {
  Engine e(3);
  EXPECT_EQ(all_broadcast_sum(e, std::vector<char>(3, 0), {1, 2, 3}), 0U);
}

}  // namespace
}  // namespace mpcg::cclique
