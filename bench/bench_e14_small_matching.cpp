// E14 (Section 4.4.5, small-matching path): when the graph has
// O(n polylog n) edges, [LMSV11] filtering halves the surviving edge count
// per round, so O(log log n) rounds finish it.
//
// Table rows: n sweep on m = n log2 n graphs. Claims: `mean_halving` <= ~0.5
// (per-round shrink factor) and `rounds` tracking log(m/S) = log log n.
#include "baselines/lmsv_filtering.h"
#include "bench_util.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E14_FilteringHalving(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(
      static_cast<double>(n) * std::log2(static_cast<double>(n)));
  Rng rng(mix64(59, 0xe14, n));
  const Graph g = erdos_renyi_gnm(n, m, rng);

  // A deliberately tight budget (n words) keeps the filtering loop honest:
  // with S >= m the claim is vacuous, since one round swallows the graph.
  LmsvResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = lmsv_maximal_matching(g, n, 59);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.matching.size());
  }
  emit_json_line("E14_FilteringHalving/" + std::to_string(n), n,
                 g.num_edges(), r.rounds, wall_ms, 0);
  double worst_halving = 0.0;
  double sum_halving = 0.0;
  std::size_t steps = 0;
  for (std::size_t i = 1; i < r.edges_per_round.size(); ++i) {
    const double f = static_cast<double>(r.edges_per_round[i]) /
                     static_cast<double>(r.edges_per_round[i - 1]);
    worst_halving = std::max(worst_halving, f);
    sum_halving += f;
    ++steps;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["rounds"] = static_cast<double>(r.rounds);
  state.counters["loglog_n"] = log2log2(static_cast<double>(n));
  if (steps > 0) {
    state.counters["mean_halving"] = sum_halving / static_cast<double>(steps);
    state.counters["worst_halving"] = worst_halving;
  }
  state.counters["matching_size"] = static_cast<double>(r.matching.size());
}
BENCHMARK(E14_FilteringHalving)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
