#include "graph/graph_algos.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace mpcg {

ComponentsResult connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  ComponentsResult result;
  result.component_of.assign(n, std::numeric_limits<std::uint32_t>::max());
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (result.component_of[s] != std::numeric_limits<std::uint32_t>::max()) {
      continue;
    }
    const auto id = static_cast<std::uint32_t>(result.count++);
    result.component_of[s] = id;
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const Arc& a : g.arcs(v)) {
        if (result.component_of[a.to] ==
            std::numeric_limits<std::uint32_t>::max()) {
          result.component_of[a.to] = id;
          queue.push_back(a.to);
        }
      }
    }
  }
  return result;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  std::vector<std::uint32_t> dist(g.num_vertices(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const Arc& a : g.arcs(v)) {
      if (dist[a.to] == std::numeric_limits<std::uint32_t>::max()) {
        dist[a.to] = dist[v] + 1;
        queue.push_back(a.to);
      }
    }
  }
  return dist;
}

DegeneracyResult degeneracy_ordering(const Graph& g) {
  const std::size_t n = g.num_vertices();
  DegeneracyResult result;
  result.core_number.assign(n, 0);
  result.order.reserve(n);

  // Bucket queue by current degree.
  std::vector<std::size_t> degree(n);
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<char> removed(n, 0);

  std::size_t current_core = 0;
  std::size_t cursor = 0;  // lowest possibly-nonempty bucket
  for (std::size_t processed = 0; processed < n; ++processed) {
    // Find the minimum-degree unremoved vertex; buckets may hold stale
    // entries (every degree decrement pushes a fresh one, so a live entry
    // always exists at the vertex's true degree).
    VertexId v = 0;
    for (;;) {
      if (buckets[cursor].empty()) {
        ++cursor;
        continue;
      }
      const VertexId candidate = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[candidate] || degree[candidate] != cursor) continue;
      v = candidate;
      break;
    }
    removed[v] = 1;
    current_core = std::max(current_core, cursor);
    result.core_number[v] = static_cast<std::uint32_t>(current_core);
    result.order.push_back(v);
    for (const Arc& a : g.arcs(v)) {
      if (!removed[a.to] && degree[a.to] > 0) {
        --degree[a.to];
        buckets[degree[a.to]].push_back(a.to);
        if (degree[a.to] < cursor) cursor = degree[a.to];
      }
    }
  }
  result.degeneracy = current_core;
  return result;
}

std::size_t triangle_count(const Graph& g) {
  // Orient edges low->high degree (ties by id) and intersect out-lists.
  const std::size_t n = g.num_vertices();
  const auto rank_less = [&](VertexId a, VertexId b) {
    return g.degree(a) < g.degree(b) ||
           (g.degree(a) == g.degree(b) && a < b);
  };
  std::vector<std::vector<VertexId>> out(n);
  for (const Edge& e : g.edges()) {
    if (rank_less(e.u, e.v)) {
      out[e.u].push_back(e.v);
    } else {
      out[e.v].push_back(e.u);
    }
  }
  for (auto& list : out) std::sort(list.begin(), list.end());
  std::size_t triangles = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : out[v]) {
      // Count |out[v] ∩ out[u]|.
      auto it_v = out[v].begin();
      auto it_u = out[u].begin();
      while (it_v != out[v].end() && it_u != out[u].end()) {
        if (*it_v < *it_u) {
          ++it_v;
        } else if (*it_u < *it_v) {
          ++it_u;
        } else {
          ++triangles;
          ++it_v;
          ++it_u;
        }
      }
    }
  }
  return triangles;
}

Graph line_graph(const Graph& g) {
  GraphBuilder builder(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto arcs = g.arcs(v);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      for (std::size_t j = i + 1; j < arcs.size(); ++j) {
        builder.add_edge(arcs[i].edge, arcs[j].edge);
      }
    }
  }
  return builder.build();
}

std::vector<EdgeId> matching_from_line_graph_mis(
    const std::vector<VertexId>& line_mis) {
  return {line_mis.begin(), line_mis.end()};
}

}  // namespace mpcg
