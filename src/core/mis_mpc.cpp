#include "core/mis_mpc.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>

#include "baselines/local_mis.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "graph/residual.h"
#include "mpc/primitives.h"
#include "util/permutation.h"
#include "util/rng.h"

namespace mpcg {

namespace {

using mpc::Word;

Word encode_pair(VertexId a, VertexId b) noexcept {
  return (static_cast<Word>(a) << 32) | b;
}

std::pair<VertexId, VertexId> decode_pair(Word w) noexcept {
  return {static_cast<VertexId>(w >> 32),
          static_cast<VertexId>(w & 0xffffffffULL)};
}

/// Shared driver state. The aliveness in `residual_` is common knowledge
/// across machines (every update is announced through charged
/// gather+broadcast steps), so it is stored once; adjacency is owned by
/// each vertex's home machine and only leaves it through engine pushes.
///
/// All per-phase work is residual-proportional: aliveness, residual
/// degrees, and the alive-edge count (globally and per home) are maintained
/// incrementally by ResidualGraph and the kill hooks in
/// commit_mis_members — nothing here rescans the full edge list after
/// construction.
class MisMpcRun {
 public:
  MisMpcRun(const Graph& g, const MisMpcOptions& options)
      : g_(g), options_(options), n_(g.num_vertices()), residual_(g),
        window_csr_(n_), killed_(n_, 0), dying_(n_, 0) {
    const std::size_t min_words = 64;
    words_ = options.words_per_machine != 0
                 ? options.words_per_machine
                 : 8 * std::max(n_, min_words);
    const std::size_t m_edges = g.num_edges();
    machines_ = options.num_machines != 0
                    ? options.num_machines
                    : std::max<std::size_t>(2, (4 * m_edges + words_ - 1) /
                                                   words_);
    gather_budget_ = options.gather_budget != 0 ? options.gather_budget
                                                : words_ / 2;

    // Resident state per machine: adjacency shard + the permutation (rank
    // table) + the shared alive bitset. In auto-sizing mode, grow the
    // cluster until the (hash-balanced) shards actually fit — dense or
    // skewed graphs need more machines than the average-load estimate.
    const std::size_t fixed_words = n_ + n_ / 64 + 1;
    std::vector<std::size_t> shard_words;
    for (;;) {
      shard_words.assign(machines_, 0);
      home_.resize(n_);
      for (VertexId v = 0; v < n_; ++v) {
        home_[v] = static_cast<std::uint32_t>(
            mix64(options.seed, v, 0x401e) % machines_);
        shard_words[home_[v]] += 1 + g.degree(v);
      }
      const std::size_t max_shard =
          shard_words.empty()
              ? 0
              : *std::max_element(shard_words.begin(), shard_words.end());
      if (options.num_machines != 0 || max_shard + fixed_words <= words_ ||
          machines_ >= 2 * m_edges + 2) {
        break;
      }
      machines_ *= 2;
    }
    mpc::Config cfg{machines_, words_, options.strict};
    cfg.threads = options.threads;
    cfg.integrity = options.integrity;
    cfg.audit = options.audit;
    cfg.scrub_interval = options.scrub_interval;
    const bool durable = options.durable.enabled();
    if (durable) {
      cfg.checkpoint_dir = options.durable.dir;
      cfg.checkpoint_every = options.durable.every;
      // The scope is the configuration signature: a checkpoint written by
      // any differently-shaped run (including a reprovisioned rescale)
      // reads as "no checkpoint" and resume starts fresh.
      cfg.checkpoint_scope = "mis:" + std::to_string(n_) + ":" +
                             std::to_string(g.num_edges()) + ":" +
                             std::to_string(machines_) + ":" +
                             std::to_string(words_) + ":" +
                             std::to_string(options.seed);
      cfg.resume = options.durable.resume;
      cfg.stop_flag = options.durable.stop_flag;
      cfg.stop_after_safe_points = options.durable.stop_after_safe_points;
    }
    engine_.emplace(cfg);
    for (std::size_t i = 0; i < machines_; ++i) {
      engine_->note_storage(i, shard_words[i] + fixed_words);
    }
    const bool plan_active =
        options.fault_plan != nullptr && !options.fault_plan->empty();
    if (plan_active || durable) {
      if (options.durable.generations != 0) {
        registry_.emplace(options.durable.generations);
      } else {
        registry_.emplace();
      }
      register_checkpoint_state();
      // The loop provider exists only for durability: keeping it out of
      // plan-only runs keeps their in-memory checkpoint accounting
      // (Metrics::checkpoint_bytes) exactly as PR 6-8 pinned it.
      if (durable) register_loop_state();
      engine_->set_fault_plan(plan_active ? options.fault_plan : nullptr,
                              &*registry_, options.fault_recovery);
    }
  }

  MisMpcResult run() {
    result_.machines_used = machines_;
    result_.words_per_machine_used = words_;
    if (n_ == 0) return std::move(result_);

    // Resume reinstates every provider (permutation, MIS members,
    // aliveness, loop cursor) and the engine's metrics; the preamble
    // below already happened in the interrupted process.
    const bool resumed = engine_->try_resume();
    if (!resumed) {
      // The leader draws the permutation and broadcasts it (paper: "all
      // vertices agree on a uniform random order").
      Rng rng(options_.seed);
      perm_ = random_permutation(n_, rng);
      {
        std::vector<Word> payload(perm_.begin(), perm_.end());
        mpc::broadcast_view(*engine_, 0, payload);
      }
      rank_of_ = invert_permutation(perm_);
    }

    const double delta0 = std::max<double>(2.0, static_cast<double>(
                                                    g_.max_degree()));
    const double log_delta = std::log2(delta0);

    while (true) {
      // Safe point: provider state is self-consistent and the message
      // plane is quiescent here, so this loop boundary is where durable
      // generations persist (and where a resumed process re-enters).
      engine_->checkpoint_boundary();
      const std::uint64_t alive_edges = count_alive_edges();
      if (alive_edges <= gather_budget_) {
        final_gather(result_);
        break;
      }
      if (options_.use_sparsified_stage &&
          max_alive_degree() <= options_.degree_switch) {
        sparsified_stage(result_);
        final_gather(result_);
        break;
      }
      // Next rank phase: process ranks [next_rank, n / Delta^{alpha^i}).
      ++result_.rank_phases;
      const double exponent =
          std::pow(options_.alpha, static_cast<double>(result_.rank_phases));
      auto upper = static_cast<std::size_t>(
          std::llround(static_cast<double>(n_) *
                       std::pow(2.0, -exponent * log_delta)));
      upper = std::clamp(upper, next_rank_ + 1, n_);
      rank_phase(next_rank_, upper, result_);
      next_rank_ = upper;
    }

    result_.metrics = engine_->metrics();
    result_.mis = std::move(mis_);
    return std::move(result_);
  }

 private:
  /// Registers the driver's durable per-round state with the checkpoint
  /// registry the engine captures/restores around injected faults (see
  /// matching_mpc.cpp for the shared contract: capture and restore happen
  /// at the same quiescent point inside one exchange, so derived state is
  /// rebuilt on restore or stays valid because its inputs round-trip).
  void register_checkpoint_state() {
    auto& reg = *registry_;
    // The shared random order; rank_of_ is derived, recomputed on restore.
    // Empty until run() draws it — the first exchange (its own broadcast)
    // captures it already assigned.
    reg.register_state(
        "permutation",
        [this](std::vector<Word>& out) {
          out.push_back(perm_.size());
          for (const std::uint32_t r : perm_) out.push_back(r);
        },
        [this](std::span<const Word> in) {
          perm_.assign(in.begin() + 1,
                       in.begin() + 1 + static_cast<std::ptrdiff_t>(in[0]));
          rank_of_ = perm_.empty() ? std::vector<std::uint32_t>{}
                                   : invert_permutation(perm_);
        });
    // MIS members committed so far (append-only).
    reg.register_state(
        "mis-members",
        [this](std::vector<Word>& out) {
          out.push_back(mis_.size());
          for (const VertexId v : mis_) out.push_back(v);
        },
        [this](std::span<const Word> in) {
          mis_.assign(in.begin() + 1,
                      in.begin() + 1 + static_cast<std::ptrdiff_t>(in[0]));
        });
    // Residual aliveness, bit-packed. Aliveness only shrinks, so restore
    // reconciles by killing any vertex alive now but dead in the
    // checkpoint (the reverse cannot happen at a same-round restore).
    reg.register_state(
        "aliveness",
        [this](std::vector<Word>& out) {
          const std::size_t base = out.size();
          out.resize(base + (n_ + 63) / 64, 0);
          for (VertexId v = 0; v < n_; ++v) {
            if (residual_.alive(v)) out[base + v / 64] |= Word{1} << (v % 64);
          }
        },
        [this](std::span<const Word> in) {
          std::vector<VertexId> to_kill;
          for (VertexId v = 0; v < n_; ++v) {
            const bool want = ((in[v / 64] >> (v % 64)) & Word{1}) != 0;
            if (!want && residual_.alive(v)) to_kill.push_back(v);
          }
          if (!to_kill.empty()) residual_.kill_batch(to_kill);
        });
  }

  /// The run-loop cursor (registered only for durability — see ctor): the
  /// next rank to process plus the result counters accumulated so far, so
  /// a resumed process re-enters the phase loop exactly where the
  /// persisted safe point left it.
  void register_loop_state() {
    registry_->register_state(
        "loop",
        [this](std::vector<Word>& out) {
          out.push_back(next_rank_);
          out.push_back(result_.rank_phases);
          out.push_back(result_.sparsified_iterations);
          out.push_back(result_.final_gather_edges);
          out.push_back(result_.window_edges_per_phase.size());
          for (const std::size_t e : result_.window_edges_per_phase) {
            out.push_back(e);
          }
        },
        [this](std::span<const Word> in) {
          std::size_t at = 0;
          next_rank_ = static_cast<std::size_t>(in[at++]);
          result_.rank_phases = static_cast<std::size_t>(in[at++]);
          result_.sparsified_iterations = static_cast<std::size_t>(in[at++]);
          result_.final_gather_edges = static_cast<std::size_t>(in[at++]);
          const std::size_t phases = static_cast<std::size_t>(in[at++]);
          result_.window_edges_per_phase.assign(
              in.begin() + static_cast<std::ptrdiff_t>(at),
              in.begin() + static_cast<std::ptrdiff_t>(at + phases));
        });
  }

  /// Alive-alive edge count: every home contributes its local shard's
  /// count and the values are all-reduced (3 charged rounds — the engine
  /// sees one word per machine either way). The simulator reads the total
  /// from the residual graph's maintained counter instead of materializing
  /// the per-home splits, so no edge rescan happens.
  std::uint64_t count_alive_edges() {
    std::vector<Word> per(machines_, 0);
    per[0] = residual_.alive_edge_count();
    return mpc::all_reduce_sum(*engine_, per);
  }

  /// Maximum alive degree, computed per home and all-reduced. O(alive
  /// vertices) via the maintained residual degrees.
  std::uint64_t max_alive_degree() {
    std::vector<Word> per(machines_, 0);
    for (const VertexId v : residual_.alive_vertices()) {
      per[home_[v]] = std::max<Word>(per[home_[v]],
                                     residual_.residual_degree(v));
    }
    return mpc::all_reduce_max(*engine_, per);
  }

  /// Broadcasts the new MIS members, lets every home decide which of its
  /// vertices die (member or neighbor of one), and announces the deaths via
  /// gather + broadcast so the alive bitset stays common knowledge.
  void commit_mis_members(const std::vector<VertexId>& mis_new) {
    if (mis_new.empty()) return;
    std::vector<Word> payload(mis_new.begin(), mis_new.end());
    mpc::broadcast_view(*engine_, 0, payload);

    // Deaths: the members and their alive neighborhoods, announced in
    // ascending vertex order.
    for (const VertexId v : mis_new) dying_[v] = 1;
    for (const VertexId v : mis_new) {
      for (const Arc& a : residual_.alive_arcs(v)) dying_[a.to] = 1;
    }
    std::vector<std::vector<Word>> dead_parts(machines_);
    std::vector<VertexId> died;
    for (const VertexId v : residual_.alive_vertices()) {
      if (dying_[v]) {
        dead_parts[home_[v]].push_back(v);
        died.push_back(v);
      }
    }
    const auto gathered = mpc::gather_to(*engine_, 0, dead_parts);
    mpc::broadcast_view(*engine_, 0, gathered);
    residual_.kill_batch(died);
    for (const VertexId v : died) dying_[v] = 0;
    mis_.insert(mis_.end(), mis_new.begin(), mis_new.end());
  }

  /// Plays sequential greedy over the gathered window edges (leader-side):
  /// builds the window adjacency in the reusable CSR scratch, walks ranks
  /// [lo, hi), and returns the joiners. Reads the leader's inbox through
  /// the zero-copy view; the only materialization is the decoded pair list.
  std::vector<VertexId> leader_greedy(const mpc::InboxView& inbox,
                                      std::size_t lo, std::size_t hi) {
    pairs_scratch_.clear();
    pairs_scratch_.reserve(inbox.size());
    for (const Word w : inbox) pairs_scratch_.push_back(decode_pair(w));
    window_csr_.build(pairs_scratch_);
    std::vector<VertexId> mis_new;
    for (std::size_t r = lo; r < hi; ++r) {
      const VertexId v = perm_[r];
      if (!residual_.alive(v) || killed_[v]) continue;
      mis_new.push_back(v);
      for (const VertexId u : window_csr_.neighbors(v)) killed_[u] = 1;
    }
    for (const VertexId t : window_csr_.touched()) killed_[t] = 0;
    window_csr_.clear();
    return mis_new;
  }

  /// Replays the collected staging records through the engine outboxes,
  /// distinct senders in parallel (per-sender engine staging is disjoint;
  /// per-sender record order is the sequential iteration order).
  void drain_stage_shards(mpc::ExecutionBackend& backend) {
    stage_shards_.drain(
        backend,
        [&](std::uint32_t snd, std::span<const mpc::StageRecord> recs) {
          mpc::Outbox ob = engine_->outbox(snd);
          for (const mpc::StageRecord& rec : recs) {
            ob.append(rec.to, rec.word);
          }
        });
  }

  /// One rank phase: gather the window-induced residual subgraph at the
  /// leader, play greedy through the window ranks, commit the members.
  void rank_phase(std::size_t lo, std::size_t hi, MisMpcResult& result) {
    // Homes stream alive window-induced edges (deduped at the lower vertex
    // id) to the leader: one outbox per vertex burst — every word flows
    // home_[v] -> 0, so a burst stages as a single run.
    mpc::ExecutionBackend& backend = engine_->backend();
    if (backend.parallel()) {
      // Sequential pre-pass: the lazy alive_upper_arcs accessor mutates
      // shared per-vertex segment state, so materialize every window span
      // first (spans for distinct vertices stay valid simultaneously);
      // dead vertices leave empty spans.
      arc_spans_.assign(hi - lo, {});
      for (std::size_t r = lo; r < hi; ++r) {
        const VertexId v = perm_[r];
        if (residual_.alive(v)) {
          arc_spans_[r - lo] = residual_.alive_upper_arcs(v);
        }
      }
      stage_shards_.reset(backend.threads(), machines_);
      backend.run_chunks(
          lo, hi, [&](std::size_t slot, std::size_t clo, std::size_t chi) {
            for (std::size_t r = clo; r < chi; ++r) {
              const VertexId v = perm_[r];
              for (const Arc& a : arc_spans_[r - lo]) {
                if (rank_of_[a.to] >= lo && rank_of_[a.to] < hi) {
                  stage_shards_.add(slot, home_[v], 0, encode_pair(v, a.to));
                }
              }
            }
          });
      drain_stage_shards(backend);
    } else {
      for (std::size_t r = lo; r < hi; ++r) {
        const VertexId v = perm_[r];
        if (!residual_.alive(v)) continue;
        mpc::Outbox ob = engine_->outbox(home_[v]);
        for (const Arc& a : residual_.alive_upper_arcs(v)) {
          if (rank_of_[a.to] >= lo && rank_of_[a.to] < hi) {
            ob.append(0, encode_pair(v, a.to));
          }
        }
      }
    }
    engine_->exchange();
    const mpc::InboxView inbox = engine_->inbox_view(0);
    result.window_edges_per_phase.push_back(inbox.size());

    // Leader: window adjacency + greedy through ranks lo..hi-1. (The
    // leader knows ranks and aliveness — both common knowledge.)
    commit_mis_members(leader_greedy(inbox, lo, hi));
  }

  /// Sparsified stage: Ghaffari-style local dynamics on the low-degree
  /// residual graph. Each iteration exchanges (mark, desire) words along
  /// alive edges and announces the joins/deaths.
  void sparsified_stage(MisMpcResult& result) {
    // Snapshot the driver's residual view (bulk copy): the dynamics evolve
    // their own aliveness, which the driver mirrors through the announced
    // commits.
    LocalMisState state(residual_, mix64(options_.seed, 0x5fa1, 1));
    while (count_alive_edges() > gather_budget_) {
      // Neighbors exchange their mark bit and desire level: one word each
      // way per alive edge. The forward words all leave home_[v], so they
      // ride one outbox per vertex; the replies come from the neighbor's
      // home and stay on the per-word wrapper.
      mpc::ExecutionBackend& backend = engine_->backend();
      if (backend.parallel()) {
        // push() is outbox(from).append(to, ...) — both stagings per arc
        // shard by sender, in arc order, so the per-sender replay matches
        // the sequential interleave exactly (also when the two homes
        // coincide: the records land in one bucket, still in order).
        const std::span<const VertexId> alive = residual_.alive_vertices();
        arc_spans_.assign(alive.size(), {});
        for (std::size_t i = 0; i < alive.size(); ++i) {
          arc_spans_[i] = residual_.alive_upper_arcs(alive[i]);
        }
        stage_shards_.reset(backend.threads(), machines_);
        backend.run_chunks(
            0, alive.size(),
            [&](std::size_t slot, std::size_t clo, std::size_t chi) {
              for (std::size_t i = clo; i < chi; ++i) {
                const VertexId v = alive[i];
                for (const Arc& a : arc_spans_[i]) {
                  stage_shards_.add(slot, home_[v], home_[a.to],
                                    encode_pair(v, a.to));
                  stage_shards_.add(slot, home_[a.to], home_[v],
                                    encode_pair(a.to, v));
                }
              }
            });
        drain_stage_shards(backend);
      } else {
        for (const VertexId v : residual_.alive_vertices()) {
          mpc::Outbox ob = engine_->outbox(home_[v]);
          for (const Arc& a : residual_.alive_upper_arcs(v)) {
            ob.append(home_[a.to], encode_pair(v, a.to));
            engine_->push(home_[a.to], home_[v], encode_pair(a.to, v));
          }
        }
      }
      engine_->exchange();
      const auto joined = state.step();
      ++result.sparsified_iterations;
      commit_mis_members(joined);
      if (state.alive_count() == 0) break;
    }
  }

  /// Gathers every remaining alive-alive edge at the leader, which finishes
  /// the greedy process in rank order and commits the members.
  void final_gather(MisMpcResult& result) {
    mpc::ExecutionBackend& backend = engine_->backend();
    if (backend.parallel()) {
      const std::span<const VertexId> alive = residual_.alive_vertices();
      arc_spans_.assign(alive.size(), {});
      for (std::size_t i = 0; i < alive.size(); ++i) {
        arc_spans_[i] = residual_.alive_upper_arcs(alive[i]);
      }
      stage_shards_.reset(backend.threads(), machines_);
      backend.run_chunks(
          0, alive.size(),
          [&](std::size_t slot, std::size_t clo, std::size_t chi) {
            for (std::size_t i = clo; i < chi; ++i) {
              const VertexId v = alive[i];
              for (const Arc& a : arc_spans_[i]) {
                stage_shards_.add(slot, home_[v], 0, encode_pair(v, a.to));
              }
            }
          });
      drain_stage_shards(backend);
    } else {
      for (const VertexId v : residual_.alive_vertices()) {
        mpc::Outbox ob = engine_->outbox(home_[v]);
        for (const Arc& a : residual_.alive_upper_arcs(v)) {
          ob.append(0, encode_pair(v, a.to));
        }
      }
    }
    engine_->exchange();
    const mpc::InboxView inbox = engine_->inbox_view(0);
    result.final_gather_edges = inbox.size();
    commit_mis_members(leader_greedy(inbox, 0, n_));
  }

  const Graph& g_;
  const MisMpcOptions& options_;
  std::size_t n_;
  std::size_t machines_ = 0;
  std::size_t words_ = 0;
  std::size_t gather_budget_ = 0;
  std::optional<mpc::Engine> engine_;
  /// Round-level checkpoint providers for the engine's fault recovery;
  /// engaged only when a FaultPlan is attached (see constructor).
  std::optional<fault::CheckpointRegistry> registry_;

  ResidualGraph residual_;
  CsrScratch window_csr_;
  std::vector<std::pair<VertexId, VertexId>> pairs_scratch_;
  /// Parallel-backend staging scratch: per-vertex alive-arc spans cached by
  /// the sequential pre-pass (the lazy accessor may not run concurrently),
  /// plus the collect-then-drain shards (see mpc::StageShards).
  std::vector<std::span<const Arc>> arc_spans_;
  mpc::StageShards stage_shards_;
  std::vector<char> killed_;
  std::vector<char> dying_;

  std::vector<std::uint32_t> home_;
  std::vector<std::uint32_t> perm_;
  std::vector<std::uint32_t> rank_of_;
  std::vector<VertexId> mis_;
  /// Run-loop cursor + accumulating result, promoted to members so the
  /// "loop" durable provider can serialize them at safe points.
  std::size_t next_rank_ = 0;
  MisMpcResult result_;
};

}  // namespace

MisMpcResult mis_mpc(const Graph& g, const MisMpcOptions& options) {
  MisMpcRun run(g, options);
  return run.run();
}

}  // namespace mpcg
