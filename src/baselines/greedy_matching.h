// Sequential greedy matchings: the classic maximal-matching baseline
// (2-approximation to maximum matching; its endpoints are a 2-approximate
// vertex cover) and the weight-sorted greedy (1/2-approximation to maximum
// weight matching), used as comparison points and as local subroutines.
#ifndef MPCG_BASELINES_GREEDY_MATCHING_H
#define MPCG_BASELINES_GREEDY_MATCHING_H

#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// Maximal matching scanning edges in id order.
[[nodiscard]] std::vector<EdgeId> greedy_maximal_matching(const Graph& g);

/// Maximal matching scanning edges in the given order (a permutation of
/// edge ids; extra ids are ignored, missing ids are an error detected by
/// non-maximality of the result only in debug oracles).
[[nodiscard]] std::vector<EdgeId> greedy_maximal_matching_ordered(
    const Graph& g, const std::vector<EdgeId>& order);

/// Greedy on edges sorted by weight descending: weight(M) >= w(M*)/2.
[[nodiscard]] std::vector<EdgeId> greedy_weighted_matching(
    const Graph& g, const std::vector<double>& weights);

/// Endpoints of a maximal matching — a 2-approximate vertex cover.
[[nodiscard]] std::vector<VertexId> vertex_cover_from_matching(
    const Graph& g, const std::vector<EdgeId>& matching);

/// The classic reduction from the paper's introduction: run randomized
/// greedy MIS on the line graph L(G); the chosen line-vertices (= edges of
/// g) form a maximal matching of g.
[[nodiscard]] std::vector<EdgeId> maximal_matching_via_line_graph(
    const Graph& g, std::uint64_t seed);

}  // namespace mpcg

#endif  // MPCG_BASELINES_GREEDY_MATCHING_H
