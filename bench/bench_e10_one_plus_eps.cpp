// E10 (Corollary 1.3): (1+eps)-approximate maximum matching in
// O(log log n) * (1/eps)^{O(1/eps)} rounds.
//
// Table rows: eps sweep at fixed n (exact nu via blossom). Claims:
// `matching_factor` = nu/|M| <= 1+eps, and `total_rounds` grows steeply as
// eps shrinks (the (1/eps)^{O(1/eps)} factor) while the base 2+eps stage
// stays cheap.
#include "baselines/blossom.h"
#include "bench_util.h"
#include "core/one_plus_eps.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E10_EpsSweep(benchmark::State& state, const char* family, double eps) {
  const Graph g = graph_family(family, 1 << 10, 37);
  OnePlusEpsOptions opt;
  opt.eps = eps;
  opt.seed = 37;
  OnePlusEpsResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = one_plus_eps_matching(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.matching.size());
  }
  emit_json_line(std::string("E10_OnePlusEps/") + family + "/eps" +
                     std::to_string(static_cast<int>(1.0 / eps + 0.5)),
                 g.num_vertices(), g.num_edges(), r.total_rounds, wall_ms, 0);
  const double nu = static_cast<double>(maximum_matching_size(g));
  state.counters["eps"] = eps;
  state.counters["nu"] = nu;
  state.counters["matching_size"] = static_cast<double>(r.matching.size());
  state.counters["matching_factor"] =
      r.matching.empty() ? 0.0 : nu / static_cast<double>(r.matching.size());
  state.counters["claimed_factor"] = 1.0 + eps;
  state.counters["base_size"] = static_cast<double>(r.base_size);
  state.counters["aug_passes"] = static_cast<double>(r.augmenting_passes);
  state.counters["paths_flipped"] = static_cast<double>(r.paths_flipped);
  state.counters["total_rounds"] = static_cast<double>(r.total_rounds);
}

void register_all() {
  for (const char* family : {"gnp_dense", "bipartite", "power_law"}) {
    for (const double eps : {0.5, 1.0 / 3.0, 0.2}) {
      benchmark::RegisterBenchmark(
          (std::string("E10_OnePlusEps/") + family + "/eps" +
           std::to_string(static_cast<int>(1.0 / eps + 0.5)))
              .c_str(),
          [family, eps](benchmark::State& s) { E10_EpsSweep(s, family, eps); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
