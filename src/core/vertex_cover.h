// Theorem 1.2, vertex-cover phrasing — a thin convenience wrapper.
//
// "Invoking Lemma 4.2 ... we obtain the desired approximation of the
// minimum vertex cover": the cover is the frozen-or-removed set of one
// MPC-Simulation run. This header gives that one-call API for users who
// only want the cover (the matching-side pipeline lives in
// integral_matching.h).
#ifndef MPCG_CORE_VERTEX_COVER_H
#define MPCG_CORE_VERTEX_COVER_H

#include "core/matching_mpc.h"
#include "graph/graph.h"

namespace mpcg {

struct VertexCoverResult {
  std::vector<VertexId> cover;
  /// The dual certificate: sum of the fractional matching's weight. Any
  /// vertex cover has size >= this, so cover.size() / certificate bounds
  /// the approximation factor of *this very run* without knowing OPT.
  double dual_certificate = 0.0;
  std::size_t rounds = 0;
  std::size_t phases = 0;
  /// Active frontier at each phase start of the underlying MPC-Simulation
  /// run — the per-phase cost driver after the ActiveSet port (shrinks as
  /// vertices freeze into the cover).
  std::vector<std::size_t> frontier_per_phase;
  /// Frontier-internal edges at each phase start — the per-phase *edge*
  /// cost driver after the ActiveArcs port.
  std::vector<std::size_t> frontier_edges_per_phase;
};

/// (2 + 50 eps)-approximate minimum vertex cover in O(log log n) MPC
/// rounds (Lemma 4.2 / Theorem 1.2).
[[nodiscard]] VertexCoverResult minimum_vertex_cover_mpc(
    const Graph& g, const MatchingMpcOptions& options);

}  // namespace mpcg

#endif  // MPCG_CORE_VERTEX_COVER_H
