#include "cclique/primitives.h"

namespace mpcg::cclique {

std::vector<Word> broadcast_words(Engine& engine, PlayerId source,
                                  const std::vector<Word>& words) {
  const std::size_t n = engine.num_players();
  std::vector<Word> known(words.size());
  std::vector<Word> helper_word;
  std::size_t done = 0;
  while (done < words.size()) {
    const std::size_t batch = std::min(n, words.size() - done);
    // Round 1: word i of the batch goes to helper player i.
    for (std::size_t i = 0; i < batch; ++i) {
      const auto helper = static_cast<PlayerId>(i);
      if (helper == source) continue;  // source keeps its own share
      engine.send(source, helper, words[done + i]);
    }
    engine.exchange();
    helper_word.assign(batch, 0);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto helper = static_cast<PlayerId>(i);
      if (helper == source) {
        helper_word[i] = words[done + i];
        continue;
      }
      // The helper's inbox carries exactly one word from the source.
      helper_word[i] = engine.inbox(helper).at(0).word;
    }
    // Round 2: every helper rebroadcasts its word.
    for (std::size_t i = 0; i < batch; ++i) {
      engine.broadcast(static_cast<PlayerId>(i), helper_word[i]);
    }
    engine.exchange();
    for (const Message& msg : engine.broadcast_inbox()) {
      known[done + msg.from] = msg.word;
    }
    done += batch;
  }
  return known;
}

std::uint64_t all_broadcast_sum(Engine& engine, const std::vector<char>& alive,
                                const std::vector<Word>& value_per_player) {
  const std::size_t n = engine.num_players();
  std::uint64_t sum = 0;
  for (PlayerId p = 0; p < n; ++p) {
    if (p < alive.size() && !alive[p]) continue;
    const Word value = p < value_per_player.size() ? value_per_player[p] : 0;
    engine.broadcast(p, value);
    sum += value;
  }
  engine.exchange();
  return sum;
}

}  // namespace mpcg::cclique
