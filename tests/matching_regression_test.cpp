// Bit-identity regression for the ActiveSet / dirty-load port of
// matching_mpc (PR 3): the driver's per-phase loops moved from 0..n scans
// onto the incrementally maintained active frontier, and the home-side load
// sums (y_old, load_of) became cached with dirty-bit invalidation. Those
// are representation/scheduling changes only — every recomputation uses the
// same ascending alive-arc scan, so outputs (x bit patterns), freeze
// iterations, covers, AND engine Metrics must be byte-identical to the
// pre-ActiveSet implementation.
//
// The constants below were produced by the PR 2 code for these exact
// (family, n, seed) rows; a mismatch means observable behavior changed,
// which must be deliberate. Sizes 2^12-2^14 exercise multiple phases, the
// direct-simulation tail, heavy removals (gnp_dense), skewed degrees
// (rmat), and the adversarial-hub profile (star, which freezes the hub and
// ends with an empty tail). The 2^14 rmat/star/power_law rows (captured
// from the PR 3 binary) mirror the frontier-decay workloads bench_e06 runs
// — the shapes whose early-departing frontier the ActiveArcs compaction is
// charged against.
#include <gtest/gtest.h>

#include "core/matching_mpc.h"
#include "gen/families.h"

namespace mpcg {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct GoldenRow {
  const char* family;
  std::size_t n;
  std::uint64_t seed;
  std::size_t num_edges;
  std::uint64_t x_hash;
  std::size_t phases;
  std::size_t total_iterations;
  std::size_t tail_iterations;
  std::size_t cover_size;
  std::uint64_t cover_hash;
  std::uint64_t freeze_hash;
  struct {
    std::size_t rounds;
    std::size_t max_sent_words;
    std::size_t max_received_words;
    std::size_t peak_storage_words;
    std::size_t violations;
    std::size_t total_words;
  } metrics;
};

// Captured from the PR 2 implementation (pre-ActiveSet) on this machine;
// all values are platform-stable given IEEE doubles and fixed seeds.
constexpr GoldenRow kGolden[] = {
    {"gnp_sparse", 4096, 101, 12181U, 12922030869467019367ULL,
     8U, 78U, 31U, 3012U, 4332438979687381650ULL, 18417938390521569846ULL,
     {82U, 16569U, 1071U, 1071U, 0U, 233365U}},
    {"gnp_dense", 4096, 102, 49474U, 146006109121181125ULL,
     8U, 69U, 22U, 3817U, 2369953190310012817ULL, 5806318738234059933ULL,
     {77U, 32725U, 1843U, 2391U, 0U, 305849U}},
    {"rmat", 8192, 103, 32525U, 10841750103776352437ULL,
     9U, 86U, 31U, 4134U, 11171903701852610807ULL, 12885608955351545342ULL,
     {107U, 25650U, 1954U, 1954U, 0U, 468611U}},
    {"star", 4096, 104, 4095U, 13133939332728329646ULL,
     8U, 47U, 0U, 1U, 3554543661169652019ULL, 14091693007061396455ULL,
     {26U, 146U, 710U, 4501U, 0U, 33401U}},
    {"gnp_sparse", 16384, 105, 49223U, 12830451449563884107ULL,
     9U, 93U, 33U, 12062U, 16332650029927574920ULL, 16105157543872013877ULL,
     {94U, 130781U, 4263U, 4263U, 0U, 1720711U}},
    {"rmat", 16384, 106, 65250U, 2563023080484348523ULL,
     9U, 93U, 33U, 8084U, 9578512890068855466ULL, 6008087138223456623ULL,
     {113U, 49530U, 4003U, 4003U, 0U, 1215021U}},
    {"star", 16384, 107, 16383U, 7843570663484516046ULL,
     9U, 60U, 0U, 1U, 3554543661169652019ULL, 7582004460640005095ULL,
     {29U, 276U, 2782U, 17693U, 0U, 148853U}},
    {"power_law", 16384, 108, 65121U, 1758653876198549565ULL,
     9U, 93U, 33U, 9113U, 17506492605985892107ULL, 6727799963475301973ULL,
     {121U, 59309U, 3907U, 3907U, 0U, 1343290U}},
};

class MatchingRegression : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatchingRegression, BitIdenticalToPreActiveSetPath) {
  const GoldenRow& row = kGolden[GetParam()];
  const Graph g = graph_family(row.family, row.n, row.seed);
  ASSERT_EQ(g.num_edges(), row.num_edges);

  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = row.seed;
  opt.threshold_seed = row.seed + 1;
  const auto r = matching_mpc(g, opt);

  EXPECT_EQ(r.phases, row.phases);
  EXPECT_EQ(r.total_iterations, row.total_iterations);
  EXPECT_EQ(r.tail_iterations, row.tail_iterations);
  EXPECT_EQ(r.cover.size(), row.cover_size);
  EXPECT_EQ(fnv1a(r.x.data(), r.x.size() * sizeof(double)), row.x_hash);
  EXPECT_EQ(fnv1a(r.cover.data(), r.cover.size() * sizeof(VertexId)),
            row.cover_hash);
  EXPECT_EQ(fnv1a(r.freeze_iteration.data(),
                  r.freeze_iteration.size() * sizeof(std::uint32_t)),
            row.freeze_hash);

  EXPECT_EQ(r.metrics.rounds, row.metrics.rounds);
  EXPECT_EQ(r.metrics.max_sent_words, row.metrics.max_sent_words);
  EXPECT_EQ(r.metrics.max_received_words, row.metrics.max_received_words);
  EXPECT_EQ(r.metrics.peak_storage_words, row.metrics.peak_storage_words);
  EXPECT_EQ(r.metrics.violations, row.metrics.violations);
  EXPECT_EQ(r.metrics.total_words, row.metrics.total_words);

  // Structural sanity of the frontier telemetry: one entry per phase,
  // non-increasing (the frontier only shrinks), starting at n.
  ASSERT_EQ(r.active_per_phase.size(), r.phases);
  for (std::size_t p = 0; p + 1 < r.active_per_phase.size(); ++p) {
    EXPECT_GE(r.active_per_phase[p], r.active_per_phase[p + 1]);
  }
  if (!r.active_per_phase.empty()) {
    EXPECT_EQ(r.active_per_phase.front(), g.num_vertices());
  }
  // Same for the frontier-internal edge counts (what the ActiveArcs-based
  // distribute loop actually scans): per phase, non-increasing, starting
  // at the full edge count while everything is active.
  ASSERT_EQ(r.frontier_edges_per_phase.size(), r.phases);
  for (std::size_t p = 0; p + 1 < r.frontier_edges_per_phase.size(); ++p) {
    EXPECT_GE(r.frontier_edges_per_phase[p],
              r.frontier_edges_per_phase[p + 1]);
  }
  if (!r.frontier_edges_per_phase.empty()) {
    EXPECT_EQ(r.frontier_edges_per_phase.front(), g.num_edges());
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, MatchingRegression,
                         ::testing::Range<std::size_t>(0, std::size(kGolden)),
                         [](const auto& info) {
                           const GoldenRow& row = kGolden[info.param];
                           return std::string(row.family) + "_" +
                                  std::to_string(row.n);
                         });

}  // namespace
}  // namespace mpcg
