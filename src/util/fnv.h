// Word-granular 64-bit FNV-1a — the stream checksum of the integrity
// layer in both engines (mpc::Config::integrity, cclique::Engine).
// Folding whole 64-bit words instead of bytes keeps the hot-path cost at
// one xor-multiply per appended word; a single flipped bit anywhere in the
// stream still changes the digest.
#ifndef MPCG_UTIL_FNV_H
#define MPCG_UTIL_FNV_H

#include <cstdint>
#include <span>

namespace mpcg {

struct Fnv {
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  static constexpr std::uint64_t fold(std::uint64_t h,
                                      std::uint64_t w) noexcept {
    return (h ^ w) * kPrime;
  }
  [[nodiscard]] static constexpr std::uint64_t digest(
      std::span<const std::uint64_t> words) noexcept {
    std::uint64_t h = kOffset;
    for (const std::uint64_t w : words) h = fold(h, w);
    return h;
  }
};

}  // namespace mpcg

#endif  // MPCG_UTIL_FNV_H
