// E9 (Theorem 1.2): integral (2+eps)-approximate maximum matching and
// (2+eps)-approximate minimum vertex cover in O(log log n) rounds.
//
// Table rows: family sweep (exact nu via blossom) and n sweep for the
// round shape. Claims: `matching_factor` = nu/|M| <= 2+eps;
// `cover_over_nu` <= 2+50eps (|VC*| >= nu certifies the factor).
#include "baselines/blossom.h"
#include "bench_util.h"
#include "core/integral_matching.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

constexpr double kEps = 0.1;

void E09_Approximation(benchmark::State& state, const char* family) {
  const Graph g = graph_family(family, 1 << 10, 29);
  IntegralMatchingOptions opt;
  opt.eps = kEps;
  opt.seed = 29;
  IntegralMatchingResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = integral_matching(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.matching.size());
  }
  emit_json_line(std::string("E09_Approximation/") + family,
                 g.num_vertices(), g.num_edges(), r.total_rounds, wall_ms, 0);
  const double nu = static_cast<double>(maximum_matching_size(g));
  state.counters["nu"] = nu;
  state.counters["matching_size"] = static_cast<double>(r.matching.size());
  state.counters["matching_factor"] =
      r.matching.empty() ? 0.0 : nu / static_cast<double>(r.matching.size());
  state.counters["claimed_factor"] = 2.0 + kEps;
  state.counters["cover_over_nu"] =
      nu > 0 ? static_cast<double>(r.cover.size()) / nu : 0.0;
  state.counters["a_path_size"] = static_cast<double>(r.a_path_size);
  state.counters["small_path_size"] =
      static_cast<double>(r.small_path_size);
  state.counters["iterations_of_A"] = static_cast<double>(r.iterations);
}

void E09_RoundsVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 12.0, 31);
  IntegralMatchingOptions opt;
  opt.eps = kEps;
  opt.seed = 31;
  IntegralMatchingResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = integral_matching(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.matching.size());
  }
  emit_json_line("E09_RoundsVsN/" + std::to_string(n), n, g.num_edges(),
                 r.total_rounds, wall_ms, 0);
  state.counters["n"] = static_cast<double>(n);
  state.counters["total_rounds"] = static_cast<double>(r.total_rounds);
  state.counters["first_run_rounds"] =
      static_cast<double>(r.first_run_rounds);
  state.counters["loglog_n"] = log2log2(static_cast<double>(n));
  state.counters["iterations_of_A"] = static_cast<double>(r.iterations);
}
BENCHMARK(E09_RoundsVsN)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void register_all() {
  for (const char* family : family_names()) {
    benchmark::RegisterBenchmark(
        (std::string("E09_Approximation/") + family).c_str(),
        [family](benchmark::State& s) { E09_Approximation(s, family); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
