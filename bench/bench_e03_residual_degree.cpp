// E3 (Lemma 3.1): after greedy has consumed ranks 1..r, the residual graph
// has maximum degree O(n log n / r) — the paper's proof uses the explicit
// constant 20.
//
// Figure series: measured residual max degree vs the bound, over a rank
// sweep on two families. `bound_ratio` (measured / bound) must stay << 1.
#include "baselines/greedy_mis.h"
#include "bench_util.h"
#include "util/permutation.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

std::size_t residual_max_degree(const Graph& g, const GreedyMisTrace& trace,
                                std::uint32_t rank) {
  const auto residual = residual_vertices_after_rank(trace, rank);
  std::vector<char> alive(g.num_vertices(), 0);
  for (const VertexId v : residual) alive[v] = 1;
  std::size_t best = 0;
  for (const VertexId v : residual) {
    std::size_t d = 0;
    for (const Arc& a : g.arcs(v)) {
      if (alive[a.to]) ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

void run(benchmark::State& state, const char* tag, const Graph& g,
         std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  const auto divisor = static_cast<std::size_t>(state.range(0));
  const auto rank = static_cast<std::uint32_t>(n / divisor);

  std::size_t measured = 0;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    Rng rng(seed);
    const auto perm = random_permutation(n, rng);
    const auto trace = greedy_mis_trace(g, perm);
    measured = residual_max_degree(g, trace, rank);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(measured);
  }
  emit_json_line(std::string("E03_ResidualDegree/") + tag + "/" +
                     std::to_string(divisor),
                 n, g.num_edges(), 0, wall_ms, measured);
  const double bound = 20.0 * static_cast<double>(n) *
                       std::log(static_cast<double>(n)) /
                       static_cast<double>(rank);
  state.counters["rank"] = static_cast<double>(rank);
  state.counters["residual_max_deg"] = static_cast<double>(measured);
  state.counters["lemma31_bound"] = bound;
  state.counters["bound_ratio"] = static_cast<double>(measured) / bound;
}

void E03_ResidualDegree_Gnp(benchmark::State& state) {
  run(state, "gnp", gnp_with_degree(1 << 14, 32.0, 5), 5);
}
BENCHMARK(E03_ResidualDegree_Gnp)
    ->Arg(256)
    ->Arg(64)
    ->Arg(16)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void E03_ResidualDegree_PowerLaw(benchmark::State& state) {
  run(state, "power_law", graph_family("power_law", 1 << 14, 5), 6);
}
BENCHMARK(E03_ResidualDegree_PowerLaw)
    ->Arg(256)
    ->Arg(64)
    ->Arg(16)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
