// E6 (Lemma 4.2): MPC-Simulation runs O(log log n) phases with O(n) words
// per machine and yields a (2+50eps) fractional matching + vertex cover,
// with at least |C|/3 of the cover at load >= 1-5eps.
//
// Table rows: n sweep (phase shape + memory) and family sweep at fixed n
// (approximation, with exact nu). Shape: `phases` grows ~additively as n is
// squared; `matching_factor` stays well under 2+50eps (claimed_factor);
// `cover_heavy_fraction` >= 1/3.
#include <cstring>
#include <filesystem>
#include <system_error>
#include <vector>

#include "baselines/blossom.h"
#include "bench_util.h"
#include "core/matching_mpc.h"
#include "fault/fault_plan.h"
#include "graph/validation.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

constexpr double kEps = 0.1;

MatchingMpcOptions opts(std::uint64_t seed) {
  MatchingMpcOptions o;
  o.eps = kEps;
  o.seed = seed;
  o.threshold_seed = seed + 1;
  return o;
}

void E06_PhasesVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 13);
  MatchingMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = matching_mpc(g, opts(13));
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }
  emit_json_line("E06_PhasesVsN/" + std::to_string(n), n, g.num_edges(),
                 r.metrics.rounds, wall_ms, r.metrics.peak_storage_words);
  std::size_t max_local = 0;
  for (const std::size_t e : r.max_local_edges_per_phase) {
    max_local = std::max(max_local, e);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["phases"] = static_cast<double>(r.phases);
  state.counters["loglog_n"] = log2log2(static_cast<double>(n));
  state.counters["engine_rounds"] = static_cast<double>(r.metrics.rounds);
  state.counters["tail_iterations"] = static_cast<double>(r.tail_iterations);
  state.counters["max_local_edges_over_n"] =
      static_cast<double>(max_local) / static_cast<double>(n);
  state.counters["violations"] = static_cast<double>(r.metrics.violations);
  // Residual frontier: phase work is proportional to these counts.
  if (!r.active_per_phase.empty()) {
    state.counters["frontier_first_phase"] =
        static_cast<double>(r.active_per_phase.front());
    state.counters["frontier_last_phase"] =
        static_cast<double>(r.active_per_phase.back());
  }
}
BENCHMARK(E06_PhasesVsN)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    // 2^18 is the CI smoke row for the matching driver: big enough that
    // the per-phase frontier loops dominate (what the ActiveSet port
    // targets), small enough for a PR-gate budget.
    ->Arg(1 << 18)
    // 2^20 runs ~1024 simulation machines (flat exchange path) and the
    // announce() gather+broadcast traffic dominates — the broadcast-heavy
    // row the zero-copy message plane is tuned against.
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Frontier-decay rows: workloads whose active frontier collapses early
// (rmat's skewed degrees, star's hub freeze) rather than staying ~full
// until the tail like gnp. Phase edge work is ActiveArcs-proportional, so
// these rows are where the second-level compaction shows: the per-phase
// frontier-arc counters report how fast the scanned edge set shrinks
// relative to the (alive) edge set a frontier-insensitive scan would keep
// touching.
void E06_FrontierDecay(benchmark::State& state, const char* family) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = graph_family(family, n, 19);
  MatchingMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = matching_mpc(g, opts(19));
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }
  emit_json_line(std::string("E06_FrontierDecay/") + family + "/" +
                     std::to_string(n),
                 n, g.num_edges(), r.metrics.rounds, wall_ms,
                 r.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["phases"] = static_cast<double>(r.phases);
  state.counters["engine_rounds"] = static_cast<double>(r.metrics.rounds);
  // Per-phase frontier-arc telemetry: total arcs the distribute loops
  // scanned across the run, versus what a full alive-arc rescan per phase
  // would have cost — the ActiveArcs win is the ratio.
  std::size_t frontier_arc_total = 0;
  for (const std::size_t e : r.frontier_edges_per_phase) {
    frontier_arc_total += e;
  }
  state.counters["frontier_arcs_total"] =
      static_cast<double>(frontier_arc_total);
  state.counters["full_rescan_arcs"] =
      static_cast<double>(g.num_edges() * r.phases);
  state.counters["frontier_arc_fraction"] =
      r.phases == 0 ? 1.0
                    : static_cast<double>(frontier_arc_total) /
                          static_cast<double>(g.num_edges() * r.phases);
  if (!r.frontier_edges_per_phase.empty()) {
    state.counters["frontier_edges_first_phase"] =
        static_cast<double>(r.frontier_edges_per_phase.front());
    state.counters["frontier_edges_last_phase"] =
        static_cast<double>(r.frontier_edges_per_phase.back());
  }
  if (!r.active_per_phase.empty()) {
    state.counters["frontier_last_phase"] =
        static_cast<double>(r.active_per_phase.back());
  }
}

void E06_Approximation(benchmark::State& state, const char* family) {
  const Graph g = graph_family(family, 1 << 10, 17);
  MatchingMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = matching_mpc(g, opts(17));
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }
  emit_json_line(std::string("E06_Approximation/") + family, g.num_vertices(),
                 g.num_edges(), r.metrics.rounds, wall_ms,
                 r.metrics.peak_storage_words);
  const double nu = static_cast<double>(maximum_matching_size(g));
  const double w = fractional_weight(r.x);
  const auto loads = vertex_loads(g, r.x);
  std::size_t heavy = 0;
  for (const VertexId v : r.cover) {
    if (loads[v] >= 1.0 - 5.0 * kEps) ++heavy;
  }
  state.counters["nu"] = nu;
  state.counters["fractional_weight"] = w;
  state.counters["matching_factor"] = w > 0 ? nu / w : 0.0;
  state.counters["claimed_factor"] = 2.0 + 50.0 * kEps;
  state.counters["cover_over_nu"] =
      nu > 0 ? static_cast<double>(r.cover.size()) / nu : 0.0;
  state.counters["cover_heavy_fraction"] =
      r.cover.empty() ? 1.0
                      : static_cast<double>(heavy) /
                            static_cast<double>(r.cover.size());
}

// Fault-recovery overhead: the same run with a pinned crash schedule,
// recovered through the round-level checkpoint. Copy-on-fault
// checkpointing means fault-free rounds pay one branch, so the measured
// overhead (overhead_pct) should stay under ~10% wall-clock; the outputs
// are bit-identical either way (asserted here, pinned by
// tests/fault_tolerance_test.cpp).
void E06_FaultRecovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 13);
  const MatchingMpcOptions clean_opt = opts(13);

  MatchingMpcResult clean;
  double clean_ms = 0.0;
  {
    const WallTimer timer;
    clean = matching_mpc(g, clean_opt);
    clean_ms = timer.elapsed_ms();
  }
  const fault::FaultPlan plan = fault::FaultPlan::random_crashes(
      /*seed=*/13, /*num_machines=*/4,
      std::max<std::size_t>(1, clean.metrics.rounds), /*count=*/5);
  MatchingMpcOptions faulty_opt = clean_opt;
  faulty_opt.fault_plan = &plan;

  MatchingMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = matching_mpc(g, faulty_opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }
  const bool identical = r.x == clean.x && r.cover == clean.cover &&
                         r.freeze_iteration == clean.freeze_iteration &&
                         r.metrics.rounds == clean.metrics.rounds;
  const double overhead_pct =
      clean_ms > 0.0 ? 100.0 * (wall_ms - clean_ms) / clean_ms : 0.0;
  emit_json_line("E06_FaultRecovery/" + std::to_string(n), n, g.num_edges(),
                 r.metrics.rounds, wall_ms, r.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["clean_ms"] = clean_ms;
  state.counters["faulty_ms"] = wall_ms;
  state.counters["overhead_pct"] = overhead_pct;
  state.counters["recovery_identical"] = identical ? 1.0 : 0.0;
  state.counters["faults_injected"] =
      static_cast<double>(r.metrics.faults_injected);
  state.counters["rounds_replayed"] =
      static_cast<double>(r.metrics.rounds_replayed);
  state.counters["words_resent"] = static_cast<double>(r.metrics.words_resent);
  state.counters["checkpoint_bytes"] =
      static_cast<double>(r.metrics.checkpoint_bytes);
}
BENCHMARK(E06_FaultRecovery)
    ->Arg(1 << 14)
    // 2^16 is the acceptance row: recovery overhead under 10% wall-clock.
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Integrity overhead: the same fault-free run with per-sender stream
// checksums armed. The checksum is one xor-multiply folded at append time
// plus one digest comparison per (sender, round) at delivery, so the
// acceptance row (2^16) wants overhead_pct under ~5%; with integrity off
// the cost is exactly one branch per flush (overhead_off_pct ~ 0).
void E06_IntegrityOverhead(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 13);
  const MatchingMpcOptions clean_opt = opts(13);

  MatchingMpcResult clean;
  double clean_ms = 0.0;
  {
    const WallTimer timer;
    clean = matching_mpc(g, clean_opt);
    clean_ms = timer.elapsed_ms();
  }

  MatchingMpcOptions integrity_opt = clean_opt;
  integrity_opt.integrity = true;
  MatchingMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = matching_mpc(g, integrity_opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }
  // A second clean pass bounds the no-integrity overhead (the single
  // branch per flush) against run-to-run noise.
  double off_ms = 0.0;
  {
    const WallTimer timer;
    const auto again = matching_mpc(g, clean_opt);
    off_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(again.x.data());
  }

  const bool identical = r.x == clean.x && r.cover == clean.cover &&
                         r.freeze_iteration == clean.freeze_iteration &&
                         r.metrics.rounds == clean.metrics.rounds &&
                         r.metrics.total_words == clean.metrics.total_words;
  emit_json_line("E06_IntegrityOverhead/" + std::to_string(n), n,
                 g.num_edges(), r.metrics.rounds, wall_ms,
                 r.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["clean_ms"] = clean_ms;
  state.counters["integrity_ms"] = wall_ms;
  state.counters["overhead_pct"] =
      clean_ms > 0.0 ? 100.0 * (wall_ms - clean_ms) / clean_ms : 0.0;
  state.counters["overhead_off_pct"] =
      clean_ms > 0.0 ? 100.0 * (off_ms - clean_ms) / clean_ms : 0.0;
  state.counters["integrity_identical"] = identical ? 1.0 : 0.0;
  // Clean runs under integrity must never charge the repair fields.
  state.counters["corruptions_detected"] =
      static_cast<double>(r.metrics.corruptions_detected);
  state.counters["words_retransmitted"] =
      static_cast<double>(r.metrics.words_retransmitted);
}
BENCHMARK(E06_IntegrityOverhead)
    ->Arg(1 << 14)
    // 2^16 is the acceptance row: checksum overhead under 5% wall-clock.
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Durable-store integrity overhead: the same workload with the per-blob
// store digests, a round-boundary scrub, and an early-round store-rot
// schedule armed.  Rot is detected by the publish-time digests and
// repaired in place from the publisher's retained copy, so outputs stay
// bit-identical (store_integrity_identical) and every injected rot is
// caught (store detected == injected).  The acceptance row (2^16) wants
// overhead at noise level: the digests fold at stage time and the repair
// path only runs on faulted rounds.
void E06_StoreIntegrityOverhead(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 17);
  const MatchingMpcOptions clean_opt = opts(17);

  MatchingMpcResult clean;
  double clean_ms = 0.0;
  {
    const WallTimer timer;
    clean = matching_mpc(g, clean_opt);
    clean_ms = timer.elapsed_ms();
  }

  // Store rot across the early rounds of both low machines; rounds with an
  // empty store are no-ops.
  fault::FaultPlan plan;
  for (std::size_t r = 1; r + 1 < clean.metrics.rounds && r <= 6; ++r) {
    plan.add_corrupt_store(0, r);
    plan.add_corrupt_store(1, r);
  }
  MatchingMpcOptions store_opt = clean_opt;
  store_opt.fault_plan = plan.empty() ? nullptr : &plan;
  store_opt.integrity = true;
  store_opt.scrub_interval = 4;
  MatchingMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = matching_mpc(g, store_opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }

  const bool identical = r.x == clean.x && r.cover == clean.cover &&
                         r.freeze_iteration == clean.freeze_iteration &&
                         r.metrics.rounds == clean.metrics.rounds &&
                         r.metrics.total_words == clean.metrics.total_words;
  emit_json_line("E06_StoreIntegrityOverhead/" + std::to_string(n), n,
                 g.num_edges(), r.metrics.rounds, wall_ms,
                 r.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["clean_ms"] = clean_ms;
  state.counters["store_integrity_ms"] = wall_ms;
  state.counters["overhead_pct"] =
      clean_ms > 0.0 ? 100.0 * (wall_ms - clean_ms) / clean_ms : 0.0;
  state.counters["store_integrity_identical"] = identical ? 1.0 : 0.0;
  state.counters["store_corruptions_injected"] =
      static_cast<double>(r.metrics.store_corruptions_injected);
  state.counters["store_corruptions_detected"] =
      static_cast<double>(r.metrics.store_corruptions_detected);
  state.counters["store_words_repaired"] =
      static_cast<double>(r.metrics.store_words_repaired);
  state.counters["scrub_passes"] =
      static_cast<double>(r.metrics.scrub_passes);
}
BENCHMARK(E06_StoreIntegrityOverhead)
    ->Arg(1 << 14)
    // 2^16 is the acceptance row: store digests + scrub at noise level.
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Backend parity (see mpc/backend.h): the same workload on the sequential
// reference, on the parallel backend pinned to 1 thread (which must take
// the identical code path), and on a 4-thread pool. The contract this row
// pins is *determinism first*: outputs, freeze iterations, and every
// logical engine metric bit-identical across backends (parity_identical),
// with the sequential wall-clock within noise of the pre-backend engine
// (the other E06 rows track that) and the parallel arms within a sane
// band of it (parity_pct — this box has one core, so speedups are out of
// scope; the row exists to catch pathological pool overhead).
void E06_BackendParity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 13);
  const MatchingMpcOptions seq_opt = opts(13);

  MatchingMpcResult seq;
  double seq_ms = 0.0;
  {
    const WallTimer timer;
    seq = matching_mpc(g, seq_opt);
    seq_ms = timer.elapsed_ms();
  }

  MatchingMpcOptions par1_opt = seq_opt;
  par1_opt.threads = 1;
  MatchingMpcResult par1;
  double par1_ms = 0.0;
  {
    const WallTimer timer;
    par1 = matching_mpc(g, par1_opt);
    par1_ms = timer.elapsed_ms();
  }

  MatchingMpcOptions par4_opt = seq_opt;
  par4_opt.threads = 4;
  MatchingMpcResult par4;
  double par4_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    par4 = matching_mpc(g, par4_opt);
    par4_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(par4.x.data());
  }

  const auto identical = [&seq](const MatchingMpcResult& r) {
    return r.x == seq.x && r.cover == seq.cover &&
           r.freeze_iteration == seq.freeze_iteration &&
           std::memcmp(&r.metrics, &seq.metrics, sizeof(mpc::Metrics)) == 0;
  };
  emit_json_line("E06_BackendParity/" + std::to_string(n), n, g.num_edges(),
                 par4.metrics.rounds, par4_ms,
                 par4.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["seq_ms"] = seq_ms;
  state.counters["par1_ms"] = par1_ms;
  state.counters["par4_ms"] = par4_ms;
  state.counters["parity_pct"] =
      seq_ms > 0.0 ? 100.0 * (par4_ms - seq_ms) / seq_ms : 0.0;
  state.counters["parity_identical"] =
      identical(par1) && identical(par4) ? 1.0 : 0.0;
}
BENCHMARK(E06_BackendParity)
    ->Arg(1 << 16)
    // 2^18 is the CI smoke row: backend parity at the matching smoke size.
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// On-disk checkpoint overhead: the same fault-free run persisting a
// durable generation every 4th safe point (see fault/durable.h). A durable
// generation is a fresh serialization of the registered providers plus the
// engine section, written through the two-slot ring with an atomic rename,
// so the acceptance row (2^16) wants overhead_pct under ~5% wall-clock —
// and the outputs bit-identical to the non-persistent run
// (durable_identical).
void E06_DiskCheckpointOverhead(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 13);
  const MatchingMpcOptions clean_opt = opts(13);

  MatchingMpcResult clean;
  double clean_ms = 0.0;
  {
    const WallTimer timer;
    clean = matching_mpc(g, clean_opt);
    clean_ms = timer.elapsed_ms();
  }

  std::string dir;
  {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr && *base != '\0' ? base : "/tmp") +
        "/mpcg_bench_ck.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      state.SkipWithError("mkdtemp failed");
      return;
    }
    dir = buf.data();
  }
  MatchingMpcOptions durable_opt = clean_opt;
  durable_opt.durable.dir = dir + "/ck";
  durable_opt.durable.every = 4;
  MatchingMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = matching_mpc(g, durable_opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }
  // A second clean pass bounds run-to-run noise, as in the other overhead
  // rows.
  double off_ms = 0.0;
  {
    const WallTimer timer;
    const auto again = matching_mpc(g, clean_opt);
    off_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(again.x.data());
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const bool identical = r.x == clean.x && r.cover == clean.cover &&
                         r.freeze_iteration == clean.freeze_iteration &&
                         r.metrics.rounds == clean.metrics.rounds &&
                         r.metrics.total_words == clean.metrics.total_words;
  emit_json_line("E06_DiskCheckpointOverhead/" + std::to_string(n), n,
                 g.num_edges(), r.metrics.rounds, wall_ms,
                 r.metrics.peak_storage_words);
  state.counters["n"] = static_cast<double>(n);
  state.counters["clean_ms"] = clean_ms;
  state.counters["durable_ms"] = wall_ms;
  state.counters["overhead_pct"] =
      clean_ms > 0.0 ? 100.0 * (wall_ms - clean_ms) / clean_ms : 0.0;
  state.counters["overhead_off_pct"] =
      clean_ms > 0.0 ? 100.0 * (off_ms - clean_ms) / clean_ms : 0.0;
  state.counters["durable_identical"] = identical ? 1.0 : 0.0;
  state.counters["disk_checkpoints_written"] =
      static_cast<double>(r.metrics.disk_checkpoints_written);
  state.counters["disk_checkpoint_words"] =
      static_cast<double>(r.metrics.disk_checkpoint_words);
  // A clean persistent run never loads or falls back.
  state.counters["resume_loads"] =
      static_cast<double>(r.metrics.resume_loads);
  state.counters["disk_fallbacks"] =
      static_cast<double>(r.metrics.disk_fallbacks);
}
BENCHMARK(E06_DiskCheckpointOverhead)
    ->Arg(1 << 14)
    // 2^16 is the acceptance row: durable persistence under 5% wall-clock.
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void register_all() {
  for (const char* family : family_names()) {
    benchmark::RegisterBenchmark(
        (std::string("E06_Approximation/") + family).c_str(),
        [family](benchmark::State& s) { E06_Approximation(s, family); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  // Frontier-decay workloads (see E06_FrontierDecay): 2^18 is the CI smoke
  // size, 2^20 the headline row next to the gnp 2^20 one.
  for (const char* family : {"rmat", "star", "power_law"}) {
    benchmark::RegisterBenchmark(
        (std::string("E06_FrontierDecay/") + family).c_str(),
        [family](benchmark::State& s) { E06_FrontierDecay(s, family); })
        ->Arg(1 << 18)
        ->Arg(1 << 20)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
