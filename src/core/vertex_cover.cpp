#include "core/vertex_cover.h"

#include "graph/validation.h"

namespace mpcg {

VertexCoverResult minimum_vertex_cover_mpc(const Graph& g,
                                           const MatchingMpcOptions& options) {
  const MatchingMpcResult run = matching_mpc(g, options);
  VertexCoverResult result;
  result.cover = run.cover;
  result.dual_certificate = fractional_weight(run.x);
  result.rounds = run.metrics.rounds;
  result.phases = run.phases;
  result.frontier_per_phase = run.active_per_phase;
  result.frontier_edges_per_phase = run.frontier_edges_per_phase;
  return result;
}

}  // namespace mpcg
