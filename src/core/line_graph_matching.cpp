#include "core/line_graph_matching.h"

#include "graph/graph_algos.h"

namespace mpcg {

LineGraphMatchingResult line_graph_matching_mpc(const Graph& g,
                                                const MisMpcOptions& options) {
  LineGraphMatchingResult result;
  const Graph lg = line_graph(g);
  result.line_vertices = lg.num_vertices();
  result.line_edges = lg.num_edges();
  result.mis = mis_mpc(lg, options);
  result.matching = matching_from_line_graph_mis(result.mis.mis);
  return result;
}

}  // namespace mpcg
