// mpcg_run — command-line driver for the library.
//
// Runs any of the paper's algorithms on a generated family or a graph
// file, printing a one-object summary (tab-separated key value lines) that
// scripts can consume.
//
// Usage:
//   mpcg_run --algo mis|mis_cc|matching|vc|one_plus_eps|weighted|baselines
//                   |sort|route
//            [--family gnp_dense --n 4096 | --input graph.txt]
//            [--seed 1] [--eps 0.1] [--check]
//            [--backend seq|parallel] [--threads N]
//            [--faults "crash:<machine>@<round>,corrupt:1@4,
//                       corrupt_store:0@5,corrupt_ckpt:2@6,..."]
//            [--words W] [--reprovision] [--integrity] [--audit]
//            [--scrub-interval K]
//
// --faults attaches a deterministic fault schedule to the engine (mis,
// matching, vc, mis_cc, sort, route); recovery replays the faulted rounds
// from the round checkpoint, so outputs are bit-identical to the
// fault-free run and the overhead shows up in the fault metrics lines.
// --reprovision retries a run that breaches capacity (or exhausts its
// crash budget) with doubled per-machine memory, up to a bounded number of
// attempts. --integrity arms the per-sender stream checksums and the
// durable-store digests (required for corrupt/corrupt_store faults to be
// detected and repaired); --audit checks conservation invariants every
// round. --scrub-interval K runs a proactive verification sweep over the
// streams, the payload store, and the checkpoint generations every K
// rounds (0 = never; requires --integrity).
//
// `sort` runs the distributed sample sort on seeded words; `route` runs
// Lenzen routing on the congested clique plus a ring exchange — both are
// primitive-level fault surfaces with from-scratch --check validation.
//
// --backend selects the execution backend (see src/mpc/backend.h): `seq`
// (default) is the sequential reference; `parallel` runs the engine
// flushes and driver staging loops over a shared-memory pool (4 threads
// unless --threads says otherwise) with bit-identical outputs and logical
// metrics. --threads N sets the pool width explicitly (N = 1 is seq).
// Applies to the engine-backed algos (mis, mis_cc, matching, vc, sort,
// route); the message-passing baselines ignore it.
//
// --check validates the output and exits 3 on an invalid solution.
//
// Examples:
//   mpcg_run --algo mis --family power_law --n 20000 --seed 7
//   mpcg_run --algo matching --input my_graph.txt --eps 0.05 --check
//   mpcg_run --algo matching --n 4096 --faults crash:0@3,crash:2@7 --check
//   mpcg_run --algo sort --n 4096 --faults corrupt:1@2 --integrity --check
//
// On-disk durability (mis, matching, vc, mis_cc):
//   --checkpoint-dir D       persist a verified two-slot generation ring
//                            under D at driver safe points
//   --checkpoint-every K     persist every K-th safe point (default 1)
//   --checkpoint-generations N  in-memory checkpoint ring depth (>= 1)
//   --resume                 resume from the newest verified generation in
//                            D (scope mismatch or empty D = fresh start)
//   --stop-after-safe-points N  deterministic stop hook: behave as if
//                            SIGTERM arrived at the N-th safe point (CI
//                            smokes use this to pin the interrupt point)
// With --checkpoint-dir set, SIGTERM/SIGINT finish the in-flight round,
// flush one final generation, and exit with status 75 ("resumable");
// relaunching the identical command line with --resume continues to
// bit-identical outputs. kill -9 survives too, losing at most the work
// since the last persisted safe point.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <tuple>

#include "mpcg.h"
#include "util/flags.h"

namespace {

using namespace mpcg;

/// Set by the SIGTERM/SIGINT handler (installed only when --checkpoint-dir
/// is given) and polled by the engines at safe points.
std::atomic<bool> g_stop{false};

}  // namespace

extern "C" void mpcg_run_handle_stop(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

namespace {

void print_kv(const char* key, double value) {
  std::printf("%s\t%.6g\n", key, value);
}
void print_kv(const char* key, std::size_t value) {
  std::printf("%s\t%zu\n", key, value);
}

void print_fault_metrics(const mpc::Metrics& m) {
  print_kv("faults_injected", m.faults_injected);
  print_kv("rounds_replayed", m.rounds_replayed);
  print_kv("words_resent", m.words_resent);
  print_kv("checkpoint_bytes", m.checkpoint_bytes);
  print_kv("corruptions_injected", m.corruptions_injected);
  print_kv("corruptions_detected", m.corruptions_detected);
  print_kv("words_retransmitted", m.words_retransmitted);
  print_kv("store_corruptions_injected", m.store_corruptions_injected);
  print_kv("store_corruptions_detected", m.store_corruptions_detected);
  print_kv("store_words_repaired", m.store_words_repaired);
  print_kv("checkpoint_fallbacks", m.checkpoint_fallbacks);
  print_kv("scrub_passes", m.scrub_passes);
}

void print_fault_metrics(const cclique::Metrics& m) {
  print_kv("faults_injected", m.faults_injected);
  print_kv("rounds_replayed", m.rounds_replayed);
  print_kv("words_resent", m.words_resent);
  print_kv("checkpoint_bytes", m.checkpoint_bytes);
  print_kv("corruptions_injected", m.corruptions_injected);
  print_kv("corruptions_detected", m.corruptions_detected);
  print_kv("words_retransmitted", m.words_retransmitted);
  print_kv("store_corruptions_injected", m.store_corruptions_injected);
  print_kv("store_corruptions_detected", m.store_corruptions_detected);
  print_kv("store_words_repaired", m.store_words_repaired);
  print_kv("checkpoint_fallbacks", m.checkpoint_fallbacks);
  print_kv("scrub_passes", m.scrub_passes);
}

void print_disk_metrics(const mpc::Metrics& m) {
  print_kv("disk_checkpoints_written", m.disk_checkpoints_written);
  print_kv("disk_checkpoint_words", m.disk_checkpoint_words);
  print_kv("resume_loads", m.resume_loads);
  print_kv("disk_fallbacks", m.disk_fallbacks);
  print_kv("faults_skipped_on_resume", m.faults_skipped_on_resume);
}

void print_disk_metrics(const cclique::Metrics& m) {
  print_kv("disk_checkpoints_written", m.disk_checkpoints_written);
  print_kv("disk_checkpoint_words", m.disk_checkpoint_words);
  print_kv("resume_loads", m.resume_loads);
  print_kv("disk_fallbacks", m.disk_fallbacks);
  print_kv("faults_skipped_on_resume", m.faults_skipped_on_resume);
}

void print_reprovision_failures(
    const std::vector<std::string>& failures) {
  for (const std::string& f : failures) {
    std::fprintf(stderr, "reprovision: %s\n", f.c_str());
  }
}

/// Auto-sizing base the drivers use for words_per_machine (8n), so the
/// reprovision scale has a concrete number to multiply.
std::size_t base_words(std::size_t requested, std::size_t n) {
  return requested != 0 ? requested : 8 * std::max<std::size_t>(n, 64);
}

int run(const Flags& flags) {
  const std::string algo = flags.get_string("algo", "mis");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double eps = flags.get_double("eps", 0.1);
  const bool check = flags.get_bool("check", false);

  Graph g;
  std::vector<double> weights;
  if (flags.has("input")) {
    auto loaded = read_edge_list_file(flags.get_string("input", ""));
    g = std::move(loaded.graph);
    if (loaded.weights) weights = std::move(*loaded.weights);
  } else {
    const std::string family = flags.get_string("family", "gnp_dense");
    const auto n = static_cast<std::size_t>(flags.get_int("n", 4096));
    g = graph_family(family, n, seed);
  }
  if (weights.empty() && algo == "weighted") {
    Rng rng(seed);
    weights = exponential_weights(g, 1.0, rng);
  }

  const std::string faults_spec = flags.get_string("faults", "");
  const bool reprovision = flags.get_bool("reprovision", false);
  const bool integrity = flags.get_bool("integrity", false);
  const bool audit = flags.get_bool("audit", false);
  const auto scrub_interval =
      static_cast<std::size_t>(flags.get_int("scrub-interval", 0));
  const auto words = static_cast<std::size_t>(flags.get_int("words", 0));

  const std::string backend = flags.get_string("backend", "");
  const std::int64_t threads_flag = flags.get_int("threads", 0);

  const std::string checkpoint_dir = flags.get_string("checkpoint-dir", "");
  const std::int64_t checkpoint_every = flags.get_int("checkpoint-every", 1);
  const std::int64_t checkpoint_generations =
      flags.get_int("checkpoint-generations", 0);
  const bool resume = flags.get_bool("resume", false);
  const std::int64_t stop_after_safe_points =
      flags.get_int("stop-after-safe-points", 0);

  const auto unused = flags.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unused.front().c_str());
    return 2;
  }

  if (!backend.empty() && backend != "seq" && backend != "parallel") {
    std::fprintf(stderr, "--backend must be seq or parallel (got %s)\n",
                 backend.c_str());
    return 2;
  }
  if (flags.has("threads") && threads_flag < 1) {
    std::fprintf(stderr, "--threads must be >= 1 (got %lld)\n",
                 static_cast<long long>(threads_flag));
    return 2;
  }
  std::size_t threads = backend == "parallel" ? 4 : 1;
  if (flags.has("threads")) threads = static_cast<std::size_t>(threads_flag);
  if (backend == "seq" && threads > 1) {
    std::fprintf(stderr, "--backend seq conflicts with --threads %zu\n",
                 threads);
    return 2;
  }

  const bool durable = !checkpoint_dir.empty();
  if (checkpoint_every < 1) {
    std::fprintf(stderr, "--checkpoint-every must be >= 1 (got %lld)\n",
                 static_cast<long long>(checkpoint_every));
    return 2;
  }
  if (flags.has("checkpoint-generations") && checkpoint_generations < 1) {
    std::fprintf(stderr, "--checkpoint-generations must be >= 1 (got %lld)\n",
                 static_cast<long long>(checkpoint_generations));
    return 2;
  }
  if (flags.has("stop-after-safe-points") && stop_after_safe_points < 1) {
    std::fprintf(stderr,
                 "--stop-after-safe-points must be >= 1 (got %lld)\n",
                 static_cast<long long>(stop_after_safe_points));
    return 2;
  }
  if (!durable && (resume || flags.has("checkpoint-every") ||
                   flags.has("checkpoint-generations") ||
                   flags.has("stop-after-safe-points"))) {
    std::fprintf(stderr,
                 "--resume/--checkpoint-every/--checkpoint-generations/"
                 "--stop-after-safe-points require --checkpoint-dir\n");
    return 2;
  }
  if (durable && algo != "mis" && algo != "matching" && algo != "vc" &&
      algo != "mis_cc") {
    std::fprintf(stderr, "--checkpoint-dir is only supported with --algo "
                         "mis|matching|vc|mis_cc\n");
    return 2;
  }
  fault::DurableOptions durable_opt;
  if (durable) {
    durable_opt.dir = checkpoint_dir;
    durable_opt.every = static_cast<std::size_t>(checkpoint_every);
    durable_opt.generations =
        static_cast<std::size_t>(checkpoint_generations);
    durable_opt.resume = resume;
    durable_opt.stop_flag = &g_stop;
    durable_opt.stop_after_safe_points =
        static_cast<std::size_t>(stop_after_safe_points);
    std::signal(SIGTERM, mpcg_run_handle_stop);
    std::signal(SIGINT, mpcg_run_handle_stop);
  }

  fault::FaultPlan plan;
  if (!faults_spec.empty()) plan = fault::FaultPlan::parse(faults_spec);
  const fault::FaultPlan* plan_ptr = plan.empty() ? nullptr : &plan;
  if (plan_ptr != nullptr && algo != "mis" && algo != "matching" &&
      algo != "vc" && algo != "mis_cc" && algo != "sort" &&
      algo != "route") {
    std::fprintf(stderr, "--faults is only supported with --algo "
                         "mis|matching|vc|mis_cc|sort|route\n");
    return 2;
  }

  print_kv("n", g.num_vertices());
  print_kv("m", g.num_edges());
  print_kv("max_degree", g.max_degree());

  if (algo == "mis") {
    MisMpcOptions opt;
    opt.seed = seed;
    opt.words_per_machine = words;
    opt.threads = threads;
    opt.fault_plan = plan_ptr;
    opt.integrity = integrity;
    opt.audit = audit;
    opt.scrub_interval = scrub_interval;
    opt.durable = durable_opt;
    MisMpcResult r;
    if (reprovision) {
      auto outcome = fault::run_with_reprovision(
          fault::ReprovisionPolicy{},
          [&](std::size_t scale) {
            MisMpcOptions o = opt;
            o.words_per_machine =
                base_words(o.words_per_machine, g.num_vertices()) * scale;
            return mis_mpc(g, o);
          },
          [](const MisMpcResult& res) {
            return res.metrics.violations == 0;
          });
      print_reprovision_failures(outcome.failures);
      if (!outcome.ok()) return 1;
      print_kv("reprovision_attempts", outcome.attempts);
      print_kv("reprovision_scale", outcome.scale);
      r = std::move(*outcome.result);
    } else {
      r = mis_mpc(g, opt);
    }
    print_kv("mis_size", r.mis.size());
    print_kv("rank_phases", r.rank_phases);
    print_kv("engine_rounds", r.metrics.rounds);
    print_kv("peak_words", r.metrics.peak_storage_words);
    if (plan_ptr != nullptr) print_fault_metrics(r.metrics);
    if (durable) print_disk_metrics(r.metrics);
    if (check) {
      const bool valid = is_maximal_independent_set(g, r.mis);
      print_kv("valid", static_cast<std::size_t>(valid));
      if (!valid) return 3;
    }
    return 0;
  }
  if (algo == "mis_cc") {
    MisCcliqueOptions opt;
    opt.seed = seed;
    opt.threads = threads;
    opt.fault_plan = plan_ptr;
    opt.integrity = integrity;
    opt.audit = audit;
    opt.scrub_interval = scrub_interval;
    opt.durable = durable_opt;
    const auto r = mis_cclique(g, opt);
    print_kv("mis_size", r.mis.size());
    print_kv("clique_rounds", r.metrics.rounds);
    print_kv("lenzen_batches", r.metrics.lenzen_batches);
    if (plan_ptr != nullptr) print_fault_metrics(r.metrics);
    if (durable) print_disk_metrics(r.metrics);
    if (check) {
      const bool valid = is_maximal_independent_set(g, r.mis);
      print_kv("valid", static_cast<std::size_t>(valid));
      if (!valid) return 3;
    }
    return 0;
  }
  if (algo == "sort") {
    // Primitive-level fault surface: distributed sample sort of seeded
    // words, cross-checked against a from-scratch std::sort.
    const std::size_t n_words = std::max<std::size_t>(g.num_vertices(), 64);
    const std::size_t machines = std::clamp<std::size_t>(n_words / 64, 2, 64);
    mpc::Config cfg{machines, base_words(words, n_words), true};
    cfg.threads = threads;
    cfg.integrity = integrity;
    cfg.audit = audit;
    cfg.scrub_interval = scrub_interval;
    mpc::Engine engine(cfg);
    fault::CheckpointRegistry registry;
    if (plan_ptr != nullptr) engine.set_fault_plan(plan_ptr, &registry);
    std::vector<std::vector<mpc::Word>> input(machines);
    for (std::size_t i = 0; i < n_words; ++i) {
      input[i % machines].push_back(mix64(seed, i, 0x5047ULL));
    }
    const auto slices = mpc::distributed_sort(engine, input);
    print_kv("sorted_words", n_words);
    print_kv("machines", machines);
    print_kv("engine_rounds", engine.metrics().rounds);
    if (plan_ptr != nullptr) print_fault_metrics(engine.metrics());
    if (check) {
      std::vector<mpc::Word> got;
      for (const auto& s : slices) got.insert(got.end(), s.begin(), s.end());
      std::vector<mpc::Word> want;
      for (const auto& in : input) want.insert(want.end(), in.begin(),
                                               in.end());
      std::sort(want.begin(), want.end());
      const bool valid = got == want;
      print_kv("valid", static_cast<std::size_t>(valid));
      if (!valid) return 3;
    }
    return 0;
  }
  if (algo == "route") {
    // Lenzen routing plus a ring exchange on the congested clique; the
    // delivered multiset is checked against the staged one from scratch.
    const std::size_t players = std::clamp<std::size_t>(g.num_vertices(),
                                                        4, 4096);
    cclique::Engine engine(players, /*strict=*/true, integrity, audit,
                           scrub_interval, threads);
    fault::CheckpointRegistry route_registry;
    if (plan_ptr != nullptr) engine.set_fault_plan(plan_ptr, &route_registry);
    for (std::size_t p = 0; p < players; ++p) {
      engine.send(static_cast<cclique::PlayerId>(p),
                  static_cast<cclique::PlayerId>((p + 1) % players),
                  mix64(seed, p, 0x72ULL));
    }
    engine.exchange();
    cclique::RouteStream stream;
    std::vector<cclique::Message> staged;
    for (std::size_t p = 0; p < players; ++p) {
      const auto to = static_cast<cclique::PlayerId>(
          mix64(seed, p, 0x746fULL) % players);
      const std::size_t burst = 1 + mix64(seed, p, 0x6cULL) % 4;
      for (std::size_t i = 0; i < burst; ++i) {
        const cclique::Word w = mix64(seed, p * 8 + i, 0x77ULL);
        stream.append(static_cast<cclique::PlayerId>(p), to, w);
        staged.push_back({static_cast<cclique::PlayerId>(p), to, w});
      }
    }
    const auto& delivered = engine.lenzen_route(stream);
    print_kv("players", players);
    print_kv("routed_words", stream.size());
    print_kv("clique_rounds", engine.metrics().rounds);
    print_kv("lenzen_batches", engine.metrics().lenzen_batches);
    if (plan_ptr != nullptr) print_fault_metrics(engine.metrics());
    if (check) {
      std::vector<cclique::Message> got;
      for (const auto& bucket : delivered) {
        got.insert(got.end(), bucket.begin(), bucket.end());
      }
      const auto key = [](const cclique::Message& m) {
        return std::make_tuple(m.from, m.to, m.word);
      };
      const auto less = [&key](const cclique::Message& a,
                               const cclique::Message& b) {
        return key(a) < key(b);
      };
      std::sort(got.begin(), got.end(), less);
      std::sort(staged.begin(), staged.end(), less);
      const bool valid =
          got.size() == staged.size() &&
          std::equal(got.begin(), got.end(), staged.begin(),
                     [&key](const cclique::Message& a,
                            const cclique::Message& b) {
                       return key(a) == key(b);
                     });
      print_kv("valid", static_cast<std::size_t>(valid));
      if (!valid) return 3;
    }
    return 0;
  }
  if (algo == "matching" || algo == "vc") {
    IntegralMatchingOptions opt;
    opt.eps = eps;
    opt.seed = seed;
    opt.simulation.words_per_machine = words;
    opt.simulation.threads = threads;
    opt.simulation.fault_plan = plan_ptr;
    opt.simulation.integrity = integrity;
    opt.simulation.audit = audit;
    opt.simulation.scrub_interval = scrub_interval;
    opt.durable = durable_opt;
    IntegralMatchingResult r;
    if (reprovision) {
      auto outcome = fault::run_with_reprovision(
          fault::ReprovisionPolicy{},
          [&](std::size_t scale) {
            IntegralMatchingOptions o = opt;
            o.simulation.words_per_machine =
                base_words(o.simulation.words_per_machine,
                           g.num_vertices()) * scale;
            return integral_matching(g, o);
          },
          [](const IntegralMatchingResult& res) {
            return res.first_run_metrics.violations == 0;
          });
      print_reprovision_failures(outcome.failures);
      if (!outcome.ok()) return 1;
      print_kv("reprovision_attempts", outcome.attempts);
      print_kv("reprovision_scale", outcome.scale);
      r = std::move(*outcome.result);
    } else {
      r = integral_matching(g, opt);
    }
    print_kv("matching_size", r.matching.size());
    print_kv("cover_size", r.cover.size());
    print_kv("total_rounds", r.total_rounds);
    if (plan_ptr != nullptr) print_fault_metrics(r.first_run_metrics);
    if (durable) print_disk_metrics(r.first_run_metrics);
    if (check) {
      const bool matching_valid = is_matching(g, r.matching);
      const bool cover_valid = is_vertex_cover(g, r.cover);
      print_kv("matching_valid", static_cast<std::size_t>(matching_valid));
      print_kv("cover_valid", static_cast<std::size_t>(cover_valid));
      if (!matching_valid || !cover_valid) return 3;
    }
    return 0;
  }
  if (algo == "one_plus_eps") {
    OnePlusEpsOptions opt;
    opt.eps = eps;
    opt.seed = seed;
    const auto r = one_plus_eps_matching(g, opt);
    print_kv("matching_size", r.matching.size());
    print_kv("augmenting_passes", r.augmenting_passes);
    print_kv("total_rounds", r.total_rounds);
    if (check) {
      const bool valid = is_matching(g, r.matching);
      print_kv("matching_valid", static_cast<std::size_t>(valid));
      if (!valid) return 3;
    }
    return 0;
  }
  if (algo == "weighted") {
    WeightedMatchingOptions opt;
    opt.eps = eps;
    opt.seed = seed;
    const auto r = weighted_matching(g, weights, opt);
    print_kv("matching_size", r.matching.size());
    print_kv("weight", r.weight);
    print_kv("classes", r.num_classes);
    print_kv("rounds", r.total_rounds);
    if (check) {
      const bool valid = is_matching(g, r.matching);
      print_kv("matching_valid", static_cast<std::size_t>(valid));
      if (!valid) return 3;
    }
    return 0;
  }
  if (algo == "baselines") {
    const auto luby = luby_mis(g, seed);
    print_kv("luby_mis_size", luby.mis.size());
    print_kv("luby_rounds", luby.rounds);
    const auto ii = israeli_itai_matching(g, seed);
    print_kv("israeli_itai_size", ii.matching.size());
    print_kv("israeli_itai_rounds", ii.rounds);
    const auto lmsv =
        lmsv_maximal_matching(g, 8 * g.num_vertices(), seed);
    print_kv("lmsv_size", lmsv.matching.size());
    print_kv("lmsv_rounds", lmsv.rounds);
    return 0;
  }
  std::fprintf(stderr,
               "unknown --algo '%s' (want mis|mis_cc|matching|vc|"
               "one_plus_eps|weighted|baselines|sort|route)\n",
               algo.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(mpcg::Flags(argc, argv));
  } catch (const mpcg::fault::ResumableInterrupt& ex) {
    // Graceful stop at a safe point with a flushed final generation:
    // distinct "resumable" status (EX_TEMPFAIL) so supervisors know a
    // relaunch with --resume continues the run.
    std::fprintf(stderr, "resumable: %s\n", ex.what());
    return 75;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}
