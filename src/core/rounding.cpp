#include "core/rounding.h"

#include "graph/validation.h"
#include "util/rng.h"

namespace mpcg {

std::vector<EdgeId> round_fractional_matching(
    const Graph& g, const std::vector<double>& x,
    const std::vector<VertexId>& candidates, std::uint64_t seed) {
  const std::size_t n = g.num_vertices();

  // Draw proposals: X_v = u with prob x_{uv}/10, else none. One uniform
  // draw walked down the CDF of v's incident weights.
  constexpr EdgeId kNoProposal = Graph::kNoEdge;
  std::vector<EdgeId> proposal(n, kNoProposal);

  for (const VertexId v : candidates) {
    double u01 = stateless_uniform(seed, v, 0x505);
    double acc = 0.0;
    for (const Arc& a : g.arcs(v)) {
      acc += x[a.edge] / 10.0;
      if (u01 < acc) {
        proposal[v] = a.edge;
        break;
      }
    }
  }

  // H as an edge set (mutual proposals collapse to one copy); good = no
  // adjacent H-edge. An edge can only be proposed by its two endpoints, so
  // the duplicate test is "did my partner already contribute this edge" —
  // per-vertex state, no O(edges) membership array.
  std::vector<std::uint32_t> h_degree(n, 0);
  std::vector<EdgeId> h_edges;
  std::vector<char> contributed(n, 0);
  for (const VertexId v : candidates) {
    const EdgeId e = proposal[v];
    if (e == kNoProposal || contributed[v]) continue;
    const Edge ed = g.edge(e);
    const VertexId partner = ed.u == v ? ed.v : ed.u;
    const bool duplicate = contributed[partner] && proposal[partner] == e;
    contributed[v] = 1;
    if (duplicate) continue;
    h_edges.push_back(e);
    ++h_degree[ed.u];
    ++h_degree[ed.v];
  }
  std::vector<EdgeId> matching;
  for (const EdgeId e : h_edges) {
    const Edge ed = g.edge(e);
    if (h_degree[ed.u] == 1 && h_degree[ed.v] == 1) matching.push_back(e);
  }
  return matching;
}

std::vector<VertexId> heavy_vertices(const Graph& g,
                                     const std::vector<double>& x,
                                     double min_load) {
  const auto loads = vertex_loads(g, x);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (loads[v] >= min_load) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> heavy_vertices(const Graph& g,
                                     const std::vector<double>& x,
                                     double min_load,
                                     std::span<const EdgeId> support) {
  const auto loads = vertex_loads(g, x, support);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (loads[v] >= min_load) out.push_back(v);
  }
  return out;
}

}  // namespace mpcg
