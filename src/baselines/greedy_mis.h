// Sequential randomized greedy MIS (paper, Section 3.1).
//
// Vertices are processed in permutation order; an alive vertex joins the
// MIS and kills its neighbors. This is the reference process the paper's
// MPC and CONGESTED-CLIQUE algorithms simulate; `greedy_mis_trace` exposes
// the per-vertex removal ranks needed for the Lemma 3.1 experiments and for
// exact-equivalence tests against the simulations.
#ifndef MPCG_BASELINES_GREEDY_MIS_H
#define MPCG_BASELINES_GREEDY_MIS_H

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// Full trace of the sequential greedy MIS run.
struct GreedyMisTrace {
  /// MIS members in the order they joined.
  std::vector<VertexId> mis;
  /// removed_at_rank[v] = permutation position at whose processing v was
  /// removed (its own position if it joined the MIS; an earlier neighbor's
  /// position otherwise). Every vertex is eventually removed.
  std::vector<std::uint32_t> removed_at_rank;
  /// in_mis[v] flag.
  std::vector<char> in_mis;
};

/// Runs greedy MIS along `perm` (perm[i] = vertex with rank i).
[[nodiscard]] GreedyMisTrace greedy_mis_trace(const Graph& g,
                                              const std::vector<std::uint32_t>& perm);

/// Convenience: just the MIS.
[[nodiscard]] std::vector<VertexId> greedy_mis(const Graph& g,
                                               const std::vector<std::uint32_t>& perm);

/// Vertices still alive after the greedy process has consumed ranks
/// [0, rank_exclusive) — the residual graph G_r of Lemma 3.1.
[[nodiscard]] std::vector<VertexId> residual_vertices_after_rank(
    const GreedyMisTrace& trace, std::uint32_t rank_exclusive);

/// The parallel-round depth of the greedy process (Blelloch et al. /
/// Fischer–Noever measure): longest chain of rank-decreasing adjacent
/// vertices, i.e. the number of rounds a parallel simulation of this
/// permutation needs. Theta(log n) w.h.p. for a random permutation [FN18].
[[nodiscard]] std::size_t greedy_dependency_depth(
    const Graph& g, const std::vector<std::uint32_t>& perm);

}  // namespace mpcg

#endif  // MPCG_BASELINES_GREEDY_MIS_H
