// Shared helpers for the experiment harness.
//
// Every bench binary regenerates one "table/figure" of EXPERIMENTS.md: each
// benchmark row is one row of the table, and the google-benchmark counters
// carry the quantities the paper's claim is about (rounds, phases, ratios,
// per-machine words) — wall-clock time is incidental.
#ifndef MPCG_BENCH_BENCH_UTIL_H
#define MPCG_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <benchmark/benchmark.h>

#include "gen/families.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace mpcg::bench {

inline double log2log2(double x) {
  return std::log2(std::max(2.0, std::log2(std::max(2.0, x))));
}

/// Wall-clock timer for the measured region of a benchmark body (the
/// google-benchmark State timer is not readable from user code).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Appends one machine-readable JSON line for a benchmark row to the file
/// named by the MPCG_BENCH_JSON environment variable (no-op when unset),
/// so BENCH_*.json trajectory files can accumulate across runs:
///   {"name":...,"n":...,"m":...,"rounds":...,"wall_ms":...,"peak_words":...}
inline void emit_json_line(const std::string& name, std::size_t n,
                           std::size_t m, std::size_t rounds, double wall_ms,
                           std::size_t peak_words) {
  const char* path = std::getenv("MPCG_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"name\":\"%s\",\"n\":%zu,\"m\":%zu,\"rounds\":%zu,"
               "\"wall_ms\":%.3f,\"peak_words\":%zu}\n",
               name.c_str(), n, m, rounds, wall_ms, peak_words);
  std::fclose(f);
}

/// G(n, p) with a target average degree, deterministic per (n, seed).
inline Graph gnp_with_degree(std::size_t n, double avg_degree,
                             std::uint64_t seed) {
  Rng rng(mix64(seed, 0xbe7c4, n));
  return erdos_renyi_gnp(n, avg_degree / static_cast<double>(n), rng);
}

}  // namespace mpcg::bench

#endif  // MPCG_BENCH_BENCH_UTIL_H
