// E13 (Theorem 1.1, CONGESTED-CLIQUE part): MIS in O(log log Delta) clique
// rounds, with all routing through Lenzen's scheme within per-player
// bounds.
//
// Table rows: n sweep. Claims: `cc_rounds` stays flat-ish in n (log log),
// `lenzen_batches` per phase ~1 (window subgraphs fit one feasible batch),
// and the output matches the MPC simulation decision-for-decision
// (`matches_mpc` = 1).
#include "bench_util.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E13_CcliqueMis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 53);

  const std::size_t budget = 4 * n;
  MisCcliqueOptions copt;
  copt.seed = 53;
  copt.gather_budget = budget;
  MisMpcOptions mopt;
  mopt.seed = 53;
  mopt.gather_budget = budget;

  MisCcliqueResult cr;
  MisMpcResult mr;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    cr = mis_cclique(g, copt);
    mr = mis_mpc(g, mopt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(cr.mis.size());
  }
  emit_json_line("E13_CcliqueMis/" + std::to_string(n), n, g.num_edges(),
                 cr.metrics.rounds, wall_ms,
                 cr.metrics.max_player_received);
  state.counters["n"] = static_cast<double>(n);
  state.counters["cc_rounds"] = static_cast<double>(cr.metrics.rounds);
  state.counters["rank_phases"] = static_cast<double>(cr.rank_phases);
  state.counters["sparse_iters"] =
      static_cast<double>(cr.sparsified_iterations);
  state.counters["lenzen_batches"] =
      static_cast<double>(cr.metrics.lenzen_batches);
  state.counters["max_player_recv"] =
      static_cast<double>(cr.metrics.max_player_received);
  state.counters["loglog_delta"] =
      log2log2(static_cast<double>(g.max_degree()));
  state.counters["matches_mpc"] = cr.mis == mr.mis ? 1.0 : 0.0;
}
BENCHMARK(E13_CcliqueMis)
    ->Arg(1 << 9)
    ->Arg(1 << 10)
    ->Arg(1 << 11)
    ->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Segmented delivery view vs per-word Message materialization: routes the
// E13 gather shape (every player bursts toward the leader) through
// lenzen_route_view and pins that the per-word 16-byte expansion is gone —
// `materialized_words` stays 0 on the view path (the engine counts every
// word the legacy wrapper expands), and the view costs O(segments), not
// O(words). `mat_over_view` reports the wall-clock ratio of the
// materializing wrapper over the view for the same stream.
void E13_RouteDeliveryView(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cclique::Engine engine(n);
  cclique::RouteStream stream;
  const std::size_t burst = 8;
  for (std::size_t p = 1; p < n; ++p) {
    for (std::size_t i = 0; i < burst; ++i) {
      stream.append(static_cast<cclique::PlayerId>(p), 0,
                    mix64(53, p * burst + i, 0xe13));
    }
  }

  std::size_t view_words = 0;
  std::size_t view_segments = 0;
  double view_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    const auto& views = engine.lenzen_route_view(stream);
    view_ms = timer.elapsed_ms();
    view_words = views[0].size();
    view_segments = views[0].segments().size();
    benchmark::DoNotOptimize(view_words);
  }
  const std::size_t materialized_after_view =
      engine.route_words_materialized();

  double mat_ms = 0.0;
  {
    const WallTimer timer;
    const auto& delivered = engine.lenzen_route(stream);
    mat_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(delivered[0].size());
  }

  emit_json_line("E13_RouteDeliveryView/" + std::to_string(n), n,
                 stream.size(), engine.metrics().rounds, view_ms,
                 engine.metrics().max_player_received);
  state.counters["n"] = static_cast<double>(n);
  state.counters["routed_words"] = static_cast<double>(stream.size());
  state.counters["view_words"] = static_cast<double>(view_words);
  state.counters["view_segments"] = static_cast<double>(view_segments);
  // The headline pin: zero per-word Message records on the view path.
  state.counters["materialized_words"] =
      static_cast<double>(materialized_after_view);
  state.counters["view_ms"] = view_ms;
  state.counters["mat_ms"] = mat_ms;
  state.counters["mat_over_view"] = view_ms > 0.0 ? mat_ms / view_ms : 0.0;
}
BENCHMARK(E13_RouteDeliveryView)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
