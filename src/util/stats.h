// Small summary-statistics helpers used by the experiment harness and by
// statistical tests of the paper's with-high-probability lemmas.
#ifndef MPCG_UTIL_STATS_H
#define MPCG_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace mpcg {

/// Streaming accumulator for min / max / mean / variance (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Copies and sorts; intended for experiment summaries, not hot paths.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Mean of a vector; 0 for an empty vector.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Least-squares slope of y against x. Used to fit round counts against
/// log log n in the shape experiments. Requires x.size() == y.size() >= 2.
[[nodiscard]] double linear_slope(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace mpcg

#endif  // MPCG_UTIL_STATS_H
