#include "graph/active_set.h"

namespace mpcg {

ActiveSet::ActiveSet(std::size_t n)
    : active_(n, 1), list_(n), list_end_(n), count_(n), dense_(n, 0) {
  for (VertexId v = 0; v < n; ++v) list_[v] = v;
}

std::span<const VertexId> ActiveSet::actives() {
  std::size_t read = 0;
  while (read < list_end_ && active_[list_[read]]) ++read;
  if (read < list_end_) {
    std::size_t write = read;
    for (++read; read < list_end_; ++read) {
      const VertexId v = list_[read];
      if (active_[v]) list_[write++] = v;
    }
    list_end_ = write;
  }
  return {list_.data(), list_end_};
}

std::span<const VertexId> ActiveSet::remap() {
  const auto compacted = actives();
  snapshot_.assign(compacted.begin(), compacted.end());
  for (std::uint32_t i = 0; i < snapshot_.size(); ++i) {
    dense_[snapshot_[i]] = i;
  }
  return {snapshot_.data(), snapshot_.size()};
}

}  // namespace mpcg
