#include "core/one_plus_eps.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/permutation.h"
#include "util/rng.h"

namespace mpcg {

namespace {

/// Bounded, randomized alternating DFS growing an augmenting path from a
/// free vertex. `budget` caps node expansions so high-degree graphs stay
/// fast; repetition across passes makes up for pruned searches.
class PathSearch {
 public:
  PathSearch(const Graph& g, std::vector<VertexId>& partner,
             std::vector<char>& claimed, Rng& rng, std::size_t max_edges,
             std::size_t budget)
      : g_(g), partner_(partner), claimed_(claimed), rng_(rng),
        max_edges_(max_edges), full_budget_(budget),
        in_path_(g.num_vertices(), 0) {}

  /// Tries to find an augmenting path starting at free vertex `root`;
  /// on success the path (v0, u1, w1, ..., u_t) is left in `path_`.
  /// The expansion budget resets per call, so one PathSearch serves a
  /// whole pass (the O(n) in_path_ scratch is allocated once per pass,
  /// not once per root).
  bool grow(VertexId root) {
    budget_ = full_budget_;
    path_.clear();
    path_.push_back(root);
    in_path_[root] = 1;
    const bool found = dfs(root, max_edges_);
    in_path_[root] = 0;
    for (std::size_t i = 1; i < path_.size(); ++i) in_path_[path_[i]] = 0;
    return found;
  }

  [[nodiscard]] const std::vector<VertexId>& path() const noexcept {
    return path_;
  }

 private:
  bool dfs(VertexId v, std::size_t edges_left) {
    if (budget_ == 0) return false;
    --budget_;
    const auto arcs = g_.arcs(v);
    if (arcs.empty() || edges_left == 0) return false;
    // Random rotation of the adjacency gives each neighbor a fair shot
    // without shuffling.
    const std::size_t start = rng_.next_below(arcs.size());
    for (std::size_t idx = 0; idx < arcs.size(); ++idx) {
      const VertexId u = arcs[(start + idx) % arcs.size()].to;
      if (claimed_[u] || in_path_[u]) continue;
      if (partner_[u] == kUnmatched) {
        path_.push_back(u);
        return true;  // odd-length augmenting path complete
      }
      if (edges_left < 3) continue;  // matched hop + >=1 more edge needed
      const VertexId w = partner_[u];
      if (claimed_[w] || in_path_[w]) continue;
      in_path_[u] = 1;
      in_path_[w] = 1;
      path_.push_back(u);
      path_.push_back(w);
      if (dfs(w, edges_left - 2)) return true;
      path_.pop_back();
      path_.pop_back();
      in_path_[u] = 0;
      in_path_[w] = 0;
    }
    return false;
  }

  const Graph& g_;
  std::vector<VertexId>& partner_;
  std::vector<char>& claimed_;
  Rng& rng_;
  std::size_t max_edges_;
  std::size_t full_budget_;
  std::size_t budget_ = 0;
  std::vector<char> in_path_;
  std::vector<VertexId> path_;
};

void flip_path(std::vector<VertexId>& partner,
               const std::vector<VertexId>& path) {
  // path = v0, u1, w1, u2, w2, ..., u_t: new matched pairs are
  // (v0,u1), (w1,u2), (w2,u3), ...
  for (std::size_t i = 0; i + 1 < path.size(); i += 2) {
    partner[path[i]] = path[i + 1];
    partner[path[i + 1]] = path[i];
  }
}

/// Shared pass body: shuffles `free_vertices` in place with `rng`, then
/// grows and flips disjoint augmenting paths. When `free_set` is given,
/// the endpoints matched by a flip are deactivated (the interior of a
/// path was already matched). `claimed` is caller-owned persistent
/// scratch, all-zero on entry; the pass records which flags it set and
/// clears exactly those before returning, so a driver looping passes pays
/// O(claimed vertices) per pass instead of an O(n) allocate-and-zero.
std::size_t run_augmenting_pass(const Graph& g,
                                std::vector<VertexId>& partner,
                                std::size_t k, Rng& rng,
                                std::vector<VertexId>& free_vertices,
                                ActiveSet* free_set,
                                std::vector<char>& claimed,
                                std::vector<VertexId>& claimed_touched) {
  // Random start order.
  for (std::size_t i = free_vertices.size(); i > 1; --i) {
    std::swap(free_vertices[i - 1], free_vertices[rng.next_below(i)]);
  }

  const std::size_t max_edges = 2 * k + 1;
  const std::size_t budget = 200 + 40 * k * k;
  PathSearch search(g, partner, claimed, rng, max_edges, budget);
  std::size_t flipped = 0;
  for (const VertexId root : free_vertices) {
    if (claimed[root] || partner[root] != kUnmatched) continue;
    if (search.grow(root)) {
      flip_path(partner, search.path());
      for (const VertexId v : search.path()) {
        claimed[v] = 1;
        claimed_touched.push_back(v);
      }
      if (free_set != nullptr) {
        free_set->deactivate(search.path().front());
        free_set->deactivate(search.path().back());
      }
      ++flipped;
    }
  }
  for (const VertexId v : claimed_touched) claimed[v] = 0;
  claimed_touched.clear();
  return flipped;
}

}  // namespace

std::size_t augmenting_paths_pass(const Graph& g,
                                  std::vector<VertexId>& partner,
                                  std::size_t k, std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  Rng rng(seed);
  std::vector<VertexId> free_vertices;
  for (VertexId v = 0; v < n; ++v) {
    if (partner[v] == kUnmatched && g.degree(v) > 0) free_vertices.push_back(v);
  }
  std::vector<char> claimed(n, 0);
  std::vector<VertexId> touched;
  return run_augmenting_pass(g, partner, k, rng, free_vertices, nullptr,
                             claimed, touched);
}

std::size_t augmenting_paths_pass(const Graph& g,
                                  std::vector<VertexId>& partner,
                                  std::size_t k, std::uint64_t seed,
                                  ActiveSet& free_set,
                                  AugmentingPassScratch& scratch) {
  Rng rng(seed);
  // The maintained set is exactly {unmatched, degree > 0}, ascending — the
  // same roots (and thus the same shuffle and flips) as the O(n) rescan.
  const auto actives = free_set.actives();
  scratch.free_vertices.assign(actives.begin(), actives.end());
  if (scratch.claimed.empty()) scratch.claimed.assign(g.num_vertices(), 0);
  return run_augmenting_pass(g, partner, k, rng, scratch.free_vertices,
                             &free_set, scratch.claimed,
                             scratch.claimed_touched);
}

std::size_t augmenting_paths_pass(const Graph& g,
                                  std::vector<VertexId>& partner,
                                  std::size_t k, std::uint64_t seed,
                                  ActiveSet& free_set) {
  AugmentingPassScratch scratch;
  return augmenting_paths_pass(g, partner, k, seed, free_set, scratch);
}

bool has_short_augmenting_path(const Graph& g,
                               const std::vector<VertexId>& partner,
                               std::size_t max_len) {
  const std::size_t n = g.num_vertices();
  std::vector<char> in_path(n, 0);
  // Full backtracking over simple alternating paths (exponential; test-size
  // graphs only).
  std::function<bool(VertexId, std::size_t)> dfs =
      [&](VertexId v, std::size_t edges_left) -> bool {
    if (edges_left == 0) return false;
    for (const Arc& a : g.arcs(v)) {
      const VertexId u = a.to;
      if (in_path[u]) continue;
      if (partner[u] == kUnmatched) return true;
      if (edges_left < 3) continue;
      const VertexId w = partner[u];
      if (in_path[w]) continue;
      in_path[u] = 1;
      in_path[w] = 1;
      if (dfs(w, edges_left - 2)) {
        in_path[u] = 0;
        in_path[w] = 0;
        return true;
      }
      in_path[u] = 0;
      in_path[w] = 0;
    }
    return false;
  };
  for (VertexId v = 0; v < n; ++v) {
    if (partner[v] != kUnmatched) continue;
    in_path[v] = 1;
    const bool found = dfs(v, max_len);
    in_path[v] = 0;
    if (found) return true;
  }
  return false;
}

std::vector<VertexId> partner_array(const Graph& g,
                                    const std::vector<EdgeId>& matching) {
  std::vector<VertexId> partner(g.num_vertices(), kUnmatched);
  for (const EdgeId e : matching) {
    const Edge ed = g.edge(e);
    partner[ed.u] = ed.v;
    partner[ed.v] = ed.u;
  }
  return partner;
}

std::vector<EdgeId> matching_from_partners(
    const Graph& g, const std::vector<VertexId>& partner) {
  std::vector<EdgeId> matching;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (partner[v] != kUnmatched && v < partner[v]) {
      matching.push_back(g.find_edge(v, partner[v]));
    }
  }
  return matching;
}

OnePlusEpsResult one_plus_eps_matching(const Graph& g,
                                       const OnePlusEpsOptions& options) {
  OnePlusEpsResult result;
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(1.0 / options.eps)));
  const std::size_t stall_limit =
      options.stall_passes != 0 ? options.stall_passes : 4 * k + 8;
  const std::size_t max_passes =
      options.max_passes != 0 ? options.max_passes : 200 * k;

  IntegralMatchingOptions base = options.base;
  base.seed = mix64(options.seed, 0xbb, 5);
  const auto base_run = integral_matching(g, base);
  result.base_size = base_run.matching.size();
  result.total_rounds = base_run.total_rounds;

  auto partner = partner_array(g, base_run.matching);
  // Free-vertex frontier maintained across passes: augmentation only ever
  // matches vertices, so the set shrinks monotonically and each pass costs
  // O(free), not O(n).
  ActiveSet free_set(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (partner[v] != kUnmatched || g.degree(v) == 0) free_set.deactivate(v);
  }
  std::size_t stall = 0;
  // Persistent pass scratch: the claimed flags are cleared touched-only at
  // the end of every pass, so the loop never pays an O(n) zeroing again.
  AugmentingPassScratch scratch;
  for (std::size_t pass = 0; pass < max_passes && stall < stall_limit;
       ++pass) {
    const std::size_t flipped = augmenting_paths_pass(
        g, partner, k, mix64(options.seed, 0xcc, pass), free_set, scratch);
    ++result.augmenting_passes;
    result.paths_flipped += flipped;
    result.total_rounds += 2 * k + 2;  // one pass is O(k) model rounds
    stall = flipped == 0 ? stall + 1 : 0;
  }
  result.matching = matching_from_partners(g, partner);
  return result;
}

}  // namespace mpcg
