// Synthetic graph workload generators.
//
// The paper's guarantees are worst-case / with-high-probability over all
// graphs; the experiment harness sweeps families with very different degree
// profiles (flat Erdős–Rényi, heavy-tailed Chung–Lu and Barabási–Albert,
// bipartite, clustered RMAT, geometric) plus structured worst cases, so the
// same code paths the proofs reason about are exercised.
#ifndef MPCG_GEN_GENERATORS_H
#define MPCG_GEN_GENERATORS_H

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace mpcg {

/// Erdős–Rényi G(n, p) via geometric edge skipping; O(n + m) time.
[[nodiscard]] Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng);

/// Erdős–Rényi G(n, m): m distinct uniform edges (m is an upper bound if it
/// exceeds the number of possible edges).
[[nodiscard]] Graph erdos_renyi_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Chung–Lu random graph with expected power-law degree sequence of
/// exponent `beta` (typically in (2, 3]) and target average degree.
[[nodiscard]] Graph chung_lu_power_law(std::size_t n, double beta,
                                       double avg_degree, Rng& rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `k` existing vertices.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t k, Rng& rng);

/// Random bipartite graph: parts of size `left` and `right`, each pair
/// joined independently with probability p. Left part is vertices
/// [0, left), right part [left, left+right).
[[nodiscard]] Graph random_bipartite(std::size_t left, std::size_t right,
                                     double p, Rng& rng);

/// R-MAT recursive matrix graph: 2^scale vertices, `edges` edge samples
/// with quadrant probabilities (a, b, c, implicit d = 1-a-b-c).
[[nodiscard]] Graph rmat(std::size_t scale, std::size_t edges, double a,
                         double b, double c, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, vertices
/// within distance `radius` joined. O(n^2) — intended for n up to ~2e4.
[[nodiscard]] Graph random_geometric(std::size_t n, double radius, Rng& rng);

// --- Structured graphs (deterministic) ---

[[nodiscard]] Graph path_graph(std::size_t n);
[[nodiscard]] Graph cycle_graph(std::size_t n);
[[nodiscard]] Graph complete_graph(std::size_t n);
/// Star: center 0 joined to 1..n-1.
[[nodiscard]] Graph star_graph(std::size_t n);
/// rows x cols grid.
[[nodiscard]] Graph grid_graph(std::size_t rows, std::size_t cols);
/// Disjoint union of `count` cliques of size `size`.
[[nodiscard]] Graph clique_union(std::size_t count, std::size_t size);
/// Complete bipartite K_{a,b} (left part [0,a), right part [a,a+b)).
[[nodiscard]] Graph complete_bipartite(std::size_t a, std::size_t b);

// --- Edge weights ---

/// Uniform weights in [lo, hi), one per edge id.
[[nodiscard]] std::vector<double> uniform_weights(const Graph& g, double lo,
                                                  double hi, Rng& rng);

/// Exponentially distributed weights with the given mean (heavy spread, to
/// stress the weighted matching's geometric classes).
[[nodiscard]] std::vector<double> exponential_weights(const Graph& g,
                                                      double mean, Rng& rng);

}  // namespace mpcg

#endif  // MPCG_GEN_GENERATORS_H
