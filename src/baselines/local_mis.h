// Ghaffari-style local MIS dynamics (desire levels), used as the
// "Sparsified MIS Algorithm of [Gha17]" stage of the paper's Theorem 1.1
// pipeline (see DESIGN.md, substitutions).
//
// Each alive vertex keeps a desire level p_v (initially 1/2). Per
// iteration: v marks itself with probability p_v; a marked vertex with no
// marked alive neighbor joins the MIS, and MIS neighborhoods are removed;
// then p_v halves if the effective degree sum_{alive u in N(v)} p_u is >= 2
// and doubles (capped at 1/2) otherwise. All randomness is stateless in
// (seed, v, iteration), so the sequential, MPC, and CONGESTED-CLIQUE
// drivers of this state machine produce bit-identical runs.
#ifndef MPCG_BASELINES_LOCAL_MIS_H
#define MPCG_BASELINES_LOCAL_MIS_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/residual.h"

namespace mpcg {

class LocalMisState {
 public:
  /// Starts the dynamics on the subgraph of g induced by `alive` flags.
  LocalMisState(const Graph& g, const std::vector<char>& alive,
                std::uint64_t seed);

  /// Starts from a snapshot of an existing residual graph (bulk copy — no
  /// graph rescan). The driver's own residual view is unaffected.
  LocalMisState(ResidualGraph residual, std::uint64_t seed);

  /// Runs one iteration; returns the vertices that joined the MIS. Cost is
  /// proportional to the residual graph (alive vertices + alive arcs), not
  /// to the full input.
  std::vector<VertexId> step();

  [[nodiscard]] const std::vector<char>& alive() const noexcept {
    return residual_.alive_flags();
  }
  [[nodiscard]] const std::vector<char>& in_mis() const noexcept { return in_mis_; }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return residual_.alive_count();
  }
  [[nodiscard]] std::size_t iterations() const noexcept { return iteration_; }

  /// Number of edges with both endpoints alive. O(1).
  [[nodiscard]] std::size_t alive_edges() const {
    return static_cast<std::size_t>(residual_.alive_edge_count());
  }

  /// Maximum alive degree. Amortized O(1).
  [[nodiscard]] std::size_t max_alive_degree() {
    return residual_.max_alive_degree();
  }

 private:
  std::uint64_t seed_;
  std::uint64_t iteration_ = 0;
  ResidualGraph residual_;
  std::vector<char> in_mis_;
  std::vector<double> p_;
  /// Scratch reused across iterations; only entries for currently alive
  /// vertices are meaningful (reset at the end of each step).
  std::vector<char> marked_;
  std::vector<double> effective_;
};

/// Runs the dynamics to completion (all vertices decided); returns the MIS
/// over the induced-alive subgraph and the iterations used.
struct LocalMisResult {
  std::vector<VertexId> mis;
  std::size_t iterations = 0;
};
[[nodiscard]] LocalMisResult local_mis(const Graph& g, std::uint64_t seed);

}  // namespace mpcg

#endif  // MPCG_BASELINES_LOCAL_MIS_H
