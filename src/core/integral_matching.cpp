#include "core/integral_matching.h"

#include <algorithm>
#include <cmath>

#include "baselines/lmsv_filtering.h"
#include "core/rounding.h"
#include "graph/active_set.h"
#include "graph/subgraph.h"
#include "graph/validation.h"
#include "util/rng.h"

namespace mpcg {

IntegralMatchingResult integral_matching(
    const Graph& g, const IntegralMatchingOptions& options) {
  IntegralMatchingResult result;
  const std::size_t n = g.num_vertices();

  std::size_t max_iterations = options.max_iterations;
  if (max_iterations == 0) {
    // ceil(log_{150/149}(1/eps)), capped: early exit dominates in practice.
    const double raw =
        std::ceil(std::log(1.0 / options.eps) / std::log(150.0 / 149.0));
    max_iterations = static_cast<std::size_t>(
        std::min(raw, 60.0));
  }

  // --- Small-matching path (Section 4.4.5): LMSV filtering. ---
  const std::size_t lmsv_memory =
      options.small_path_memory != 0 ? options.small_path_memory
                                     : 8 * std::max<std::size_t>(n, 64);
  const auto small = lmsv_maximal_matching(g, lmsv_memory,
                                           mix64(options.seed, 0x5a11, 3));
  result.small_path_size = small.matching.size();
  result.total_rounds += small.rounds;

  // --- Main path: iterate algorithm A. ---
  std::vector<EdgeId> a_matching;
  // Unmatched frontier, maintained incrementally: each rounded edge
  // deactivates its endpoints, so building the iteration's residual costs
  // O(remaining) instead of an O(n) rescan.
  ActiveSet remaining_set(n);
  std::vector<VertexId> remaining;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Residual graph on the unmatched vertices.
    const auto actives = remaining_set.actives();
    remaining.assign(actives.begin(), actives.end());
    const InducedSubgraph sub = induced_subgraph(g, remaining);
    if (sub.graph.num_edges() == 0) break;

    MatchingMpcOptions sim = options.simulation;
    sim.eps = options.eps;
    sim.seed = mix64(options.seed, 0xa1, iter);
    sim.threshold_seed = mix64(options.seed, 0xa2, iter);
    sim.collect_support = true;  // the rounding sweeps below run over it
    const MatchingMpcResult frac = matching_mpc(sub.graph, sim);
    result.total_rounds += frac.metrics.rounds;
    if (iter == 0) {
      result.cover.reserve(frac.cover.size());
      for (const VertexId lv : frac.cover) {
        result.cover.push_back(sub.to_parent_vertex[lv]);
      }
      result.first_fractional_weight = fractional_weight(frac.x);
      result.first_run_rounds = frac.metrics.rounds;
      result.first_run_metrics = frac.metrics;
    }

    // Round (Lemma 5.1) with C~ = loads >= 1 - 5 eps; retry with fresh
    // seeds if a trial lands empty (each trial is independent). The heavy
    // sweep runs over the surviving support matching_mpc hands back —
    // the same frontier-proportional bookkeeping as its per-phase
    // counters — instead of rescanning the residual's full edge list;
    // an empty support (or empty C~) can never round an edge, so the
    // retries are skipped outright.
    const auto candidates = heavy_vertices(
        sub.graph, frac.x, 1.0 - 5.0 * options.eps, frac.support);
    std::vector<EdgeId> rounded;
    for (std::size_t retry = 0;
         !candidates.empty() && retry < options.rounding_retries; ++retry) {
      rounded = round_fractional_matching(
          sub.graph, frac.x, candidates,
          mix64(options.seed, 0xb000 + retry, iter));
      if (!rounded.empty()) break;
    }
    ++result.iterations;
    if (rounded.empty()) break;  // nothing extractable anymore

    for (const EdgeId le : rounded) {
      const Edge ed = sub.graph.edge(le);
      a_matching.push_back(sub.to_parent_edge[le]);
      remaining_set.deactivate(sub.to_parent_vertex[ed.u]);
      remaining_set.deactivate(sub.to_parent_vertex[ed.v]);
    }
  }
  result.a_path_size = a_matching.size();

  // Paper: output the larger of the two methods' matchings.
  result.matching = result.a_path_size >= result.small_path_size
                        ? std::move(a_matching)
                        : small.matching;
  return result;
}

}  // namespace mpcg
