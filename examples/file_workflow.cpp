// Scenario: the batch workflow a downstream user actually runs.
//
//   1. ingest a graph from an edge-list file (here: generated and written
//      first, standing in for a SNAP-style corpus dump);
//   2. compute the (2+eps) vertex cover with its dual certificate — the
//      run certifies its own approximation factor with no oracle;
//   3. write the augmented result back out for the next pipeline stage.
#include <cstdio>

#include "core/vertex_cover.h"
#include "gen/generators.h"
#include "graph/io.h"
#include "graph/validation.h"

int main() {
  using namespace mpcg;

  const std::string path = "/tmp/mpcg_example_graph.txt";

  // Stage 0: some upstream job dumped an edge list.
  {
    Rng rng(31);
    const Graph g = barabasi_albert(5000, 4, rng);
    write_edge_list_file(path, g);
    std::printf("wrote %s (n=%zu, m=%zu)\n", path.c_str(), g.num_vertices(),
                g.num_edges());
  }

  // Stage 1: ingest.
  const LoadedGraph loaded = read_edge_list_file(path);
  const Graph& g = loaded.graph;
  std::printf("read back: n=%zu m=%zu max_degree=%zu\n", g.num_vertices(),
              g.num_edges(), g.max_degree());

  // Stage 2: cover + self-certification.
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = 32;
  const VertexCoverResult r = minimum_vertex_cover_mpc(g, opt);
  std::printf("\nvertex cover: %zu vertices (valid: %s)\n", r.cover.size(),
              is_vertex_cover(g, r.cover) ? "yes" : "NO");
  std::printf("dual certificate (fractional matching weight): %.1f\n",
              r.dual_certificate);
  std::printf("self-certified factor: %.3f  (any cover needs >= %.1f "
              "vertices, so this run is provably within that ratio)\n",
              static_cast<double>(r.cover.size()) / r.dual_certificate,
              r.dual_certificate);
  std::printf("cost: %zu engine rounds, %zu phases\n", r.rounds, r.phases);

  // Stage 3: export the cover as 0/1 "weights" for the next stage.
  std::vector<double> in_cover(g.num_edges(), 0.0);
  for (const VertexId v : r.cover) {
    for (const Arc& a : g.arcs(v)) in_cover[a.edge] = 1.0;
  }
  const std::string out_path = "/tmp/mpcg_example_covered.txt";
  write_edge_list_file(out_path, g, &in_cover);
  std::printf("\nwrote covered-edge annotation to %s\n", out_path.c_str());
  return 0;
}
