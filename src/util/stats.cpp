#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mpcg {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty vector");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (const double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double linear_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("linear_slope needs matched vectors, size>=2");
  }
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  if (den == 0.0) throw std::invalid_argument("linear_slope: degenerate x");
  return num / den;
}

}  // namespace mpcg
