// Exponential-time exact solvers for tiny graphs.
//
// These exist purely as independent ground truth in property tests: blossom
// and Hopcroft–Karp are verified against them over thousands of random
// small instances, and they certify the weighted-matching and vertex-cover
// experiments on small inputs. Guarded to refuse graphs that would blow up.
#ifndef MPCG_BASELINES_BRUTE_FORCE_H
#define MPCG_BASELINES_BRUTE_FORCE_H

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// Maximum matching size by branching over edges. Requires
/// g.num_vertices() <= 64; practical up to ~40 edges.
[[nodiscard]] std::size_t brute_force_max_matching(const Graph& g);

/// Maximum total weight over all matchings.
[[nodiscard]] double brute_force_max_weight_matching(
    const Graph& g, const std::vector<double>& weights);

/// Minimum vertex cover size by branching on uncovered edges.
[[nodiscard]] std::size_t brute_force_min_vertex_cover(const Graph& g);

/// Maximum independent set size (= n - min vertex cover).
[[nodiscard]] std::size_t brute_force_max_independent_set(const Graph& g);

}  // namespace mpcg

#endif  // MPCG_BASELINES_BRUTE_FORCE_H
