// Pluggable execution backends for the model simulators.
//
// The MPC model (paper, Section 1.1.1) is defined by m machines computing
// *concurrently* between synchronous exchanges, yet the engines simulate
// every machine on one thread. An ExecutionBackend abstracts that choice:
//   * SequentialBackend runs every chunk inline on the caller's thread and
//     is byte-for-byte the historical behavior — it stays the deterministic
//     reference;
//   * ParallelBackend fans chunks out over a fixed-size std::thread pool
//     (the caller participates, so thread counts may oversubscribe the
//     box without deadlock).
//
// Determinism contract. run_chunks(begin, end, fn) splits [begin, end) into
// exactly threads() contiguous chunks whose boundaries are a pure function
// of (begin, end, threads()) — chunk k covers
// [begin + len*k/T, begin + len*(k+1)/T). Every consumer in this codebase
// writes per-chunk (slot-indexed) state during the parallel region and
// merges it in ascending slot order afterwards, so the merged result equals
// the sequential left-to-right reduction for ANY thread count: the
// concatenation of per-chunk results over a contiguous partition of the
// iteration domain, taken in chunk order, is the sequential order itself.
// Shared state may be read freely inside chunks but written only through a
// slot-private channel.
//
// Exceptions thrown inside a chunk are captured per slot and rethrown on
// the calling thread after the join, lowest slot first — matching the
// sequential path, where the earliest iteration's throw wins.
#ifndef MPCG_MPC_BACKEND_H
#define MPCG_MPC_BACKEND_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace mpcg::mpc {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Number of chunks every run_chunks call is split into (1 for the
  /// sequential backend; the pool size, caller included, for the parallel
  /// one).
  [[nodiscard]] virtual std::size_t threads() const noexcept = 0;

  /// True when chunks may run concurrently — the gate every caller uses to
  /// choose between the historical sequential code path and the
  /// slot-sharded one.
  [[nodiscard]] bool parallel() const noexcept { return threads() > 1; }

  /// fn(slot, lo, hi): process iterations [lo, hi) as chunk `slot`.
  using ChunkFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Blocking fork-join over [begin, end): splits the range into threads()
  /// contiguous chunks (empty chunks are skipped) and runs fn once per
  /// chunk. Returns only after every chunk completed; rethrows the
  /// lowest-slot captured exception, if any. Chunk boundaries are identical
  /// across calls with the same (begin, end), so multi-pass schemes
  /// (histogram, then positional copy) see consistent slots.
  virtual void run_chunks(std::size_t begin, std::size_t end,
                          const ChunkFn& fn) = 0;

  /// Blocks until every pool worker is parked in its idle wait (no-op for
  /// the sequential backend). The engines call this at checkpoint/stop safe
  /// points so durable persistence and process death never race a worker.
  virtual void quiesce() {}

  /// Convenience for loops whose iterations are fully independent: runs
  /// fn(i) for every i in [0, range), chunked as above.
  template <typename Fn>
  void parallel_for_machines(std::size_t range, Fn&& fn) {
    run_chunks(0, range,
               [&fn](std::size_t, std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) fn(i);
               });
  }
};

/// The deterministic reference: every chunk runs inline, in order, on the
/// calling thread. threads() == 1, so run_chunks degenerates to one call.
class SequentialBackend final : public ExecutionBackend {
 public:
  [[nodiscard]] std::size_t threads() const noexcept override { return 1; }
  void run_chunks(std::size_t begin, std::size_t end,
                  const ChunkFn& fn) override {
    if (begin < end) fn(0, begin, end);
  }
};

/// Fixed-size shared-memory pool. `threads - 1` workers are spawned; the
/// run_chunks caller claims chunks alongside them, so progress never
/// depends on the scheduler granting the workers a core (this box has one).
class ParallelBackend final : public ExecutionBackend {
 public:
  explicit ParallelBackend(std::size_t threads);
  ~ParallelBackend() override;

  ParallelBackend(const ParallelBackend&) = delete;
  ParallelBackend& operator=(const ParallelBackend&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept override {
    return nthreads_;
  }
  void run_chunks(std::size_t begin, std::size_t end,
                  const ChunkFn& fn) override;
  void quiesce() override;

  /// Workers currently parked in the idle wait (of nthreads_ - 1). Exposed
  /// so the quiesce contract is testable.
  [[nodiscard]] std::size_t idle_workers() const;

 private:
  /// One fork-join. Heap-allocated per run_chunks and snapshotted by the
  /// workers under the mutex, so a straggler from a finished job can only
  /// ever drain its own (exhausted) chunk counter — never a later job's.
  struct Job {
    const ChunkFn* fn;
    std::size_t begin;
    std::size_t end;
    std::size_t nchunks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending;
    std::vector<std::exception_ptr> errors;
  };

  void worker_loop();
  void drain(Job& job);

  std::size_t nthreads_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per published job
  bool stopping_ = false;
  std::size_t idle_ = 0;  // workers parked in work_cv_ wait
  std::shared_ptr<Job> job_;
  std::vector<std::thread> pool_;
};

/// threads <= 1 -> SequentialBackend (the reference); otherwise a pool of
/// `threads` (caller included).
std::unique_ptr<ExecutionBackend> make_backend(std::size_t threads);

/// One staged word destined for an engine outbox: collect-then-drain
/// sharded staging (below) gathers these per (chunk, sender).
struct StageRecord {
  std::uint32_t to;
  std::uint64_t word;
};

/// Collect-then-drain sharded staging for driver loops whose iterations
/// stage through *colliding* senders (e.g. matching's distribute loop
/// stages vertex v through outbox(home[v]), and homes collide across a
/// chunk). The collect phase runs chunked over the iteration domain, each
/// chunk appending records into its own slot's per-sender buckets; the
/// drain phase walks each touched sender's buckets in ascending slot order
/// and hands them to the caller (which appends them to the engine outbox).
// Per-sender engine staging state is disjoint across senders, so distinct
// senders drain concurrently; one sender's records arrive in slot order =
// iteration order, reproducing the sequential per-sender stream exactly
// (including run merging, which only depends on the per-sender append
// sequence).
class StageShards {
 public:
  /// Prepares `slots` x `senders` buckets, clearing only what the previous
  /// collect touched (buckets stay warm across phases).
  void reset(std::size_t slots, std::size_t senders) {
    if (parts_.size() < slots) parts_.resize(slots);
    if (touched_.size() < slots) touched_.resize(slots);
    for (std::size_t s = 0; s < slots_used_; ++s) {
      for (const std::uint32_t snd : touched_[s]) parts_[s][snd].clear();
      touched_[s].clear();
    }
    for (std::size_t s = 0; s < slots; ++s) {
      if (parts_[s].size() < senders) parts_[s].resize(senders);
    }
    if (seen_.size() < senders) seen_.assign(senders, 0);
    slots_used_ = slots;
  }

  /// Collect-phase append from chunk `slot` (slot-private bucket: no
  /// synchronization).
  void add(std::size_t slot, std::uint32_t sender, std::uint32_t to,
           std::uint64_t word) {
    std::vector<StageRecord>& bucket = parts_[slot][sender];
    if (bucket.empty()) touched_[slot].push_back(sender);
    bucket.push_back(StageRecord{to, word});
  }

  /// Drains every touched sender: fn(sender, records) is invoked once per
  /// non-empty (sender, slot) bucket, slots ascending per sender; distinct
  /// senders run in parallel over `backend`. fn must touch only that
  /// sender's engine state.
  template <typename Fn>
  void drain(ExecutionBackend& backend, Fn&& fn) {
    sender_list_.clear();
    for (std::size_t s = 0; s < slots_used_; ++s) {
      for (const std::uint32_t snd : touched_[s]) {
        if (!seen_[snd]) {
          seen_[snd] = 1;
          sender_list_.push_back(snd);
        }
      }
    }
    backend.run_chunks(
        0, sender_list_.size(),
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const std::uint32_t snd = sender_list_[i];
            for (std::size_t s = 0; s < slots_used_; ++s) {
              const std::vector<StageRecord>& bucket = parts_[s][snd];
              if (!bucket.empty()) {
                fn(snd, std::span<const StageRecord>(bucket));
              }
            }
          }
        });
    for (const std::uint32_t snd : sender_list_) seen_[snd] = 0;
  }

  /// Senders the last drain visited (first-touched order — fine for
  /// touched-only clearing, not an ordering contract). Valid until the
  /// next reset() or drain().
  [[nodiscard]] std::span<const std::uint32_t> drained_senders()
      const noexcept {
    return sender_list_;
  }

 private:
  std::size_t slots_used_ = 0;
  std::vector<std::vector<std::vector<StageRecord>>> parts_;  // [slot][snd]
  std::vector<std::vector<std::uint32_t>> touched_;           // [slot]
  std::vector<std::uint32_t> sender_list_;                    // drain order
  std::vector<char> seen_;
};

}  // namespace mpcg::mpc

#endif  // MPCG_MPC_BACKEND_H
