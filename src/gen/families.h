// Named workload families.
//
// The experiment harness, the tests, and the examples all draw inputs from
// this catalogue so "power_law at n=4096, seed 3" means the same graph
// everywhere. Each family has a deliberately different degree profile (see
// DESIGN.md, substitutions: the paper's guarantees are worst-case over all
// graphs, so the sweeps must cover flat, heavy-tailed, bipartite,
// clustered, bounded-degree, and adversarial-hub shapes).
#ifndef MPCG_GEN_FAMILIES_H
#define MPCG_GEN_FAMILIES_H

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.h"

namespace mpcg {

/// All family names accepted by graph_family().
[[nodiscard]] std::span<const char* const> family_names();

/// Builds the named family at roughly `n` vertices, deterministically in
/// (family, n, seed). Throws std::invalid_argument for unknown names.
[[nodiscard]] Graph graph_family(const std::string& family, std::size_t n,
                                 std::uint64_t seed);

}  // namespace mpcg

#endif  // MPCG_GEN_FAMILIES_H
