// E16 (ablation — Section 3.2's rank schedule): why alpha = 3/4.
//
// The rank windows r_i = n / Delta^{alpha^i} trade phase count against
// per-phase window size. Smaller alpha takes bigger bites (fewer phases,
// bigger windows — risking the O(n)-edge gather bound); larger alpha takes
// more, smaller phases. DESIGN.md calls out alpha = 3/4 as the paper's
// choice; this sweep shows both sides of the trade-off and that the O(n)
// window bound holds across the range.
#include "bench_util.h"
#include "core/mis_mpc.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E16_AlphaSweep(benchmark::State& state, double alpha) {
  const std::size_t n = 1 << 13;
  const Graph g = gnp_with_degree(n, 256.0, 67);
  MisMpcOptions opt;
  opt.seed = 67;
  opt.alpha = alpha;
  opt.gather_budget = n / 2;  // force the phase machinery to do the work
  MisMpcResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = mis_mpc(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.mis.size());
  }
  emit_json_line("E16_AlphaSweep/alpha" +
                     std::to_string(static_cast<int>(alpha * 100)),
                 n, g.num_edges(), r.metrics.rounds, wall_ms,
                 r.metrics.peak_storage_words);
  std::size_t max_window = 0;
  for (const std::size_t e : r.window_edges_per_phase) {
    max_window = std::max(max_window, e);
  }
  state.counters["alpha"] = alpha;
  state.counters["rank_phases"] = static_cast<double>(r.rank_phases);
  state.counters["engine_rounds"] = static_cast<double>(r.metrics.rounds);
  state.counters["max_window_edges_over_n"] =
      static_cast<double>(max_window) / static_cast<double>(n);
  state.counters["peak_words_over_n"] =
      static_cast<double>(r.metrics.peak_storage_words) /
      static_cast<double>(n);
  state.counters["violations"] = static_cast<double>(r.metrics.violations);
}

void register_all() {
  for (const double alpha : {0.5, 0.6, 0.75, 0.85, 0.95}) {
    benchmark::RegisterBenchmark(
        ("E16_AlphaSweep/alpha" +
         std::to_string(static_cast<int>(alpha * 100)))
            .c_str(),
        [alpha](benchmark::State& s) { E16_AlphaSweep(s, alpha); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
