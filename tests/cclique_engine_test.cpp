#include <gtest/gtest.h>

#include "cclique/engine.h"

namespace mpcg::cclique {
namespace {

TEST(CcEngine, PointToPointDelivery) {
  Engine e(4);
  e.send(1, 2, 77);
  e.exchange();
  ASSERT_EQ(e.inbox(2).size(), 1U);
  EXPECT_EQ(e.inbox(2)[0].from, 1U);
  EXPECT_EQ(e.inbox(2)[0].word, 77U);
  EXPECT_TRUE(e.inbox(1).empty());
  EXPECT_EQ(e.metrics().rounds, 1U);
}

TEST(CcEngine, PairBudgetViolationThrows) {
  Engine e(3);
  e.send(0, 1, 1);
  e.send(0, 1, 2);
  EXPECT_THROW(e.exchange(), CongestionError);
}

TEST(CcEngine, DistinctPairsSameRoundOk) {
  Engine e(4);
  e.send(0, 1, 1);
  e.send(0, 2, 2);
  e.send(0, 3, 3);
  e.send(1, 0, 4);
  EXPECT_NO_THROW(e.exchange());
  EXPECT_EQ(e.metrics().max_player_sent, 3U);
}

TEST(CcEngine, NonStrictCountsViolations) {
  Engine e(3, /*strict=*/false);
  e.send(0, 1, 1);
  e.send(0, 1, 2);
  e.exchange();
  EXPECT_GE(e.metrics().violations, 1U);
}

TEST(CcEngine, BroadcastReachesEveryone) {
  Engine e(5);
  e.broadcast(2, 99);
  e.exchange();
  ASSERT_EQ(e.broadcast_inbox().size(), 1U);
  EXPECT_EQ(e.broadcast_inbox()[0].from, 2U);
  EXPECT_EQ(e.broadcast_inbox()[0].word, 99U);
}

TEST(CcEngine, BroadcastPlusSendSamePairThrows) {
  Engine e(3);
  e.broadcast(0, 1);
  e.send(0, 2, 5);
  EXPECT_THROW(e.exchange(), CongestionError);
}

TEST(CcEngine, DoubleBroadcastThrows) {
  Engine e(3);
  e.broadcast(0, 1);
  e.broadcast(0, 2);
  EXPECT_THROW(e.exchange(), CongestionError);
}

TEST(CcEngine, ManyBroadcastersOneRound) {
  Engine e(6);
  for (PlayerId p = 0; p < 6; ++p) e.broadcast(p, p);
  e.exchange();
  EXPECT_EQ(e.broadcast_inbox().size(), 6U);
  EXPECT_EQ(e.metrics().rounds, 1U);
}

TEST(CcEngine, LenzenFeasibleBatchTwoRounds) {
  Engine e(4);
  std::vector<Message> msgs;
  for (PlayerId p = 0; p < 4; ++p) msgs.push_back({p, 0, p});
  const auto delivered = e.lenzen_route(std::move(msgs));
  EXPECT_EQ(delivered[0].size(), 4U);
  EXPECT_EQ(e.metrics().rounds, 2U);
  EXPECT_EQ(e.metrics().lenzen_batches, 1U);
}

TEST(CcEngine, LenzenOverloadSplitsBatches) {
  Engine e(3);
  // 7 messages to player 0; receiver budget is n=3 per batch.
  std::vector<Message> msgs;
  for (int i = 0; i < 7; ++i) {
    msgs.push_back({static_cast<PlayerId>(i % 3), 0,
                    static_cast<Word>(i)});
  }
  const auto delivered = e.lenzen_route(std::move(msgs));
  EXPECT_EQ(delivered[0].size(), 7U);
  EXPECT_EQ(e.metrics().lenzen_batches, 3U);  // ceil(7/3)
  EXPECT_EQ(e.metrics().rounds, 6U);
}

TEST(CcEngine, LenzenRejectsWhileSendsQueued) {
  Engine e(3);
  e.send(0, 1, 1);
  EXPECT_THROW(e.lenzen_route({}), std::logic_error);
}

TEST(CcEngine, OutOfRangePlayersThrow) {
  Engine e(3);
  EXPECT_THROW(e.send(0, 3, 1), std::out_of_range);
  EXPECT_THROW(e.send(3, 0, 1), std::out_of_range);
  EXPECT_THROW(e.broadcast(5, 1), std::out_of_range);
}

TEST(CcEngine, RejectsZeroPlayers) {
  EXPECT_THROW(Engine(0), std::invalid_argument);
}

}  // namespace
}  // namespace mpcg::cclique
