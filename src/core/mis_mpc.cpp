#include "core/mis_mpc.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "baselines/local_mis.h"
#include "mpc/primitives.h"
#include "util/permutation.h"
#include "util/rng.h"

namespace mpcg {

namespace {

using mpc::Word;

Word encode_pair(VertexId a, VertexId b) noexcept {
  return (static_cast<Word>(a) << 32) | b;
}

std::pair<VertexId, VertexId> decode_pair(Word w) noexcept {
  return {static_cast<VertexId>(w >> 32),
          static_cast<VertexId>(w & 0xffffffffULL)};
}

/// Shared driver state. The `alive` and `in_mis` arrays are common
/// knowledge across machines (every update is announced through charged
/// gather+broadcast steps), so they are stored once; adjacency is owned by
/// each vertex's home machine and only leaves it through engine pushes.
class MisMpcRun {
 public:
  MisMpcRun(const Graph& g, const MisMpcOptions& options)
      : g_(g), options_(options), n_(g.num_vertices()) {
    const std::size_t min_words = 64;
    words_ = options.words_per_machine != 0
                 ? options.words_per_machine
                 : 8 * std::max(n_, min_words);
    const std::size_t m_edges = g.num_edges();
    machines_ = options.num_machines != 0
                    ? options.num_machines
                    : std::max<std::size_t>(2, (4 * m_edges + words_ - 1) /
                                                   words_);
    gather_budget_ = options.gather_budget != 0 ? options.gather_budget
                                                : words_ / 2;

    // Resident state per machine: adjacency shard + the permutation (rank
    // table) + the shared alive bitset. In auto-sizing mode, grow the
    // cluster until the (hash-balanced) shards actually fit — dense or
    // skewed graphs need more machines than the average-load estimate.
    const std::size_t fixed_words = n_ + n_ / 64 + 1;
    std::vector<std::size_t> shard_words;
    for (;;) {
      shard_words.assign(machines_, 0);
      home_.resize(n_);
      for (VertexId v = 0; v < n_; ++v) {
        home_[v] = static_cast<std::uint32_t>(
            mix64(options.seed, v, 0x401e) % machines_);
        shard_words[home_[v]] += 1 + g.degree(v);
      }
      const std::size_t max_shard =
          shard_words.empty()
              ? 0
              : *std::max_element(shard_words.begin(), shard_words.end());
      if (options.num_machines != 0 || max_shard + fixed_words <= words_ ||
          machines_ >= 2 * m_edges + 2) {
        break;
      }
      machines_ *= 2;
    }
    engine_.emplace(mpc::Config{machines_, words_, options.strict});
    for (std::size_t i = 0; i < machines_; ++i) {
      engine_->note_storage(i, shard_words[i] + fixed_words);
    }

    alive_.assign(n_, 1);
    in_mis_.assign(n_, 0);
  }

  MisMpcResult run() {
    MisMpcResult result;
    result.machines_used = machines_;
    result.words_per_machine_used = words_;
    if (n_ == 0) return result;

    // The leader draws the permutation and broadcasts it (paper: "all
    // vertices agree on a uniform random order").
    Rng rng(options_.seed);
    perm_ = random_permutation(n_, rng);
    {
      std::vector<Word> payload(perm_.begin(), perm_.end());
      mpc::broadcast(*engine_, 0, payload);
    }
    rank_of_ = invert_permutation(perm_);

    const double delta0 = std::max<double>(2.0, static_cast<double>(
                                                    g_.max_degree()));
    const double log_delta = std::log2(delta0);

    std::size_t next_rank = 0;
    while (true) {
      const std::uint64_t alive_edges = count_alive_edges();
      if (alive_edges <= gather_budget_) {
        final_gather(result);
        break;
      }
      if (options_.use_sparsified_stage &&
          max_alive_degree() <= options_.degree_switch) {
        sparsified_stage(result);
        final_gather(result);
        break;
      }
      // Next rank phase: process ranks [next_rank, n / Delta^{alpha^i}).
      ++result.rank_phases;
      const double exponent =
          std::pow(options_.alpha, static_cast<double>(result.rank_phases));
      auto upper = static_cast<std::size_t>(
          std::llround(static_cast<double>(n_) *
                       std::pow(2.0, -exponent * log_delta)));
      upper = std::clamp(upper, next_rank + 1, n_);
      rank_phase(next_rank, upper, result);
      next_rank = upper;
    }

    result.metrics = engine_->metrics();
    result.mis = std::move(mis_);
    return result;
  }

 private:
  /// Alive-alive edge count, counted at the lower endpoint's home and
  /// all-reduced (3 charged rounds).
  std::uint64_t count_alive_edges() {
    std::vector<Word> per(machines_, 0);
    for (const Edge& e : g_.edges()) {
      if (alive_[e.u] && alive_[e.v]) ++per[home_[e.u]];
    }
    return mpc::all_reduce_sum(*engine_, per);
  }

  /// Maximum alive degree, computed per home and all-reduced.
  std::uint64_t max_alive_degree() {
    std::vector<Word> per(machines_, 0);
    for (VertexId v = 0; v < n_; ++v) {
      if (!alive_[v]) continue;
      std::uint64_t d = 0;
      for (const Arc& a : g_.arcs(v)) {
        if (alive_[a.to]) ++d;
      }
      per[home_[v]] = std::max(per[home_[v]], d);
    }
    return mpc::all_reduce_max(*engine_, per);
  }

  /// Broadcasts the new MIS members, lets every home decide which of its
  /// vertices die (member or neighbor of one), and announces the deaths via
  /// gather + broadcast so the alive bitset stays common knowledge.
  void commit_mis_members(const std::vector<VertexId>& mis_new) {
    if (mis_new.empty()) return;
    std::vector<Word> payload(mis_new.begin(), mis_new.end());
    mpc::broadcast(*engine_, 0, payload);

    std::vector<char> is_new(n_, 0);
    for (const VertexId v : mis_new) is_new[v] = 1;
    std::vector<std::vector<Word>> dead_parts(machines_);
    std::vector<VertexId> died;
    for (VertexId v = 0; v < n_; ++v) {
      if (!alive_[v]) continue;
      bool dies = is_new[v] != 0;
      if (!dies) {
        for (const Arc& a : g_.arcs(v)) {
          if (is_new[a.to]) {
            dies = true;
            break;
          }
        }
      }
      if (dies) {
        dead_parts[home_[v]].push_back(v);
        died.push_back(v);
      }
    }
    const auto gathered = mpc::gather_to(*engine_, 0, dead_parts);
    mpc::broadcast(*engine_, 0, gathered);
    for (const VertexId v : died) alive_[v] = 0;
    for (const VertexId v : mis_new) {
      in_mis_[v] = 1;
      mis_.push_back(v);
    }
  }

  /// One rank phase: gather the window-induced residual subgraph at the
  /// leader, play greedy through the window ranks, commit the members.
  void rank_phase(std::size_t lo, std::size_t hi, MisMpcResult& result) {
    // Homes push alive window-induced edges (deduped at the lower vertex
    // id) to the leader.
    for (std::size_t r = lo; r < hi; ++r) {
      const VertexId v = perm_[r];
      if (!alive_[v]) continue;
      for (const Arc& a : g_.arcs(v)) {
        if (a.to > v && alive_[a.to] && rank_of_[a.to] >= lo &&
            rank_of_[a.to] < hi) {
          engine_->push(home_[v], 0, encode_pair(v, a.to));
        }
      }
    }
    engine_->exchange();
    const auto& inbox = engine_->inbox(0);
    result.window_edges_per_phase.push_back(inbox.size());

    // Leader: window adjacency + greedy through ranks lo..hi-1. (The
    // leader knows ranks and aliveness — both common knowledge.)
    std::unordered_map<VertexId, std::vector<VertexId>> adj;
    adj.reserve(inbox.size() * 2);
    for (const Word w : inbox) {
      const auto [u, v] = decode_pair(w);
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
    std::vector<VertexId> mis_new;
    std::unordered_map<VertexId, char> killed;
    for (std::size_t r = lo; r < hi; ++r) {
      const VertexId v = perm_[r];
      if (!alive_[v] || killed.count(v) != 0) continue;
      mis_new.push_back(v);
      const auto it = adj.find(v);
      if (it != adj.end()) {
        for (const VertexId u : it->second) killed[u] = 1;
      }
    }
    commit_mis_members(mis_new);
  }

  /// Sparsified stage: Ghaffari-style local dynamics on the low-degree
  /// residual graph. Each iteration exchanges (mark, desire) words along
  /// alive edges and announces the joins/deaths.
  void sparsified_stage(MisMpcResult& result) {
    LocalMisState state(g_, alive_, mix64(options_.seed, 0x5fa1, 1));
    while (count_alive_edges() > gather_budget_) {
      // Neighbors exchange their mark bit and desire level: one word each
      // way per alive edge.
      for (const Edge& e : g_.edges()) {
        if (alive_[e.u] && alive_[e.v]) {
          engine_->push(home_[e.u], home_[e.v], encode_pair(e.u, e.v));
          engine_->push(home_[e.v], home_[e.u], encode_pair(e.v, e.u));
        }
      }
      engine_->exchange();
      const auto joined = state.step();
      ++result.sparsified_iterations;
      commit_mis_members(joined);
      if (state.alive_count() == 0) break;
    }
  }

  /// Gathers every remaining alive-alive edge at the leader, which finishes
  /// the greedy process in rank order and commits the members.
  void final_gather(MisMpcResult& result) {
    for (const Edge& e : g_.edges()) {
      if (alive_[e.u] && alive_[e.v]) {
        engine_->push(home_[e.u], 0, encode_pair(e.u, e.v));
      }
    }
    engine_->exchange();
    const auto& inbox = engine_->inbox(0);
    result.final_gather_edges = inbox.size();

    std::unordered_map<VertexId, std::vector<VertexId>> adj;
    adj.reserve(inbox.size() * 2);
    for (const Word w : inbox) {
      const auto [u, v] = decode_pair(w);
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
    std::vector<VertexId> mis_new;
    std::unordered_map<VertexId, char> killed;
    for (std::size_t r = 0; r < n_; ++r) {
      const VertexId v = perm_[r];
      if (!alive_[v] || killed.count(v) != 0) continue;
      mis_new.push_back(v);
      const auto it = adj.find(v);
      if (it != adj.end()) {
        for (const VertexId u : it->second) killed[u] = 1;
      }
    }
    commit_mis_members(mis_new);
  }

  const Graph& g_;
  const MisMpcOptions& options_;
  std::size_t n_;
  std::size_t machines_ = 0;
  std::size_t words_ = 0;
  std::size_t gather_budget_ = 0;
  std::optional<mpc::Engine> engine_;

  std::vector<std::uint32_t> home_;
  std::vector<std::uint32_t> perm_;
  std::vector<std::uint32_t> rank_of_;
  std::vector<char> alive_;
  std::vector<char> in_mis_;
  std::vector<VertexId> mis_;
};

}  // namespace

MisMpcResult mis_mpc(const Graph& g, const MisMpcOptions& options) {
  MisMpcRun run(g, options);
  return run.run();
}

}  // namespace mpcg
