#include "fault/checkpoint.h"

#include <algorithm>
#include <utility>

#include "util/fnv.h"
#include "util/rng.h"

namespace mpcg::fault {

namespace {

/// Charge of shipping `now` given the provider's previous image `prev`
/// (same length): two header words (offset, length) plus the payload per
/// maximal dirty stretch, capped at a full re-serialization.
std::size_t dirty_range_cost(const CheckpointRegistry::Word* prev,
                             const CheckpointRegistry::Word* now,
                             std::size_t words) {
  std::size_t cost = 0;
  std::size_t i = 0;
  while (i < words) {
    if (prev[i] == now[i]) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < words && prev[j] != now[j]) ++j;
    cost += 2 + (j - i);
    if (cost >= words) return words;  // delta lost; charge a full save
    i = j;
  }
  return cost;
}

}  // namespace

void CheckpointRegistry::register_state(std::string name, SaveFn save,
                                        RestoreFn restore) {
  providers_.push_back({std::move(name), std::move(save), std::move(restore)});
}

std::size_t CheckpointRegistry::capture(std::size_t round) {
  std::size_t cost = 0;
  bool all_deltas = !ring_.empty() && !providers_.empty();
  const Generation* prev = ring_.empty() ? nullptr : &ring_.back();
  fresh_.clear();
  std::vector<Image> images;
  images.reserve(providers_.size());
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    const std::size_t offset = fresh_.size();
    providers_[i].save(fresh_);
    const std::size_t words = fresh_.size() - offset;
    const Word csum = Fnv::digest({fresh_.data() + offset, words});
    if (prev != nullptr && i < prev->images.size() &&
        prev->images[i].words == words) {
      const std::size_t delta =
          dirty_range_cost(prev->buffer.data() + prev->images[i].offset,
                           fresh_.data() + offset, words);
      cost += delta;
      if (delta >= words && words != 0) all_deltas = false;
    } else {
      // First capture, or the provider resized (frontier lists grow and
      // shrink): dirty ranges against a differently-shaped image are
      // meaningless, ship it whole.
      cost += words;
      all_deltas = false;
    }
    images.push_back({offset, words, csum});
  }
  Generation g;
  g.buffer.swap(fresh_);
  g.images = std::move(images);
  g.round = round;
  ring_.push_back(std::move(g));
  if (ring_.size() > generations_) {
    // Recycle the evicted generation's allocation as the next scratch.
    fresh_.swap(ring_.front().buffer);
    ring_.erase(ring_.begin());
  }
  ++captures_;
  delta_captures_ += all_deltas;
  last_capture_words_ = cost;
  return cost;
}

void CheckpointRegistry::restore() {
  if (ring_.empty()) return;
  for (std::size_t age = 0; age < ring_.size(); ++age) {
    if (!generation_ok(age)) continue;
    const Generation& g = gen(age);
    const std::size_t n = std::min(providers_.size(), g.images.size());
    for (std::size_t i = 0; i < n; ++i) {
      providers_[i].restore(std::span<const Word>(
          g.buffer.data() + g.images[i].offset, g.images[i].words));
    }
    fallback_restores_ += age != 0;
    last_restored_round_ = g.round;
    ++restores_;
    return;
  }
  // Name the rotted providers (union over the whole ring) so the operator
  // knows *which* state lost its last good copy, not just that one did.
  std::vector<std::string> seen;
  std::string rotted;
  for (std::size_t age = 0; age < ring_.size(); ++age) {
    for (std::string& name : rotted_providers(age)) {
      if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
      rotted += rotted.empty() ? "" : ", ";
      rotted += name;
      seen.push_back(std::move(name));
    }
  }
  throw CheckpointError("checkpoint restore: all " +
                        std::to_string(ring_.size()) +
                        " retained generation(s) fail verification" +
                        " (rotted provider(s): " + rotted + ")");
}

std::vector<std::string> CheckpointRegistry::rotted_providers(
    std::size_t age) const {
  std::vector<std::string> rotted;
  const Generation& g = gen(age);
  const std::size_t n = std::min(providers_.size(), g.images.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Image& im = g.images[i];
    if (Fnv::digest({g.buffer.data() + im.offset, im.words}) != im.csum) {
      rotted.push_back(providers_[i].name);
    }
  }
  return rotted;
}

bool CheckpointRegistry::generation_ok(std::size_t age) const {
  const Generation& g = gen(age);
  for (const Image& im : g.images) {
    if (Fnv::digest({g.buffer.data() + im.offset, im.words}) != im.csum) {
      return false;
    }
  }
  return true;
}

std::size_t CheckpointRegistry::corrupt_generation(std::size_t age,
                                                   std::uint64_t a,
                                                   std::uint64_t b,
                                                   std::uint64_t c) {
  Generation& g = gen(age);
  if (g.buffer.empty()) return 0;
  // Same flip pattern as the wire/store corruptions: 1–3 deduplicated
  // (word, bit) positions drawn statelessly from mix64.
  const std::size_t flips = 1 + mix64(a, b, c * 8 + 5) % 3;
  std::size_t idxs[3];
  std::size_t bits[3];
  std::size_t applied = 0;
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t idx = mix64(a, b * 8 + f, c * 8 + 6) % g.buffer.size();
    const std::size_t bit = mix64(a, b * 8 + f, c * 8 + 7) % 64;
    bool dup = false;
    for (std::size_t s = 0; s < applied; ++s) {
      dup |= idxs[s] == idx && bits[s] == bit;
    }
    if (dup) continue;
    idxs[applied] = idx;
    bits[applied] = bit;
    ++applied;
    g.buffer[idx] ^= Word{1} << bit;
  }
  return applied;
}

std::vector<DurableSection> CheckpointRegistry::save_sections() {
  std::vector<DurableSection> sections;
  sections.resize(providers_.size());
  save_sections_into(sections);
  return sections;
}

void CheckpointRegistry::save_sections_into(std::vector<DurableSection>& out) {
  if (out.size() < providers_.size()) out.resize(providers_.size());
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    out[i].name = providers_[i].name;
    out[i].payload.clear();
    providers_[i].save(out[i].payload);
  }
}

void CheckpointRegistry::install_sections(
    std::span<const DurableSection> sections) {
  for (Provider& p : providers_) {
    const DurableSection* found = nullptr;
    for (const DurableSection& s : sections) {
      if (s.name == p.name) {
        found = &s;
        break;
      }
    }
    if (found == nullptr) {
      throw CheckpointError(
          "durable checkpoint restore: no section for provider '" + p.name +
          "'");
    }
    p.restore(std::span<const Word>(found->payload));
  }
}

std::size_t CheckpointRegistry::save_to(DurableRing& ring, std::uint64_t round,
                                        const std::string& scope,
                                        std::vector<DurableSection> extra) {
  std::vector<DurableSection> sections = save_sections();
  for (DurableSection& s : extra) sections.push_back(std::move(s));
  return ring.save(round, scope, std::move(sections));
}

std::optional<DurableLoad> CheckpointRegistry::load_from(
    const DurableRing& ring, const std::string& scope) {
  std::optional<DurableLoad> loaded = ring.load(scope);
  if (loaded) install_sections(loaded->checkpoint.sections);
  return loaded;
}

void CheckpointRegistry::recapture_newest() {
  if (ring_.empty()) return;
  Generation& g = ring_.back();
  fresh_.clear();
  std::vector<Image> images;
  images.reserve(providers_.size());
  for (Provider& p : providers_) {
    const std::size_t offset = fresh_.size();
    p.save(fresh_);
    const std::size_t words = fresh_.size() - offset;
    images.push_back(
        {offset, words, Fnv::digest({fresh_.data() + offset, words})});
  }
  g.buffer.swap(fresh_);
  g.images = std::move(images);
}

}  // namespace mpcg::fault
