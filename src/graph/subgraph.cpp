#include "graph/subgraph.h"

#include <stdexcept>

namespace mpcg {

namespace {
constexpr VertexId kAbsent = static_cast<VertexId>(-1);
}  // namespace

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<VertexId>& vertices) {
  std::vector<VertexId> local_of(g.num_vertices(), kAbsent);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    if (v >= g.num_vertices()) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    if (local_of[v] != kAbsent) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    }
    local_of[v] = static_cast<VertexId>(i);
  }

  GraphBuilder builder(vertices.size());
  std::vector<EdgeId> parent_edges;
  for (const VertexId v : vertices) {
    for (const Arc& a : g.arcs(v)) {
      if (a.to > v && local_of[a.to] != kAbsent) {
        builder.add_edge(local_of[v], local_of[a.to]);
        parent_edges.push_back(a.edge);
      }
    }
  }

  InducedSubgraph out;
  out.graph = builder.build();
  out.to_parent_vertex = vertices;
  // GraphBuilder sorts/dedupes; recover the parent edge per local edge via
  // lookup (inputs were unique already since g is simple, but the order may
  // have changed).
  out.to_parent_edge.resize(out.graph.num_edges());
  for (EdgeId le = 0; le < out.graph.num_edges(); ++le) {
    const Edge e = out.graph.edge(le);
    const EdgeId pe =
        g.find_edge(out.to_parent_vertex[e.u], out.to_parent_vertex[e.v]);
    out.to_parent_edge[le] = pe;
  }
  return out;
}

std::size_t count_induced_edges(const Graph& g,
                                const std::vector<VertexId>& vertices) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const VertexId v : vertices) in_set[v] = true;
  std::size_t count = 0;
  for (const VertexId v : vertices) {
    for (const Arc& a : g.arcs(v)) {
      if (a.to > v && in_set[a.to]) ++count;
    }
  }
  return count;
}

}  // namespace mpcg
