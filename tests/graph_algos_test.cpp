#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/greedy_matching.h"
#include "gen/generators.h"
#include "graph/graph_algos.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::make_family;

TEST(Components, CountsDisjointPieces) {
  const Graph g = clique_union(5, 4);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 5U);
  // Vertices within a clique share a component.
  for (std::size_t q = 0; q < 5; ++q) {
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_EQ(c.component_of[q * 4], c.component_of[q * 4 + i]);
    }
  }
}

TEST(Components, IsolatedVerticesAreOwnComponents) {
  const Graph g = GraphBuilder(4).build();
  EXPECT_EQ(connected_components(g).count, 4U);
}

TEST(Components, ConnectedGraphIsOne) {
  const Graph g = cycle_graph(20);
  EXPECT_EQ(connected_components(g).count, 1U);
}

TEST(Bfs, PathDistances) {
  const Graph g = path_graph(6);
  const auto d = bfs_distances(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, UnreachableIsMax) {
  const Graph g = clique_union(2, 3);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[5], std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(d[1], 1U);
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracy_ordering(path_graph(10)).degeneracy, 1U);
  EXPECT_EQ(degeneracy_ordering(cycle_graph(10)).degeneracy, 2U);
  EXPECT_EQ(degeneracy_ordering(complete_graph(7)).degeneracy, 6U);
  EXPECT_EQ(degeneracy_ordering(grid_graph(6, 6)).degeneracy, 2U);
  EXPECT_EQ(degeneracy_ordering(star_graph(50)).degeneracy, 1U);
}

TEST(Degeneracy, OrderIsAPermutation) {
  const Graph g = make_family("power_law", 300, 3);
  const auto r = degeneracy_ordering(g);
  std::vector<char> seen(g.num_vertices(), 0);
  for (const VertexId v : r.order) {
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
  EXPECT_EQ(r.order.size(), g.num_vertices());
}

TEST(Degeneracy, CoreNumbersMonotoneAlongOrder) {
  const Graph g = make_family("gnp_dense", 300, 5);
  const auto r = degeneracy_ordering(g);
  for (std::size_t i = 1; i < r.order.size(); ++i) {
    EXPECT_LE(r.core_number[r.order[i - 1]], r.core_number[r.order[i]]);
  }
  EXPECT_LE(r.degeneracy, g.max_degree());
}

TEST(Triangles, KnownCounts) {
  EXPECT_EQ(triangle_count(complete_graph(4)), 4U);
  EXPECT_EQ(triangle_count(complete_graph(6)), 20U);
  EXPECT_EQ(triangle_count(cycle_graph(3)), 1U);
  EXPECT_EQ(triangle_count(cycle_graph(5)), 0U);
  EXPECT_EQ(triangle_count(path_graph(10)), 0U);
  EXPECT_EQ(triangle_count(complete_bipartite(4, 4)), 0U);
  EXPECT_EQ(triangle_count(clique_union(3, 3)), 3U);
}

TEST(LineGraph, PathBecomesShorterPath) {
  // L(P_n) = P_{n-1}.
  const Graph lg = line_graph(path_graph(5));
  EXPECT_EQ(lg.num_vertices(), 4U);
  EXPECT_EQ(lg.num_edges(), 3U);
  EXPECT_EQ(lg.max_degree(), 2U);
}

TEST(LineGraph, StarBecomesClique) {
  // L(K_{1,k}) = K_k.
  const Graph lg = line_graph(star_graph(6));
  EXPECT_EQ(lg.num_vertices(), 5U);
  EXPECT_EQ(lg.num_edges(), 10U);
}

TEST(LineGraph, EdgeCountFormula) {
  // |E(L(G))| = sum_v C(deg v, 2).
  const Graph g = make_family("gnp_sparse", 200, 7);
  const Graph lg = line_graph(g);
  std::size_t expected = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.degree(v);
    expected += d * (d - 1) / 2;
  }
  EXPECT_EQ(lg.num_vertices(), g.num_edges());
  EXPECT_EQ(lg.num_edges(), expected);
}

TEST(LineGraph, MisOnLineGraphIsMaximalMatching) {
  // The reduction from the paper's introduction, across families/seeds.
  for (const char* family : {"gnp_sparse", "bipartite", "grid", "cliques"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Graph g = make_family(family, 150, seed);
      const auto m = maximal_matching_via_line_graph(g, seed);
      EXPECT_TRUE(is_maximal_matching(g, m)) << family << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mpcg
