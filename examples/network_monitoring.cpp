// Scenario: placing traffic monitors in a network.
//
// Every link must be observed by a monitor at one of its endpoints — a
// vertex cover of the topology graph. On an RMAT topology (skewed,
// clustered, internet-like) the Theorem 1.2 pipeline places a
// (2+eps)-approximate minimal monitor set in O(log log n) rounds, and the
// fractional relaxation (Lemma 4.2) doubles as a per-router "criticality"
// score.
#include <algorithm>
#include <cstdio>

#include "core/matching_mpc.h"
#include "core/integral_matching.h"
#include "gen/generators.h"
#include "graph/validation.h"

int main() {
  using namespace mpcg;

  Rng rng(13);
  const Graph g = rmat(14, 6 * (1 << 14), 0.45, 0.22, 0.22, rng);
  std::printf("topology: n=%zu routers, m=%zu links, max_degree=%zu\n",
              g.num_vertices(), g.num_edges(), g.max_degree());

  // Monitor placement.
  IntegralMatchingOptions opt;
  opt.eps = 0.1;
  opt.seed = 17;
  const auto placement = integral_matching(g, opt);
  std::printf("\nmonitors placed: %zu routers (every link observed: %s)\n",
              placement.cover.size(),
              is_vertex_cover(g, placement.cover) ? "yes" : "NO");
  std::printf("disjoint-link lower bound (matching): %zu -> placement is "
              "within %.2fx of any possible placement\n",
              placement.matching.size(),
              placement.matching.empty()
                  ? 0.0
                  : static_cast<double>(placement.cover.size()) /
                        static_cast<double>(placement.matching.size()));

  // Criticality scores from the fractional relaxation.
  MatchingMpcOptions fopt;
  fopt.eps = 0.1;
  fopt.seed = 18;
  const auto frac = matching_mpc(g, fopt);
  const auto loads = vertex_loads(g, frac.x);
  std::vector<VertexId> routers(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) routers[v] = v;
  std::partial_sort(routers.begin(), routers.begin() + 5, routers.end(),
                    [&](VertexId a, VertexId b) { return loads[a] > loads[b]; });
  std::printf("\ntop-5 critical routers (fractional load / degree):\n");
  for (int i = 0; i < 5; ++i) {
    const VertexId v = routers[static_cast<std::size_t>(i)];
    std::printf("  router %-6u load=%.3f degree=%zu\n", v, loads[v],
                g.degree(v));
  }
  std::printf("\npipeline cost: %zu engine rounds across %zu phases\n",
              frac.metrics.rounds, frac.phases);
  return 0;
}
