// Allocation hints for the big lazily-touched arc buffers.
//
// ResidualGraph and ActiveArcs reserve address-space-sized arc buffers
// (O(total arcs)) that are touched page by page as segments materialize.
// With 4K pages a 2^20-vertex run takes tens of thousands of first-touch
// faults and keeps the TLB churning across the scattered per-vertex
// segments; hinting transparent huge pages backs the same range with 2MB
// pages — 512x fewer faults and far fewer TLB misses — while keeping the
// lazy-touch property (nothing is populated up front).
#ifndef MPCG_UTIL_MEMORY_H
#define MPCG_UTIL_MEMORY_H

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace mpcg {

/// Best-effort THP hint for [p, p + bytes). No-op off Linux, for small
/// ranges (under 4 MiB the fault savings are noise), or when the kernel
/// rejects the advice — the buffer works identically either way.
inline void advise_huge_pages(void* p, std::size_t bytes) noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::size_t kHuge = std::size_t{1} << 21;
  if (bytes < (std::size_t{4} << 20)) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t aligned = (addr + kHuge - 1) & ~(kHuge - 1);
  const std::uintptr_t end = addr + bytes;
  if (end <= aligned + kHuge) return;
  (void)madvise(reinterpret_cast<void*>(aligned),
                static_cast<std::size_t>(end - aligned), MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace mpcg

#endif  // MPCG_UTIL_MEMORY_H
