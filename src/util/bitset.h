// Dynamic bit set sized at runtime.
//
// Machines in the MPC simulation keep per-vertex liveness flags; n bits is
// O(n / 64) words, within the O(n)-words-per-machine budget the paper
// assumes (Section 3.2).
#ifndef MPCG_UTIL_BITSET_H
#define MPCG_UTIL_BITSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpcg {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n, bool value = false)
      : size_(n),
        words_((n + 63) / 64, value ? ~std::uint64_t{0} : std::uint64_t{0}) {
    trim();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  void set(std::size_t i) noexcept { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::size_t i, bool value) noexcept {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Number of 64-bit words of storage; used for word-accurate memory
  /// accounting in the MPC engine.
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }

 private:
  void trim() noexcept {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mpcg

#endif  // MPCG_UTIL_BITSET_H
