// E2 (Theorem 1.1 vs prior work): the round-compression figure.
//
// Fixed n, Delta sweep. Series: our rank phases + sparsified iterations
// (O(log log Delta)), Luby's rounds (O(log n)), and the randomized-greedy
// dependency depth (Theta(log n), [FN18/BFS12]) the compression collapses.
// Shape to reproduce: ours << Luby ~ greedy-depth, with the gap widening
// in Delta.
#include "baselines/greedy_mis.h"
#include "baselines/luby.h"
#include "bench_util.h"
#include "core/mis_mpc.h"
#include "util/permutation.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E02_OursVsLubyVsGreedyDepth(benchmark::State& state) {
  const std::size_t n = 1 << 13;
  const double degree = static_cast<double>(state.range(0));
  const Graph g = gnp_with_degree(n, degree, 3);

  MisMpcResult ours;
  LubyResult luby;
  std::size_t depth = 0;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    MisMpcOptions opt;
    opt.seed = 3;
    ours = mis_mpc(g, opt);
    luby = luby_mis(g, 3);
    Rng rng(3);
    const auto perm = random_permutation(n, rng);
    depth = greedy_dependency_depth(g, perm);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(depth);
  }
  emit_json_line("E02_OursVsLubyVsGreedyDepth/" +
                     std::to_string(state.range(0)),
                 n, g.num_edges(), ours.metrics.rounds, wall_ms,
                 ours.metrics.peak_storage_words);
  state.counters["delta"] = static_cast<double>(g.max_degree());
  state.counters["ours_stages"] = static_cast<double>(
      ours.rank_phases + ours.sparsified_iterations + 1);
  state.counters["ours_engine_rounds"] =
      static_cast<double>(ours.metrics.rounds);
  state.counters["luby_rounds"] = static_cast<double>(luby.rounds);
  state.counters["greedy_depth"] = static_cast<double>(depth);
  state.counters["log2_n"] = std::log2(static_cast<double>(n));
  state.counters["loglog_delta"] =
      log2log2(static_cast<double>(g.max_degree()));
}
BENCHMARK(E02_OursVsLubyVsGreedyDepth)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
