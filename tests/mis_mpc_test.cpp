#include <tuple>

#include <gtest/gtest.h>

#include "baselines/greedy_mis.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "graph/validation.h"
#include "test_util.h"
#include "util/permutation.h"
#include "util/rng.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

TEST(MisMpc, EmptyAndTrivialGraphs) {
  const Graph empty = GraphBuilder(0).build();
  EXPECT_TRUE(mis_mpc(empty, {}).mis.empty());

  const Graph isolated = GraphBuilder(5).build();
  const auto r = mis_mpc(isolated, {});
  EXPECT_EQ(r.mis.size(), 5U);  // all isolated vertices join
  EXPECT_TRUE(is_maximal_independent_set(isolated, r.mis));
}

TEST(MisMpc, ExactlySimulatesSequentialGreedy) {
  // With the sparsified stage disabled, the simulation is lossless: same
  // permutation => identical MIS, in identical join order.
  for (const char* family : kFamilies) {
    const Graph g = make_family(family, 400, 77);
    MisMpcOptions opt;
    opt.seed = 1234;
    opt.use_sparsified_stage = false;
    const auto mpc_result = mis_mpc(g, opt);

    Rng rng(opt.seed);
    const auto perm = random_permutation(g.num_vertices(), rng);
    const auto reference = greedy_mis(g, perm);
    EXPECT_EQ(mpc_result.mis, reference) << "family " << family;
  }
}

TEST(MisMpc, DefaultConfigProducesValidMis) {
  for (const char* family : kFamilies) {
    const Graph g = make_family(family, 500, 9);
    const auto r = mis_mpc(g, {});
    EXPECT_TRUE(is_maximal_independent_set(g, r.mis)) << family;
  }
}

TEST(MisMpc, NoCapacityViolationsAtDefaultSizing) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnp(2000, 16.0 / 2000.0, rng);
  MisMpcOptions opt;
  opt.strict = true;  // throws on violation
  const auto r = mis_mpc(g, opt);
  EXPECT_EQ(r.metrics.violations, 0U);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
}

TEST(MisMpc, WindowEdgesStayLinear) {
  // Lemma 3.1 / Eq.(1): each phase's gathered window subgraph has O(n)
  // edges. Check a generous constant.
  Rng rng(4);
  const std::size_t n = 4000;
  const Graph g = erdos_renyi_gnp(n, 32.0 / static_cast<double>(n), rng);
  const auto r = mis_mpc(g, {});
  for (const std::size_t edges : r.window_edges_per_phase) {
    EXPECT_LE(edges, 4 * n);
  }
}

TEST(MisMpc, PeakStorageWithinBudget) {
  Rng rng(5);
  const std::size_t n = 3000;
  const Graph g = erdos_renyi_gnp(n, 12.0 / static_cast<double>(n), rng);
  const auto r = mis_mpc(g, {});
  EXPECT_LE(r.metrics.peak_storage_words, r.words_per_machine_used);
}

TEST(MisMpc, DeterministicPerSeed) {
  const Graph g = make_family("gnp_dense", 300, 5);
  MisMpcOptions opt;
  opt.seed = 42;
  EXPECT_EQ(mis_mpc(g, opt).mis, mis_mpc(g, opt).mis);
}

TEST(MisMpc, DifferentSeedsUsuallyDiffer) {
  const Graph g = make_family("gnp_dense", 300, 5);
  MisMpcOptions a;
  a.seed = 1;
  MisMpcOptions b;
  b.seed = 2;
  EXPECT_NE(mis_mpc(g, a).mis, mis_mpc(g, b).mis);
}

TEST(MisMpc, RankPhasesTrackLogLogDelta) {
  // Doubling the exponent of Delta should add roughly O(1) phases.
  Rng rng(6);
  const std::size_t n = 4096;
  const Graph low = erdos_renyi_gnp(n, 8.0 / n, rng);
  const Graph high = erdos_renyi_gnp(n, 128.0 / n, rng);
  MisMpcOptions opt;
  opt.use_sparsified_stage = true;
  const auto rl = mis_mpc(low, opt);
  const auto rh = mis_mpc(high, opt);
  // More degree -> possibly more phases, but only by a few.
  EXPECT_LE(rh.rank_phases, rl.rank_phases + 6);
  EXPECT_LE(rh.rank_phases, 12U);
}

TEST(MisMpc, ExplicitSizingRespected) {
  const Graph g = make_family("gnp_sparse", 200, 7);
  MisMpcOptions opt;
  opt.num_machines = 5;
  opt.words_per_machine = 4096;
  const auto r = mis_mpc(g, opt);
  EXPECT_EQ(r.machines_used, 5U);
  EXPECT_EQ(r.words_per_machine_used, 4096U);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
}

TEST(MisCclique, ProducesValidMis) {
  for (const char* family : kFamilies) {
    const Graph g = make_family(family, 300, 11);
    const auto r = mis_cclique(g, {});
    EXPECT_TRUE(is_maximal_independent_set(g, r.mis)) << family;
  }
}

TEST(MisCclique, MatchesMpcDecisionForDecision) {
  // Same seed + same thresholds => the two models simulate one process and
  // must emit identical MIS sets in identical order.
  for (const char* family : {"gnp_sparse", "gnp_dense", "power_law"}) {
    const Graph g = make_family(family, 350, 21);
    const std::size_t budget = 4 * g.num_vertices();

    MisMpcOptions mopt;
    mopt.seed = 99;
    mopt.gather_budget = budget;
    MisCcliqueOptions copt;
    copt.seed = 99;
    copt.gather_budget = budget;

    const auto mr = mis_mpc(g, mopt);
    const auto cr = mis_cclique(g, copt);
    EXPECT_EQ(mr.mis, cr.mis) << family;
    EXPECT_EQ(mr.rank_phases, cr.rank_phases) << family;
    EXPECT_EQ(mr.sparsified_iterations, cr.sparsified_iterations) << family;
  }
}

TEST(MisCclique, ExactGreedyWhenSparsifiedDisabled) {
  const Graph g = make_family("rmat", 256, 3);
  MisCcliqueOptions opt;
  opt.seed = 5;
  opt.use_sparsified_stage = false;
  const auto r = mis_cclique(g, opt);
  Rng rng(opt.seed);
  const auto perm = random_permutation(g.num_vertices(), rng);
  EXPECT_EQ(r.mis, greedy_mis(g, perm));
}

TEST(MisCclique, LenzenTrafficWithinPerPlayerBounds) {
  Rng rng(8);
  const std::size_t n = 600;
  const Graph g = erdos_renyi_gnp(n, 10.0 / n, rng);
  const auto r = mis_cclique(g, {});
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
  EXPECT_EQ(r.metrics.violations, 0U);
}

class MisSweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(MisSweep, MpcMisValidAcrossSeeds) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 256, seed);
  MisMpcOptions opt;
  opt.seed = seed;
  const auto r = mis_mpc(g, opt);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
  EXPECT_EQ(r.metrics.violations, 0U);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MisSweep,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values(1ULL, 2ULL, 3ULL)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mpcg
