#include <gtest/gtest.h>

#include "cclique/engine.h"

namespace mpcg::cclique {
namespace {

TEST(CcEngine, PointToPointDelivery) {
  Engine e(4);
  e.send(1, 2, 77);
  e.exchange();
  ASSERT_EQ(e.inbox(2).size(), 1U);
  EXPECT_EQ(e.inbox(2)[0].from, 1U);
  EXPECT_EQ(e.inbox(2)[0].word, 77U);
  EXPECT_TRUE(e.inbox(1).empty());
  EXPECT_EQ(e.metrics().rounds, 1U);
}

TEST(CcEngine, PairBudgetViolationThrows) {
  Engine e(3);
  e.send(0, 1, 1);
  e.send(0, 1, 2);
  EXPECT_THROW(e.exchange(), CongestionError);
}

TEST(CcEngine, DistinctPairsSameRoundOk) {
  Engine e(4);
  e.send(0, 1, 1);
  e.send(0, 2, 2);
  e.send(0, 3, 3);
  e.send(1, 0, 4);
  EXPECT_NO_THROW(e.exchange());
  EXPECT_EQ(e.metrics().max_player_sent, 3U);
}

TEST(CcEngine, NonStrictCountsViolations) {
  Engine e(3, /*strict=*/false);
  e.send(0, 1, 1);
  e.send(0, 1, 2);
  e.exchange();
  EXPECT_GE(e.metrics().violations, 1U);
}

TEST(CcEngine, BroadcastReachesEveryone) {
  Engine e(5);
  e.broadcast(2, 99);
  e.exchange();
  ASSERT_EQ(e.broadcast_inbox().size(), 1U);
  EXPECT_EQ(e.broadcast_inbox()[0].from, 2U);
  EXPECT_EQ(e.broadcast_inbox()[0].word, 99U);
}

TEST(CcEngine, BroadcastPlusSendSamePairThrows) {
  Engine e(3);
  e.broadcast(0, 1);
  e.send(0, 2, 5);
  EXPECT_THROW(e.exchange(), CongestionError);
}

TEST(CcEngine, DoubleBroadcastThrows) {
  Engine e(3);
  e.broadcast(0, 1);
  e.broadcast(0, 2);
  EXPECT_THROW(e.exchange(), CongestionError);
}

TEST(CcEngine, ManyBroadcastersOneRound) {
  Engine e(6);
  for (PlayerId p = 0; p < 6; ++p) e.broadcast(p, p);
  e.exchange();
  EXPECT_EQ(e.broadcast_inbox().size(), 6U);
  EXPECT_EQ(e.metrics().rounds, 1U);
}

TEST(CcEngine, LenzenFeasibleBatchTwoRounds) {
  Engine e(4);
  std::vector<Message> msgs;
  for (PlayerId p = 0; p < 4; ++p) msgs.push_back({p, 0, p});
  const auto delivered = e.lenzen_route(std::move(msgs));
  EXPECT_EQ(delivered[0].size(), 4U);
  EXPECT_EQ(e.metrics().rounds, 2U);
  EXPECT_EQ(e.metrics().lenzen_batches, 1U);
}

TEST(CcEngine, LenzenOverloadSplitsBatches) {
  Engine e(3);
  // 7 messages to player 0; receiver budget is n=3 per batch.
  std::vector<Message> msgs;
  for (int i = 0; i < 7; ++i) {
    msgs.push_back({static_cast<PlayerId>(i % 3), 0,
                    static_cast<Word>(i)});
  }
  const auto delivered = e.lenzen_route(std::move(msgs));
  EXPECT_EQ(delivered[0].size(), 7U);
  EXPECT_EQ(e.metrics().lenzen_batches, 3U);  // ceil(7/3)
  EXPECT_EQ(e.metrics().rounds, 6U);
}

TEST(CcEngine, LenzenRouteStreamMatchesMessageForm) {
  // The run-length stream (per-word appends and whole-run appends alike)
  // must reproduce the legacy per-message routing exactly: same delivery
  // contents and order, same batch splits, same metrics.
  Engine by_stream(3);
  Engine by_messages(3);
  const std::vector<Word> burst{40, 41, 42, 43, 44};
  RouteStream stream;
  std::vector<Message> msgs;
  for (int i = 0; i < 7; ++i) {
    const auto from = static_cast<PlayerId>(i % 3);
    stream.append(from, 0, static_cast<Word>(i));
    msgs.push_back({from, 0, static_cast<Word>(i)});
  }
  stream.append_run(2, 1, burst);
  for (const Word w : burst) msgs.push_back({2, 1, w});
  EXPECT_EQ(stream.size(), msgs.size());
  const auto& a = by_stream.lenzen_route(stream);
  const auto& b = by_messages.lenzen_route(std::move(msgs));
  for (PlayerId p = 0; p < 3; ++p) {
    ASSERT_EQ(a[p].size(), b[p].size()) << "player " << p;
    for (std::size_t i = 0; i < a[p].size(); ++i) {
      EXPECT_EQ(a[p][i].from, b[p][i].from);
      EXPECT_EQ(a[p][i].word, b[p][i].word);
    }
  }
  EXPECT_EQ(by_stream.metrics().rounds, by_messages.metrics().rounds);
  EXPECT_EQ(by_stream.metrics().lenzen_batches,
            by_messages.metrics().lenzen_batches);
  EXPECT_EQ(by_stream.metrics().total_words,
            by_messages.metrics().total_words);
  EXPECT_EQ(by_stream.metrics().max_player_received,
            by_messages.metrics().max_player_received);
}

TEST(CcEngine, LenzenRejectsWhileSendsQueued) {
  Engine e(3);
  e.send(0, 1, 1);
  EXPECT_THROW(e.lenzen_route(std::vector<Message>{}), std::logic_error);
  EXPECT_THROW(e.lenzen_route(RouteStream{}), std::logic_error);
}

TEST(CcEngine, OutOfRangePlayersThrow) {
  Engine e(3);
  EXPECT_THROW(e.send(0, 3, 1), std::out_of_range);
  EXPECT_THROW(e.send(3, 0, 1), std::out_of_range);
  EXPECT_THROW(e.broadcast(5, 1), std::out_of_range);
}

TEST(CcEngine, RejectsZeroPlayers) {
  EXPECT_THROW(Engine(0), std::invalid_argument);
}

}  // namespace
}  // namespace mpcg::cclique
