// Cross-module integration: the full pipelines of the paper run end-to-end
// on each workload family, and the pieces agree with one another.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/blossom.h"
#include "baselines/greedy_matching.h"
#include "baselines/greedy_mis.h"
#include "baselines/luby.h"
#include "core/central.h"
#include "core/integral_matching.h"
#include "core/matching_mpc.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "core/one_plus_eps.h"
#include "core/rounding.h"
#include "core/weighted_matching.h"
#include "gen/generators.h"
#include "graph/validation.h"
#include "test_util.h"
#include "util/permutation.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

TEST(Integration, FullPaperPipelinePerFamily) {
  for (const char* family : kFamilies) {
    SCOPED_TRACE(family);
    const Graph g = make_family(family, 300, 23);

    // Theorem 1.1 both models.
    const auto mis_m = mis_mpc(g, {});
    const auto mis_c = mis_cclique(g, {});
    EXPECT_TRUE(is_maximal_independent_set(g, mis_m.mis));
    EXPECT_TRUE(is_maximal_independent_set(g, mis_c.mis));

    // Lemma 4.2 fractional + Lemma 5.1 rounding + Theorem 1.2 integral.
    MatchingMpcOptions mo;
    mo.seed = 23;
    const auto frac = matching_mpc(g, mo);
    EXPECT_TRUE(is_fractional_matching(g, frac.x, 1e-9));
    const auto rounded = round_fractional_matching(
        g, frac.x, heavy_vertices(g, frac.x, 0.5), 23);
    EXPECT_TRUE(is_matching(g, rounded));

    IntegralMatchingOptions io;
    io.seed = 23;
    const auto integral = integral_matching(g, io);
    EXPECT_TRUE(is_matching(g, integral.matching));
    EXPECT_TRUE(is_vertex_cover(g, integral.cover));
  }
}

TEST(Integration, MisRoundAdvantageOverLuby) {
  // The headline separation: our MIS uses far fewer "phases" than Luby
  // uses rounds on a graph with real degree spread.
  Rng rng(41);
  const std::size_t n = 8192;
  const Graph g = erdos_renyi_gnp(n, 64.0 / static_cast<double>(n), rng);
  const auto ours = mis_mpc(g, {});
  const auto luby = luby_mis(g, 41);
  const std::size_t our_stages =
      ours.rank_phases + ours.sparsified_iterations + 1;
  EXPECT_LT(our_stages, luby.rounds + 10);  // sanity ordering
  EXPECT_LE(ours.rank_phases, 10U);         // log log Delta territory
}

TEST(Integration, FractionalToIntegralChainPreservesFactor) {
  // frac weight >= nu/(2+50eps); integral >= frac-driven extraction; the
  // chained pipeline keeps an end-to-end 2.1-factor on dense graphs.
  const Graph g = make_family("gnp_dense", 500, 29);
  IntegralMatchingOptions io;
  io.eps = 0.1;
  io.seed = 29;
  const auto r = integral_matching(g, io);
  const double nu = static_cast<double>(maximum_matching_size(g));
  EXPECT_GE(static_cast<double>(r.matching.size()) * 2.1, nu);
  EXPECT_GE(r.first_fractional_weight * (2.0 + 50.0 * 0.1), nu - 1e-9);
}

TEST(Integration, CentralAndSimulationAgreeOnCoverQuality) {
  const Graph g = make_family("gnp_sparse", 400, 31);
  CentralOptions co;
  co.eps = 0.1;
  const auto central = central_fractional_matching(g, co);
  MatchingMpcOptions mo;
  mo.eps = 0.1;
  mo.seed = 31;
  const auto sim = matching_mpc(g, mo);
  EXPECT_TRUE(is_vertex_cover(g, central.cover));
  EXPECT_TRUE(is_vertex_cover(g, sim.cover));
  // Simulated cover within a constant factor of the sequential one.
  if (!central.cover.empty()) {
    EXPECT_LE(sim.cover.size(), 3 * central.cover.size() + 10);
  }
}

TEST(Integration, WeightedPipelineOnBipartiteScheduling) {
  // The Corollary 1.4 use case: weighted bipartite assignment.
  Rng rng(37);
  const Graph g = random_bipartite(150, 150, 0.05, rng);
  const auto w = exponential_weights(g, 1.0, rng);
  WeightedMatchingOptions wo;
  wo.eps = 0.2;
  wo.seed = 37;
  const auto r = weighted_matching(g, w, wo);
  EXPECT_TRUE(is_matching(g, r.matching));
  const double greedy_w = matching_weight(greedy_weighted_matching(g, w), w);
  EXPECT_GE(r.weight, 0.5 * greedy_w);
}

TEST(Integration, OnePlusEpsBeatsTwoPlusEps) {
  const Graph g = make_family("gnp_dense", 260, 43);
  IntegralMatchingOptions io;
  io.eps = 0.1;
  io.seed = 43;
  const auto two_eps = integral_matching(g, io);
  OnePlusEpsOptions oo;
  oo.eps = 0.25;
  oo.seed = 43;
  const auto one_eps = one_plus_eps_matching(g, oo);
  EXPECT_GE(one_eps.matching.size(), two_eps.matching.size());
}

TEST(Integration, EndToEndDeterminism) {
  const Graph g = make_family("power_law", 300, 47);
  MisMpcOptions mo;
  mo.seed = 47;
  IntegralMatchingOptions io;
  io.seed = 47;
  EXPECT_EQ(mis_mpc(g, mo).mis, mis_mpc(g, mo).mis);
  EXPECT_EQ(integral_matching(g, io).matching,
            integral_matching(g, io).matching);
}

TEST(Integration, SequentialGreedyReferenceChain) {
  // greedy trace -> residual behavior feeds Lemma 3.1; verify the explicit
  // bound of the lemma with its stated constant on a real instance.
  Rng rng(53);
  const std::size_t n = 4000;
  const Graph g = erdos_renyi_gnp(n, 40.0 / static_cast<double>(n), rng);
  const auto perm = random_permutation(n, rng);
  const auto trace = greedy_mis_trace(g, perm);
  for (const std::uint32_t r : {200U, 400U, 1000U}) {
    const auto residual = residual_vertices_after_rank(trace, r);
    std::vector<char> alive(n, 0);
    for (const VertexId v : residual) alive[v] = 1;
    std::size_t max_deg = 0;
    for (const VertexId v : residual) {
      std::size_t d = 0;
      for (const Arc& a : g.arcs(v)) {
        if (alive[a.to]) ++d;
      }
      max_deg = std::max(max_deg, d);
    }
    const double bound = 20.0 * static_cast<double>(n) *
                         std::log(static_cast<double>(n)) /
                         static_cast<double>(r);
    EXPECT_LE(static_cast<double>(max_deg), bound) << "rank " << r;
  }
}

}  // namespace
}  // namespace mpcg
