#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "baselines/greedy_mis.h"
#include "baselines/local_mis.h"
#include "baselines/luby.h"
#include "graph/validation.h"
#include "test_util.h"
#include "util/permutation.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

// ---- Focused unit tests ----

TEST(GreedyMis, IdentityPermutationOnPath) {
  const Graph g = path_graph(5);
  std::vector<std::uint32_t> perm{0, 1, 2, 3, 4};
  const auto mis = greedy_mis(g, perm);
  EXPECT_EQ(mis, (std::vector<VertexId>{0, 2, 4}));
}

TEST(GreedyMis, PermutationOrderMatters) {
  const Graph g = path_graph(4);
  const auto a = greedy_mis(g, {0, 1, 2, 3});  // -> {0, 2}
  const auto b = greedy_mis(g, {1, 0, 2, 3});  // 1 first -> {1, 3}
  EXPECT_EQ(a, (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(b, (std::vector<VertexId>{1, 3}));
}

TEST(GreedyMis, TraceRemovalRanksConsistent) {
  const Graph g = star_graph(6);
  // Center processed first: everyone removed at rank 0.
  const auto trace = greedy_mis_trace(g, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(trace.mis, (std::vector<VertexId>{0}));
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(trace.removed_at_rank[v], 0U);
  // Leaf processed first: center dies at rank 0, other leaves join later.
  const auto trace2 = greedy_mis_trace(g, {1, 0, 2, 3, 4, 5});
  EXPECT_EQ(trace2.mis.size(), 5U);
  EXPECT_EQ(trace2.removed_at_rank[0], 0U);
}

TEST(GreedyMis, ResidualShrinksWithRank) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnp(400, 0.05, rng);
  const auto perm = random_permutation(400, rng);
  const auto trace = greedy_mis_trace(g, perm);
  const auto r100 = residual_vertices_after_rank(trace, 100);
  const auto r300 = residual_vertices_after_rank(trace, 300);
  EXPECT_GE(r100.size(), r300.size());
  const auto all = residual_vertices_after_rank(trace, 0);
  EXPECT_EQ(all.size(), 400U);
}

TEST(GreedyMis, ThrowsOnSizeMismatch) {
  const Graph g = path_graph(3);
  EXPECT_THROW(greedy_mis(g, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)greedy_dependency_depth(g, {0, 1}), std::invalid_argument);
}

TEST(GreedyMis, DependencyDepthBounds) {
  const Graph g = path_graph(16);
  // Increasing order: every vertex depends on its predecessor.
  EXPECT_EQ(greedy_dependency_depth(g, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                        12, 13, 14, 15}),
            16U);
  // Empty graph: depth 1 per vertex.
  const Graph empty = GraphBuilder(4).build();
  EXPECT_EQ(greedy_dependency_depth(empty, {0, 1, 2, 3}), 1U);
}

TEST(GreedyMis, DependencyDepthLogarithmicOnRandomOrder) {
  Rng rng(2);
  const Graph g = path_graph(4096);
  const auto perm = random_permutation(4096, rng);
  const std::size_t depth = greedy_dependency_depth(g, perm);
  // Theta(log n) for a path under random order; allow generous slack.
  EXPECT_LT(depth, 64U);
  EXPECT_GE(depth, 4U);
}

TEST(Luby, EmptyAndSingleton) {
  const Graph empty = GraphBuilder(0).build();
  EXPECT_TRUE(luby_mis(empty, 1).mis.empty());
  const Graph one = GraphBuilder(1).build();
  const auto r = luby_mis(one, 1);
  EXPECT_EQ(r.mis.size(), 1U);
}

TEST(Luby, RoundsGrowWithLogN) {
  // O(log n) rounds: sanity-check the magnitude on a clique union.
  const Graph g = clique_union(64, 16);
  const auto r = luby_mis(g, 5);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
  EXPECT_EQ(r.mis.size(), 64U);  // one per clique
  EXPECT_LT(r.rounds, 40U);
}

TEST(LocalMis, CompletesOnClique) {
  const Graph g = complete_graph(32);
  const auto r = local_mis(g, 3);
  EXPECT_EQ(r.mis.size(), 1U);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
}

TEST(LocalMis, StateStepsAreIncremental) {
  const Graph g = cycle_graph(50);
  LocalMisState state(g, std::vector<char>(50, 1), 7);
  std::size_t decided_before = 0;
  for (int i = 0; i < 200 && state.alive_count() > 0; ++i) {
    state.step();
    std::size_t decided = 0;
    for (VertexId v = 0; v < 50; ++v) {
      if (state.in_mis()[v] || !state.alive()[v]) ++decided;
    }
    EXPECT_GE(decided, decided_before);
    decided_before = decided;
  }
  EXPECT_EQ(state.alive_count(), 0U);
}

TEST(LocalMis, RespectsInitialAliveMask) {
  const Graph g = path_graph(6);
  std::vector<char> alive{1, 1, 1, 0, 0, 0};
  LocalMisState state(g, alive, 11);
  while (state.alive_count() > 0) state.step();
  for (VertexId v = 3; v < 6; ++v) EXPECT_FALSE(state.in_mis()[v]);
}

TEST(LocalMis, AliveEdgeAndDegreeHelpers) {
  const Graph g = complete_graph(5);
  LocalMisState state(g, std::vector<char>(5, 1), 13);
  EXPECT_EQ(state.alive_edges(), 10U);
  EXPECT_EQ(state.max_alive_degree(), 4U);
}

// ---- Property sweep: family x seed ----

class MisBaselineSweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(MisBaselineSweep, GreedyOutputIsMaximalIndependentSet) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 300, seed);
  Rng rng(seed);
  const auto perm = random_permutation(g.num_vertices(), rng);
  const auto trace = greedy_mis_trace(g, perm);
  EXPECT_TRUE(is_maximal_independent_set(g, trace.mis));
  // Every vertex is removed at some rank, no later than its own.
  std::vector<std::uint32_t> rank_of(g.num_vertices());
  for (std::uint32_t i = 0; i < perm.size(); ++i) rank_of[perm[i]] = i;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(trace.removed_at_rank[v], rank_of[v]);
    if (trace.in_mis[v]) {
      EXPECT_EQ(trace.removed_at_rank[v], rank_of[v]);
    }
  }
}

TEST_P(MisBaselineSweep, LubyOutputIsMaximalIndependentSet) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 300, seed);
  const auto r = luby_mis(g, seed);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
  EXPECT_GE(r.rounds, 1U);
}

TEST_P(MisBaselineSweep, LocalMisOutputIsMaximalIndependentSet) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 300, seed);
  const auto r = local_mis(g, seed);
  EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
}

TEST_P(MisBaselineSweep, GreedyDeterministicPerPermutation) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 200, seed);
  Rng rng(seed);
  const auto perm = random_permutation(g.num_vertices(), rng);
  EXPECT_EQ(greedy_mis(g, perm), greedy_mis(g, perm));
}

INSTANTIATE_TEST_SUITE_P(
    Families, MisBaselineSweep,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values(1ULL, 2ULL, 3ULL)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mpcg
