// E5 (Lemma 4.1): the sequential `Central` algorithm terminates in
// O(log n / eps) iterations; the frozen set is a (2+5eps)-approximate
// vertex cover and the fractional weight is within (2+5eps) of nu(G).
//
// Table rows: n sweep for the iteration claim; family sweep (with exact
// nu from blossom) for the approximation claims. `matching_factor` is
// nu / W — the claim is matching_factor <= 2 + 5 eps.
#include "baselines/blossom.h"
#include "bench_util.h"
#include "core/central.h"
#include "graph/validation.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

constexpr double kEps = 0.1;

void E05_IterationsVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 12.0, 9);
  CentralOptions opt;
  opt.eps = kEps;
  CentralResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = central_fractional_matching(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.iterations);
  }
  emit_json_line("E05_IterationsVsN/" + std::to_string(n), n, g.num_edges(),
                 r.iterations, wall_ms, 0);
  state.counters["n"] = static_cast<double>(n);
  state.counters["iterations"] = static_cast<double>(r.iterations);
  state.counters["bound_log_over_eps"] =
      std::log(static_cast<double>(n)) / -std::log1p(-kEps) + 3;
  state.counters["cover_size"] = static_cast<double>(r.cover.size());
}
BENCHMARK(E05_IterationsVsN)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void E05_Approximation(benchmark::State& state, const char* family,
                       bool random_thresholds) {
  const Graph g = graph_family(family, 1 << 10, 11);
  CentralOptions opt;
  opt.eps = kEps;
  opt.random_thresholds = random_thresholds;
  opt.threshold_seed = 11;
  CentralResult r;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    r = central_fractional_matching(g, opt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(r.x.data());
  }
  emit_json_line(std::string("E05_Approximation/") + family +
                     (random_thresholds ? "/rand" : "/fixed"),
                 g.num_vertices(), g.num_edges(), r.iterations, wall_ms, 0);
  const double nu = static_cast<double>(maximum_matching_size(g));
  const double w = fractional_weight(r.x);
  state.counters["nu"] = nu;
  state.counters["fractional_weight"] = w;
  state.counters["matching_factor"] = w > 0 ? nu / w : 0.0;
  state.counters["claimed_factor"] = 2.0 + 5.0 * kEps;
  state.counters["cover_over_nu"] =
      nu > 0 ? static_cast<double>(r.cover.size()) / nu : 0.0;
  state.counters["iterations"] = static_cast<double>(r.iterations);
}

void register_all() {
  for (const char* family : family_names()) {
    for (const bool rnd : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("E05_Approximation/") + family +
           (rnd ? "/rand" : "/fixed"))
              .c_str(),
          [family, rnd](benchmark::State& s) {
            E05_Approximation(s, family, rnd);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
