// On-disk checkpoint durability: the process-boundary extension of the
// verified generation ring (see fault/checkpoint.h).
//
// A durable checkpoint is one versioned binary file (all 64-bit
// little-endian words):
//
//   [0] magic "MPCGCKPT"      [1] format version (kVersion)
//   [2] seq (monotonic)       [3] round tag
//   [4] scope length (bytes)  [..] scope string, zero-padded to words
//   [k] section count
//   per section: name length (bytes), padded name words,
//                payload word count, payload FNV-1a digest
//   concatenated section payloads
//   trailer: FNV-1a digest over every preceding word of the file
//
// Files are written to a temp name and published with one atomic
// std::rename, so a torn write can never be loaded: a reader sees either
// the old complete file or the new complete file. `seq` orders writes
// across process restarts (round tags are not monotonic across nested
// drivers, e.g. the integral-matching inner runs restart engine rounds).
// The scope string doubles as a configuration signature: a checkpoint
// written by a different driver / graph / cluster shape never hijacks a
// resume — it reads as "no checkpoint", a clean fresh start.
//
// DurableRing mirrors CheckpointRegistry's in-memory generation ring with
// two on-disk slots: save() always overwrites the *older* slot, load()
// verifies newest-first and falls back to the older generation when the
// newest fails verification — and throws the typed CheckpointError (naming
// file, round, and the failing provider sections) only when every existing
// slot of the requested scope is bad.
#ifndef MPCG_FAULT_DURABLE_H
#define MPCG_FAULT_DURABLE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcg::fault {

/// Thrown out of a run that was asked to stop (SIGTERM/SIGINT via a stop
/// flag, or the stop_after_safe_points test hook) after one final durable
/// generation was flushed: the process may exit and be relaunched with
/// --resume. Distinct from CheckpointError — nothing is wrong.
class ResumableInterrupt : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One named payload inside a durable checkpoint file — a provider's
/// serialized state, or an engine's own "__engine" section.
struct DurableSection {
  std::string name;
  std::vector<std::uint64_t> payload;
};

/// A parsed (or to-be-written) checkpoint file.
struct DurableCheckpoint {
  std::uint64_t seq = 0;
  std::uint64_t round = 0;
  std::string scope;
  std::vector<DurableSection> sections;
};

/// Serializes and atomically publishes `ckpt` at `path` (temp file +
/// std::rename). Throws CheckpointError on I/O failure. Returns the total
/// number of 64-bit words written (header + payloads + trailer).
std::size_t write_checkpoint_file(const std::string& path,
                                  const DurableCheckpoint& ckpt);

/// Same, without materializing a DurableCheckpoint: payloads stream from
/// `sections` (borrowed, not consumed) straight into the file, so a
/// persisting engine can recycle its section buffers across safe points.
std::size_t write_checkpoint_file(const std::string& path, std::uint64_t seq,
                                  std::uint64_t round,
                                  const std::string& scope,
                                  const std::vector<DurableSection>& sections);

/// Reads and fully verifies a checkpoint file. Throws CheckpointError —
/// naming the file, the round tag when recoverable, and the failing
/// section (provider) names on payload rot — for anything short of a
/// bit-exact file: bad magic, unsupported (stale) version, truncation at
/// any boundary, per-section digest mismatch, whole-file trailer mismatch.
[[nodiscard]] DurableCheckpoint read_checkpoint_file(const std::string& path);

/// Result of DurableRing::load.
struct DurableLoad {
  DurableCheckpoint checkpoint;
  /// True when a slot file existed but failed verification and an older
  /// verified generation was used instead.
  bool fallback = false;
};

/// Two-file on-disk generation ring under one directory.
class DurableRing {
 public:
  static constexpr std::size_t kSlots = 2;

  /// Creates `dir` if missing and scans the existing slots so subsequent
  /// saves continue the sequence (resume case). Call reset() right after
  /// construction for a fresh (non-resume) start.
  explicit DurableRing(std::string dir);

  /// Unlinks both slots (and stray temp files): a fresh durable run must
  /// never let a stale same-scope file from a previous run outrank its own
  /// checkpoints by sequence number.
  void reset();

  /// Persists one generation (seq = newest existing + 1) into the older
  /// slot. `sections` is borrowed, not consumed, so callers can reuse
  /// their serialization buffers across saves. Returns the number of
  /// words written to disk.
  std::size_t save(std::uint64_t round, const std::string& scope,
                   const std::vector<DurableSection>& sections);

  /// Newest-verified-first load of a checkpoint matching `scope`.
  /// Returns nullopt when no slot file exists, or when every readable slot
  /// belongs to a different scope (both are clean fresh starts). Throws
  /// CheckpointError aggregating the per-file reasons when files exist but
  /// none verifies for this scope.
  [[nodiscard]] std::optional<DurableLoad> load(
      const std::string& scope) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string slot_path(std::size_t slot) const;

 private:
  void rescan();

  std::string dir_;
  std::uint64_t next_seq_ = 1;
  std::size_t write_slot_ = 0;
};

/// Driver-facing durability options, carried by every flagship driver's
/// option struct. Durability is off while `dir` is empty; everything else
/// is then ignored.
struct DurableOptions {
  /// Checkpoint directory (the DurableRing lives here). Empty = off.
  std::string dir;
  /// Persist every K-th safe point (driver loop boundary). 1 = every one.
  std::size_t every = 1;
  /// In-memory CheckpointRegistry ring depth; 0 = the registry default.
  std::size_t generations = 0;
  /// Resume from the newest verified on-disk generation instead of
  /// starting fresh (a scope mismatch still starts fresh).
  bool resume = false;
  /// Graceful-stop flag (set by a SIGTERM/SIGINT handler): polled at every
  /// safe point; when set, one final generation is flushed and
  /// ResumableInterrupt is thrown.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Test hook: behave as if the stop flag was set at the N-th safe point
  /// (0 = never) — deterministic kill points for resume coupling tests.
  std::size_t stop_after_safe_points = 0;

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

}  // namespace mpcg::fault

#endif  // MPCG_FAULT_DURABLE_H
