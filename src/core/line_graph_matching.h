// The paper's introductory reduction, made massively parallel: running the
// MIS algorithm on the line graph L(G) yields a *maximal matching* of G
// (and its endpoints a 2-approximate vertex cover).
//
// With Theorem 1.1 as the MIS engine this gives maximal matching in
// O(log log Delta(L(G))) = O(log log Delta(G)) MPC rounds — a useful
// comparison point against the Theorem 1.2 pipeline (which gets 2+eps with
// different machinery). Note the memory caveat: L(G) has
// sum_v C(deg v, 2) edges, so this reduction is only economical on
// bounded-degree-ish graphs — exactly why the paper develops the direct
// matching algorithm instead. The trade-off is measured in E12.
#ifndef MPCG_CORE_LINE_GRAPH_MATCHING_H
#define MPCG_CORE_LINE_GRAPH_MATCHING_H

#include "core/mis_mpc.h"
#include "graph/graph.h"

namespace mpcg {

struct LineGraphMatchingResult {
  std::vector<EdgeId> matching;
  /// Size of the materialized line graph (the memory price of the
  /// reduction).
  std::size_t line_vertices = 0;
  std::size_t line_edges = 0;
  /// Metrics of the underlying MIS run.
  MisMpcResult mis;
};

/// Maximal matching of g via MIS-on-L(G) (Theorem 1.1 as the MIS engine).
[[nodiscard]] LineGraphMatchingResult line_graph_matching_mpc(
    const Graph& g, const MisMpcOptions& options);

}  // namespace mpcg

#endif  // MPCG_CORE_LINE_GRAPH_MATCHING_H
