// Re-tunes the dense/flat exchange choice for this box.
//
// The engine has two exchange representations: the dense per-(sender,
// receiver) box matrix (O(m^2) storage, delivery by pure bulk copies) and
// the flat per-sender outboxes (O(words) storage, counting-sort delivery).
// By default the engine picks the path per flush from the traffic shape it
// just delivered (Config::kAdaptive); an explicit Config::dense_machine_limit
// pins the old static rule instead. This tool races all three on the two
// canonical traffic shapes:
//
//   scattered — every machine sprays single words at random destinations
//               (per-edge driver traffic: rank phases, sparsified rounds);
//   bulk      — every machine sends its whole budget to a handful of
//               destinations in long runs (collectives, shard migration).
//
// Each cell is a wall-clock race over identical pushes through the same
// Engine API; the adaptive column should track the better of the two
// forced columns within noise on both shapes (validating the adapt_path
// thresholds), and the printed suggestion is the largest machine count at
// which dense still wins the scattered shape — the value to pin if you
// want the static rule.
//
// A second set of tables races the *staging* APIs on the same shapes:
// legacy per-word push versus a streamed Outbox (per-word append, one
// up-front sender check) versus run-length append_run (one descriptor +
// one bulk copy per maximal same-destination stretch). On the bulk shape
// run-length staging should win clearly; on the scattered shape (runs of
// one word) the three should be within noise of each other.
//
// A final set of tables races the execution backends on the same shapes:
// the sequential reference (threads=1) versus the shared-memory pool at 2
// and 4 workers, staging through the same Outbox API.  The `parity` column
// memcmps the full engine Metrics across arms — the pool must be
// bit-identical to sequential on every logical counter, whatever it costs
// or saves in wall clock.
//
// Usage: bench_exchange_crossover [rounds] [words_per_machine]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "mpc/engine.h"
#include "util/rng.h"

namespace {

using namespace mpcg;
using mpc::Engine;
using mpc::Word;

/// Destination pattern for one machine's pushes per round.
std::vector<std::uint32_t> make_dests(std::size_t machines,
                                      std::size_t words_per_machine,
                                      bool bulk) {
  Rng rng(0x0c4055);
  std::vector<std::uint32_t> dests(words_per_machine);
  if (bulk) {
    // Long same-destination runs to few partners.
    const std::size_t partners = 4;
    const std::size_t run = (words_per_machine + partners - 1) / partners;
    for (std::size_t i = 0; i < dests.size(); ++i) {
      dests[i] = static_cast<std::uint32_t>((i / run) % machines);
    }
  } else {
    for (auto& d : dests) {
      d = static_cast<std::uint32_t>(rng() % machines);
    }
  }
  return dests;
}

double run_cell(std::size_t machines, std::size_t dense_limit,
                std::size_t rounds, std::size_t words_per_machine,
                bool bulk) {
  mpc::Config cfg;
  cfg.num_machines = machines;
  cfg.words_per_machine = std::max<std::size_t>(words_per_machine * 2, 1024);
  cfg.strict = false;
  cfg.dense_machine_limit = dense_limit;
  Engine engine(cfg);

  const auto dests = make_dests(machines, words_per_machine, bulk);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t from = 0; from < machines; ++from) {
      for (std::size_t i = 0; i < dests.size(); ++i) {
        engine.push(from, (dests[i] + from) % machines,
                    static_cast<Word>(i));
      }
    }
    engine.exchange();
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void sweep(const char* label, std::size_t rounds, std::size_t words,
           bool bulk, std::size_t* suggested) {
  std::printf("# %s traffic\n", label);
  std::printf("%10s %12s %12s %12s %8s\n", "machines", "dense_ms", "flat_ms",
              "adaptive_ms", "winner");
  // The dense matrix allocates m^2 boxes — cap that side of the race at
  // 4096 machines (the flat side keeps going in real use anyway).
  for (std::size_t m = 64; m <= 4096; m *= 2) {
    const double dense = run_cell(m, m, rounds, words, bulk);   // force dense
    const double flat = run_cell(m, 0, rounds, words, bulk);    // force flat
    const double adaptive =
        run_cell(m, mpc::Config::kAdaptive, rounds, words, bulk);
    const bool dense_wins = dense <= flat;
    if (suggested != nullptr && dense_wins) *suggested = m;
    std::printf("%10zu %12.2f %12.2f %12.2f %8s\n", m, dense, flat, adaptive,
                dense_wins ? "dense" : "flat");
  }
}

/// One timed arm of the backend race: the staging-and-exchange workload
/// above, run with `threads` execution-backend workers.  Returns the wall
/// time and copies out the engine metrics so callers can pin cross-backend
/// parity (every logical counter must be bit-identical to threads=1).
double run_backend_cell(std::size_t machines, std::size_t threads,
                        std::size_t rounds, std::size_t words_per_machine,
                        bool bulk, mpc::Metrics* metrics_out) {
  mpc::Config cfg;
  cfg.num_machines = machines;
  cfg.words_per_machine = std::max<std::size_t>(words_per_machine * 2, 1024);
  cfg.strict = false;
  cfg.threads = threads;
  Engine engine(cfg);

  const auto dests = make_dests(machines, words_per_machine, bulk);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t from = 0; from < machines; ++from) {
      mpc::Outbox ob = engine.outbox(from);
      for (std::size_t i = 0; i < dests.size(); ++i) {
        ob.append((dests[i] + from) % machines, static_cast<Word>(i));
      }
    }
    engine.exchange();
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (metrics_out != nullptr) *metrics_out = engine.metrics();
  return ms;
}

void sweep_backend(const char* label, std::size_t rounds, std::size_t words,
                   bool bulk) {
  std::printf("# backend race, %s traffic (seq vs parallel pool)\n", label);
  std::printf("%10s %12s %12s %12s %8s\n", "machines", "seq_ms", "par2_ms",
              "par4_ms", "parity");
  for (std::size_t m = 64; m <= 4096; m *= 2) {
    mpc::Metrics seq_metrics{};
    mpc::Metrics par2_metrics{};
    mpc::Metrics par4_metrics{};
    const double seq =
        run_backend_cell(m, 1, rounds, words, bulk, &seq_metrics);
    const double par2 =
        run_backend_cell(m, 2, rounds, words, bulk, &par2_metrics);
    const double par4 =
        run_backend_cell(m, 4, rounds, words, bulk, &par4_metrics);
    const bool parity =
        std::memcmp(&seq_metrics, &par2_metrics, sizeof(mpc::Metrics)) == 0 &&
        std::memcmp(&seq_metrics, &par4_metrics, sizeof(mpc::Metrics)) == 0;
    std::printf("%10zu %12.2f %12.2f %12.2f %8s\n", m, seq, par2, par4,
                parity ? "ok" : "MISMATCH");
  }
}

enum class Staging { kPush, kOutbox, kRuns };

double run_staging_cell(std::size_t machines, std::size_t rounds,
                        std::size_t words_per_machine, bool bulk,
                        Staging staging) {
  mpc::Config cfg;
  cfg.num_machines = machines;
  cfg.words_per_machine = std::max<std::size_t>(words_per_machine * 2, 1024);
  cfg.strict = false;
  Engine engine(cfg);  // default adaptive path, as production runs

  const auto dests = make_dests(machines, words_per_machine, bulk);
  // Maximal same-destination stretches of the pattern, for kRuns.
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // (start, len)
  for (std::size_t i = 0; i < dests.size();) {
    std::size_t j = i + 1;
    while (j < dests.size() && dests[j] == dests[i]) ++j;
    runs.emplace_back(i, j - i);
    i = j;
  }
  std::vector<Word> payload(words_per_machine);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<Word>(i);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t from = 0; from < machines; ++from) {
      switch (staging) {
        case Staging::kPush:
          for (std::size_t i = 0; i < dests.size(); ++i) {
            engine.push(from, (dests[i] + from) % machines, payload[i]);
          }
          break;
        case Staging::kOutbox: {
          mpc::Outbox ob = engine.outbox(from);
          for (std::size_t i = 0; i < dests.size(); ++i) {
            ob.append((dests[i] + from) % machines, payload[i]);
          }
          break;
        }
        case Staging::kRuns: {
          mpc::Outbox ob = engine.outbox(from);
          for (const auto& [begin, len] : runs) {
            ob.append_run((dests[begin] + from) % machines,
                          std::span<const Word>{payload.data() + begin, len});
          }
          break;
        }
      }
    }
    engine.exchange();
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void sweep_staging(const char* label, std::size_t rounds, std::size_t words,
                   bool bulk) {
  std::printf("# staging race, %s traffic (adaptive exchange)\n", label);
  std::printf("%10s %12s %12s %12s %8s\n", "machines", "push_ms",
              "outbox_ms", "run_ms", "winner");
  for (std::size_t m = 64; m <= 4096; m *= 2) {
    const double push = run_staging_cell(m, rounds, words, bulk,
                                         Staging::kPush);
    const double outbox = run_staging_cell(m, rounds, words, bulk,
                                           Staging::kOutbox);
    const double run = run_staging_cell(m, rounds, words, bulk,
                                        Staging::kRuns);
    const char* winner = run <= push && run <= outbox ? "run"
                         : outbox <= push             ? "outbox"
                                                      : "push";
    std::printf("%10zu %12.2f %12.2f %12.2f %8s\n", m, push, outbox, run,
                winner);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 8;
  const std::size_t words =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4096;

  std::printf("# exchange crossover: %zu rounds x %zu words/machine/round\n",
              rounds, words);
  std::size_t suggested = 0;
  sweep("scattered", rounds, words, /*bulk=*/false, &suggested);
  sweep("bulk", rounds, words, /*bulk=*/true, nullptr);
  if (suggested == 0) {
    std::printf(
        "suggested static dense_machine_limit: 0 (flat always won "
        "scattered)\n");
  } else {
    std::printf("suggested static dense_machine_limit: %zu\n", suggested);
  }
  std::printf(
      "default Config::kAdaptive picks per flush; pin a static limit only "
      "if the adaptive column loses both shapes above.\n\n");
  sweep_staging("bulk", rounds, words, /*bulk=*/true);
  sweep_staging("scattered", rounds, words, /*bulk=*/false);
  std::printf("\n");
  sweep_backend("scattered", rounds, words, /*bulk=*/false);
  sweep_backend("bulk", rounds, words, /*bulk=*/true);
  return 0;
}
