#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "baselines/blossom.h"
#include "core/central.h"
#include "core/matching_mpc.h"
#include "graph/validation.h"
#include "test_util.h"

namespace mpcg {
namespace {

using testing::kFamilies;
using testing::make_family;

MatchingMpcOptions opts(double eps = 0.1, std::uint64_t seed = 1) {
  MatchingMpcOptions o;
  o.eps = eps;
  o.seed = seed;
  o.threshold_seed = seed + 1000;
  return o;
}

TEST(MatchingMpc, EmptyGraph) {
  const Graph g = GraphBuilder(6).build();
  const auto r = matching_mpc(g, opts());
  EXPECT_TRUE(r.x.empty());
  EXPECT_TRUE(r.cover.empty());
}

TEST(MatchingMpc, RejectsBadEps) {
  const Graph g = path_graph(3);
  auto o = opts();
  o.eps = 0.0;
  EXPECT_THROW(matching_mpc(g, o), std::invalid_argument);
}

TEST(MatchingMpc, OutputsValidFractionalMatchingAndCover) {
  for (const char* family : kFamilies) {
    const Graph g = make_family(family, 400, 5);
    const auto r = matching_mpc(g, opts(0.1, 5));
    EXPECT_TRUE(is_fractional_matching(g, r.x, 1e-9)) << family;
    EXPECT_TRUE(is_vertex_cover(g, r.cover)) << family;
  }
}

TEST(MatchingMpc, ApproximationFactorAgainstExact) {
  // Lemma 4.2: W >= nu / (2 + 50 eps) — measured, usually far better.
  for (const char* family : {"gnp_sparse", "gnp_dense", "bipartite",
                             "power_law", "grid"}) {
    const Graph g = make_family(family, 300, 7);
    if (g.num_edges() == 0) continue;
    const double eps = 0.1;
    const auto r = matching_mpc(g, opts(eps, 7));
    const double w = fractional_weight(r.x);
    const double nu = static_cast<double>(maximum_matching_size(g));
    EXPECT_GE(w * (2.0 + 50.0 * eps), nu - 1e-9)
        << family << " W=" << w << " nu=" << nu;
  }
}

TEST(MatchingMpc, PhasesFollowLogLog) {
  // d shrinks doubly exponentially: squaring n adds O(1) phases.
  const auto phases_at = [](std::size_t n) {
    const Graph g = make_family("gnp_sparse", n, 3);
    return matching_mpc(g, opts(0.1, 3)).phases;
  };
  const std::size_t p_small = phases_at(256);
  const std::size_t p_large = phases_at(65536);  // n squared twice
  EXPECT_LE(p_large, p_small + 8);
}

TEST(MatchingMpc, LocalSubgraphsStayLinear) {
  // Lemma 4.7: every machine's induced subgraph has O(n) edges.
  Rng rng(9);
  const std::size_t n = 3000;
  const Graph g = erdos_renyi_gnp(n, 20.0 / static_cast<double>(n), rng);
  const auto r = matching_mpc(g, opts(0.1, 9));
  for (const std::size_t edges : r.max_local_edges_per_phase) {
    EXPECT_LE(edges, 4 * n);
  }
  EXPECT_EQ(r.metrics.violations, 0U);
}

TEST(MatchingMpc, HeavyVerticesEnterCover) {
  const Graph g = make_family("gnp_dense", 500, 11);
  const auto r = matching_mpc(g, opts(0.1, 11));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!r.removed_heavy[v]) continue;
    EXPECT_NE(std::find(r.cover.begin(), r.cover.end(), v), r.cover.end());
    // Removed vertices carry no matching weight.
    for (const Arc& a : g.arcs(v)) EXPECT_DOUBLE_EQ(r.x[a.edge], 0.0);
  }
}

TEST(MatchingMpc, CoverThirdHasHighLoad) {
  // Lemma 4.2 (final clause): at least |C|/3 of the cover has fractional
  // load >= 1 - 5 eps.
  for (const char* family : {"gnp_sparse", "gnp_dense", "power_law"}) {
    const Graph g = make_family(family, 600, 13);
    const double eps = 0.1;
    const auto r = matching_mpc(g, opts(eps, 13));
    if (r.cover.empty()) continue;
    const auto loads = vertex_loads(g, r.x);
    std::size_t heavy = 0;
    for (const VertexId v : r.cover) {
      if (loads[v] >= 1.0 - 5.0 * eps) ++heavy;
    }
    EXPECT_GE(3 * heavy + 2, r.cover.size()) << family;
  }
}

TEST(MatchingMpc, DeterministicPerSeed) {
  const Graph g = make_family("rmat", 300, 15);
  const auto a = matching_mpc(g, opts(0.1, 21));
  const auto b = matching_mpc(g, opts(0.1, 21));
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.cover, b.cover);
  EXPECT_EQ(a.phases, b.phases);
}

TEST(MatchingMpc, TraceShapesMatchIterations) {
  const Graph g = make_family("gnp_sparse", 200, 17);
  auto o = opts(0.1, 17);
  o.record_trace = true;
  const auto r = matching_mpc(g, o);
  EXPECT_EQ(r.y_tilde_trace.size(), r.total_iterations);
  for (const auto& row : r.y_tilde_trace) {
    EXPECT_EQ(row.size(), g.num_vertices());
  }
}

TEST(MatchingMpc, CouplingToCentralRandStaysTight) {
  // The paper's Section 4.4.3 argument: with shared thresholds, the MPC
  // estimates track Central-Rand's loads for most vertices. Run both with
  // the same threshold stream and compare the traces while both consider a
  // vertex active: large deviations must be rare.
  const Graph g = make_family("gnp_dense", 500, 19);
  const double eps = 0.1;

  auto mo = opts(eps, 19);
  mo.record_trace = true;
  const auto sim = matching_mpc(g, mo);

  CentralOptions co;
  co.eps = eps;
  co.random_thresholds = true;
  co.threshold_seed = mo.threshold_seed;
  co.initial_edge_weight = (1.0 - 2.0 * eps) / g.num_vertices();
  co.record_trace = true;
  const auto central = central_fractional_matching(g, co);

  const std::size_t horizon =
      std::min(sim.y_tilde_trace.size(), central.y_trace.size());
  ASSERT_GT(horizon, 0U);
  std::size_t compared = 0;
  std::size_t far = 0;
  for (std::size_t t = 0; t < horizon; ++t) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const double y_tilde = sim.y_tilde_trace[t][v];
      if (std::isnan(y_tilde)) continue;
      if (central.freeze_iteration[v] < t) continue;  // frozen centrally
      ++compared;
      if (std::abs(y_tilde - central.y_trace[t][v]) > 0.25) ++far;
    }
  }
  ASSERT_GT(compared, 100U);
  EXPECT_LE(static_cast<double>(far), 0.2 * static_cast<double>(compared));
}

class MatchingMpcSweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(MatchingMpcSweep, InvariantsAcrossFamiliesAndSeeds) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, 300, seed);
  const auto r = matching_mpc(g, opts(0.1, seed));
  EXPECT_TRUE(is_fractional_matching(g, r.x, 1e-9));
  EXPECT_TRUE(is_vertex_cover(g, r.cover));
  EXPECT_EQ(r.metrics.violations, 0U);
  // Every frozen or removed vertex appears exactly once in the cover.
  std::vector<char> seen(g.num_vertices(), 0);
  for (const VertexId v : r.cover) {
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MatchingMpcSweep,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values(1ULL, 2ULL, 3ULL)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mpcg
