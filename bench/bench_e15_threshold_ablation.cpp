// E15 (ablation — Section 4.2 "Random Thresholding to the Rescue"):
// what the random thresholds actually buy.
//
// The paper argues that with a *fixed* threshold 1-2eps, tiny estimate
// errors near the threshold can flip freeze decisions for many vertices at
// once and the simulation drifts from the centralized process; drawing
// T_{v,t} fresh from [1-4eps, 1-2eps] makes a flip probability
// proportional to the estimate error (Lemma 4.11).
//
// Rows: fixed vs random thresholds, both coupled to the matching
// Central(-Rand) run via a shared stream. Measured: the divergence of
// freeze decisions (bad fraction, mean freeze-time gap) and the output
// quality. Shape to reproduce: random thresholds give materially lower
// divergence at no quality cost.
#include <cmath>

#include "baselines/blossom.h"
#include "bench_util.h"
#include "core/central.h"
#include "core/matching_mpc.h"
#include "graph/validation.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

constexpr double kEps = 0.1;
constexpr std::size_t kN = 1 << 11;

void E15_ThresholdAblation(benchmark::State& state, const char* family,
                           bool random_thresholds) {
  // `cliques` is the adversarial shape for a fixed threshold: every vertex
  // of a clique carries an identical load, so all of them sit exactly on
  // the threshold in the same iteration and a tiny estimate error flips
  // whole cliques at once — the scenario Section 4.2 warns about.
  const Graph g = std::string(family) == "gnp"
                      ? gnp_with_degree(kN, 24.0, 61)
                      : graph_family(family, kN, 61);

  MatchingMpcOptions mo;
  mo.eps = kEps;
  mo.seed = 61;
  mo.threshold_seed = 62;
  mo.use_random_thresholds = random_thresholds;

  CentralOptions co;
  co.eps = kEps;
  co.random_thresholds = random_thresholds;
  co.threshold_seed = 62;
  co.initial_edge_weight = (1.0 - 2.0 * kEps) / static_cast<double>(kN);

  MatchingMpcResult sim;
  CentralResult central;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    sim = matching_mpc(g, mo);
    central = central_fractional_matching(g, co);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(sim.x.data());
  }
  emit_json_line(std::string("E15_ThresholdAblation/") + family +
                     (random_thresholds ? "/random" : "/fixed"),
                 kN, g.num_edges(), sim.metrics.rounds, wall_ms,
                 sim.metrics.peak_storage_words);

  constexpr std::uint32_t kNever = MatchingMpcResult::kActive;
  std::size_t frozen_both = 0;
  std::size_t one_sided = 0;
  std::size_t bad = 0;
  double gap_sum = 0.0;
  for (VertexId v = 0; v < kN; ++v) {
    const auto fs = sim.freeze_iteration[v];
    const auto fc = central.freeze_iteration[v];
    if ((fs == kNever) != (fc == kNever)) {
      ++one_sided;
      continue;
    }
    if (fs == kNever) continue;
    ++frozen_both;
    const double gap =
        std::abs(static_cast<double>(fs) - static_cast<double>(fc));
    gap_sum += gap;
    if (gap > 2.0) ++bad;
  }

  const double nu = static_cast<double>(maximum_matching_size(g));
  const double w = fractional_weight(sim.x);
  state.counters["random_thresholds"] = random_thresholds ? 1.0 : 0.0;
  state.counters["one_sided_fraction"] =
      static_cast<double>(one_sided) / static_cast<double>(kN);
  if (frozen_both > 0) {
    state.counters["bad_fraction"] =
        static_cast<double>(bad) / static_cast<double>(frozen_both);
    state.counters["mean_freeze_gap"] =
        gap_sum / static_cast<double>(frozen_both);
  }
  state.counters["matching_factor"] = w > 0 ? nu / w : 0.0;
  state.counters["heavy_removed"] = [&] {
    std::size_t count = 0;
    for (const char flag : sim.removed_heavy) count += flag != 0;
    return static_cast<double>(count);
  }();
}

void register_all() {
  for (const char* family : {"gnp", "cliques", "grid"}) {
    for (const bool rnd : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("E15_ThresholdAblation/") + family +
           (rnd ? "/random" : "/fixed"))
              .c_str(),
          [family, rnd](benchmark::State& s) {
            E15_ThresholdAblation(s, family, rnd);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
