// Corollary 1.4 — (2+eps)-approximate maximum *weighted* matching in
// O(log log n * 1/eps) MPC rounds, following the Lotker–Patt-Shamir–Rosén
// reduction (see DESIGN.md, substitutions).
//
// Edges are bucketed into geometric weight classes (1+eps)^j; edges lighter
// than eps * w_max / n are dropped (they can contribute at most an eps/2
// fraction of the optimum). Classes are processed heaviest-first; within a
// class a maximal matching among still-unmatched vertices is computed with
// the O(log log n)-round filtering subroutine. Charging every optimal edge
// to the adjacent chosen edge that blocked it (same or heavier class) gives
// w(M) >= w(M*) / (2 (1+eps)) - eps/2 * w(M*), i.e. a 2+O(eps) factor.
#ifndef MPCG_CORE_WEIGHTED_MATCHING_H
#define MPCG_CORE_WEIGHTED_MATCHING_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

/// Which maximal-matching subroutine runs inside each weight class.
enum class ClassSubroutine {
  kLmsvFiltering,  // [LMSV11], O(log log n) rounds at S = Theta(n)
  kIsraeliItai,    // [II86], O(log n) rounds — ablation comparison
};

struct WeightedMatchingOptions {
  double eps = 0.2;
  std::uint64_t seed = 1;
  /// Per-class filtering memory budget; 0 = auto (8n).
  std::size_t memory_words = 0;
  ClassSubroutine subroutine = ClassSubroutine::kLmsvFiltering;
};

struct WeightedMatchingResult {
  std::vector<EdgeId> matching;
  double weight = 0.0;
  std::size_t num_classes = 0;
  /// Filtering rounds summed over classes.
  std::size_t total_rounds = 0;
  /// Edges discarded by the light-edge cutoff.
  std::size_t dropped_edges = 0;
};

[[nodiscard]] WeightedMatchingResult weighted_matching(
    const Graph& g, const std::vector<double>& weights,
    const WeightedMatchingOptions& options);

}  // namespace mpcg

#endif  // MPCG_CORE_WEIGHTED_MATCHING_H
