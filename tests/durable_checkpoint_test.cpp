// On-disk checkpoint durability (fault/durable.h): file-format round-trip,
// the corruption-safety property (a load after ANY single-bit flip or any
// truncation must fall back to an older verified generation or throw the
// typed CheckpointError — never silently hand back corrupt state), the
// two-slot ring semantics, and driver-level stop/resume bit-identity via
// the deterministic stop_after_safe_points kill point.
//
// The process-boundary version of the same contract (real fork + SIGKILL +
// --resume) lives in tools/mpcg_chaos --kill-storms; these tests cover the
// in-process seams deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/integral_matching.h"
#include "core/matching_mpc.h"
#include "core/mis_cclique.h"
#include "core/mis_mpc.h"
#include "fault/checkpoint.h"
#include "fault/durable.h"
#include "fault/fault_plan.h"
#include "fault/reprovision.h"
#include "graph/validation.h"
#include "test_util.h"
#include "util/fnv.h"

namespace mpcg {
namespace {

using fault::CheckpointError;
using fault::DurableCheckpoint;
using fault::DurableRing;
using fault::DurableSection;
using fault::ResumableInterrupt;
using testing::make_family;

/// Self-cleaning scratch directory for ring/file tests.
struct TempDir {
  std::string path;
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr && *base != '\0' ? base : "/tmp") +
        "/mpcg_durable_test.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

std::vector<char> slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& p, const std::vector<char>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

DurableCheckpoint sample_checkpoint() {
  DurableCheckpoint c;
  c.seq = 7;
  c.round = 42;
  c.scope = "test:scope:1";
  c.sections.push_back({"alpha", {1, 2, 3, 0xdeadbeefULL}});
  c.sections.push_back({"__engine", {9, 8, 7, 6, 5}});
  c.sections.push_back({"empty", {}});
  return c;
}

bool same_checkpoint(const DurableCheckpoint& a, const DurableCheckpoint& b) {
  if (a.seq != b.seq || a.round != b.round || a.scope != b.scope ||
      a.sections.size() != b.sections.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.sections.size(); ++i) {
    if (a.sections[i].name != b.sections[i].name ||
        a.sections[i].payload != b.sections[i].payload) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------ file format

TEST(DurableCheckpoint, FileRoundTripIsBitExact) {
  TempDir td;
  const std::string path = td.path + "/ck.mpcg";
  const DurableCheckpoint c = sample_checkpoint();
  const std::size_t words = fault::write_checkpoint_file(path, c);
  EXPECT_GT(words, 0U);
  EXPECT_EQ(std::filesystem::file_size(path), words * sizeof(std::uint64_t));
  const DurableCheckpoint back = fault::read_checkpoint_file(path);
  EXPECT_TRUE(same_checkpoint(c, back));
}

TEST(DurableCheckpoint, EverySingleBitFlipIsDetected) {
  // The corruption-safety property at file granularity: flip one bit at
  // EVERY byte position of a valid file — the reader must throw the typed
  // error for all of them (header, scope, section table, payloads, and the
  // trailer itself included).
  TempDir td;
  const std::string path = td.path + "/ck.mpcg";
  const std::string mut = td.path + "/mut.mpcg";
  fault::write_checkpoint_file(path, sample_checkpoint());
  const std::vector<char> good = slurp(path);
  ASSERT_FALSE(good.empty());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<char> bad = good;
    bad[i] = static_cast<char>(bad[i] ^ (1 << (i % 8)));
    spit(mut, bad);
    EXPECT_THROW((void)fault::read_checkpoint_file(mut), CheckpointError)
        << "flip at byte " << i << " was not detected";
  }
}

TEST(DurableCheckpoint, TruncationAtEveryBoundaryIsDetected) {
  // Truncate at every word boundary (including the empty file) and at one
  // intra-word byte offset: all must throw, none may parse.
  TempDir td;
  const std::string path = td.path + "/ck.mpcg";
  const std::string mut = td.path + "/mut.mpcg";
  fault::write_checkpoint_file(path, sample_checkpoint());
  const std::vector<char> good = slurp(path);
  const std::size_t words = good.size() / sizeof(std::uint64_t);
  for (std::size_t k = 0; k < words; ++k) {
    std::vector<char> bad(good.begin(),
                          good.begin() + static_cast<std::ptrdiff_t>(
                                             k * sizeof(std::uint64_t)));
    spit(mut, bad);
    EXPECT_THROW((void)fault::read_checkpoint_file(mut), CheckpointError)
        << "truncation to " << k << " words was not detected";
  }
  std::vector<char> ragged(good.begin(), good.end() - 3);
  spit(mut, ragged);
  EXPECT_THROW((void)fault::read_checkpoint_file(mut), CheckpointError);
}

TEST(DurableCheckpoint, StaleVersionIsRejectedEvenWithValidTrailer) {
  // A future/stale format version must be rejected on its own — even when
  // the file is otherwise internally consistent (trailer recomputed).
  TempDir td;
  const std::string path = td.path + "/ck.mpcg";
  fault::write_checkpoint_file(path, sample_checkpoint());
  std::vector<char> bytes = slurp(path);
  const std::size_t words = bytes.size() / sizeof(std::uint64_t);
  std::vector<std::uint64_t> w(words);
  std::memcpy(w.data(), bytes.data(), bytes.size());
  w[1] += 1;  // version word
  w[words - 1] =
      Fnv::digest(std::span<const std::uint64_t>(w.data(), words - 1));
  std::memcpy(bytes.data(), w.data(), bytes.size());
  spit(path, bytes);
  try {
    (void)fault::read_checkpoint_file(path);
    FAIL() << "stale version was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------- slot ring

TEST(DurableRing, ScopeMismatchIsACleanFreshStart) {
  TempDir td;
  DurableRing ring(td.path + "/ck");
  ring.save(1, "scope-a", {{"s", {1, 2, 3}}});
  EXPECT_FALSE(ring.load("scope-b").has_value());
  EXPECT_TRUE(ring.load("scope-a").has_value());
}

TEST(DurableRing, EmptyDirectoryLoadsNothing) {
  TempDir td;
  const DurableRing ring(td.path + "/ck");
  EXPECT_FALSE(ring.load("any").has_value());
}

TEST(DurableRing, NewestRotFallsBackForEveryBytePosition) {
  // The ring-level corruption-safety property: with two generations on
  // disk, flip one bit at EVERY byte position of the newest slot file —
  // every load must come back as the older generation with the fallback
  // flag set, bit-identical to what round 1 saved. No flip may surface
  // round-2 data or escape unflagged.
  TempDir td;
  DurableRing ring(td.path + "/ck");
  const std::vector<std::uint64_t> old_payload = {10, 20, 30};
  ring.save(1, "s", {{"p", old_payload}});
  ring.save(2, "s", {{"p", {40, 50, 60, 70}}});

  // Identify the newest slot by round tag.
  std::string newest;
  for (std::size_t slot = 0; slot < DurableRing::kSlots; ++slot) {
    const auto c = fault::read_checkpoint_file(ring.slot_path(slot));
    if (c.round == 2) newest = ring.slot_path(slot);
  }
  ASSERT_FALSE(newest.empty());
  const std::vector<char> good = slurp(newest);
  ASSERT_FALSE(good.empty());

  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<char> bad = good;
    bad[i] = static_cast<char>(bad[i] ^ (1 << (i % 8)));
    spit(newest, bad);
    const auto loaded = ring.load("s");
    ASSERT_TRUE(loaded.has_value()) << "flip at byte " << i;
    EXPECT_TRUE(loaded->fallback) << "flip at byte " << i;
    EXPECT_EQ(loaded->checkpoint.round, 2U - 1U) << "flip at byte " << i;
    ASSERT_EQ(loaded->checkpoint.sections.size(), 1U);
    EXPECT_EQ(loaded->checkpoint.sections[0].payload, old_payload)
        << "flip at byte " << i;
  }
  spit(newest, good);  // restore
  const auto clean = ring.load("s");
  ASSERT_TRUE(clean.has_value());
  EXPECT_FALSE(clean->fallback);
  EXPECT_EQ(clean->checkpoint.round, 2U);
}

TEST(DurableRing, AllSlotsRottenThrowsAggregateError) {
  TempDir td;
  DurableRing ring(td.path + "/ck");
  ring.save(1, "s", {{"p", {1, 2, 3}}});
  ring.save(2, "s", {{"p", {4, 5, 6}}});
  for (std::size_t slot = 0; slot < DurableRing::kSlots; ++slot) {
    std::vector<char> bytes = slurp(ring.slot_path(slot));
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
    spit(ring.slot_path(slot), bytes);
  }
  try {
    (void)ring.load("s");
    FAIL() << "load with every slot rotted did not throw";
  } catch (const CheckpointError& e) {
    // The aggregate error names the slot files it rejected.
    EXPECT_NE(std::string(e.what()).find("ckpt-"), std::string::npos)
        << e.what();
  }
}

TEST(DurableRing, ResetDropsStaleFiles) {
  TempDir td;
  {
    DurableRing ring(td.path + "/ck");
    ring.save(1, "s", {{"p", {1}}});
  }
  DurableRing ring(td.path + "/ck");
  ring.reset();
  EXPECT_FALSE(ring.load("s").has_value());
}

// ----------------------------------------------- driver stop/resume seams

TEST(DurableResume, MatchingStopsAndResumesBitIdentically) {
  const Graph g = make_family("gnp_sparse", 1500, 5);
  MatchingMpcOptions opt;
  opt.seed = 5;
  const auto clean = matching_mpc(g, opt);
  for (const std::size_t stop_after : {1U, 2U, 6U}) {
    TempDir td;
    MatchingMpcOptions d = opt;
    d.durable.dir = td.path + "/ck";
    d.durable.stop_after_safe_points = stop_after;
    bool stopped = false;
    try {
      (void)matching_mpc(g, d);
    } catch (const ResumableInterrupt&) {
      stopped = true;
    }
    MatchingMpcOptions r = opt;
    r.durable.dir = td.path + "/ck";
    r.durable.resume = true;
    const auto res = matching_mpc(g, r);
    EXPECT_EQ(res.x, clean.x) << "stop_after=" << stop_after;
    EXPECT_EQ(res.cover, clean.cover) << "stop_after=" << stop_after;
    EXPECT_EQ(res.freeze_iteration, clean.freeze_iteration);
    EXPECT_EQ(res.phases, clean.phases);
    EXPECT_EQ(res.total_iterations, clean.total_iterations);
    EXPECT_EQ(res.tail_iterations, clean.tail_iterations);
    if (stopped) EXPECT_EQ(res.metrics.resume_loads, 1U);
    EXPECT_TRUE(is_fractional_matching(g, res.x));
  }
}

TEST(DurableResume, MatchingResumesAtBoundariesWithFrozenState) {
  // Regression: phase boundaries on skewed (rmat) graphs carry nonzero
  // frozen/removed state, and the checkpoint stores y_old_cache_ values
  // that were *stale* in the interrupted process (their pending-refresh
  // dirty_ bits are not persisted). A resumed process that trusted them
  // froze fewer vertices in the re-entered phase and diverged; the fix
  // marks every vertex dirty in rebuild_after_resume so the caches
  // recompute from the restored flags. The late stop points below land on
  // exactly those dirty boundaries (the early ones are covered above).
  const Graph g = make_family("rmat", 3000, 9);
  MatchingMpcOptions opt;
  opt.seed = 9;
  const auto clean = matching_mpc(g, opt);
  for (const std::size_t stop_after : {4U, 5U, 6U, 7U, 8U, 9U}) {
    TempDir td;
    MatchingMpcOptions d = opt;
    d.durable.dir = td.path + "/ck";
    d.durable.stop_after_safe_points = stop_after;
    try {
      (void)matching_mpc(g, d);
    } catch (const ResumableInterrupt&) {
    }
    MatchingMpcOptions r = opt;
    r.durable.dir = td.path + "/ck";
    r.durable.resume = true;
    const auto res = matching_mpc(g, r);
    EXPECT_EQ(res.x, clean.x) << "stop_after=" << stop_after;
    EXPECT_EQ(res.cover, clean.cover) << "stop_after=" << stop_after;
    EXPECT_EQ(res.freeze_iteration, clean.freeze_iteration)
        << "stop_after=" << stop_after;
    EXPECT_EQ(res.total_iterations, clean.total_iterations);
    EXPECT_EQ(res.metrics.rounds, clean.metrics.rounds);
  }
}

TEST(DurableResume, MisStopsAndResumesBitIdentically) {
  const Graph g = make_family("rmat", 1200, 9);
  MisMpcOptions opt;
  opt.seed = 9;
  const auto clean = mis_mpc(g, opt);
  for (const std::size_t stop_after : {1U, 2U, 4U}) {
    TempDir td;
    MisMpcOptions d = opt;
    d.durable.dir = td.path + "/ck";
    d.durable.stop_after_safe_points = stop_after;
    bool stopped = false;
    try {
      (void)mis_mpc(g, d);
    } catch (const ResumableInterrupt&) {
      stopped = true;
    }
    MisMpcOptions r = opt;
    r.durable.dir = td.path + "/ck";
    r.durable.resume = true;
    const auto res = mis_mpc(g, r);
    EXPECT_EQ(res.mis, clean.mis) << "stop_after=" << stop_after;
    EXPECT_EQ(res.rank_phases, clean.rank_phases);
    EXPECT_EQ(res.sparsified_iterations, clean.sparsified_iterations);
    EXPECT_EQ(res.metrics.rounds, clean.metrics.rounds);
    EXPECT_EQ(res.metrics.total_words, clean.metrics.total_words);
    if (stopped) EXPECT_EQ(res.metrics.resume_loads, 1U);
    EXPECT_TRUE(is_maximal_independent_set(g, res.mis));
  }
}

TEST(DurableResume, MisCcliqueStopsAndResumesBitIdentically) {
  const Graph g = make_family("gnp_sparse", 700, 13);
  MisCcliqueOptions opt;
  opt.seed = 13;
  const auto clean = mis_cclique(g, opt);
  for (const std::size_t stop_after : {1U, 3U}) {
    TempDir td;
    MisCcliqueOptions d = opt;
    d.durable.dir = td.path + "/ck";
    d.durable.stop_after_safe_points = stop_after;
    bool stopped = false;
    try {
      (void)mis_cclique(g, d);
    } catch (const ResumableInterrupt&) {
      stopped = true;
    }
    MisCcliqueOptions r = opt;
    r.durable.dir = td.path + "/ck";
    r.durable.resume = true;
    const auto res = mis_cclique(g, r);
    EXPECT_EQ(res.mis, clean.mis) << "stop_after=" << stop_after;
    EXPECT_EQ(res.rank_phases, clean.rank_phases);
    EXPECT_EQ(res.metrics.rounds, clean.metrics.rounds);
    EXPECT_EQ(res.metrics.total_words, clean.metrics.total_words);
    if (stopped) EXPECT_EQ(res.metrics.resume_loads, 1U);
    EXPECT_TRUE(is_maximal_independent_set(g, res.mis));
  }
}

TEST(DurableResume, IntegralMatchingStopsAndResumesBitIdentically) {
  // The two-level ring: the inner MPC-Simulation run stops at its k-th
  // safe point (small k lands in iteration 0; larger k lands the stop in a
  // later A-iteration, exercising the outer cursor at iter > 0).
  const Graph g = make_family("gnp_sparse", 900, 17);
  IntegralMatchingOptions opt;
  opt.seed = 17;
  const auto clean = integral_matching(g, opt);
  for (const std::size_t stop_after : {1U, 3U, 8U}) {
    TempDir td;
    IntegralMatchingOptions d = opt;
    d.durable.dir = td.path + "/ck";
    d.durable.stop_after_safe_points = stop_after;
    bool stopped = false;
    try {
      (void)integral_matching(g, d);
    } catch (const ResumableInterrupt&) {
      stopped = true;
    }
    IntegralMatchingOptions r = opt;
    r.durable.dir = td.path + "/ck";
    r.durable.resume = true;
    const auto res = integral_matching(g, r);
    EXPECT_EQ(res.matching, clean.matching)
        << "stop_after=" << stop_after << " stopped=" << stopped;
    EXPECT_EQ(res.cover, clean.cover);
    EXPECT_EQ(res.iterations, clean.iterations);
    EXPECT_EQ(res.a_path_size, clean.a_path_size);
    EXPECT_EQ(res.small_path_size, clean.small_path_size);
    EXPECT_EQ(res.total_rounds, clean.total_rounds);
    EXPECT_TRUE(is_matching(g, res.matching));
  }
}

TEST(DurableResume, IntegralMatchingOuterStopFlagFlushesTheCursor) {
  // A stop flag that is already set stops at the very first outer
  // iteration boundary — after the cursor flush — and the resume replays
  // the whole run bit-identically from that (empty-progress) cursor.
  const Graph g = make_family("gnp_sparse", 600, 21);
  IntegralMatchingOptions opt;
  opt.seed = 21;
  const auto clean = integral_matching(g, opt);
  TempDir td;
  std::atomic<bool> stop{true};
  IntegralMatchingOptions d = opt;
  d.durable.dir = td.path + "/ck";
  d.durable.stop_flag = &stop;
  EXPECT_THROW((void)integral_matching(g, d), ResumableInterrupt);
  IntegralMatchingOptions r = opt;
  r.durable.dir = td.path + "/ck";
  r.durable.resume = true;
  const auto res = integral_matching(g, r);
  EXPECT_EQ(res.matching, clean.matching);
  EXPECT_EQ(res.iterations, clean.iterations);
}

// ----------------------------------------------- corruption on the resume

TEST(DurableResume, ResumeFallsBackPastARottedOnDiskGeneration) {
  // Stop late enough that two generations exist on disk, rot the newest,
  // and resume: the load must fall back to the older verified generation
  // (disk_fallbacks tick) and the longer replay must still end
  // bit-identical. matching_mpc has a safe point per phase/tail iteration
  // (dozens at this size), so stop 5 fills both ring slots.
  const Graph g = make_family("gnp_sparse", 1200, 25);
  MatchingMpcOptions opt;
  opt.seed = 25;
  const auto clean = matching_mpc(g, opt);
  TempDir td;
  MatchingMpcOptions d = opt;
  d.durable.dir = td.path + "/ck";
  d.durable.stop_after_safe_points = 5;
  bool stopped = false;
  try {
    (void)matching_mpc(g, d);
  } catch (const ResumableInterrupt&) {
    stopped = true;
  }
  ASSERT_TRUE(stopped) << "run finished before 5 safe points; shrink n";
  const DurableRing ring(td.path + "/ck");
  std::string newest;
  std::uint64_t best_seq = 0;
  for (std::size_t slot = 0; slot < DurableRing::kSlots; ++slot) {
    std::error_code ec;
    if (!std::filesystem::exists(ring.slot_path(slot), ec)) continue;
    const auto c = fault::read_checkpoint_file(ring.slot_path(slot));
    if (c.seq > best_seq) {
      best_seq = c.seq;
      newest = ring.slot_path(slot);
    }
  }
  ASSERT_FALSE(newest.empty());
  std::vector<char> bytes = slurp(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  spit(newest, bytes);

  MatchingMpcOptions r = opt;
  r.durable.dir = td.path + "/ck";
  r.durable.resume = true;
  const auto res = matching_mpc(g, r);
  EXPECT_EQ(res.x, clean.x);
  EXPECT_EQ(res.cover, clean.cover);
  EXPECT_EQ(res.freeze_iteration, clean.freeze_iteration);
  EXPECT_EQ(res.metrics.rounds, clean.metrics.rounds);
  EXPECT_EQ(res.metrics.resume_loads, 1U);
  EXPECT_GE(res.metrics.disk_fallbacks, 1U);
}

// -------------------------------------------------------- metric hygiene

TEST(DurableMetrics, AllDiskMetricsZeroWhenPersistenceOff) {
  const Graph g = make_family("gnp_sparse", 800, 3);
  {
    MisMpcOptions opt;
    opt.seed = 3;
    const auto r = mis_mpc(g, opt);
    EXPECT_EQ(r.metrics.disk_checkpoints_written, 0U);
    EXPECT_EQ(r.metrics.disk_checkpoint_words, 0U);
    EXPECT_EQ(r.metrics.resume_loads, 0U);
    EXPECT_EQ(r.metrics.disk_fallbacks, 0U);
    EXPECT_EQ(r.metrics.faults_skipped_on_resume, 0U);
  }
  {
    MatchingMpcOptions opt;
    opt.seed = 3;
    const auto r = matching_mpc(g, opt);
    EXPECT_EQ(r.metrics.disk_checkpoints_written, 0U);
    EXPECT_EQ(r.metrics.disk_checkpoint_words, 0U);
    EXPECT_EQ(r.metrics.resume_loads, 0U);
    EXPECT_EQ(r.metrics.disk_fallbacks, 0U);
    EXPECT_EQ(r.metrics.faults_skipped_on_resume, 0U);
  }
  {
    MisCcliqueOptions opt;
    opt.seed = 3;
    const auto r = mis_cclique(g, opt);
    EXPECT_EQ(r.metrics.disk_checkpoints_written, 0U);
    EXPECT_EQ(r.metrics.disk_checkpoint_words, 0U);
    EXPECT_EQ(r.metrics.resume_loads, 0U);
    EXPECT_EQ(r.metrics.disk_fallbacks, 0U);
    EXPECT_EQ(r.metrics.faults_skipped_on_resume, 0U);
  }
}

TEST(DurableMetrics, PersistentRunCountsItsDiskWrites) {
  const Graph g = make_family("gnp_sparse", 800, 3);
  TempDir td;
  MisMpcOptions opt;
  opt.seed = 3;
  opt.durable.dir = td.path + "/ck";
  const auto r = mis_mpc(g, opt);
  EXPECT_GE(r.metrics.disk_checkpoints_written, 1U);
  EXPECT_GT(r.metrics.disk_checkpoint_words, 0U);
  EXPECT_EQ(r.metrics.resume_loads, 0U);  // fresh start, nothing loaded
  // Persistence must not perturb the in-memory checkpoint accounting
  // (PR 6–8 pins): no plan, no captures.
  EXPECT_EQ(r.metrics.checkpoint_bytes, 0U);
}

// ------------------------------------------- fault-plan interop (resume)

TEST(DurableResume, ResumeSkipsFaultsFromAlreadyCompletedRounds) {
  // run_with_reprovision interop: the durable run rides inside the
  // reprovision wrapper (a ResumableInterrupt is not under-provisioning
  // and must propagate), and the resumed process must not re-inject plan
  // events from rounds before the resume point — they already fired and
  // were absorbed before the persisted safe point.
  const Graph g = make_family("gnp_sparse", 1024, 31);
  MatchingMpcOptions opt;
  opt.seed = 31;
  const auto clean = matching_mpc(g, opt);
  ASSERT_GT(clean.metrics.rounds, 8U);

  fault::FaultPlan plan;
  plan.add_crash(0, 2);
  plan.add_crash(1, clean.metrics.rounds - 2);
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  const auto ref = matching_mpc(g, faulty);
  EXPECT_EQ(ref.x, clean.x);

  TempDir td;
  MatchingMpcOptions d = faulty;
  d.durable.dir = td.path + "/ck";
  d.durable.stop_after_safe_points = 8;
  const fault::ReprovisionPolicy policy;
  bool stopped = false;
  try {
    (void)fault::run_with_reprovision(
        policy, [&](std::size_t) { return matching_mpc(g, d); },
        [](const MatchingMpcResult&) { return true; });
  } catch (const ResumableInterrupt&) {
    stopped = true;
  }
  ASSERT_TRUE(stopped) << "run finished before 8 safe points; shrink n";

  MatchingMpcOptions r = faulty;
  r.durable.dir = td.path + "/ck";
  r.durable.resume = true;
  const auto outcome = fault::run_with_reprovision(
      policy, [&](std::size_t) { return matching_mpc(g, r); },
      [](const MatchingMpcResult&) { return true; });
  ASSERT_TRUE(outcome.ok());
  const auto& res = *outcome.result;
  EXPECT_EQ(res.x, clean.x);
  EXPECT_EQ(res.cover, clean.cover);
  EXPECT_EQ(res.metrics.rounds, clean.metrics.rounds);
  EXPECT_EQ(res.metrics.resume_loads, 1U);
  // The round-2 crash fired before the stop point; the resumed process
  // counts it as skipped instead of replaying it.
  EXPECT_GE(res.metrics.faults_skipped_on_resume, 1U);
  EXPECT_TRUE(is_fractional_matching(g, res.x));
}

}  // namespace
}  // namespace mpcg
