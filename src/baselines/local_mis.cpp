#include "baselines/local_mis.h"

#include <algorithm>

#include "util/rng.h"

namespace mpcg {

LocalMisState::LocalMisState(const Graph& g, const std::vector<char>& alive,
                             std::uint64_t seed)
    : LocalMisState(ResidualGraph(g, alive), seed) {}

LocalMisState::LocalMisState(ResidualGraph residual, std::uint64_t seed)
    : seed_(seed), residual_(std::move(residual)),
      in_mis_(residual_.graph().num_vertices(), 0),
      p_(residual_.graph().num_vertices(), 0.5),
      marked_(residual_.graph().num_vertices(), 0),
      effective_(residual_.graph().num_vertices(), 0.0) {}

std::vector<VertexId> LocalMisState::step() {
  const std::uint64_t t = iteration_++;
  // The vertices alive at the start of the iteration, ascending. Kills
  // below leave stale entries; later loops re-check aliveness exactly
  // where the original dynamics consulted the alive array post-removal.
  const auto vertices = residual_.alive_vertices();

  // Mark with probability p_v (stateless randomness).
  for (const VertexId v : vertices) {
    marked_[v] = stateless_uniform(seed_, v, t) < p_[v] ? 1 : 0;
  }

  // Effective degrees for the desire-level update (computed before
  // removals, as in the original dynamics; alive_arcs preserves the
  // ascending neighbor order, so the sums are bit-identical to a filtered
  // full-adjacency scan).
  for (const VertexId v : vertices) {
    double d = 0.0;
    for (const Arc& a : residual_.alive_arcs(v)) d += p_[a.to];
    effective_[v] = d;
  }

  // Join: marked with no marked alive neighbor.
  std::vector<VertexId> joined;
  for (const VertexId v : vertices) {
    if (!marked_[v]) continue;
    bool lonely = true;
    for (const Arc& a : residual_.alive_arcs(v)) {
      if (marked_[a.to]) {
        lonely = false;
        break;
      }
    }
    if (lonely) joined.push_back(v);
  }
  for (const VertexId v : joined) {
    in_mis_[v] = 1;
    // Joined vertices are pairwise non-adjacent, so v is still alive here;
    // capture its alive neighborhood, then remove v and the neighborhood.
    const auto neighborhood = residual_.alive_arcs(v);
    residual_.kill(v);
    for (const Arc& a : neighborhood) residual_.kill(a.to);
  }

  // Desire-level update for survivors.
  for (const VertexId v : vertices) {
    if (!residual_.alive(v)) continue;
    p_[v] = effective_[v] >= 2.0 ? p_[v] / 2.0 : std::min(2.0 * p_[v], 0.5);
  }
  // Reset the mark scratch for the next iteration.
  for (const VertexId v : vertices) marked_[v] = 0;
  return joined;
}

LocalMisResult local_mis(const Graph& g, std::uint64_t seed) {
  LocalMisState state(g, std::vector<char>(g.num_vertices(), 1), seed);
  LocalMisResult result;
  // The dynamics terminate in O(log n) iterations w.h.p.; the hard cap
  // below only guards tests against pathological seeds, finishing any
  // stragglers greedily (still a valid MIS).
  std::size_t max_iterations = 64;
  for (std::size_t n = g.num_vertices(); n > 1; n /= 2) max_iterations += 32;
  while (state.alive_count() > 0 && state.iterations() < max_iterations) {
    const auto joined = state.step();
    for (const VertexId v : joined) result.mis.push_back(v);
  }
  if (state.alive_count() > 0) {
    std::vector<char> alive = state.alive();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!alive[v]) continue;
      result.mis.push_back(v);
      alive[v] = 0;
      for (const Arc& a : g.arcs(v)) alive[a.to] = 0;
    }
  }
  result.iterations = state.iterations();
  return result;
}

}  // namespace mpcg
