// Vertex-to-machine assignment.
//
// Two flavours: a stable hash-based home assignment (who stores a vertex's
// adjacency shard across the whole run), and the per-phase uniformly random
// repartitioning the matching algorithm uses (paper, Section 4.3 Line (d)).
#ifndef MPCG_MPC_PARTITION_H
#define MPCG_MPC_PARTITION_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace mpcg::mpc {

/// Stable home machine of a vertex: hash(seed, v) mod m.
[[nodiscard]] inline std::size_t home_of(VertexId v, std::size_t machines,
                                         std::uint64_t seed) noexcept {
  return static_cast<std::size_t>(mix64(seed, v) % machines);
}

/// Assigns each of n vertices independently and uniformly at random to one
/// of `machines` machines (fresh randomness from `rng`). Returns the
/// machine index per vertex.
[[nodiscard]] std::vector<std::uint32_t> random_vertex_partition(
    std::size_t n, std::size_t machines, Rng& rng);

/// Groups vertex ids by machine given an assignment.
[[nodiscard]] std::vector<std::vector<VertexId>> group_by_machine(
    const std::vector<std::uint32_t>& assignment, std::size_t machines);

}  // namespace mpcg::mpc

#endif  // MPCG_MPC_PARTITION_H
