#include "graph/subgraph.h"

#include <algorithm>
#include <stdexcept>

namespace mpcg {

namespace {
constexpr VertexId kAbsent = static_cast<VertexId>(-1);
}  // namespace

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<VertexId>& vertices) {
  std::vector<VertexId> local_of(g.num_vertices(), kAbsent);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    if (v >= g.num_vertices()) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    if (local_of[v] != kAbsent) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    }
    local_of[v] = static_cast<VertexId>(i);
  }

  // Collect local edges with their parent edge ids, canonicalized to
  // local u < v. g is simple, so the (u, v) keys are unique; sorting the
  // triples lexicographically puts them in exactly the order GraphBuilder
  // assigns local edge ids, letting the parent ids ride along instead of
  // being recovered by per-edge binary search afterwards.
  struct LocalEdge {
    VertexId u, v;
    EdgeId parent;
  };
  std::vector<LocalEdge> local_edges;
  for (const VertexId v : vertices) {
    for (const Arc& a : g.arcs(v)) {
      if (a.to > v && local_of[a.to] != kAbsent) {
        VertexId lu = local_of[v];
        VertexId lv = local_of[a.to];
        if (lu > lv) std::swap(lu, lv);
        local_edges.push_back({lu, lv, a.edge});
      }
    }
  }
  std::sort(local_edges.begin(), local_edges.end(),
            [](const LocalEdge& a, const LocalEdge& b) {
              return a.u < b.u || (a.u == b.u && a.v < b.v);
            });

  GraphBuilder builder(vertices.size());
  InducedSubgraph out;
  out.to_parent_edge.reserve(local_edges.size());
  for (const LocalEdge& e : local_edges) {
    builder.add_edge(e.u, e.v);
    out.to_parent_edge.push_back(e.parent);
  }
  out.graph = builder.build();
  out.to_parent_vertex = vertices;
  return out;
}

std::size_t count_induced_edges(const Graph& g,
                                const std::vector<VertexId>& vertices) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const VertexId v : vertices) in_set[v] = true;
  std::size_t count = 0;
  for (const VertexId v : vertices) {
    for (const Arc& a : g.arcs(v)) {
      if (a.to > v && in_set[a.to]) ++count;
    }
  }
  return count;
}

}  // namespace mpcg
