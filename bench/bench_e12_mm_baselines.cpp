// E12 (related-work comparison): maximal/approximate matching baselines.
//
// Table rows: per n, the filtering algorithm of [LMSV11] (O(log n) rounds
// at S = Theta(n)), Israeli–Itai (O(log n) rounds), and our Theorem 1.2
// driver. Shape: the baselines' rounds grow with log n while ours track
// log log n; all sizes stay within their guarantees of nu.
#include "baselines/blossom.h"
#include "baselines/israeli_itai.h"
#include "baselines/lmsv_filtering.h"
#include "bench_util.h"
#include "core/integral_matching.h"
#include "core/line_graph_matching.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

void E12_Baselines(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_with_degree(n, 16.0, 47);

  LmsvResult lmsv;
  IsraeliItaiResult ii;
  IntegralMatchingResult ours;
  LineGraphMatchingResult via_line;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    lmsv = lmsv_maximal_matching(g, 8 * n, 47);
    ii = israeli_itai_matching(g, 47);
    IntegralMatchingOptions opt;
    opt.eps = 0.1;
    opt.seed = 47;
    ours = integral_matching(g, opt);
    // The introduction's reduction (MIS on L(G)): correct, but pays the
    // line-graph memory blowup the direct algorithm avoids.
    MisMpcOptions lopt;
    lopt.seed = 47;
    via_line = line_graph_matching_mpc(g, lopt);
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(ours.matching.size());
  }
  emit_json_line("E12_Baselines/" + std::to_string(n), n, g.num_edges(),
                 ours.total_rounds, wall_ms, 0);
  state.counters["n"] = static_cast<double>(n);
  state.counters["lmsv_rounds"] = static_cast<double>(lmsv.rounds);
  state.counters["ii_rounds"] = static_cast<double>(ii.rounds);
  state.counters["ours_rounds"] = static_cast<double>(ours.total_rounds);
  state.counters["ours_per_call_rounds"] =
      static_cast<double>(ours.first_run_rounds);
  state.counters["lmsv_size"] = static_cast<double>(lmsv.matching.size());
  state.counters["ii_size"] = static_cast<double>(ii.matching.size());
  state.counters["ours_size"] = static_cast<double>(ours.matching.size());
  state.counters["line_size"] = static_cast<double>(via_line.matching.size());
  state.counters["line_blowup"] =
      static_cast<double>(via_line.line_edges) /
      static_cast<double>(std::max<std::size_t>(g.num_edges(), 1));
  if (n <= (1 << 12)) {
    const double nu = static_cast<double>(maximum_matching_size(g));
    state.counters["nu"] = nu;
    state.counters["ours_factor"] =
        ours.matching.empty()
            ? 0.0
            : nu / static_cast<double>(ours.matching.size());
  }
  state.counters["log2_n"] = std::log2(static_cast<double>(n));
  state.counters["loglog_n"] = log2log2(static_cast<double>(n));
}
BENCHMARK(E12_Baselines)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
