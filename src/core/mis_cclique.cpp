#include "core/mis_cclique.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <unordered_map>

#include "baselines/local_mis.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "graph/residual.h"
#include "util/permutation.h"
#include "util/rng.h"

namespace mpcg {

namespace {

using cclique::Message;
using cclique::Word;

Word encode_pair(VertexId a, VertexId b) noexcept {
  return (static_cast<Word>(a) << 32) | b;
}

std::pair<VertexId, VertexId> decode_pair(Word w) noexcept {
  return {static_cast<VertexId>(w >> 32),
          static_cast<VertexId>(w & 0xffffffffULL)};
}

/// CONGESTED-CLIQUE driver of the same greedy process mis_mpc simulates.
/// Aliveness, residual degrees, and the alive-edge count live in a
/// ResidualGraph and are maintained incrementally through the announced
/// kills — per-phase work scales with the residual, never with a rescan of
/// g_.edges(). All residual iteration orders (alive_vertices ascending,
/// alive_arcs / alive_upper_arcs ascending by neighbor) match the filtered
/// full scans they replaced, so broadcasts, Lenzen batches, and the MIS
/// output are bit-identical to the pre-port driver (and to mis_mpc, as the
/// coupling tests pin).
class MisCcliqueRun {
 public:
  MisCcliqueRun(const Graph& g, const MisCcliqueOptions& options)
      : g_(g), options_(options), n_(g.num_vertices()),
        engine_(std::max<std::size_t>(n_, 1), options.strict,
                options.integrity, options.audit, options.scrub_interval,
                options.threads),
        residual_(g), dying_(n_, 0) {
    gather_budget_ = options.gather_budget != 0 ? options.gather_budget : n_;
    const bool durable = options.durable.enabled();
    if (durable) {
      engine_.set_durability(
          options.durable,
          "mis_cc:" + std::to_string(n_) + ":" +
              std::to_string(g.num_edges()) + ":" +
              std::to_string(options.seed));
    }
    const bool plan_active =
        options.fault_plan != nullptr && !options.fault_plan->empty();
    if (plan_active || durable) {
      if (options.durable.generations != 0) {
        registry_.emplace(options.durable.generations);
      } else {
        registry_.emplace();
      }
      register_checkpoint_state();
      // Durability-only provider: kept out of plan-only runs so their
      // in-memory checkpoint accounting stays as PR 6-8 pinned it.
      if (durable) register_loop_state();
      engine_.set_fault_plan(plan_active ? options.fault_plan : nullptr,
                             &*registry_, options.fault_recovery);
    }
  }

  MisCcliqueResult run() {
    if (n_ == 0) return std::move(result_);

    const bool resumed = engine_.try_resume();
    if (!resumed) {
      // Leader draws the order, tells each player its rank (one word each),
      // and every player broadcasts its rank — the order becomes common
      // knowledge in 2 rounds (paper, Section 3.2).
      Rng rng(options_.seed);
      perm_ = random_permutation(n_, rng);
      rank_of_ = invert_permutation(perm_);
      for (VertexId v = 1; v < n_; ++v) {
        engine_.send(0, v, rank_of_[v]);
      }
      engine_.exchange();
      for (VertexId v = 0; v < n_; ++v) {
        engine_.broadcast(v, rank_of_[v]);
      }
      engine_.exchange();
    }

    const double delta0 = std::max<double>(2.0, static_cast<double>(
                                                    g_.max_degree()));
    const double log_delta = std::log2(delta0);

    while (true) {
      // Safe point: quiescent loop boundary where durable generations
      // persist and a resumed process re-enters.
      engine_.checkpoint_boundary();
      const std::uint64_t alive_edges = count_alive_edges();
      if (alive_edges <= gather_budget_) {
        final_gather(result_);
        break;
      }
      if (options_.use_sparsified_stage &&
          max_alive_degree() <= options_.degree_switch) {
        sparsified_stage(result_);
        final_gather(result_);
        break;
      }
      ++result_.rank_phases;
      const double exponent =
          std::pow(options_.alpha, static_cast<double>(result_.rank_phases));
      auto upper = static_cast<std::size_t>(
          std::llround(static_cast<double>(n_) *
                       std::pow(2.0, -exponent * log_delta)));
      upper = std::clamp(upper, next_rank_ + 1, n_);
      rank_phase(next_rank_, upper, result_);
      next_rank_ = upper;
    }

    result_.metrics = engine_.metrics();
    result_.mis = std::move(mis_);
    return std::move(result_);
  }

 private:
  /// Driver-side checkpoint providers, mirroring mis_mpc's set: the shared
  /// permutation (rank_of_ derived on restore), the append-only member
  /// list, and the residual aliveness bitmap (aliveness only shrinks, so
  /// restore reconciles by killing).  The Lenzen batch unit needs no
  /// provider of its own — the engine treats a batch as its own
  /// retransmission unit and captures this registry when a fault lands
  /// inside one.
  void register_checkpoint_state() {
    auto& reg = *registry_;
    reg.register_state(
        "permutation",
        [this](std::vector<Word>& out) {
          out.push_back(perm_.size());
          for (const std::uint32_t r : perm_) out.push_back(r);
        },
        [this](std::span<const Word> in) {
          perm_.assign(in.begin() + 1,
                       in.begin() + 1 + static_cast<std::ptrdiff_t>(in[0]));
          rank_of_ = perm_.empty() ? std::vector<std::uint32_t>{}
                                   : invert_permutation(perm_);
        });
    reg.register_state(
        "mis-members",
        [this](std::vector<Word>& out) {
          out.push_back(mis_.size());
          for (const VertexId v : mis_) out.push_back(v);
        },
        [this](std::span<const Word> in) {
          mis_.assign(in.begin() + 1,
                      in.begin() + 1 + static_cast<std::ptrdiff_t>(in[0]));
        });
    reg.register_state(
        "aliveness",
        [this](std::vector<Word>& out) {
          const std::size_t base = out.size();
          out.resize(base + (n_ + 63) / 64, 0);
          for (VertexId v = 0; v < n_; ++v) {
            if (residual_.alive(v)) out[base + v / 64] |= Word{1} << (v % 64);
          }
        },
        [this](std::span<const Word> in) {
          std::vector<VertexId> to_kill;
          for (VertexId v = 0; v < n_; ++v) {
            const bool want = ((in[v / 64] >> (v % 64)) & Word{1}) != 0;
            if (!want && residual_.alive(v)) to_kill.push_back(v);
          }
          if (!to_kill.empty()) residual_.kill_batch(to_kill);
        });
  }

  /// The run-loop cursor (registered only for durability): the next rank
  /// plus the result counters accumulated so far.
  void register_loop_state() {
    registry_->register_state(
        "loop",
        [this](std::vector<Word>& out) {
          out.push_back(next_rank_);
          out.push_back(result_.rank_phases);
          out.push_back(result_.sparsified_iterations);
          out.push_back(result_.final_gather_edges);
          out.push_back(result_.window_edges_per_phase.size());
          for (const std::size_t e : result_.window_edges_per_phase) {
            out.push_back(e);
          }
        },
        [this](std::span<const Word> in) {
          std::size_t at = 0;
          next_rank_ = static_cast<std::size_t>(in[at++]);
          result_.rank_phases = static_cast<std::size_t>(in[at++]);
          result_.sparsified_iterations = static_cast<std::size_t>(in[at++]);
          result_.final_gather_edges = static_cast<std::size_t>(in[at++]);
          const std::size_t phases = static_cast<std::size_t>(in[at++]);
          result_.window_edges_per_phase.assign(
              in.begin() + static_cast<std::ptrdiff_t>(at),
              in.begin() + static_cast<std::ptrdiff_t>(at + phases));
        });
  }

  /// Every alive player broadcasts its alive degree; everybody can then
  /// compute the total edge count (one round). The degrees come from the
  /// residual graph's maintained counters — no adjacency scan.
  std::uint64_t count_alive_edges() {
    std::uint64_t sum = 0;
    for (const VertexId v : residual_.alive_vertices()) {
      const std::uint64_t d = residual_.residual_degree(v);
      engine_.broadcast(v, d);
      sum += d;
    }
    engine_.exchange();
    return sum / 2;
  }

  std::uint64_t max_alive_degree() {
    for (const VertexId v : residual_.alive_vertices()) {
      engine_.broadcast(v, residual_.residual_degree(v));
    }
    engine_.exchange();
    return residual_.max_alive_degree();
  }

  /// Members broadcast their membership; every player checks its own
  /// adjacency and the dying broadcast their deaths. Two rounds; the alive
  /// flags stay common knowledge. Deaths are found from the members'
  /// residual neighborhoods (O(residual degree), not a full-vertex sweep)
  /// and announced in ascending id order, as before.
  void commit_via_broadcasts(const std::vector<VertexId>& mis_new) {
    if (mis_new.empty()) return;
    for (const VertexId v : mis_new) {
      engine_.broadcast(v, v);
    }
    engine_.exchange();
    for (const VertexId v : mis_new) dying_[v] = 1;
    for (const VertexId v : mis_new) {
      for (const Arc& a : residual_.alive_arcs(v)) dying_[a.to] = 1;
    }
    std::vector<VertexId> died;
    for (const VertexId v : residual_.alive_vertices()) {
      if (!dying_[v]) continue;
      died.push_back(v);
      engine_.broadcast(v, v);
    }
    engine_.exchange();
    residual_.kill_batch(died);
    for (const VertexId v : died) dying_[v] = 0;
    mis_.insert(mis_.end(), mis_new.begin(), mis_new.end());
  }

  /// Leader tells each new member it joined (one round), then the usual
  /// membership/death broadcasts follow.
  void commit_from_leader(const std::vector<VertexId>& mis_new) {
    if (mis_new.empty()) return;
    for (const VertexId v : mis_new) {
      if (v != 0) engine_.send(0, v, 1);
    }
    engine_.exchange();
    commit_via_broadcasts(mis_new);
  }

  /// Window-induced residual edges routed to the leader (Lenzen), greedy
  /// through the window ranks at the leader.
  void rank_phase(std::size_t lo, std::size_t hi, MisCcliqueResult& result) {
    // Run-length staging: each vertex's window edges all flow v -> leader,
    // so a burst is one run descriptor over the word stream instead of a
    // 16-byte Message record per edge.
    route_stream_.clear();
    mpc::ExecutionBackend& backend = engine_.backend();
    if (backend.parallel()) {
      // Sequential pre-pass (the lazy alive_upper_arcs accessor mutates
      // shared scratch), then per-chunk streams concatenated slot-ascending
      // — append_stream's boundary merge makes that the sequential stream.
      arc_spans_.assign(hi - lo, {});
      for (std::size_t r = lo; r < hi; ++r) {
        const VertexId v = perm_[r];
        if (residual_.alive(v)) {
          arc_spans_[r - lo] = residual_.alive_upper_arcs(v);
        }
      }
      // Clear every slot up front: run_chunks skips empty chunks, which
      // must not leak a previous phase's stream.
      if (slot_streams_.size() < backend.threads()) {
        slot_streams_.resize(backend.threads());
      }
      for (std::size_t s = 0; s < backend.threads(); ++s) {
        slot_streams_[s].clear();
      }
      backend.run_chunks(
          lo, hi, [&](std::size_t slot, std::size_t clo, std::size_t chi) {
            cclique::RouteStream& out = slot_streams_[slot];
            for (std::size_t r = clo; r < chi; ++r) {
              const VertexId v = perm_[r];
              for (const Arc& a : arc_spans_[r - lo]) {
                if (rank_of_[a.to] >= lo && rank_of_[a.to] < hi) {
                  out.append(v, 0, encode_pair(v, a.to));
                }
              }
            }
          });
      for (std::size_t s = 0; s < backend.threads(); ++s) {
        route_stream_.append_stream(slot_streams_[s]);
      }
    } else {
      for (std::size_t r = lo; r < hi; ++r) {
        const VertexId v = perm_[r];
        if (!residual_.alive(v)) continue;
        for (const Arc& a : residual_.alive_upper_arcs(v)) {
          if (rank_of_[a.to] >= lo && rank_of_[a.to] < hi) {
            route_stream_.append(v, 0, encode_pair(v, a.to));
          }
        }
      }
    }
    result.window_edges_per_phase.push_back(route_stream_.size());
    const auto& delivered = engine_.lenzen_route_view(route_stream_);

    std::unordered_map<VertexId, std::vector<VertexId>> adj;
    for (const cclique::RouteSegment& seg : delivered[0].segments()) {
      for (std::uint32_t i = 0; i < seg.count; ++i) {
        const auto [u, v] = decode_pair(seg.words[i]);
        adj[u].push_back(v);
        adj[v].push_back(u);
      }
    }
    std::vector<VertexId> mis_new;
    std::unordered_map<VertexId, char> killed;
    for (std::size_t r = lo; r < hi; ++r) {
      const VertexId v = perm_[r];
      if (!residual_.alive(v) || killed.count(v) != 0) continue;
      mis_new.push_back(v);
      const auto it = adj.find(v);
      if (it != adj.end()) {
        for (const VertexId u : it->second) killed[u] = 1;
      }
    }
    commit_from_leader(mis_new);
  }

  void sparsified_stage(MisCcliqueResult& result) {
    // Snapshot the driver's residual view (bulk copy); the dynamics evolve
    // their own aliveness, which the driver mirrors through the announced
    // commits.
    LocalMisState state(residual_, mix64(options_.seed, 0x5fa1, 1));
    while (count_alive_edges() > gather_budget_) {
      // Each alive player broadcasts its mark and desire level (the
      // dynamics read only neighbors' values; a broadcast certainly
      // delivers them). One round.
      for (const VertexId v : residual_.alive_vertices()) {
        engine_.broadcast(v, v);
      }
      engine_.exchange();
      const auto joined = state.step();
      ++result.sparsified_iterations;
      commit_via_broadcasts(joined);
      if (state.alive_count() == 0) break;
    }
  }

  void final_gather(MisCcliqueResult& result) {
    // Canonical-edge iteration over the residual: (u ascending, v
    // ascending) is exactly the alive-alive filter of g_.edges() in edge-id
    // order, touching only surviving arcs. Staged as one run per vertex.
    route_stream_.clear();
    mpc::ExecutionBackend& backend = engine_.backend();
    if (backend.parallel()) {
      const std::span<const VertexId> alive = residual_.alive_vertices();
      arc_spans_.assign(alive.size(), {});
      for (std::size_t i = 0; i < alive.size(); ++i) {
        arc_spans_[i] = residual_.alive_upper_arcs(alive[i]);
      }
      if (slot_streams_.size() < backend.threads()) {
        slot_streams_.resize(backend.threads());
      }
      for (std::size_t s = 0; s < backend.threads(); ++s) {
        slot_streams_[s].clear();
      }
      backend.run_chunks(
          0, alive.size(),
          [&](std::size_t slot, std::size_t clo, std::size_t chi) {
            cclique::RouteStream& out = slot_streams_[slot];
            for (std::size_t i = clo; i < chi; ++i) {
              const VertexId u = alive[i];
              for (const Arc& a : arc_spans_[i]) {
                out.append(u, 0, encode_pair(u, a.to));
              }
            }
          });
      for (std::size_t s = 0; s < backend.threads(); ++s) {
        route_stream_.append_stream(slot_streams_[s]);
      }
    } else {
      for (const VertexId u : residual_.alive_vertices()) {
        for (const Arc& a : residual_.alive_upper_arcs(u)) {
          route_stream_.append(u, 0, encode_pair(u, a.to));
        }
      }
    }
    result.final_gather_edges = route_stream_.size();
    const auto& delivered = engine_.lenzen_route_view(route_stream_);

    std::unordered_map<VertexId, std::vector<VertexId>> adj;
    for (const cclique::RouteSegment& seg : delivered[0].segments()) {
      for (std::uint32_t i = 0; i < seg.count; ++i) {
        const auto [u, v] = decode_pair(seg.words[i]);
        adj[u].push_back(v);
        adj[v].push_back(u);
      }
    }
    std::vector<VertexId> mis_new;
    std::unordered_map<VertexId, char> killed;
    for (std::size_t r = 0; r < n_; ++r) {
      const VertexId v = perm_[r];
      if (!residual_.alive(v) || killed.count(v) != 0) continue;
      mis_new.push_back(v);
      const auto it = adj.find(v);
      if (it != adj.end()) {
        for (const VertexId u : it->second) killed[u] = 1;
      }
    }
    commit_from_leader(mis_new);
  }

  const Graph& g_;
  const MisCcliqueOptions& options_;
  std::size_t n_;
  cclique::Engine engine_;
  ResidualGraph residual_;
  std::optional<fault::CheckpointRegistry> registry_;
  std::size_t gather_budget_ = 0;

  std::vector<std::uint32_t> perm_;
  std::vector<std::uint32_t> rank_of_;
  /// Scratch for commit_via_broadcasts; zeroed after each commit.
  std::vector<char> dying_;
  /// Run-length staging for the Lenzen gathers (persistent across phases).
  cclique::RouteStream route_stream_;
  /// Parallel-backend staging scratch: per-vertex alive-arc spans cached by
  /// the sequential pre-pass, plus one RouteStream per chunk slot
  /// (concatenated slot-ascending into route_stream_).
  std::vector<std::span<const Arc>> arc_spans_;
  std::vector<cclique::RouteStream> slot_streams_;
  std::vector<VertexId> mis_;
  /// Run-loop cursor + accumulating result, promoted to members so the
  /// "loop" durable provider can serialize them at safe points.
  std::size_t next_rank_ = 0;
  MisCcliqueResult result_;
};

}  // namespace

MisCcliqueResult mis_cclique(const Graph& g, const MisCcliqueOptions& options) {
  MisCcliqueRun run(g, options);
  return run.run();
}

}  // namespace mpcg
