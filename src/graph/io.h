// Plain-text graph (de)serialization.
//
// Format (whitespace/newline separated):
//   line 1:  n m
//   m lines: u v            [w]      — 0-based endpoints, optional weight
// Comments: lines starting with '#' are skipped. This covers the common
// edge-list corpora (SNAP-style) after trivial preprocessing, so users can
// feed real graphs to the library.
#ifndef MPCG_GRAPH_IO_H
#define MPCG_GRAPH_IO_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

struct LoadedGraph {
  Graph graph;
  /// Present iff the file carried a third column; indexed by edge id.
  std::optional<std::vector<double>> weights;
};

/// Parses the format above. Throws std::runtime_error on malformed input
/// (bad counts, out-of-range endpoints).
[[nodiscard]] LoadedGraph read_edge_list(std::istream& in);
[[nodiscard]] LoadedGraph read_edge_list_file(const std::string& path);

/// Writes the format above (with weights iff provided; weights must then
/// have one entry per edge id).
void write_edge_list(std::ostream& out, const Graph& g,
                     const std::vector<double>* weights = nullptr);
void write_edge_list_file(const std::string& path, const Graph& g,
                          const std::vector<double>* weights = nullptr);

}  // namespace mpcg

#endif  // MPCG_GRAPH_IO_H
