#include "mpc/partition.h"

namespace mpcg::mpc {

std::vector<std::uint32_t> random_vertex_partition(std::size_t n,
                                                   std::size_t machines,
                                                   Rng& rng) {
  std::vector<std::uint32_t> assignment(n);
  for (std::size_t v = 0; v < n; ++v) {
    assignment[v] = static_cast<std::uint32_t>(rng.next_below(machines));
  }
  return assignment;
}

std::vector<std::vector<VertexId>> group_by_machine(
    const std::vector<std::uint32_t>& assignment, std::size_t machines) {
  std::vector<std::vector<VertexId>> groups(machines);
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    groups[assignment[v]].push_back(static_cast<VertexId>(v));
  }
  return groups;
}

}  // namespace mpcg::mpc
