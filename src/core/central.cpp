#include "core/central.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace mpcg {

double central_threshold(std::uint64_t threshold_seed, VertexId v,
                         std::uint64_t t, double eps,
                         bool random_thresholds) {
  if (!random_thresholds) return 1.0 - 2.0 * eps;
  // stateless_uniform(s, v, t) reads mix64(s, v, t) = mix64(mix64(s, v), t),
  // so routing through the split helper is the identical draw.
  return central_threshold_from_mix(mix64(threshold_seed, v), t, eps);
}

ThresholdBatch::ThresholdBatch(std::uint64_t threshold_seed, double eps,
                               bool random_thresholds,
                               std::size_t num_vertices)
    : eps_(eps), fixed_(1.0 - 2.0 * eps), random_(random_thresholds) {
  if (random_) {
    vertex_mix_.resize(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v) {
      vertex_mix_[v] = mix64(threshold_seed, v);
    }
  }
}

void ThresholdBatch::fill(std::span<const VertexId> vertices, std::uint64_t t,
                          std::vector<double>& out) const {
  out.resize(vertices.size());
  if (!random_) {
    std::fill(out.begin(), out.end(), fixed_);
    return;
  }
  const std::uint64_t* mix = vertex_mix_.data();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    out[i] = central_threshold_from_mix(mix[vertices[i]], t, eps_);
  }
}

CentralResult central_fractional_matching(const Graph& g,
                                          const CentralOptions& options) {
  const double eps = options.eps;
  if (!(eps > 0.0) || eps > 0.5) {
    throw std::invalid_argument("central: eps must be in (0, 1/2]");
  }
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  CentralResult result;
  result.freeze_iteration.assign(n, CentralResult::kNeverFroze);
  result.x.assign(m, 0.0);
  if (m == 0) return result;

  const double w0 = options.initial_edge_weight > 0.0
                        ? options.initial_edge_weight
                        : 1.0 / static_cast<double>(n);

  // Active state. All active edges share weight w_t = w0 / (1-eps)^t.
  std::vector<char> frozen(n, 0);
  std::vector<std::uint32_t> active_degree(n, 0);
  std::vector<double> frozen_load(n, 0.0);  // weight of v's frozen edges
  for (const Edge& e : g.edges()) {
    ++active_degree[e.u];
    ++active_degree[e.v];
  }
  std::size_t active_edges = m;
  // Edge weights are derived from freeze times at the end; track per-edge
  // freeze iteration implicitly via vertex freeze iterations.

  double w_t = w0;
  // Hard bound: once w_t >= 1 every endpoint of an active edge is above any
  // threshold, so everything freezes no later than this.
  const std::size_t max_iterations =
      2 + static_cast<std::size_t>(std::ceil(std::log(1.0 / w0) /
                                             -std::log1p(-eps)));

  std::uint64_t t = 0;
  while (active_edges > 0) {
    if (t > max_iterations) {
      throw std::logic_error("central: did not terminate (bug)");
    }
    if (options.record_trace) {
      std::vector<double> y(n);
      for (VertexId v = 0; v < n; ++v) {
        y[v] = frozen_load[v] +
               static_cast<double>(active_degree[v]) * w_t;
      }
      result.y_trace.push_back(std::move(y));
    }

    // (A) Freeze every unfrozen vertex at or above its threshold.
    std::vector<VertexId> newly_frozen;
    for (VertexId v = 0; v < n; ++v) {
      if (frozen[v]) continue;
      const double y =
          frozen_load[v] + static_cast<double>(active_degree[v]) * w_t;
      const double threshold = central_threshold(
          options.threshold_seed, v, t, eps, options.random_thresholds);
      if (y >= threshold) newly_frozen.push_back(v);
    }
    for (const VertexId v : newly_frozen) {
      frozen[v] = 1;
      result.freeze_iteration[v] = static_cast<std::uint32_t>(t);
      result.cover.push_back(v);
    }
    // Freeze the incident edges: an edge freezes at the iteration its
    // first endpoint froze, locking weight w_t.
    for (const VertexId v : newly_frozen) {
      for (const Arc& a : g.arcs(v)) {
        const VertexId u = a.to;
        const bool u_froze_now =
            result.freeze_iteration[u] == static_cast<std::uint32_t>(t);
        if (!frozen[u] || u_froze_now) {
          // Edge was active entering this iteration; it freezes now.
          // Decrement active degrees once (guard against double handling
          // when both endpoints froze in this same iteration).
          if (u_froze_now && u < v) continue;  // already handled from u
          --active_degree[v];
          --active_degree[u];
          frozen_load[v] += w_t;
          frozen_load[u] += w_t;
          result.x[a.edge] = w_t;
          --active_edges;
        }
      }
    }
    // (B) Grow the surviving active edges.
    w_t /= (1.0 - eps);
    ++t;
  }
  result.iterations = static_cast<std::size_t>(t);
  return result;
}

}  // namespace mpcg
