#include "core/integral_matching.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <type_traits>

#include "baselines/lmsv_filtering.h"
#include "core/rounding.h"
#include "fault/checkpoint.h"
#include "fault/durable.h"
#include "graph/active_set.h"
#include "graph/subgraph.h"
#include "graph/validation.h"
#include "util/rng.h"

namespace mpcg {

IntegralMatchingResult integral_matching(
    const Graph& g, const IntegralMatchingOptions& options) {
  IntegralMatchingResult result;
  const std::size_t n = g.num_vertices();

  std::size_t max_iterations = options.max_iterations;
  if (max_iterations == 0) {
    // ceil(log_{150/149}(1/eps)), capped: early exit dominates in practice.
    const double raw =
        std::ceil(std::log(1.0 / options.eps) / std::log(150.0 / 149.0));
    max_iterations = static_cast<std::size_t>(
        std::min(raw, 60.0));
  }

  // --- Small-matching path (Section 4.4.5): LMSV filtering. ---
  // A resumed process re-runs it unconditionally — it is deterministic and
  // its round charge is already inside the restored total_rounds, which the
  // outer-cursor install below overwrites.
  const std::size_t lmsv_memory =
      options.small_path_memory != 0 ? options.small_path_memory
                                     : 8 * std::max<std::size_t>(n, 64);
  const auto small = lmsv_maximal_matching(g, lmsv_memory,
                                           mix64(options.seed, 0x5a11, 3));
  result.small_path_size = small.matching.size();
  result.total_rounds += small.rounds;

  // --- Main path: iterate algorithm A. ---
  std::vector<EdgeId> a_matching;
  // Unmatched frontier, maintained incrementally: each rounded edge
  // deactivates its endpoints, so building the iteration's residual costs
  // O(remaining) instead of an O(n) rescan.
  ActiveSet remaining_set(n);
  std::vector<VertexId> remaining;
  std::size_t start_iter = 0;

  // --- Outer durability: the A-iteration cursor, one hand-built section
  // in its own two-slot ring under <dir>/outer. Each iteration's inner
  // MPC-Simulation run carries its own ring under <dir>/inner (per-round
  // granularity); the outer cursor persists at every iteration boundary,
  // so an interrupt lands on [outer cursor at iter i] + [inner ring with
  // iteration i's intra-run progress] and resume replays bit-exactly.
  static_assert(std::has_unique_object_representations_v<mpc::Metrics>);
  static_assert(sizeof(mpc::Metrics) % sizeof(std::uint64_t) == 0);
  constexpr std::size_t kMetricsWords =
      sizeof(mpc::Metrics) / sizeof(std::uint64_t);
  const bool durable = options.durable.enabled();
  std::optional<fault::DurableRing> outer_ring;
  std::string outer_scope;
  if (durable) {
    if (options.durable.every == 0) {
      throw std::invalid_argument(
          "integral_matching: durable.every must be >= 1");
    }
    // Configuration signature: any differently-shaped run reads as "no
    // checkpoint" and resume starts fresh (eps enters bit-exactly).
    outer_scope = "integral:" + std::to_string(n) + ":" +
                  std::to_string(g.num_edges()) + ":" +
                  std::to_string(options.seed) + ":" +
                  std::to_string(std::bit_cast<std::uint64_t>(options.eps)) +
                  ":" + std::to_string(max_iterations) + ":" +
                  std::to_string(options.rounding_retries) + ":" +
                  std::to_string(lmsv_memory);
    outer_ring.emplace(options.durable.dir + "/outer");
    if (!options.durable.resume) outer_ring->reset();
  }

  const auto persist_outer = [&](std::size_t next_iter) {
    std::vector<std::uint64_t> w;
    w.push_back(next_iter);
    w.push_back(a_matching.size());
    for (const EdgeId e : a_matching) w.push_back(e);
    const std::size_t pack_words = (n + 63) / 64;
    const std::size_t base = w.size();
    w.resize(base + pack_words, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (remaining_set.active(v)) {
        w[base + v / 64] |= std::uint64_t{1} << (v % 64);
      }
    }
    w.push_back(result.cover.size());
    for (const VertexId v : result.cover) w.push_back(v);
    w.push_back(result.iterations);
    w.push_back(result.total_rounds);
    w.push_back(result.first_run_rounds);
    w.push_back(std::bit_cast<std::uint64_t>(result.first_fractional_weight));
    const std::size_t mbase = w.size();
    w.resize(mbase + kMetricsWords);
    std::memcpy(w.data() + mbase, &result.first_run_metrics,
                sizeof(mpc::Metrics));
    std::vector<fault::DurableSection> sections;
    sections.push_back({"outer", std::move(w)});
    outer_ring->save(next_iter, outer_scope, std::move(sections));
  };

  if (durable && options.durable.resume) {
    const auto loaded = outer_ring->load(outer_scope);
    if (loaded) {
      const fault::DurableSection* sec = nullptr;
      for (const auto& s : loaded->checkpoint.sections) {
        if (s.name == "outer") sec = &s;
      }
      if (sec == nullptr) {
        throw fault::CheckpointError(
            "integral_matching resume: checkpoint has no 'outer' section");
      }
      const auto& w = sec->payload;
      std::size_t at = 0;
      start_iter = static_cast<std::size_t>(w[at++]);
      const auto alen = static_cast<std::size_t>(w[at++]);
      a_matching.assign(w.begin() + static_cast<std::ptrdiff_t>(at),
                        w.begin() + static_cast<std::ptrdiff_t>(at + alen));
      at += alen;
      for (VertexId v = 0; v < n; ++v) {
        const bool want = ((w[at + v / 64] >> (v % 64)) & 1) != 0;
        if (!want) remaining_set.deactivate(v);
      }
      at += (n + 63) / 64;
      const auto clen = static_cast<std::size_t>(w[at++]);
      result.cover.assign(w.begin() + static_cast<std::ptrdiff_t>(at),
                          w.begin() + static_cast<std::ptrdiff_t>(at + clen));
      at += clen;
      result.iterations = static_cast<std::size_t>(w[at++]);
      result.total_rounds = static_cast<std::size_t>(w[at++]);
      result.first_run_rounds = static_cast<std::size_t>(w[at++]);
      result.first_fractional_weight = std::bit_cast<double>(w[at++]);
      std::memcpy(static_cast<void*>(&result.first_run_metrics),
                  w.data() + at, sizeof(mpc::Metrics));
    }
  }

  for (std::size_t iter = start_iter; iter < max_iterations; ++iter) {
    if (durable) {
      // Iteration boundary — the outer safe point (see above).
      persist_outer(iter);
      if (options.durable.stop_flag != nullptr &&
          options.durable.stop_flag->load(std::memory_order_relaxed)) {
        throw fault::ResumableInterrupt(
            "integral_matching: stopped at an iteration boundary after "
            "flushing the outer cursor (relaunch with --resume)");
      }
    }
    // Residual graph on the unmatched vertices.
    const auto actives = remaining_set.actives();
    remaining.assign(actives.begin(), actives.end());
    const InducedSubgraph sub = induced_subgraph(g, remaining);
    if (sub.graph.num_edges() == 0) break;

    MatchingMpcOptions sim = options.simulation;
    sim.eps = options.eps;
    sim.seed = mix64(options.seed, 0xa1, iter);
    sim.threshold_seed = mix64(options.seed, 0xa2, iter);
    sim.collect_support = true;  // the rounding sweeps below run over it
    if (durable) {
      sim.durable = options.durable;
      sim.durable.dir = options.durable.dir + "/inner";
      // Only the interrupted iteration resumes; later iterations reset the
      // inner ring and start fresh (their scope differs anyway — the
      // simulation seeds are per-iteration).
      sim.durable.resume = options.durable.resume && iter == start_iter;
    }
    const MatchingMpcResult frac = matching_mpc(sub.graph, sim);
    result.total_rounds += frac.metrics.rounds;
    if (iter == 0) {
      result.cover.reserve(frac.cover.size());
      for (const VertexId lv : frac.cover) {
        result.cover.push_back(sub.to_parent_vertex[lv]);
      }
      result.first_fractional_weight = fractional_weight(frac.x);
      result.first_run_rounds = frac.metrics.rounds;
      result.first_run_metrics = frac.metrics;
    }

    // Round (Lemma 5.1) with C~ = loads >= 1 - 5 eps; retry with fresh
    // seeds if a trial lands empty (each trial is independent). The heavy
    // sweep runs over the surviving support matching_mpc hands back —
    // the same frontier-proportional bookkeeping as its per-phase
    // counters — instead of rescanning the residual's full edge list;
    // an empty support (or empty C~) can never round an edge, so the
    // retries are skipped outright.
    const auto candidates = heavy_vertices(
        sub.graph, frac.x, 1.0 - 5.0 * options.eps, frac.support);
    std::vector<EdgeId> rounded;
    for (std::size_t retry = 0;
         !candidates.empty() && retry < options.rounding_retries; ++retry) {
      rounded = round_fractional_matching(
          sub.graph, frac.x, candidates,
          mix64(options.seed, 0xb000 + retry, iter));
      if (!rounded.empty()) break;
    }
    ++result.iterations;
    if (rounded.empty()) break;  // nothing extractable anymore

    for (const EdgeId le : rounded) {
      const Edge ed = sub.graph.edge(le);
      a_matching.push_back(sub.to_parent_edge[le]);
      remaining_set.deactivate(sub.to_parent_vertex[ed.u]);
      remaining_set.deactivate(sub.to_parent_vertex[ed.v]);
    }
  }
  result.a_path_size = a_matching.size();

  // Paper: output the larger of the two methods' matchings.
  result.matching = result.a_path_size >= result.small_path_size
                        ? std::move(a_matching)
                        : small.matching;
  return result;
}

}  // namespace mpcg
