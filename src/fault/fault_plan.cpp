#include "fault/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <iterator>

#include "util/rng.h"

namespace mpcg::fault {

FaultPlan& FaultPlan::add(const FaultEvent& event) {
  if (!events_.empty() && events_.back().round > event.round) sorted_ = false;
  events_.push_back(event);
  return *this;
}

void FaultPlan::ensure_sorted() const {
  if (sorted_) return;
  // Stable: events in the same round keep insertion order, which is part of
  // the determinism contract (corrupt/restore order matters for metrics).
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.round < b.round;
                   });
  sorted_ = true;
}

std::span<const FaultEvent> FaultPlan::events_at(std::size_t round) const {
  ensure_sorted();
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), round,
      [](const FaultEvent& e, std::size_t r) { return e.round < r; });
  const auto hi = std::upper_bound(
      events_.begin(), events_.end(), round,
      [](std::size_t r, const FaultEvent& e) { return r < e.round; });
  return {events_.data() + (lo - events_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::span<const FaultEvent> FaultPlan::events() const {
  ensure_sorted();
  return {events_.data(), events_.size()};
}

std::size_t FaultPlan::crash_count() const noexcept {
  std::size_t c = 0;
  for (const FaultEvent& e : events_) c += (e.kind == FaultKind::kCrash);
  return c;
}

std::size_t FaultPlan::corrupt_count() const noexcept {
  std::size_t c = 0;
  for (const FaultEvent& e : events_) {
    c += (e.kind == FaultKind::kCorruptPayload);
  }
  return c;
}

std::size_t FaultPlan::last_round() const noexcept {
  std::size_t r = 0;
  for (const FaultEvent& e : events_) r = std::max(r, e.round);
  return r;
}

namespace {

std::size_t parse_size(std::string_view text, std::string_view what,
                       std::string_view token) {
  if (text.empty()) {
    throw std::invalid_argument("fault plan: truncated token '" +
                                std::string(token) + "' (missing " +
                                std::string(what) + ")");
  }
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("fault plan: " + std::string(what) +
                                " out of range in '" + std::string(token) +
                                "'");
  }
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("fault plan: bad " + std::string(what) +
                                " '" + std::string(text) + "'");
  }
  return value;
}

FaultKind parse_kind(std::string_view text) {
  if (text == "crash") return FaultKind::kCrash;
  if (text == "drop") return FaultKind::kDropFlush;
  if (text == "dup" || text == "duplicate") return FaultKind::kDuplicateFlush;
  if (text == "delay") return FaultKind::kDelayFlush;
  if (text == "corrupt") return FaultKind::kCorruptPayload;
  if (text == "corrupt_store") return FaultKind::kCorruptStore;
  if (text == "corrupt_ckpt") return FaultKind::kCorruptCheckpoint;
  throw std::invalid_argument(
      "fault plan: unknown kind '" + std::string(text) +
      "' (want crash|drop|dup|delay|corrupt|corrupt_store|corrupt_ckpt)");
}

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDropFlush: return "drop";
    case FaultKind::kDuplicateFlush: return "dup";
    case FaultKind::kDelayFlush: return "delay";
    case FaultKind::kCorruptPayload: return "corrupt";
    case FaultKind::kCorruptStore: return "corrupt_store";
    case FaultKind::kCorruptCheckpoint: return "corrupt_ckpt";
  }
  return "?";
}

std::string event_text(const FaultEvent& e) {
  return std::string(kind_name(e.kind)) + ':' + std::to_string(e.machine) +
         '@' + std::to_string(e.round);
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    const std::size_t at = token.find('@');
    if (colon == std::string_view::npos || at == std::string_view::npos ||
        at < colon) {
      throw std::invalid_argument("fault plan: bad token '" +
                                  std::string(token) +
                                  "' (want kind:machine@round)");
    }
    const FaultEvent event{
        parse_size(token.substr(at + 1), "round", token),
        parse_size(token.substr(colon + 1, at - colon - 1), "machine", token),
        parse_kind(token.substr(0, colon))};
    // The CLI syntax has no legitimate use for the same fault twice; a
    // duplicate is almost always a typo'd machine or round, so reject it
    // loudly rather than double-injecting.
    for (const FaultEvent& prior : plan.events_) {
      if (prior.round == event.round && prior.machine == event.machine &&
          prior.kind == event.kind) {
        throw std::invalid_argument("fault plan: duplicate event '" +
                                    event_text(event) + "'");
      }
    }
    plan.add(event);
  }
  return plan;
}

FaultPlan FaultPlan::random_crashes(std::uint64_t seed,
                                    std::size_t num_machines,
                                    std::size_t max_round,
                                    std::size_t count) {
  FaultPlan plan;
  if (num_machines == 0 || max_round == 0) return plan;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t machine = mix64(seed, i, 0x6d61ULL) % num_machines;
    const std::size_t round = mix64(seed, i, 0x726fULL) % max_round;
    plan.add_crash(machine, round);
  }
  return plan;
}

FaultPlan FaultPlan::random_storm(std::uint64_t seed,
                                  std::size_t num_machines,
                                  std::size_t max_round,
                                  std::size_t count) {
  static constexpr FaultKind kKinds[] = {
      FaultKind::kCrash,          FaultKind::kDropFlush,
      FaultKind::kDuplicateFlush, FaultKind::kDelayFlush,
      FaultKind::kCorruptPayload, FaultKind::kCorruptStore,
      FaultKind::kCorruptCheckpoint};
  FaultPlan plan;
  if (num_machines == 0 || max_round == 0) return plan;
  for (std::size_t i = 0; i < count; ++i) {
    // Bounded re-draw on exact duplicates keeps the plan parse-round-trip
    // clean; a tiny schedule space can exhaust the attempts, in which case
    // the storm simply carries fewer events.
    for (std::size_t attempt = 0; attempt < 64; ++attempt) {
      const std::uint64_t draw = i * 64 + attempt;
      const FaultEvent event{
          mix64(seed, draw, 0x726fULL) % max_round,
          mix64(seed, draw, 0x6d61ULL) % num_machines,
          kKinds[mix64(seed, draw, 0x6b69ULL) % std::size(kKinds)]};
      bool fresh = true;
      for (const FaultEvent& prior : plan.events_) {
        if (prior.round == event.round && prior.machine == event.machine &&
            prior.kind == event.kind) {
          fresh = false;
          break;
        }
        // Checkpoint rot gets a round of its own (see the header): a
        // restore sharing a round with rot of the just-captured newest
        // generation can meet a ring with no verified generation left.
        if (prior.round == event.round &&
            (prior.kind == FaultKind::kCorruptCheckpoint ||
             event.kind == FaultKind::kCorruptCheckpoint)) {
          fresh = false;
          break;
        }
      }
      if (fresh) {
        plan.add(event);
        break;
      }
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  ensure_sorted();
  std::string out;
  for (const FaultEvent& e : events_) {
    if (!out.empty()) out += ',';
    out += kind_name(e.kind);
    out += ':';
    out += std::to_string(e.machine);
    out += '@';
    out += std::to_string(e.round);
  }
  return out;
}

}  // namespace mpcg::fault
