// Deterministic, seedable random number generation for mpcg.
//
// All randomized algorithms in this library take an explicit 64-bit seed and
// derive every random decision from it, so that runs are exactly
// reproducible and the coupled-experiments in the paper's analysis
// (Central-Rand vs MPC-Simulation sharing threshold streams) can be
// realized by sharing a seed.
#ifndef MPCG_UTIL_RNG_H
#define MPCG_UTIL_RNG_H

#include <array>
#include <cstdint>
#include <limits>

namespace mpcg {

/// splitmix64 step: the standard 64-bit mixer used both to seed xoshiro and
/// as a stateless hash of (seed, key...) tuples.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless mix of two 64-bit values into one; used for per-(vertex,
/// iteration) "on the fly" randomness as in Section 4.3 of the paper.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 1)));
}

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c) noexcept {
  return mix64(mix64(a, b), c);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via splitmix64, as recommended by the
  /// xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
    // Avoid the (astronomically unlikely) all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 1;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's nearly-divisionless bounded sampling.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bernoulli(double p) noexcept { return next_double() < p; }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Derives an independent child generator; used to hand each logical
  /// machine / vertex its own stream.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept {
    return Rng(mix64(state_[0] ^ state_[3], stream));
  }

  /// The raw xoshiro state, for checkpoint serialization: restoring via
  /// set_state() resumes the stream exactly where state() observed it.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Uniform double in [0,1) derived statelessly from (seed, a, b).
/// This is how per-(vertex, iteration) thresholds T_{v,t} are sampled "on
/// the fly" (paper, Section 4.3) identically across coupled algorithms.
[[nodiscard]] inline double stateless_uniform(std::uint64_t seed,
                                              std::uint64_t a,
                                              std::uint64_t b) noexcept {
  return static_cast<double>(mix64(seed, a, b) >> 11) * 0x1.0p-53;
}

}  // namespace mpcg

#endif  // MPCG_UTIL_RNG_H
