#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

namespace mpcg {

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    best = std::max(best, degree(static_cast<VertexId>(v)));
  }
  return best;
}

double Graph::average_degree() const noexcept {
  if (num_vertices_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_vertices_);
}

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  return find_edge(u, v) != kNoEdge;
}

EdgeId Graph::find_edge(VertexId u, VertexId v) const noexcept {
  if (u >= num_vertices_ || v >= num_vertices_) return kNoEdge;
  // Search the smaller adjacency.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto adj = arcs(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const Arc& a, VertexId target) { return a.to < target; });
  if (it != adj.end() && it->to == v) return it->edge;
  return kNoEdge;
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw std::out_of_range("GraphBuilder::add_edge: vertex out of range");
  }
  if (u == v) return;  // simple graph: drop self-loops
  if (u > v) std::swap(u, v);
  pending_.push_back(Edge{u, v});
}

Graph GraphBuilder::build() {
  std::sort(pending_.begin(), pending_.end(),
            [](const Edge& a, const Edge& b) {
              return a.u < b.u || (a.u == b.u && a.v < b.v);
            });
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());

  Graph g;
  g.num_vertices_ = num_vertices_;
  g.edges_ = std::move(pending_);
  pending_ = {};

  std::vector<std::size_t> deg(num_vertices_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  g.offsets_.assign(num_vertices_ + 1, 0);
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  }
  g.arcs_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const Edge& ed = g.edges_[e];
    g.arcs_[cursor[ed.u]++] = Arc{ed.v, e};
    g.arcs_[cursor[ed.v]++] = Arc{ed.u, e};
  }
  // Adjacency of each vertex is already sorted by neighbor because edges_
  // were sorted lexicographically and arcs appended in order for the first
  // endpoint; the second-endpoint arcs interleave, so sort per vertex.
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    std::sort(g.arcs_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.arcs_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]),
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
  }
  return g;
}

Graph make_graph(std::size_t num_vertices,
                 const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder(num_vertices);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

}  // namespace mpcg
