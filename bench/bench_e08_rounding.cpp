// E8 (Lemma 5.1): rounding the fractional matching yields an integral one
// of size at least |C~|/50, with failure probability 2 exp(-|C~|/5000).
//
// Table rows: per family, statistics over 50 independent rounding seeds of
// ratio50 = 50 |M| / |C~| (the claim is ratio50 >= 1) and the observed
// failure rate (expected ~0).
#include "bench_util.h"
#include "core/matching_mpc.h"
#include "core/rounding.h"
#include "util/stats.h"

namespace {

using namespace mpcg;
using namespace mpcg::bench;

constexpr double kEps = 0.1;
constexpr int kTrials = 50;

void E08_Rounding(benchmark::State& state, const char* family) {
  const Graph g = graph_family(family, 1 << 12, 23);
  MatchingMpcOptions mo;
  mo.eps = kEps;
  mo.seed = 23;
  const auto frac = matching_mpc(g, mo);
  const auto candidates = heavy_vertices(g, frac.x, 1.0 - 5.0 * kEps);

  Accumulator ratio50;
  int failures = 0;
  double wall_ms = 0.0;
  for (auto _ : state) {
    const WallTimer timer;
    for (int seed = 0; seed < kTrials; ++seed) {
      const auto m = round_fractional_matching(
          g, frac.x, candidates, static_cast<std::uint64_t>(seed));
      if (candidates.empty()) continue;
      const double r = 50.0 * static_cast<double>(m.size()) /
                       static_cast<double>(candidates.size());
      ratio50.add(r);
      if (r < 1.0) ++failures;
    }
    wall_ms = timer.elapsed_ms();
    benchmark::DoNotOptimize(failures);
  }
  emit_json_line(std::string("E08_Rounding/") + family, g.num_vertices(),
                 g.num_edges(), frac.metrics.rounds, wall_ms,
                 frac.metrics.peak_storage_words);
  state.counters["candidates"] = static_cast<double>(candidates.size());
  if (ratio50.count() > 0) {
    state.counters["ratio50_min"] = ratio50.min();
    state.counters["ratio50_mean"] = ratio50.mean();
    state.counters["ratio50_max"] = ratio50.max();
  }
  state.counters["failures"] = static_cast<double>(failures);
  state.counters["trials"] = static_cast<double>(kTrials);
}

void register_all() {
  for (const char* family : family_names()) {
    benchmark::RegisterBenchmark(
        (std::string("E08_Rounding/") + family).c_str(),
        [family](benchmark::State& s) { E08_Rounding(s, family); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
