// Incrementally maintained active-vertex set with a per-phase dense remap.
//
// The matching driver (Section 4.3) and its dependants repeatedly shrink an
// *active* frontier: vertices freeze or are removed, never the reverse. The
// paper's charging argument prices each phase at the size of the still-active
// frontier, so the drivers must be able to (a) iterate exactly the active
// vertices, (b) deactivate in O(1), and (c) size per-phase scratch to the
// phase's active count instead of n.
//
// ActiveSet provides all three:
//   - an active flag per vertex and an O(1), idempotent deactivate();
//   - a lazily compacted active list: actives() returns the active vertices
//     in ascending id order, paying for each deactivated entry at most once,
//     ever (the same discipline as ResidualGraph::alive_vertices);
//   - a dense-index remap: remap() snapshots the current actives into a
//     stable buffer and assigns dense ids 0..k-1 in ascending vertex order,
//     so per-phase scratch (machine assignments, local degrees, local
//     adjacency) can be vectors of length k that are reused across phases.
//     The snapshot and the dense ids stay valid across later deactivations
//     and actives() compactions, until the next remap().
//
// Iteration order is stable (always ascending vertex id), which is what lets
// drivers that sum floating-point contributions while iterating actives keep
// bit-identical results after porting (see DESIGN.md, "ActiveSet &
// dirty-load bookkeeping").
#ifndef MPCG_GRAPH_ACTIVE_SET_H
#define MPCG_GRAPH_ACTIVE_SET_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

class ActiveSet {
 public:
  /// All `n` vertices start active.
  explicit ActiveSet(std::size_t n);

  [[nodiscard]] std::size_t universe_size() const noexcept {
    return active_.size();
  }

  /// Number of currently active vertices. O(1).
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  [[nodiscard]] bool active(VertexId v) const noexcept {
    return active_[v] != 0;
  }

  /// O(1); no-op if already inactive. There is no reactivate: the frontier
  /// only shrinks, which is what makes the lazy compaction amortized-free.
  void deactivate(VertexId v) noexcept {
    if (active_[v]) {
      active_[v] = 0;
      --count_;
    }
  }

  /// Currently active vertices, ascending by id. Compacts lazily: each
  /// deactivated entry is paid for at most once. The span is valid until
  /// the next actives() or remap() call; deactivations during iteration do
  /// not invalidate it but leave stale entries the caller must filter with
  /// active().
  [[nodiscard]] std::span<const VertexId> actives();

  /// Compacts like actives(), snapshots the result into a separate stable
  /// buffer, and assigns dense indices 0..k-1 in ascending vertex order.
  /// The returned span (the snapshot) and dense_index()/vertex_at() stay
  /// valid across subsequent deactivations and actives() calls, until the
  /// next remap() — this is the per-phase contract: scratch indexed by
  /// dense id survives mid-phase deactivations.
  std::span<const VertexId> remap();

  /// Dense index assigned at the last remap(). Only meaningful for vertices
  /// that were active then.
  [[nodiscard]] std::uint32_t dense_index(VertexId v) const noexcept {
    return dense_[v];
  }

  /// Inverse of dense_index, into the last remap()'s snapshot.
  [[nodiscard]] VertexId vertex_at(std::uint32_t dense) const noexcept {
    return snapshot_[dense];
  }

  /// Size of the last remap()'s snapshot (k).
  [[nodiscard]] std::size_t dense_size() const noexcept {
    return snapshot_.size();
  }

 private:
  std::vector<char> active_;
  /// Lazily compacted active list (ascending id); entries beyond list_end_
  /// are garbage.
  std::vector<VertexId> list_;
  std::size_t list_end_ = 0;
  std::size_t count_ = 0;
  /// Last remap()'s actives (ascending) — the dense->vertex map.
  std::vector<VertexId> snapshot_;
  /// vertex -> dense index at last remap (stale for then-inactive vertices).
  std::vector<std::uint32_t> dense_;
};

}  // namespace mpcg

#endif  // MPCG_GRAPH_ACTIVE_SET_H
