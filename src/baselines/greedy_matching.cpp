#include "baselines/greedy_matching.h"

#include <algorithm>
#include <numeric>

#include "baselines/greedy_mis.h"
#include "graph/graph_algos.h"
#include "util/permutation.h"
#include "util/rng.h"

namespace mpcg {

std::vector<EdgeId> greedy_maximal_matching(const Graph& g) {
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0U);
  return greedy_maximal_matching_ordered(g, order);
}

std::vector<EdgeId> greedy_maximal_matching_ordered(
    const Graph& g, const std::vector<EdgeId>& order) {
  std::vector<char> used(g.num_vertices(), 0);
  std::vector<EdgeId> matching;
  for (const EdgeId e : order) {
    const Edge ed = g.edge(e);
    if (!used[ed.u] && !used[ed.v]) {
      used[ed.u] = 1;
      used[ed.v] = 1;
      matching.push_back(e);
    }
  }
  return matching;
}

std::vector<EdgeId> greedy_weighted_matching(const Graph& g,
                                             const std::vector<double>& weights) {
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return weights[a] > weights[b] || (weights[a] == weights[b] && a < b);
  });
  return greedy_maximal_matching_ordered(g, order);
}

std::vector<EdgeId> maximal_matching_via_line_graph(const Graph& g,
                                                    std::uint64_t seed) {
  const Graph lg = line_graph(g);
  Rng rng(seed);
  const auto perm = random_permutation(lg.num_vertices(), rng);
  return matching_from_line_graph_mis(greedy_mis(lg, perm));
}

std::vector<VertexId> vertex_cover_from_matching(
    const Graph& g, const std::vector<EdgeId>& matching) {
  std::vector<VertexId> cover;
  cover.reserve(2 * matching.size());
  for (const EdgeId e : matching) {
    const Edge ed = g.edge(e);
    cover.push_back(ed.u);
    cover.push_back(ed.v);
  }
  return cover;
}

}  // namespace mpcg
