#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "mpc/sort.h"
#include "util/rng.h"

namespace mpcg::mpc {
namespace {

std::vector<std::vector<Word>> random_input(std::size_t machines,
                                            std::size_t per_machine,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Word>> input(machines);
  for (auto& slice : input) {
    slice.resize(per_machine);
    for (auto& w : slice) w = rng.next_below(1000000);
  }
  return input;
}

std::vector<Word> flatten(const std::vector<std::vector<Word>>& slices) {
  std::vector<Word> all;
  for (const auto& s : slices) all.insert(all.end(), s.begin(), s.end());
  return all;
}

TEST(DistributedSort, GloballySortedAcrossMachines) {
  Engine e(Config{8, 4096, true});
  const auto input = random_input(8, 500, 1);
  const auto out = distributed_sort(e, input);
  const auto flat = flatten(out);
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end()));
}

TEST(DistributedSort, PreservesMultiset) {
  Engine e(Config{4, 4096, true});
  const auto input = random_input(4, 300, 2);
  const auto out = distributed_sort(e, input);
  auto before = flatten(input);
  auto after = flatten(out);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(DistributedSort, ThreeRoundsForBalancedInput) {
  Engine e(Config{8, 4096, true});
  const auto input = random_input(8, 400, 3);
  distributed_sort(e, input);
  // gather(1) + small broadcast(1) + all-to-all(1).
  EXPECT_EQ(e.metrics().rounds, 3U);
  EXPECT_EQ(e.metrics().violations, 0U);
}

TEST(DistributedSort, RoughlyBalancedOutput) {
  Engine e(Config{8, 1 << 16, true});
  const auto input = random_input(8, 2000, 4);
  const auto out = distributed_sort(e, input);
  for (const auto& slice : out) {
    EXPECT_GT(slice.size(), 500U);
    EXPECT_LT(slice.size(), 6000U);
  }
}

TEST(DistributedSort, HandlesEmptyAndTinyInputs) {
  Engine e(Config{4, 256, true});
  std::vector<std::vector<Word>> input{{5}, {}, {3, 1}, {}};
  const auto out = distributed_sort(e, input);
  const auto flat = flatten(out);
  EXPECT_EQ(flat, (std::vector<Word>{1, 3, 5}));
}

TEST(DistributedSort, AllEqualKeys) {
  Engine e(Config{4, 4096, true});
  std::vector<std::vector<Word>> input(4, std::vector<Word>(100, 7));
  const auto out = distributed_sort(e, input);
  EXPECT_EQ(flatten(out).size(), 400U);
  // All keys identical land in one bucket: skew is visible but legal with
  // this budget.
  EXPECT_EQ(e.metrics().violations, 0U);
}

TEST(DistributedSort, SkewOverflowsStrictBudget) {
  // 4 machines x 100 identical keys with a 150-word budget: the single
  // receiving bucket must blow its receive cap — the engine reports it.
  Engine e(Config{4, 150, false});
  std::vector<std::vector<Word>> input(4, std::vector<Word>(100, 9));
  distributed_sort(e, input);
  EXPECT_GE(e.metrics().violations, 1U);
}

TEST(DistributedSort, TooManyInputSlicesThrow) {
  Engine e(Config{2, 64, true});
  std::vector<std::vector<Word>> input(3);
  EXPECT_THROW(distributed_sort(e, input), std::invalid_argument);
}

TEST(DistributedSort, DeterministicPerInput) {
  Engine e1(Config{4, 4096, true});
  Engine e2(Config{4, 4096, true});
  const auto input = random_input(4, 200, 9);
  EXPECT_EQ(distributed_sort(e1, input), distributed_sort(e2, input));
}

}  // namespace
}  // namespace mpcg::mpc
