// Theorem 1.2 — integral (2+eps)-approximate maximum matching and
// (2+eps)-approximate minimum vertex cover in O(log log n) MPC rounds.
//
// The driver is the paper's algorithm A, iterated:
//   * run MPC-Simulation on the residual graph to get a fractional
//     matching x and its heavy set C~ (loads >= 1 - 5 eps; Lemma 4.2
//     guarantees |C~| >= |C|/3);
//   * round x to an integral matching via Lemma 5.1;
//   * remove the matched vertices and repeat, union-ing the matchings.
// The paper runs A for log_{150/149}(1/eps) iterations; we additionally
// stop early once an iteration extracts nothing (the bound only needs
// enough iterations, and the measured per-iteration yield is far above the
// worst-case 1/150).
//
// The small-matching path of Section 4.4.5 (LMSV11 filtering, which halves
// edges per round) runs alongside, and the larger of the two matchings is
// returned — exactly the paper's two-method structure.
//
// The vertex cover is the Lemma 4.2 cover of the *first* MPC-Simulation run
// on the whole graph.
#ifndef MPCG_CORE_INTEGRAL_MATCHING_H
#define MPCG_CORE_INTEGRAL_MATCHING_H

#include <cstdint>
#include <vector>

#include "core/matching_mpc.h"
#include "graph/graph.h"

namespace mpcg {

struct IntegralMatchingOptions {
  double eps = 0.1;
  std::uint64_t seed = 1;
  /// Iterations of algorithm A. 0 = auto: ceil(log_{150/149}(1/eps)),
  /// capped at 60 (early-exit makes the cap irrelevant in practice).
  std::size_t max_iterations = 0;
  /// Per-trial rounding retries before declaring an iteration empty.
  std::size_t rounding_retries = 8;
  /// Options forwarded to each MPC-Simulation invocation (eps/seed fields
  /// are overwritten per iteration).
  MatchingMpcOptions simulation;
  /// LMSV memory budget for the small-matching path; 0 = auto (8n).
  std::size_t small_path_memory = 0;
  /// On-disk durability: the outer A-iteration cursor persists under
  /// <dir>/outer and every inner MPC-Simulation run checkpoints under
  /// <dir>/inner (simulation.durable is overwritten per iteration — set
  /// this instead). Off while `dir` is empty.
  fault::DurableOptions durable;
};

struct IntegralMatchingResult {
  /// The output matching (the larger of the A-union and the LMSV path).
  std::vector<EdgeId> matching;
  /// The Lemma 4.2 vertex cover from the first simulation run.
  std::vector<VertexId> cover;
  /// Matching produced by iterating algorithm A alone.
  std::size_t a_path_size = 0;
  /// Matching produced by the small-matching (filtering) path alone.
  std::size_t small_path_size = 0;
  std::size_t iterations = 0;
  /// Sum of engine rounds over all simulation calls plus filtering rounds
  /// (carries the paper's large epsilon-dependent constant: one
  /// MPC-Simulation run per iteration of A).
  std::size_t total_rounds = 0;
  /// Engine rounds of the *first* MPC-Simulation call alone — the per-call
  /// O(log log n) quantity of Lemma 4.2.
  std::size_t first_run_rounds = 0;
  /// Full engine metrics of the first MPC-Simulation call (carries the
  /// fault-recovery accounting when a FaultPlan is attached).
  mpc::Metrics first_run_metrics;
  /// Fractional weight of the first run's x (for ratio reporting).
  double first_fractional_weight = 0.0;
};

[[nodiscard]] IntegralMatchingResult integral_matching(
    const Graph& g, const IntegralMatchingOptions& options);

}  // namespace mpcg

#endif  // MPCG_CORE_INTEGRAL_MATCHING_H
