// mpcg_chaos — randomized multi-fault soak harness for the data-integrity
// layer.
//
// Each storm draws a seeded FaultPlan::random_storm (crashes, drops,
// duplicates, delays, payload/store corruptions, checkpoint rot), runs one
// of the drivers — MIS, fractional matching, vertex cover (MPC model) or
// MIS (congested clique) — with checkpoint recovery, stream-checksum +
// durable-store integrity, audit mode, and the round-boundary scrub all
// armed, and cross-checks the result against a from-scratch fault-free
// solve:
//   * every observable output and every logical metric must be
//     bit-identical (the coupling contract);
//   * the solution must validate against the input graph from scratch
//     (maximal independent set / fractional matching / vertex cover);
//   * every injected corruption must have been detected, on the wire and
//     in the durable store (detected == injected for both).
//
// Usage:
//   mpcg_chaos [--storms 20] [--seed 1] [--n 4096] [--verbose]
//
// Exits 0 iff every storm passes; any mismatch prints a FAIL line plus one
// greppable DIVERGED line naming the (seed, driver, family) tuple, and
// exits 1 — suitable for CI (including ASan jobs) as-is.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mpcg.h"
#include "util/flags.h"

namespace {

using namespace mpcg;

struct StormStats {
  std::size_t faults = 0;
  std::size_t corruptions = 0;
  std::size_t retransmitted = 0;
  std::size_t replayed = 0;
  std::size_t store_corruptions = 0;
  std::size_t store_repaired = 0;
  std::size_t ckpt_fallbacks = 0;
  std::size_t scrubs = 0;
};

/// Scrub cadence armed in every faulty run: frequent enough that multi-round
/// storms cross several scrub boundaries, cheap enough for a soak.
constexpr std::size_t kScrubInterval = 3;

bool check(bool ok, const char* what, const std::string& label,
           std::size_t& failures) {
  if (!ok) {
    std::fprintf(stderr, "FAIL %s: %s\n", label.c_str(), what);
    ++failures;
  }
  return ok;
}

// One storm against matching_mpc (algo == "matching") or the vertex-cover
// wrapper on top of it (algo == "vc").
void storm_matching(const Graph& g, std::uint64_t seed, bool want_cover,
                    const std::string& label, std::size_t& failures,
                    StormStats& stats) {
  MatchingMpcOptions opt;
  opt.eps = 0.1;
  opt.seed = seed;
  const auto clean = matching_mpc(g, opt);

  const auto plan = fault::FaultPlan::random_storm(
      mix64(seed, 1, 0xc4a05), /*num_machines=*/2, clean.metrics.rounds, 8);
  MatchingMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = kScrubInterval;
  const auto stormy = matching_mpc(g, faulty);

  check(stormy.x == clean.x, "x diverged", label, failures);
  check(stormy.cover == clean.cover, "cover diverged", label, failures);
  check(stormy.freeze_iteration == clean.freeze_iteration,
        "freeze iterations diverged", label, failures);
  check(stormy.metrics.rounds == clean.metrics.rounds, "rounds diverged",
        label, failures);
  check(stormy.metrics.total_words == clean.metrics.total_words,
        "total_words diverged", label, failures);
  check(stormy.metrics.corruptions_detected ==
            stormy.metrics.corruptions_injected,
        "undetected corruption", label, failures);
  check(stormy.metrics.store_corruptions_detected ==
            stormy.metrics.store_corruptions_injected,
        "undetected store corruption", label, failures);
  check(is_fractional_matching(g, stormy.x), "x is not a fractional matching",
        label, failures);
  if (want_cover) {
    check(is_vertex_cover(g, stormy.cover), "cover does not cover", label,
          failures);
  }
  stats.faults += stormy.metrics.faults_injected;
  stats.corruptions += stormy.metrics.corruptions_injected;
  stats.retransmitted += stormy.metrics.words_retransmitted;
  stats.replayed += stormy.metrics.rounds_replayed;
  stats.store_corruptions += stormy.metrics.store_corruptions_injected;
  stats.store_repaired += stormy.metrics.store_words_repaired;
  stats.ckpt_fallbacks += stormy.metrics.checkpoint_fallbacks;
  stats.scrubs += stormy.metrics.scrub_passes;
}

void storm_mis(const Graph& g, std::uint64_t seed, const std::string& label,
               std::size_t& failures, StormStats& stats) {
  MisMpcOptions opt;
  opt.seed = seed;
  const auto clean = mis_mpc(g, opt);

  const auto plan = fault::FaultPlan::random_storm(
      mix64(seed, 2, 0xc4a05), /*num_machines=*/2, clean.metrics.rounds, 8);
  MisMpcOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = kScrubInterval;
  const auto stormy = mis_mpc(g, faulty);

  check(stormy.mis == clean.mis, "mis diverged", label, failures);
  check(stormy.rank_phases == clean.rank_phases, "rank_phases diverged",
        label, failures);
  check(stormy.metrics.rounds == clean.metrics.rounds, "rounds diverged",
        label, failures);
  check(stormy.metrics.total_words == clean.metrics.total_words,
        "total_words diverged", label, failures);
  check(stormy.metrics.corruptions_detected ==
            stormy.metrics.corruptions_injected,
        "undetected corruption", label, failures);
  check(stormy.metrics.store_corruptions_detected ==
            stormy.metrics.store_corruptions_injected,
        "undetected store corruption", label, failures);
  check(is_maximal_independent_set(g, stormy.mis), "mis is not maximal",
        label, failures);
  stats.faults += stormy.metrics.faults_injected;
  stats.corruptions += stormy.metrics.corruptions_injected;
  stats.retransmitted += stormy.metrics.words_retransmitted;
  stats.replayed += stormy.metrics.rounds_replayed;
  stats.store_corruptions += stormy.metrics.store_corruptions_injected;
  stats.store_repaired += stormy.metrics.store_words_repaired;
  stats.ckpt_fallbacks += stormy.metrics.checkpoint_fallbacks;
  stats.scrubs += stormy.metrics.scrub_passes;
}

void storm_mis_cclique(const Graph& g, std::uint64_t seed,
                       const std::string& label, std::size_t& failures,
                       StormStats& stats) {
  MisCcliqueOptions opt;
  opt.seed = seed;
  const auto clean = mis_cclique(g, opt);

  const auto plan = fault::FaultPlan::random_storm(
      mix64(seed, 3, 0xc4a05), /*num_machines=*/4, clean.metrics.rounds, 8);
  MisCcliqueOptions faulty = opt;
  faulty.fault_plan = &plan;
  faulty.integrity = true;
  faulty.audit = true;
  faulty.scrub_interval = kScrubInterval;
  const auto stormy = mis_cclique(g, faulty);

  check(stormy.mis == clean.mis, "mis diverged", label, failures);
  check(stormy.rank_phases == clean.rank_phases, "rank_phases diverged",
        label, failures);
  check(stormy.metrics.rounds == clean.metrics.rounds, "rounds diverged",
        label, failures);
  check(stormy.metrics.total_words == clean.metrics.total_words,
        "total_words diverged", label, failures);
  check(stormy.metrics.lenzen_batches == clean.metrics.lenzen_batches,
        "lenzen_batches diverged", label, failures);
  check(stormy.metrics.corruptions_detected ==
            stormy.metrics.corruptions_injected,
        "undetected corruption", label, failures);
  check(stormy.metrics.store_corruptions_detected ==
            stormy.metrics.store_corruptions_injected,
        "undetected store corruption", label, failures);
  check(is_maximal_independent_set(g, stormy.mis), "mis is not maximal",
        label, failures);
  stats.faults += stormy.metrics.faults_injected;
  stats.corruptions += stormy.metrics.corruptions_injected;
  stats.retransmitted += stormy.metrics.words_retransmitted;
  stats.replayed += stormy.metrics.rounds_replayed;
  stats.store_corruptions += stormy.metrics.store_corruptions_injected;
  stats.store_repaired += stormy.metrics.store_words_repaired;
  stats.ckpt_fallbacks += stormy.metrics.checkpoint_fallbacks;
  stats.scrubs += stormy.metrics.scrub_passes;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mpcg::Flags flags(argc, argv);
    const std::size_t storms =
        static_cast<std::size_t>(flags.get_int("storms", 20));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 4096));
    const bool verbose = flags.get_bool("verbose", false);
    if (const auto unused = flags.unused(); !unused.empty()) {
      std::fprintf(stderr, "unknown flag --%s\n", unused.front().c_str());
      return 2;
    }

    static constexpr const char* kDrivers[] = {"mis", "matching", "vc",
                                               "mis_cc"};
    static constexpr const char* kFamilies[] = {"gnp_sparse", "gnp_dense",
                                                "rmat", "star"};
    std::size_t failures = 0;
    std::size_t clean_storms = 0;
    StormStats stats;
    for (std::size_t s = 0; s < storms; ++s) {
      const char* driver = kDrivers[s % 4];
      const char* family = kFamilies[(s / 4) % 4];
      const std::uint64_t storm_seed = mpcg::mix64(seed, s, 0xc4a05);
      const std::string label = "storm " + std::to_string(s) + " (" + driver +
                                ", " + family + ")";
      const mpcg::Graph g = mpcg::graph_family(family, n, storm_seed);
      const std::size_t before = failures;
      try {
        if (std::string(driver) == "mis") {
          storm_mis(g, storm_seed, label, failures, stats);
        } else if (std::string(driver) == "matching") {
          storm_matching(g, storm_seed, /*want_cover=*/false, label, failures,
                         stats);
        } else if (std::string(driver) == "vc") {
          storm_matching(g, storm_seed, /*want_cover=*/true, label, failures,
                         stats);
        } else {
          storm_mis_cclique(g, storm_seed, label, failures, stats);
        }
      } catch (const std::exception& e) {
        // A throwing storm (budget blown, unrepaired rot, audit breach) is
        // a failure of that storm, not of the whole soak — record it and
        // keep going so one line names every bad tuple.
        std::fprintf(stderr, "FAIL %s: %s\n", label.c_str(), e.what());
        ++failures;
      }
      if (failures == before) {
        ++clean_storms;
        if (verbose) std::printf("ok   %s\n", label.c_str());
      } else {
        // One greppable line per failing storm: everything needed to
        // reproduce it (`--storms 1` won't land on the same tuple, so the
        // full coordinates matter).
        std::fprintf(stderr,
                     "DIVERGED seed=%llu storm=%zu driver=%s family=%s "
                     "n=%zu storm_seed=%llu\n",
                     static_cast<unsigned long long>(seed), s, driver, family,
                     n, static_cast<unsigned long long>(storm_seed));
      }
    }

    std::printf(
        "%zu/%zu storms clean | faults %zu corruptions %zu "
        "retransmitted %zu replays %zu | store corruptions %zu "
        "repaired %zu ckpt fallbacks %zu scrubs %zu\n",
        clean_storms, storms, stats.faults, stats.corruptions,
        stats.retransmitted, stats.replayed, stats.store_corruptions,
        stats.store_repaired, stats.ckpt_fallbacks, stats.scrubs);
    if (failures != 0) {
      std::fprintf(stderr, "mpcg_chaos: %zu check(s) failed\n", failures);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpcg_chaos: %s\n", e.what());
    return 1;
  }
}
