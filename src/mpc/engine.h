// Massively Parallel Computation (MPC) model simulator.
//
// The model (paper, Section 1.1.1): m machines, each with S words of local
// memory, computing in synchronous rounds. Within a round machines compute
// locally; at the round boundary they exchange messages, and every machine
// may send and receive at most S words per round.
//
// This engine is the *accounting authority* for every algorithm in
// `src/core`: algorithms move data only through the staging API
// (`outbox`/`push`/`exchange`, or the collectives in primitives.h built on
// them), the engine counts rounds and enforces capacities, and the
// experiment harness reads the metrics from here. Algorithms have no way to
// increment the round counter except by actually communicating.
//
// Message plane. Two kinds of traffic flow through an exchange:
//   * unicast words, staged through an `Outbox` (one handle per sender,
//     one up-front machine check, run-length `(to, count)` descriptors over
//     a contiguous per-sender word stream on the flat path) or the legacy
//     per-word `push`, which is a thin wrapper over a one-entry outbox; and
//   * shared payloads (`stage_payload` + `push_broadcast` / `push_gather`),
//     stored ONCE per staging and delivered as (payload, offset, length)
//     descriptors — a broadcast of k words to f machines costs O(k + f)
//     simulator work instead of O(k * f) copies.
// Inboxes are exposed as ordered segment views (`inbox_view`): each shared
// payload appears as one segment aliasing the single stored copy, and
// unicast words as segments into the receiver's inbox buffer. The legacy
// `inbox()` accessor survives as a lazily-materialized compatibility shim.
// Zero-copy changes *simulation* cost only: metrics (rounds, sent/received
// words, violations) account shared payloads at full per-destination size,
// exactly as if every receiver got its own copy.
#ifndef MPCG_MPC_ENGINE_H
#define MPCG_MPC_ENGINE_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/durable.h"
#include "mpc/backend.h"
#include "util/fnv.h"

namespace mpcg::fault {
class FaultPlan;
class CheckpointRegistry;
struct FaultEvent;
}  // namespace mpcg::fault

namespace mpcg::mpc {

using Word = std::uint64_t;

/// Handle to a payload staged for the next exchange (see
/// Engine::stage_payload). Valid until that exchange() runs.
using PayloadId = std::uint32_t;

/// Thrown (in strict mode) when a machine exceeds its per-round send or
/// receive budget, or when a collective cannot fit in machine memory.
class CapacityError : public std::runtime_error {
 public:
  explicit CapacityError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when integrity checking (Config::integrity) detects a stream
/// checksum mismatch it cannot repair: a corruption whose retransmit budget
/// is exhausted with recovery disabled, or a mismatch at delivery that no
/// detect->retransmit cycle handled.
class IntegrityError : public std::runtime_error {
 public:
  explicit IntegrityError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when audit mode (Config::audit) finds a broken invariant — a
/// conservation violation, an untallied capacity breach, or an inbox view
/// whose segments disagree with the delivered word count.  An AuditError is
/// a simulator bug (or memory corruption), never an expected outcome of an
/// injected fault.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

struct Config {
  /// Number of machines, m.
  std::size_t num_machines = 1;
  /// Words of memory per machine, S. Also the per-round send/receive cap.
  std::size_t words_per_machine = 1 << 20;
  /// If true, capacity violations throw CapacityError; otherwise they are
  /// tallied in Metrics::violations (useful for measuring how close an
  /// algorithm runs to the budget).
  bool strict = true;
  /// Dense/flat exchange representation: the per-(sender, receiver) box
  /// matrix (appends pre-sort by destination, delivery is pure bulk copies,
  /// but O(machines^2) storage and a full matrix scan per round) versus
  /// flat per-sender run-length outboxes with counting-sort delivery
  /// (O(words) storage, per-*run* bookkeeping).
  ///
  /// With the default `kAdaptive`, the engine picks the path per flush
  /// from the traffic it just delivered — total unicast words versus
  /// occupied (sender, receiver) runs: bulky per-pair traffic that
  /// amortizes the matrix scan switches to dense, scattered short-run
  /// traffic switches to flat (both representations deliver identical
  /// inboxes and metrics, so switching is observable only as wall-clock;
  /// see `tools/bench_exchange_crossover --adaptive`). A flip needs the
  /// same verdict on two consecutive traffic-bearing flushes (hysteresis),
  /// so alternating bulk/scattered rounds cannot thrash the
  /// representation. The dense matrix is never chosen above
  /// kAdaptiveDenseCap machines.
  ///
  /// Any explicit value overrides adaptivity with the old static rule:
  /// clusters up to the limit are dense, larger ones flat (0 forces flat
  /// everywhere — how tests pin one representation).
  static constexpr std::size_t kAdaptive = static_cast<std::size_t>(-1);
  std::size_t dense_machine_limit = kAdaptive;
  /// End-to-end message integrity: every sender's staged word stream
  /// carries a 64-bit FNV-1a checksum, folded in incrementally at append
  /// time (one xor-multiply per word behind a null-pointer test that is
  /// perfectly predicted when this is off) and verified against a
  /// recomputation at every flush (one branch per flush when off).  A
  /// mismatch — a kCorruptPayload fault, or real memory corruption — is
  /// detected before delivery and repaired by retransmitting the sender's
  /// retained stream (see FaultPlan::retransmit_budget for the escalation
  /// contract).  Pins the flat staging representation: the checksum is
  /// defined over the contiguous per-sender wire stream, which the dense
  /// per-pair matrix does not materialize.  Metrics are representation-
  /// invariant, so the pin is observable only as wall-clock.
  bool integrity = false;
  /// Runtime audit mode: after every exchange the engine checks
  /// conservation (words staged == delivered + dropped - duplicated
  /// + delayed, with fault adjustments), that capacity breaches were
  /// tallied, and that inbox-view segments cover exactly the delivered
  /// words inside engine-owned buffers.  Costs one staging sweep per round
  /// (O(machines + shared sends); O(machines^2) on the dense path); throws
  /// AuditError on any violation.
  bool audit = false;
  /// Opt-in round-boundary scrub of the durable stores: every
  /// `scrub_interval`-th round (0 = never) the engine re-digests the
  /// payload store and every sender's wire stream, and re-verifies the
  /// retained checkpoint generations, *before* any reader touches the
  /// round's deliveries.  Requires `integrity` (silently inert without it —
  /// there are no digests to check).  The scrub is pure verification: on a
  /// fault-free run its only observable is Metrics::scrub_passes, and rot
  /// that escaped the repair path throws IntegrityError (see DESIGN.md,
  /// "Determinism contract").
  std::size_t scrub_interval = 0;
  /// On-disk checkpoint durability (see fault/durable.h): every K-th safe
  /// point the driver announces via checkpoint_boundary() is persisted as
  /// one durable generation under `checkpoint_dir`.  Empty = off; the
  /// remaining durability knobs are then ignored.
  std::string checkpoint_dir{};
  /// Persist every K-th safe point (must be >= 1).
  std::size_t checkpoint_every = 1;
  /// Configuration signature baked into every durable file.  A resume only
  /// loads checkpoints whose scope matches exactly, so another run's
  /// leftovers (different driver, graph, cluster shape, seed) read as "no
  /// checkpoint" — a clean fresh start.  Drivers set this; an empty scope
  /// with a non-empty dir is a driver bug.
  std::string checkpoint_scope{};
  /// Resume from the newest verified on-disk generation (try_resume());
  /// false wipes stale same-scope files so they can never outrank this
  /// run's own checkpoints by sequence number.
  bool resume = false;
  /// Graceful-stop flag (a SIGTERM/SIGINT handler sets it): polled at every
  /// safe point; when set the engine flushes one final generation and
  /// throws fault::ResumableInterrupt.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Test hook: behave as if stop_flag was set at the N-th safe point
  /// (0 = never) — deterministic kill points for resume tests.
  std::size_t stop_after_safe_points = 0;
  /// Execution backend width (see mpc/backend.h): 1 = the sequential
  /// reference (byte-for-byte the historical engine); > 1 = a shared-memory
  /// pool of that many threads (caller included) running the contention-
  /// free exchange surfaces and the drivers' per-machine local loops
  /// concurrently.  Outputs and all logical Metrics are bit-identical
  /// across every value (see DESIGN.md, "Execution backends").
  std::size_t threads = 1;
};

struct Metrics {
  /// Communication rounds executed so far.
  std::size_t rounds = 0;
  /// Peak words sent by any machine in any single round.
  std::size_t max_sent_words = 0;
  /// Peak words received by any machine in any single round.
  std::size_t max_received_words = 0;
  /// Peak resident storage reported by any machine (via note_storage) or
  /// implied by a gather.
  std::size_t peak_storage_words = 0;
  /// Number of capacity violations observed (non-strict mode).
  std::size_t violations = 0;
  /// Total words moved across the cluster over all rounds.
  std::size_t total_words = 0;

  // Fault-recovery accounting (all zero unless a FaultPlan is attached).
  // These are *overhead* counters: the logical fields above stay
  // bit-identical to the fault-free run when recovery is on.
  /// Rounds replayed by crash/drop recovery or stalled for a late flush
  /// (not counted in `rounds`, which stays the logical round count).
  std::size_t rounds_replayed = 0;
  /// Words retransmitted during recovery: lost outbound flushes replayed
  /// from sender-side retention, plus the deliveries a crashed machine
  /// re-fetched after its rollback.
  std::size_t words_resent = 0;
  /// Bytes serialized into round-level checkpoints (engine snapshot +
  /// registered driver state), materialized copy-on-fault.
  std::size_t checkpoint_bytes = 0;
  /// Fault events applied from the attached plan.
  std::size_t faults_injected = 0;
  /// kCorruptPayload events that flipped at least one staged bit (events
  /// landing on an empty stream corrupt nothing and are not counted here,
  /// though they still count in faults_injected).
  std::size_t corruptions_injected = 0;
  /// Corruptions caught by the integrity layer's checksum verification.
  /// Equals corruptions_injected whenever Config::integrity is on.
  std::size_t corruptions_detected = 0;
  /// Words re-delivered from sender-side retention by the detect->
  /// retransmit protocol (including the re-delivery after a budget-blown
  /// corruption escalated to checkpoint rollback).
  std::size_t words_retransmitted = 0;
  /// kCorruptStore events that flipped at least one stored bit (events
  /// landing on an empty payload store corrupt nothing and are not counted
  /// here, though they still count in faults_injected).
  std::size_t store_corruptions_injected = 0;
  /// Store corruptions caught by the per-blob digest verification.  Equals
  /// store_corruptions_injected whenever Config::integrity is on.
  std::size_t store_corruptions_detected = 0;
  /// Words reinstated from the publisher's retained pristine copy by the
  /// in-place store repair (budget-blown store corruptions roll the round
  /// back instead and are charged to rounds_replayed).
  std::size_t store_words_repaired = 0;
  /// Checkpoint restores that found the newest generation rotted and fell
  /// back to an older verified one (charging the replayed rounds between
  /// the two generation tags to rounds_replayed).
  std::size_t checkpoint_fallbacks = 0;
  /// Proactive durable-store scrub sweeps executed (Config::scrub_interval).
  std::size_t scrub_passes = 0;

  // On-disk durability accounting (all zero unless Config::checkpoint_dir
  // is set — clean non-persistent runs never touch the disk).
  /// Durable generations persisted (checkpoint files atomically published).
  std::size_t disk_checkpoints_written = 0;
  /// Total 64-bit words written across those files (headers + payloads).
  std::size_t disk_checkpoint_words = 0;
  /// Successful --resume loads from an on-disk generation.
  std::size_t resume_loads = 0;
  /// Resume loads that skipped past a rotted/torn newer on-disk generation
  /// to an older verified one.
  std::size_t disk_fallbacks = 0;
  /// FaultPlan events scheduled before the resume point and therefore not
  /// re-injected by the resumed process (they already fired — and were
  /// absorbed — before the persisted safe point).
  std::size_t faults_skipped_on_resume = 0;
};

/// Run-length tag encoding of the flat staging. Each sender's staged words
/// form one contiguous stream described by a stream of 4-byte *tags*, one
/// per maximal same-destination stretch: a tag is the destination id, and
/// its kExtFlag bit says whether the stretch is a single word (clear — the
/// overwhelmingly common case in scattered traffic) or its length lives in
/// the sender's side count stream (set). Singleton stretches therefore
/// stage at exactly the cost of a per-word destination tag — one 4-byte
/// store — while a burst of k words to one machine compresses to one tag +
/// one count, and delivery is a counting sort over tags, not words.
/// The per-sender stream checksum of the integrity layer (see
/// Config::integrity) — shared with the congested-clique engine.
using Fnv = mpcg::Fnv;

struct RunTag {
  static constexpr std::uint32_t kExtFlag = 0x80000000u;
  static constexpr std::uint32_t kDestMask = 0x7fffffffu;
  /// Extended runs saturate at 2^32-1 words and spill into a fresh tag —
  /// only reachable far beyond any realistic per-round budget (the split
  /// is visible solely to the adaptive path chooser's run statistic).
  static constexpr std::uint32_t kMaxCount = 0xffffffffu;
  /// "No open run" marker for the per-sender open-destination table (it
  /// has the high bit set, so it can never equal a masked destination).
  static constexpr std::uint32_t kNoDest = 0xffffffffu;
};

/// Streamed outbox: a per-sender staging handle for unicast words. Open one
/// per round (`Engine::outbox`) — the sender id is checked once there — and
/// append words or whole runs; only the destination is range-checked per
/// append (one compare). On the flat path appends write the contiguous word
/// stream plus run-length descriptors; on the dense path they go straight
/// into the per-destination boxes. A handle is valid until the next
/// exchange(); several handles for the same sender may coexist (they stage
/// into the same stream).
class Outbox {
 public:
  Outbox() = default;

  /// Appends one word for machine `to`.
  ///
  /// The run-merge test reads the per-sender *open destination* table
  /// (`open_to_`, one word per sender — cache-resident), never the tag
  /// stream's tail: scattered cross-sender traffic pays exactly the
  /// stores a per-word destination tag costs (one 4-byte tag + the word),
  /// while the (load-latency) run extension is reserved for actual
  /// same-destination bursts.
  void append(std::size_t to, Word word) {
    if (to >= num_machines_) [[unlikely]] {
      throw_bad_dest(to);
    }
    if (dense_row_ != nullptr) {
      dense_row_[to].push_back(word);
      return;
    }
    words_->push_back(word);
    // Integrity layer: fold the word into the sender's stream checksum.
    // With integrity off csum_ is null and this branch is never taken —
    // a perfectly predicted test, the staging cost the bench pins at 0%.
    if (csum_ != nullptr) [[unlikely]] {
      *csum_ = Fnv::fold(*csum_, word);
    }
    if (*open_to_ == to) {
      std::uint32_t& back = tos_->back();
      if ((back & RunTag::kExtFlag) == 0) {
        // Second word of a stretch: promote the singleton tag to an
        // extended run of 2.
        back |= RunTag::kExtFlag;
        counts_->push_back(2);
        return;
      }
      if (counts_->back() != RunTag::kMaxCount) [[likely]] {
        ++counts_->back();
        return;
      }
    }
    *open_to_ = static_cast<std::uint32_t>(to);
    tos_->push_back(static_cast<std::uint32_t>(to));
  }

  /// Appends a whole word run for machine `to` (one tag + one count + one
  /// bulk copy on the flat path; merges with an open run to the same
  /// machine).
  void append_run(std::size_t to, std::span<const Word> words) {
    if (to >= num_machines_) [[unlikely]] {
      throw_bad_dest(to);
    }
    if (words.empty()) return;
    if (dense_row_ != nullptr) {
      dense_row_[to].insert(dense_row_[to].end(), words.begin(), words.end());
      return;
    }
    words_->insert(words_->end(), words.begin(), words.end());
    if (csum_ != nullptr) [[unlikely]] {
      std::uint64_t h = *csum_;
      for (const Word w : words) h = Fnv::fold(h, w);
      *csum_ = h;
    }
    std::size_t left = words.size();
    if (*open_to_ == to) {
      std::uint32_t& back = tos_->back();
      if ((back & RunTag::kExtFlag) == 0) {
        back |= RunTag::kExtFlag;
        counts_->push_back(1);
      }
      const std::size_t room = RunTag::kMaxCount - counts_->back();
      const std::size_t take = left < room ? left : room;
      counts_->back() += static_cast<std::uint32_t>(take);
      left -= take;
    }
    *open_to_ = static_cast<std::uint32_t>(to);
    while (left > 0) {
      if (left == 1) {
        tos_->push_back(static_cast<std::uint32_t>(to));
        break;
      }
      const std::size_t take =
          left < RunTag::kMaxCount ? left : RunTag::kMaxCount;
      tos_->push_back(static_cast<std::uint32_t>(to) | RunTag::kExtFlag);
      counts_->push_back(static_cast<std::uint32_t>(take));
      left -= take;
    }
  }

  /// Pre-reserves stream capacity for `words` more words (flat path; the
  /// dense path's per-destination boxes grow on their own).
  void reserve(std::size_t words) {
    if (words_ != nullptr) words_->reserve(words_->size() + words);
  }

 private:
  friend class Engine;
  Outbox(std::vector<Word>* dense_row, std::vector<std::uint32_t>* tos,
         std::vector<std::uint32_t>* counts, std::vector<Word>* words,
         std::uint32_t* open_to, std::size_t num_machines,
         std::uint64_t* csum = nullptr)
      : dense_row_(dense_row), tos_(tos), counts_(counts), words_(words),
        open_to_(open_to), num_machines_(num_machines), csum_(csum) {}
  /// Out of line: the exception-string construction must not be inlined
  /// into every append call site (it bloats the hot staging loops).
  [[noreturn]] void throw_bad_dest(std::size_t to) const;
  /// Dense path: the sender's row of per-destination boxes (nullptr when
  /// the flat representation is active).
  std::vector<Word>* dense_row_ = nullptr;
  /// Flat path: the sender's run-tag/count streams + contiguous word
  /// stream + its slot in the engine's open-destination table (the masked
  /// destination of tos_->back(), or RunTag::kNoDest when no run is open).
  std::vector<std::uint32_t>* tos_ = nullptr;
  std::vector<std::uint32_t>* counts_ = nullptr;
  std::vector<Word>* words_ = nullptr;
  std::uint32_t* open_to_ = nullptr;
  std::size_t num_machines_ = 0;
  /// The sender's incremental stream-checksum accumulator, or nullptr when
  /// integrity checking is off (the hot-path appends test this once).
  std::uint64_t* csum_ = nullptr;
};

/// Read-only, zero-copy view of one machine's inbox after an exchange: an
/// ordered list of word segments whose concatenation is the inbox contents
/// (sender ids ascending; each sender's words in push order, unicast and
/// shared interleaved chronologically). Segments alias engine-owned storage:
/// a view is valid until the next exchange() or clear_inboxes(), which
/// invalidate it (dangling — do not hold across rounds).
///
/// Segment structure is guaranteed only as far as: every shared payload
/// delivered to this machine appears as exactly one contiguous segment, in
/// its contract position. Unicast words may be split across one or more
/// segments. Word-level iteration (begin()/end()) hides the seams.
class InboxView {
 public:
  InboxView() = default;

  [[nodiscard]] std::size_t size() const noexcept { return words_; }
  [[nodiscard]] bool empty() const noexcept { return words_ == 0; }

  [[nodiscard]] std::size_t num_segments() const noexcept {
    return segs_ != nullptr ? segs_->size() : (single_.empty() ? 0 : 1);
  }
  [[nodiscard]] std::span<const Word> segment(std::size_t i) const noexcept {
    return segs_ != nullptr ? (*segs_)[i] : single_;
  }

  /// Appends the full inbox contents to `out` (one bulk copy per segment).
  void append_to(std::vector<Word>& out) const {
    out.reserve(out.size() + words_);
    for (std::size_t s = 0; s < num_segments(); ++s) {
      const auto seg = segment(s);
      out.insert(out.end(), seg.begin(), seg.end());
    }
  }
  [[nodiscard]] std::vector<Word> to_vector() const {
    std::vector<Word> out;
    append_to(out);
    return out;
  }

  /// Forward word iterator over the concatenated segments.
  class iterator {
   public:
    using value_type = Word;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const InboxView* view, std::size_t seg) : view_(view), seg_(seg) {
      settle();
    }
    Word operator*() const noexcept { return view_->segment(seg_)[off_]; }
    iterator& operator++() noexcept {
      ++off_;
      settle();
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const iterator& a, const iterator& b) noexcept {
      return a.seg_ == b.seg_ && a.off_ == b.off_;
    }

   private:
    void settle() noexcept {
      while (view_ != nullptr && seg_ < view_->num_segments() &&
             off_ >= view_->segment(seg_).size()) {
        ++seg_;
        off_ = 0;
      }
    }
    const InboxView* view_ = nullptr;
    std::size_t seg_ = 0;
    std::size_t off_ = 0;
  };
  [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() const noexcept {
    return {this, num_segments()};
  }

 private:
  friend class Engine;
  /// Fast path: a view that is one contiguous unicast range.
  std::span<const Word> single_{};
  /// Segmented path: borrowed from the engine (nullptr on the fast path).
  const std::vector<std::span<const Word>>* segs_ = nullptr;
  std::size_t words_ = 0;
};

class Engine {
  /// One queued shared-payload delivery. `seq` snapshots how many unicast
  /// words the sender had queued (to this receiver on the dense path; in
  /// total on the flat path) when the shared push happened — the splice
  /// position that keeps per-sender chronological order in the inbox.
  /// (Declared ahead of the public section so Snapshot can hold them.)
  struct SharedSend {
    std::uint32_t from;
    std::uint32_t to;
    PayloadId payload;
    std::uint64_t seq;
  };

 public:
  explicit Engine(Config config);

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return config_.num_machines;
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return config_.words_per_machine;
  }
  [[nodiscard]] bool strict() const noexcept { return config_.strict; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// The execution backend this engine (and its drivers) run per-machine
  /// work through — Config::threads wide. Drivers use
  /// backend().parallel_for_machines / run_chunks for their local-phase
  /// loops so engine and driver share one pool.
  [[nodiscard]] ExecutionBackend& backend() noexcept { return *backend_; }

  /// Opens a streamed outbox for machine `from` — the one up-front sender
  /// check; appends through the handle pay a single destination compare
  /// each. Valid until the next exchange(). This is how the hot producers
  /// stage their home->machine record streams; the per-word push below
  /// wraps it.
  [[nodiscard]] Outbox outbox(std::size_t from) {
    if (from >= config_.num_machines) [[unlikely]] {
      throw_bad_machine(from);
    }
    if (dense_active_) {
      return Outbox(boxes_.data() + from * config_.num_machines, nullptr,
                    nullptr, nullptr, nullptr, config_.num_machines);
    }
    return Outbox(nullptr, &out_tos_[from], &out_counts_[from],
                  &out_words_[from], &out_open_to_[from],
                  config_.num_machines,
                  config_.integrity ? &out_csums_[from] : nullptr);
  }

  /// Queues one word from machine `from` to machine `to` for the next
  /// exchange. Legacy entry point: a thin wrapper over a one-entry outbox
  /// (baselines and tests compile unchanged; hot drivers hold an Outbox).
  void push(std::size_t from, std::size_t to, Word word) {
    outbox(from).append(to, word);
  }

  /// Queues a word span (one run descriptor + one bulk copy).
  void push(std::size_t from, std::size_t to, std::span<const Word> words);

  /// Stores one copy of `words` for the next exchange and returns a handle
  /// any machine may push_broadcast against — so a relay round where many
  /// senders forward the same payload stores it once, total. The handle
  /// dies at the next exchange(); re-stage per round.
  PayloadId stage_payload(std::span<const Word> words);

  /// Queues the staged payload from `from` to every machine in `dests`:
  /// O(|dests|) descriptors, zero word copies. Accounting is unchanged from
  /// |dests| equivalent span pushes (|payload| words charged per
  /// destination). An empty payload is a no-op (as an empty push would be).
  void push_broadcast(std::size_t from, std::span<const std::size_t> dests,
                      PayloadId payload);

  /// Convenience: stage_payload + push_broadcast in one call.
  PayloadId push_broadcast(std::size_t from,
                           std::span<const std::size_t> dests,
                           std::span<const Word> payload);

  /// Queues `words` from `from` to `to` as one shared-payload segment (one
  /// stored copy; the receiver's view aliases it instead of re-copying into
  /// the inbox buffer). The gather half of the message plane: each
  /// contributed part arrives as exactly one segment.
  void push_gather(std::size_t from, std::size_t to,
                   std::span<const Word> words);

  /// Executes one communication round: delivers all queued words, enforces
  /// per-machine send/receive budgets, updates metrics, and makes inboxes
  /// readable. Queued outboxes are cleared; views, payloads, and Outbox
  /// handles from the previous round are invalidated.
  void exchange();

  /// Zero-copy view of the words delivered to `machine` by the most recent
  /// exchange (see InboxView for the ordering contract and lifetime).
  [[nodiscard]] InboxView inbox_view(std::size_t machine) const;

  /// The stored words of a payload delivered by the most recent exchange(),
  /// addressed by the PayloadId stage_payload returned before it. Aliases
  /// engine-owned storage: valid until the next exchange() or
  /// clear_inboxes(). This is how span-returning collectives
  /// (mpc::broadcast_view) hand out the delivered payload without a copy.
  [[nodiscard]] std::span<const Word> delivered_payload(PayloadId id) const {
    return delivered_payloads_.at(id);
  }

  /// Words delivered to `machine` by the most recent exchange, concatenated
  /// in sender order (sender ids ascending; each sender's words in push
  /// order). Compatibility shim over inbox_view: rounds that carried no
  /// shared payloads return the inbox buffer directly; otherwise the
  /// concatenation is materialized lazily (once) per machine per round.
  [[nodiscard]] const std::vector<Word>& inbox(std::size_t machine) const;

  /// Reports `words` of resident state on `machine` for peak-storage
  /// accounting (e.g. an adjacency shard or a gathered subgraph). In strict
  /// mode exceeding S throws.
  void note_storage(std::size_t machine, std::size_t words);

  /// Clears all inboxes (outboxes are cleared by exchange()). Invalidates
  /// outstanding views.
  void clear_inboxes();

  /// True while push()/outbox() stage into the dense per-pair box matrix
  /// (observability hook for the adaptive-choice tests; the choice is
  /// otherwise visible only as wall-clock).
  [[nodiscard]] bool dense_staging_active() const noexcept {
    return dense_active_;
  }

  /// Opaque copy of the *staged* message plane — unicast boxes / run-tag
  /// streams, the payload store, splice descriptors — plus Metrics and the
  /// adaptive-path state, taken at a round boundary.  Restoring puts the
  /// engine back exactly as it was about to exchange.  Delivered inboxes
  /// are NOT captured: their segment views alias engine buffers and are
  /// invalidated by a rollback anyway (drivers re-read them from the
  /// replayed round).
  class Snapshot {
   public:
    Snapshot() = default;
    /// Words of checkpoint payload held — the engine's contribution to
    /// Metrics::checkpoint_bytes.
    [[nodiscard]] std::size_t words() const noexcept;

   private:
    friend class Engine;
    std::vector<std::vector<Word>> boxes;
    std::vector<std::vector<std::uint32_t>> out_tos;
    std::vector<std::vector<std::uint32_t>> out_counts;
    std::vector<std::vector<Word>> out_words;
    std::vector<std::uint32_t> out_open_to;
    std::vector<std::uint64_t> out_csums;
    std::vector<std::vector<Word>> staged_payloads;
    std::vector<std::uint64_t> staged_digests;
    std::vector<SharedSend> shared_sends;
    Metrics metrics{};
    bool dense_active = false;
    std::uint8_t adapt_streak = 1;
  };

  /// Captures the staged message plane (see Snapshot).  The fault
  /// machinery takes one just before applying a scheduled event
  /// (copy-on-fault — fault-free rounds never pay for it); tests may also
  /// call it directly.
  [[nodiscard]] Snapshot snapshot() const;
  /// Reinstates a snapshot taken on this engine (same machine count).
  /// Outstanding views and Outbox handles are invalidated.
  void restore(const Snapshot& snap);

  /// Attaches a deterministic fault schedule, consulted at every round
  /// boundary (round index = Metrics::rounds at entry).  `registry`, when
  /// given, is the driver's checkpoint registry: it is captured alongside
  /// the engine snapshot at faulty rounds and restored on crash rollback.
  /// With `recover` false nothing rolls back — crashed machines simply go
  /// dark for the round (lost flush, cleared inbox) and duplicated or
  /// delayed flushes hit the wire as such.  Passing nullptr (or an empty
  /// plan) detaches.  The plan must outlive the engine's use of it.
  void set_fault_plan(const fault::FaultPlan* plan,
                      fault::CheckpointRegistry* registry = nullptr,
                      bool recover = true);

  /// Crashes absorbed by recovery so far (checked against the plan's
  /// crash_budget).
  [[nodiscard]] std::size_t crashes_recovered() const noexcept {
    return crashes_recovered_;
  }

  /// Driver-announced safe point (a driver loop boundary where the
  /// registered providers' state is self-consistent and the message plane
  /// is quiescent).  With Config::checkpoint_dir set: polls the stop flag
  /// (flushing a final generation and throwing fault::ResumableInterrupt
  /// when stopping) and persists one durable generation every
  /// Config::checkpoint_every-th call.  No-op without durability — drivers
  /// call it unconditionally at their loop tops.
  void checkpoint_boundary();

  /// Resume attempt (call once, after registering checkpoint providers and
  /// before the first round): loads the newest verified on-disk generation
  /// matching Config::checkpoint_scope, reinstates every provider and the
  /// engine's own "__engine" section (metrics, adaptive-path state, delayed
  /// flushes), and counts plan events at already-completed rounds into
  /// Metrics::faults_skipped_on_resume.  Returns true when a checkpoint
  /// was loaded (the driver skips its preamble and re-enters its loop);
  /// false on a fresh start (durability off, --resume not given, nothing
  /// on disk, or a scope mismatch).  Throws fault::CheckpointError when
  /// files exist for this scope but every generation fails verification.
  bool try_resume();

 private:
  /// Persists one durable generation (provider sections + "__engine").
  void persist();
  /// Refills `s` with the engine's own durable section: Metrics,
  /// adaptive-path state, crash/delayed-flush carryover.  Staging and the
  /// payload store are NOT serialized — safe points are quiescent, a fresh
  /// process's empty staging is exactly right.  Takes the section by
  /// reference so persist() can recycle the buffer across safe points.
  void engine_section_into(fault::DurableSection& s) const;
  void install_engine_section(std::span<const Word> payload);
  void check_budget(std::size_t machine, std::size_t words, const char* dir);
  void check_machine(std::size_t machine) const;
  [[noreturn]] void throw_bad_machine(std::size_t machine) const;

  void drop_last_round();
  /// The actual round execution (the pre-fault exchange() body); exchange()
  /// wraps it with the fault-plan consultation.
  void exchange_impl();
  /// exchange() when a fault plan is attached and schedules events for the
  /// current round: checkpoint (copy-on-fault), apply each event —
  /// corrupting staged state and, with recovery, rolling back and replaying
  /// — then run the round and settle the recovery metrics.
  void exchange_faulty(std::span<const fault::FaultEvent> events);
  /// Words machine `m` has staged for the next exchange (unicast + its
  /// share of shared payload deliveries) — what a lost flush costs.
  [[nodiscard]] std::size_t staged_out_words(std::size_t machine) const;
  /// Words machine `m` received in the round just executed.
  [[nodiscard]] std::size_t received_words(std::size_t machine) const;
  /// Destroys machine `m`'s staged outbound traffic (its unicast boxes or
  /// run streams and its queued shared-payload sends). The payload *store*
  /// survives: stage_payload models a durable blob store, the per-machine
  /// flush is what a fault destroys.
  void corrupt_machine_staging(std::size_t machine);
  /// Doubles machine `m`'s staged unicast traffic (non-recovered duplicate
  /// flush: receivers see every word twice and congestion accounting
  /// trips).  Returns the words added (the audit-mode adjustment).
  std::size_t duplicate_machine_staging(std::size_t machine);
  /// Holds machine `m`'s staged unicast traffic back one round
  /// (non-recovered delayed flush); inject_delayed() re-appends it to the
  /// next round's staging.  Returns the words held back.
  std::size_t delay_machine_staging(std::size_t machine);
  void inject_delayed();
  /// Blanks what a dark (non-recovered crashed) machine received this
  /// round. Send-side metrics keep the words — they were sent, they just
  /// hit a dead host.
  void clear_delivered_for(std::size_t machine);
  /// Clears one flat sender's staged stream (tags, counts, words, open-run
  /// table, checksum accumulator).
  void clear_sender_staging(std::size_t from);
  /// Resets the sender's checksum accumulator to the digest of its current
  /// staged stream (after a non-append mutation: duplicate, delayed
  /// re-injection, restore).
  void resync_sender_checksum(std::size_t from);
  /// True iff the sender's accumulated checksum matches a recomputation
  /// over its staged stream — the receiver-side verification.
  [[nodiscard]] bool sender_stream_ok(std::size_t from) const;
  /// Flush-time verification of every sender's stream (one branch per
  /// flush reaches here only with Config::integrity on).  A mismatch at
  /// this point escaped the detect->retransmit protocol — real memory
  /// corruption, not an injected fault — and throws IntegrityError.
  void verify_streams() const;
  /// Copies machine `m`'s staged flat stream aside (sender-side retention)
  /// and flips 1-3 mix64-derived bits in the live staged words; on the
  /// dense path flips bits in the per-pair boxes without retention
  /// (integrity cannot be on there).  Returns the number of bits flipped
  /// (0 when nothing is staged).
  std::size_t corrupt_staged_words(std::size_t machine, std::size_t round,
                                   std::size_t ordinal);
  /// Reinstates the retained pristine stream (the retransmission) and
  /// returns the number of words re-delivered.
  std::size_t retransmit_retained(std::size_t machine);
  /// kCorruptStore injection: copies the targeted payload blob aside (the
  /// publisher's retained pristine copy) and flips 1-3 mix64-derived bits
  /// in the stored blob.  The blob is picked word-weighted across the
  /// store, so a non-empty store always takes a hit.  Returns the number
  /// of bits flipped (0 when the store holds no words).
  std::size_t corrupt_store_blob(std::size_t machine, std::size_t round,
                                 std::size_t ordinal);
  /// True iff the blob's stored words still match the digest folded at
  /// stage_payload time — the reader-side store verification.
  [[nodiscard]] bool store_blob_ok(PayloadId id) const;
  /// Reinstates the retained pristine blob (the in-place store repair) and
  /// returns the number of words restored.
  std::size_t repair_retained_blob();
  /// Flush-time verification of every staged payload blob against its
  /// stage-time digest (reached only with Config::integrity on) — the
  /// reader-side guarantee that inbox_view / broadcast_view splices never
  /// alias rotted store bytes.  A mismatch here escaped the repair
  /// protocol and throws IntegrityError.
  void verify_store() const;
  /// The opt-in proactive scrub (Config::scrub_interval): re-digests the
  /// payload store and the wire streams and re-verifies every retained
  /// checkpoint generation.  Pure verification — inert on a clean run
  /// except for Metrics::scrub_passes.
  void scrub_pass();
  /// Verified checkpoint restore with generation fallback: restores the
  /// newest registry generation if it verifies; otherwise falls back to
  /// the next older verified one — deterministic replay from it would
  /// reconstruct exactly the live provider state, so the newest image is
  /// recaptured from live state and the replayed rounds are charged —
  /// and throws CheckpointError naming `machine` and `round` when every
  /// generation is bad.
  void restore_registry(std::size_t machine, std::size_t round,
                        std::size_t& replays, std::size_t& fallbacks);
  /// Audit mode: records the staged word total (post delayed-injection,
  /// pre fault events) and the fault adjustments baseline for this round.
  void begin_audit();
  /// Audit mode: checks conservation, capacity tallies, and segment bounds
  /// for the round just delivered; throws AuditError on violation.
  void finish_audit() const;
  void exchange_plain_dense(std::size_t m);
  void exchange_plain_flat(std::size_t m);
  /// Slot-sharded unicast flushes used when backend().parallel(): per-slot
  /// sender-range histograms, one sequential prefix/budget pass, then
  /// positional run copies into exactly-sized inboxes — the delivered
  /// inboxes and all Metrics are position-identical to the sequential
  /// variants above for any thread count (see DESIGN.md, "Execution
  /// backends").
  void exchange_parallel_flat(std::size_t m);
  void exchange_parallel_dense(std::size_t m);
  void exchange_shared(std::size_t m);
  /// Delivers one flat sender's staged runs into the inboxes (and, with
  /// `emit_segs`, interleaved segment lists for shared-round receivers):
  /// one bulk copy per run, except scattered big senders (many short runs)
  /// which take a word-level counting sort through the scatter buffer so a
  /// receiver gets one append instead of one per run. Clears the sender's
  /// staging.
  void deliver_flat_sender(std::size_t from, std::size_t m, bool emit_segs);
  /// Switches the staging representation (both are kept allocated once
  /// used; only callable between flushes, when all outboxes are empty).
  void set_path(bool dense);
  /// Per-flush adaptive path choice from the shape of the unicast traffic
  /// just delivered: `words` moved across `runs` maximal same-destination
  /// stretches. Two consecutive traffic-bearing flushes must agree before
  /// the path flips (hysteresis). No-op unless Config::dense_machine_limit
  /// is kAdaptive.
  void adapt_path(std::size_t words, std::size_t runs);
  /// Largest cluster the adaptive mode will ever give the dense matrix
  /// (its storage and per-round scan are O(machines^2)).
  static constexpr std::size_t kAdaptiveDenseCap = 512;
  /// Appends `box` to inbox_[to] split around this pair's shared sends
  /// (whose seq fields hold within-pair splice offsets, chronological
  /// order), emitting interleaved segments into in_segs_[to].
  void deliver_pair_with_shared(std::size_t to, std::span<const Word> box,
                                std::span<const SharedSend> sends);
  std::vector<std::span<const Word>>& touch_segs(std::size_t to);

  Config config_;
  /// Execution backend (Config::threads wide); shared with the drivers via
  /// backend(). Destroyed last-ish in reverse member order, after every
  /// run_chunks has joined (run_chunks is blocking, so no chunk can
  /// outlive the call that launched it).
  std::unique_ptr<ExecutionBackend> backend_;
  Metrics metrics_;
  /// Which staging representation outbox()/push() writes to. Fixed by
  /// dense_machine_limit when that is explicit; re-decided per flush by
  /// adapt_path() in the default adaptive mode.
  bool dense_active_ = false;
  /// Flushes in a row whose traffic shape voted against the active
  /// representation (adaptive mode): the flip happens at 2. Starts at 1:
  /// the startup representation is a size-based guess, not observed
  /// history, so the first real traffic shape may override it immediately
  /// — only after a flush has *confirmed* the active path does a flip
  /// require two consecutive contrary votes.
  std::uint8_t adapt_streak_ = 1;
  /// Dense representation (small clusters): boxes_[from * m + to] holds
  /// the unicast words queued from `from` to `to`, in push order. Empty
  /// when the flat representation is active.
  std::vector<std::vector<Word>> boxes_;
  /// Flat per-sender outboxes (large clusters): out_words_[from] is the
  /// sender's staged words in push order, described by the run tags in
  /// out_tos_[from] (one per maximal same-destination stretch; extended
  /// tags index into out_counts_[from] in order — see RunTag). A round of
  /// exchange() costs O(tags + machines) bookkeeping plus one bulk copy
  /// per run (scattered senders fall back to a word-level counting sort —
  /// see deliver_flat_sender).
  std::vector<std::vector<std::uint32_t>> out_tos_;
  std::vector<std::vector<std::uint32_t>> out_counts_;
  std::vector<std::vector<Word>> out_words_;
  /// Destination of each sender's open (last) run, or RunTag::kNoDest.
  /// The compact mirror of out_tos_[from].back()'s destination that keeps
  /// the append-side merge test off the tag vectors' scattered tails.
  std::vector<std::uint32_t> out_open_to_;
  /// Per-sender incremental FNV-1a stream checksums (allocated only with
  /// Config::integrity; reset to Fnv::kOffset whenever the stream clears).
  std::vector<std::uint64_t> out_csums_;
  /// Unicast words delivered to each machine (shared payloads are viewed in
  /// place, never copied here).
  std::vector<std::vector<Word>> inbox_;

  // Shared-payload plane. Staged payloads become `delivered_payloads_` at
  // exchange and stay alive (aliased by views) until the next exchange or
  // clear_inboxes.
  std::vector<std::vector<Word>> staged_payloads_;
  /// Per-blob FNV-1a digests folded at stage_payload time (parallel to
  /// staged_payloads_; maintained only with Config::integrity on) — the
  /// store half of the integrity layer.
  std::vector<std::uint64_t> staged_digests_;
  std::vector<std::vector<Word>> delivered_payloads_;
  std::vector<SharedSend> shared_sends_;
  /// Per-machine ordered segments for the current round; only filled for
  /// machines that received at least one shared payload (others use the
  /// single-span fast path). `seg_touched_` lists the filled machines for
  /// O(touched) teardown.
  std::vector<std::vector<std::span<const Word>>> in_segs_;
  std::vector<std::size_t> seg_touched_;
  /// Words received this round per machine (unicast + shared), valid for
  /// machines in seg_touched_.
  std::vector<std::size_t> recv_total_;
  bool shared_round_ = false;
  /// Lazy materializations backing the inbox() shim on shared rounds.
  mutable std::vector<std::vector<Word>> inbox_cache_;
  mutable std::vector<char> inbox_cache_valid_;

  /// Per-receiver word counts for the current exchange (scratch).
  std::vector<std::size_t> recv_count_;
  /// Per-machine shared sent/received word totals (scratch, shared rounds).
  std::vector<std::size_t> shared_sent_;
  std::vector<std::size_t> shared_recv_;
  /// Counting-sort scratch for scattered senders (see deliver_flat_sender).
  std::vector<std::size_t> bucket_count_;
  std::vector<std::size_t> bucket_cursor_;
  std::vector<Word> scatter_;
  /// Parallel-flush scratch (backend().parallel() only): per-slot receiver
  /// histograms and write cursors, slot-major ([slot * m + to]), plus
  /// per-slot run totals — merged in ascending slot order, which is what
  /// makes the parallel flush position-identical to the sequential one.
  std::vector<std::size_t> slot_count_;
  std::vector<std::size_t> slot_cursor_;
  std::vector<std::size_t> slot_runs_;
  /// Parallel verify scratch: per-sender / per-blob ok flags (the throw,
  /// which must name the lowest failing index, stays sequential).
  mutable std::vector<char> verify_ok_;
  /// Flat-path scratch: one sender's shared sends in chronological order,
  /// with seq rewritten to the within-pair splice offset.
  std::vector<SharedSend> sender_sends_;

  // Fault machinery (see set_fault_plan). All pointers are borrowed.
  const fault::FaultPlan* fault_plan_ = nullptr;
  fault::CheckpointRegistry* registry_ = nullptr;
  bool fault_recover_ = true;
  std::size_t crashes_recovered_ = 0;
  /// On-disk generation ring (engaged iff Config::checkpoint_dir is set).
  std::optional<fault::DurableRing> dring_;
  /// Safe points announced via checkpoint_boundary() this process (not
  /// persisted: it only paces the persistence cadence).
  std::size_t safe_points_ = 0;
  /// Serialization scratch recycled across persists (provider sections
  /// followed by one "__engine" section): steady-state saves reuse the
  /// payload buffers instead of reallocating ~the full provider state at
  /// every persisted safe point.
  std::vector<fault::DurableSection> durable_scratch_;
  /// A flush held back by a non-recovered kDelayFlush, stored as run
  /// descriptors (path-agnostic: it may be re-injected under either
  /// staging representation).
  struct DelayedFlush {
    std::size_t from = 0;
    std::vector<std::uint32_t> tos;
    std::vector<std::uint32_t> counts;
    std::vector<Word> words;
  };
  std::vector<DelayedFlush> delayed_;
  /// Per-faulty-round scratch: machines whose lost deliveries recovery
  /// re-fetches / machines that went dark without recovery.
  std::vector<std::size_t> crashed_scratch_;
  std::vector<std::size_t> dark_scratch_;
  /// Sender-side retention for the detect->retransmit protocol: the
  /// pristine copy of the stream a kCorruptPayload event is about to
  /// mangle (valid for the machine named by retained_from_ within one
  /// exchange_faulty).
  struct RetainedStream {
    std::vector<std::uint32_t> tos;
    std::vector<std::uint32_t> counts;
    std::vector<Word> words;
    std::uint32_t open_to = RunTag::kNoDest;
    std::uint64_t csum = 0;
  };
  RetainedStream retained_;
  std::size_t retained_from_ = static_cast<std::size_t>(-1);
  /// Publisher-side retention for the store-repair protocol: the pristine
  /// copy of the payload blob a kCorruptStore event is about to mangle
  /// (valid for the blob named by retained_blob_id_ within one
  /// exchange_faulty).
  std::vector<Word> retained_blob_;
  PayloadId retained_blob_id_ = static_cast<PayloadId>(-1);

  // Audit-mode per-round scratch (see Config::audit): the staged total at
  // round entry and the word-count adjustments unrecovered faults made to
  // the staging, so finish_audit() can close the conservation equation.
  std::size_t audit_staged_ = 0;
  std::size_t audit_dropped_ = 0;
  std::size_t audit_duped_ = 0;
  std::size_t audit_delayed_ = 0;
  std::size_t audit_violations_at_ = 0;
};

}  // namespace mpcg::mpc

#endif  // MPCG_MPC_ENGINE_H
