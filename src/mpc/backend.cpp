#include "mpc/backend.h"

namespace mpcg::mpc {

ParallelBackend::ParallelBackend(std::size_t threads)
    : nthreads_(threads < 2 ? 2 : threads) {
  pool_.reserve(nthreads_ - 1);
  for (std::size_t i = 0; i + 1 < nthreads_; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

ParallelBackend::~ParallelBackend() {
  {
    std::lock_guard<std::mutex> lg(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void ParallelBackend::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    ++idle_;
    done_cv_.notify_all();  // quiesce() watches idle_
    work_cv_.wait(lk, [&] { return stopping_ || generation_ != seen; });
    --idle_;
    if (stopping_) return;
    seen = generation_;
    // Snapshot the job under the lock: a straggler that re-enters after the
    // caller already published a newer job keeps its own (exhausted) Job
    // and drains nothing.
    std::shared_ptr<Job> job = job_;
    lk.unlock();
    if (job) drain(*job);
    lk.lock();
  }
}

void ParallelBackend::drain(Job& job) {
  const std::size_t len = job.end - job.begin;
  for (;;) {
    const std::size_t slot = job.next.fetch_add(1, std::memory_order_relaxed);
    if (slot >= job.nchunks) return;
    const std::size_t lo = job.begin + len * slot / job.nchunks;
    const std::size_t hi = job.begin + len * (slot + 1) / job.nchunks;
    if (lo < hi) {
      try {
        (*job.fn)(slot, lo, hi);
      } catch (...) {
        job.errors[slot] = std::current_exception();
      }
    }
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk done: wake the caller blocked in run_chunks. The lock
      // orders this notify against the caller entering its wait.
      std::lock_guard<std::mutex> lg(mu_);
      done_cv_.notify_all();
    }
  }
}

void ParallelBackend::run_chunks(std::size_t begin, std::size_t end,
                                 const ChunkFn& fn) {
  if (begin >= end) return;
  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->nchunks = nthreads_;
  job->pending.store(nthreads_, std::memory_order_relaxed);
  job->errors.assign(nthreads_, nullptr);
  {
    std::lock_guard<std::mutex> lg(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  drain(*job);  // the caller participates: progress on a one-core box
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job->pending.load(std::memory_order_acquire) == 0;
    });
    if (job_ == job) job_.reset();
  }
  for (std::exception_ptr& e : job->errors) {
    if (e) std::rethrow_exception(e);  // lowest slot wins, like sequential
  }
}

void ParallelBackend::quiesce() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return (job_ == nullptr ||
            job_->pending.load(std::memory_order_acquire) == 0) &&
           idle_ == pool_.size();
  });
}

std::size_t ParallelBackend::idle_workers() const {
  std::lock_guard<std::mutex> lg(mu_);
  return idle_;
}

std::unique_ptr<ExecutionBackend> make_backend(std::size_t threads) {
  if (threads <= 1) return std::make_unique<SequentialBackend>();
  return std::make_unique<ParallelBackend>(threads);
}

}  // namespace mpcg::mpc
