// Minimal command-line flag parsing for the tools/ binaries.
//
// Syntax: --key=value or --key value; bare --key is the boolean true.
// Unknown keys are collected so tools can reject typos explicitly.
#ifndef MPCG_UTIL_FLAGS_H
#define MPCG_UTIL_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpcg {

class Flags {
 public:
  /// Parses argv (skipping argv[0]). Throws std::invalid_argument on
  /// malformed tokens (anything not starting with "--").
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults. Throw std::invalid_argument when the
  /// value does not parse.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Keys that were provided but never read by any getter — typo guard.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace mpcg

#endif  // MPCG_UTIL_FLAGS_H
