// Section 4.1 `Central` and Section 4.3 `Central-Rand`: the O(log n)-
// iteration sequential fractional matching + vertex cover algorithms.
//
// Every edge starts at weight w0; per iteration, each unfrozen vertex whose
// load y_v = sum_{e ∋ v} x_e reaches its threshold freezes (with all its
// edges), and surviving active edges grow by 1/(1-eps). `Central` uses the
// fixed threshold 1-2eps; `Central-Rand` draws a fresh T_{v,t} uniform in
// [1-4eps, 1-2eps] per vertex per iteration, statelessly from
// (threshold_seed, v, t) — the same stream MPC-Simulation consumes, which
// is what lets the two be coupled exactly as in the paper's analysis
// (Section 4.4.3).
//
// Invariant exploited by the implementation: at iteration t every active
// edge has weight exactly w0 / (1-eps)^t, so a vertex's load is
// (frozen contribution) + (active degree) * w_t and iterations cost O(n)
// instead of O(m).
//
// Lemma 4.1: terminates in O(log n / eps) iterations; the frozen set is a
// (2+5eps)-approximate vertex cover and sum_e x_e >= nu(G) / (2+5eps).
#ifndef MPCG_CORE_CENTRAL_H
#define MPCG_CORE_CENTRAL_H

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace mpcg {

struct CentralOptions {
  double eps = 0.1;
  /// Fixed threshold (Central) vs per-(v,t) random thresholds
  /// (Central-Rand).
  bool random_thresholds = false;
  /// Seed of the stateless threshold stream (only used when
  /// random_thresholds).
  std::uint64_t threshold_seed = 1;
  /// Initial edge weight w0; 0 = the paper's 1/n. (MPC-Simulation couples
  /// against a Central-Rand run started from its own w0 = (1-2eps)/n.)
  double initial_edge_weight = 0.0;
  /// Record y_v per iteration (for the coupling experiments). Costs
  /// O(n * iterations) memory.
  bool record_trace = false;
};

struct CentralResult {
  /// Fractional matching, one weight per edge id.
  std::vector<double> x;
  /// Frozen vertices — the vertex cover.
  std::vector<VertexId> cover;
  /// Iteration at which each vertex froze (kNeverFroze if it never did —
  /// possible only for vertices with no edges).
  std::vector<std::uint32_t> freeze_iteration;
  std::size_t iterations = 0;
  /// y_trace[t][v] = load of v at the *start* of iteration t (before
  /// freezing); only filled when options.record_trace.
  std::vector<std::vector<double>> y_trace;

  static constexpr std::uint32_t kNeverFroze =
      std::numeric_limits<std::uint32_t>::max();
};

/// Runs Central / Central-Rand on g.
[[nodiscard]] CentralResult central_fractional_matching(
    const Graph& g, const CentralOptions& options);

/// The threshold T_{v,t} Central-Rand and MPC-Simulation share.
[[nodiscard]] double central_threshold(std::uint64_t threshold_seed,
                                       VertexId v, std::uint64_t t,
                                       double eps, bool random_thresholds);

}  // namespace mpcg

#endif  // MPCG_CORE_CENTRAL_H
