#include "graph/residual.h"

#include <algorithm>

#include "util/memory.h"

namespace mpcg {

ResidualGraph::ResidualGraph(const Graph& g)
    : g_(&g), alive_(g.num_vertices(), 1), dirty_(g.num_vertices(), 0),
      degree_(g.num_vertices(), 0), alive_edges_(g.num_edges()),
      alive_count_(g.num_vertices()) {
  const std::size_t n = g.num_vertices();
  offsets_.resize(n + 1);
  live_end_.assign(n, kLazy);
  std::size_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = cursor;
    const std::size_t d = g.degree(v);
    degree_[v] = static_cast<std::uint32_t>(d);
    cursor += d;
  }
  offsets_[n] = cursor;

  vertex_list_.resize(n);
  for (VertexId v = 0; v < n; ++v) vertex_list_[v] = v;
  vertex_list_end_ = n;

  max_degree_bound_ = g.max_degree();
  hist_.assign(max_degree_bound_ + 1, 0);
  for (VertexId v = 0; v < n; ++v) hist_add(degree_[v]);
}

ResidualGraph::ResidualGraph(const Graph& g, const std::vector<char>& alive)
    : g_(&g), alive_(g.num_vertices(), 1), dirty_(g.num_vertices(), 0),
      degree_(g.num_vertices(), 0) {
  const std::size_t n = g.num_vertices();
  const std::size_t given = std::min(alive.size(), n);
  for (std::size_t v = 0; v < given; ++v) alive_[v] = alive[v] ? 1 : 0;

  offsets_.resize(n + 1);
  live_end_.assign(n, kLazy);
  std::size_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = cursor;
    cursor += g.degree(v);
  }
  offsets_[n] = cursor;

  vertex_list_.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (!alive_[v]) continue;
    std::size_t live = 0;
    bool all_alive = true;
    for (const Arc& a : g.arcs(v)) {
      if (alive_[a.to]) {
        ++live;
      } else {
        all_alive = false;
      }
    }
    if (!all_alive) {
      // Materialize the filtered segment now; the scan was paid anyway.
      ensure_arc_buffer();
      std::size_t write = offsets_[v];
      for (const Arc& a : g.arcs(v)) {
        if (alive_[a.to]) arcs_[write++] = a;
      }
      live_end_[v] = write;
    }
    degree_[v] = static_cast<std::uint32_t>(live);
    vertex_list_.push_back(v);
    alive_edges_ += live;
  }
  alive_edges_ /= 2;  // each alive-alive edge was counted at both ends
  alive_count_ = vertex_list_.size();
  vertex_list_end_ = vertex_list_.size();

  max_degree_bound_ = g.max_degree();
  hist_.assign(max_degree_bound_ + 1, 0);
  for (const VertexId v : vertex_list_) hist_add(degree_[v]);
}

ResidualGraph::ResidualGraph(const ResidualGraph& other)
    : g_(other.g_), alive_(other.alive_), dirty_(other.dirty_),
      degree_(other.degree_),
      alive_edges_(other.alive_edges_), alive_count_(other.alive_count_),
      offsets_(other.offsets_), live_end_(other.live_end_),
      vertex_list_(other.vertex_list_),
      vertex_list_end_(other.vertex_list_end_), hist_(other.hist_),
      max_degree_bound_(other.max_degree_bound_) {
  // Dead vertices' segments are not copied; mark them lazy so a later
  // query re-materializes from the graph instead of reading uninitialized
  // memory.
  for (VertexId v = 0; v < alive_.size(); ++v) {
    if (!alive_[v]) live_end_[v] = kLazy;
  }
  if (other.arcs_ != nullptr) {
    // Copy only the materialized segments of alive vertices — dead and
    // lazy vertices contribute nothing.
    ensure_arc_buffer();
    for (std::size_t i = 0; i < vertex_list_end_; ++i) {
      const VertexId v = vertex_list_[i];
      if (!alive_[v] || live_end_[v] == kLazy) continue;
      std::copy(other.arcs_.get() + offsets_[v],
                other.arcs_.get() + live_end_[v], arcs_.get() + offsets_[v]);
    }
  }
}

ResidualGraph& ResidualGraph::operator=(const ResidualGraph& other) {
  if (this != &other) *this = ResidualGraph(other);
  return *this;
}

void ResidualGraph::ensure_arc_buffer() {
  if (arcs_ == nullptr && offsets_.back() > 0) {
    arcs_ = std::make_unique_for_overwrite<Arc[]>(offsets_.back());
    advise_huge_pages(arcs_.get(), offsets_.back() * sizeof(Arc));
  }
}

std::size_t ResidualGraph::max_alive_degree() noexcept {
  if (alive_count_ == 0) return 0;
  while (max_degree_bound_ > 0 && hist_[max_degree_bound_] == 0) {
    --max_degree_bound_;
  }
  return max_degree_bound_;
}

std::span<const Arc> ResidualGraph::materialize_segment(
    VertexId v, std::span<const Arc> full) {
  ensure_arc_buffer();
  std::size_t write = offsets_[v];
  for (const Arc& a : full) {
    if (alive_[a.to]) arcs_[write++] = a;
  }
  live_end_[v] = write;
  dirty_[v] = 0;
  return {arcs_.get() + offsets_[v], arcs_.get() + write};
}

std::span<const Arc> ResidualGraph::compact_segment(VertexId v) {
  const std::size_t begin = offsets_[v];
  const std::size_t end = live_end_[v];
  std::size_t read = begin;
  while (read < end && alive_[arcs_[read].to]) ++read;
  std::size_t write = read;
  for (; read < end; ++read) {
    const Arc a = arcs_[read];
    if (alive_[a.to]) arcs_[write++] = a;
  }
  live_end_[v] = write;
  dirty_[v] = 0;
  return {arcs_.get() + begin, arcs_.get() + write};
}

std::span<const VertexId> ResidualGraph::alive_vertices() {
  std::size_t read = 0;
  while (read < vertex_list_end_ && alive_[vertex_list_[read]]) ++read;
  if (read < vertex_list_end_) {
    std::size_t write = read;
    for (++read; read < vertex_list_end_; ++read) {
      const VertexId v = vertex_list_[read];
      if (alive_[v]) vertex_list_[write++] = v;
    }
    vertex_list_end_ = write;
  }
  return {vertex_list_.data(), vertex_list_end_};
}

void ResidualGraph::kill(VertexId v) {
  if (!alive_[v]) return;
  const auto neighbors = alive_arcs(v);
  alive_[v] = 0;
  --alive_count_;
  alive_edges_ -= neighbors.size();
  hist_remove(degree_[v]);
  degree_[v] = 0;
  for (const Arc& a : neighbors) {
    hist_remove(degree_[a.to]);
    --degree_[a.to];
    hist_add(degree_[a.to]);
    dirty_[a.to] = 1;
  }
}

void ResidualGraph::kill_batch(std::span<const VertexId> dead) {
  // Per-kill pays O(live degree) per dead vertex plus scattered histogram
  // updates per dead edge; the rebuild pays O(survivors + their arcs).
  // Prefer the rebuild once the batch is a sizable fraction of the
  // residual.
  if (4 * dead.size() < alive_count_) {
    for (const VertexId v : dead) kill(v);
    return;
  }
  std::size_t killed = 0;
  for (const VertexId v : dead) {
    if (alive_[v]) {
      alive_[v] = 0;
      degree_[v] = 0;
      ++killed;
    }
  }
  alive_count_ -= killed;

  // Rebuild degrees, the alive-edge count, and the histogram from the
  // survivor side. Survivors that never lost a neighbor stay lazy and cost
  // one read-only scan; nothing else is written.
  alive_edges_ = 0;
  std::fill(hist_.begin(), hist_.end(), 0);
  std::size_t write = 0;
  for (std::size_t read = 0; read < vertex_list_end_; ++read) {
    const VertexId v = vertex_list_[read];
    if (!alive_[v]) continue;
    vertex_list_[write++] = v;
    std::size_t live = 0;
    if (live_end_[v] == kLazy) {
      const auto full = g_->arcs(v);
      bool all_alive = true;
      for (const Arc& a : full) {
        if (alive_[a.to]) {
          ++live;
        } else {
          all_alive = false;
        }
      }
      if (!all_alive) {
        ensure_arc_buffer();
        std::size_t arc_write = offsets_[v];
        for (const Arc& a : full) {
          if (alive_[a.to]) arcs_[arc_write++] = a;
        }
        live_end_[v] = arc_write;
      }
      dirty_[v] = 0;
    } else {
      const std::size_t begin = offsets_[v];
      std::size_t arc_write = begin;
      for (std::size_t arc_read = begin; arc_read < live_end_[v];
           ++arc_read) {
        const Arc a = arcs_[arc_read];
        if (alive_[a.to]) arcs_[arc_write++] = a;
      }
      live_end_[v] = arc_write;
      live = arc_write - begin;
      dirty_[v] = 0;
    }
    degree_[v] = static_cast<std::uint32_t>(live);
    alive_edges_ += live;
    hist_add(degree_[v]);
  }
  vertex_list_end_ = write;
  alive_edges_ /= 2;
}

void CsrScratch::build(std::span<const std::pair<VertexId, VertexId>> pairs) {
  flat_.resize(2 * pairs.size());
  for (const auto& [u, v] : pairs) {
    if (degree_[u]++ == 0) touched_.push_back(u);
    if (degree_[v]++ == 0) touched_.push_back(v);
  }
  std::uint32_t cum = 0;
  for (const VertexId t : touched_) {
    start_[t] = cum;
    cursor_[t] = cum;
    cum += degree_[t];
  }
  for (const auto& [u, v] : pairs) {
    flat_[cursor_[u]++] = v;
    flat_[cursor_[v]++] = u;
  }
}

void CsrScratch::clear() {
  for (const VertexId t : touched_) degree_[t] = 0;
  touched_.clear();
}

}  // namespace mpcg
